// Figure 8: effect of the batch interval Δ (3..30 s) on total revenue and
// batch running time. Expected shape: revenue decays slightly with Δ (more
// riders time out between batches); IRG-R/LS-R (ground-truth demand) above
// IRG-P/LS-P; all queueing approaches above RAND/LTG/NEAR/POLAR.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 8 (scale=%.2f)\n", scale.scale);

  const std::vector<std::string> approaches = {
      "RAND", "LTG", "NEAR", "POLAR", "IRG-P", "IRG-R", "LS-P", "LS-R"};
  const std::vector<double> deltas = {3, 5, 10, 20, 30};

  Experiment exp(scale, scale.Count(3000), 120.0);
  std::vector<std::vector<SimResult>> results(approaches.size());
  for (double delta : deltas) {
    for (size_t a = 0; a < approaches.size(); ++a) {
      results[a].push_back(exp.RunApproach(approaches[a], delta, 1200.0));
    }
  }

  PrintTableHeader("Figure 8(a): total revenue vs Δ",
                   {"approach", "3s", "5s", "10s", "20s", "30s"});
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) row.push_back(FormatRevenue(r.total_revenue));
    PrintTableRow(row);
  }

  PrintTableHeader("Figure 8(b): mean batch running time (ms) vs Δ",
                   {"approach", "3s", "5s", "10s", "20s", "30s"});
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) {
      row.push_back(StrFormat("%.3f", r.batch_seconds.mean() * 1e3));
    }
    PrintTableRow(row);
  }
  return 0;
}
