// Table 6 (Appendix A): demand-prediction accuracy of HA, LR, GBRT and the
// DeepST surrogate on held-out evaluation days. Expected shape:
// DeepST < GBRT < LR < HA in RMSE.
#include <cstdio>
#include <memory>
#include <vector>

#include "experiment_common.h"
#include "prediction/predictor.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Table 6 (scale=%.2f)\n", scale.scale);

  Experiment exp(scale, scale.Count(3000), 120.0);

  std::vector<std::unique_ptr<DemandPredictor>> predictors;
  predictors.push_back(MakeDeepStSurrogatePredictor());
  predictors.push_back(MakeHistoricalAveragePredictor());
  predictors.push_back(MakeLinearRegressionPredictor());
  predictors.push_back(MakeGbrtPredictor());

  PrintTableHeader("Table 6: Results of the Demand Prediction Methods",
                   {"model", "RMSE (%)", "Real RMSE", "MAE", "#preds"});
  for (auto& p : predictors) {
    Status st = p->Train(exp.observed(), exp.grid());
    if (!st.ok()) {
      PrintTableRow({p->name(), "train failed", st.ToString(), "", ""});
      continue;
    }
    PredictorEvaluation eval =
        EvaluatePredictor(*p, exp.observed(), exp.eval_start_step());
    PrintTableRow({eval.name, StrFormat("%.2f", eval.rel_rmse_pct),
                   StrFormat("%.2f", eval.real_rmse),
                   StrFormat("%.2f", eval.mae),
                   StrFormat("%lld", (long long)eval.num_predictions)});
  }
  std::printf("(RMSE %% is relative to the mean per-slot count; the paper's\n"
              " 'Real RMSE (s)' column is in counts here — same metric, the\n"
              " paper's unit label appears to be a typo)\n");
  return 0;
}
