// Table 3: accuracy of the queueing-theoretic idle-time estimate (MAE,
// relative RMSE, real RMSE) as the fleet grows from 1K to 8K drivers, plus
// the Figure-6 per-region comparison of predicted vs. real idle time.
#include <cstdio>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Table 3 / Figure 6 (scale=%.2f)\n", scale.scale);

  PrintTableHeader("Table 3: Results of the Estimated Idle Time",
                   {"#Drivers", "MAE (s)", "RMSE (%)", "Real RMSE (s)",
                    "samples"});
  for (int paper_n : {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000}) {
    Experiment exp(scale, scale.Count(paper_n), 120.0);
    SimResult r = exp.RunApproach("IRG-P", 3.0, 1200.0);
    PrintTableRow({StrFormat("%dK*", paper_n / 1000),
                   StrFormat("%.2f", r.idle_error.Mae()),
                   StrFormat("%.2f", r.idle_error.RelativeRmsePct()),
                   StrFormat("%.2f", r.idle_error.RealRmse()),
                   StrFormat("%lld", (long long)r.idle_error.count())});
  }
  std::printf("(* fleet sizes scaled by scale^1.5; see DESIGN.md)\n");

  // Figure 6: per-region predicted vs. real mean idle time at the default
  // fleet size, rendered as two aligned grids.
  Experiment exp(scale, scale.Count(3000), 120.0);
  SimResult r = exp.RunApproach("IRG-P", 3.0, 1200.0);
  const Grid& grid = exp.grid();
  std::printf("\n== Figure 6: mean idle time per region (seconds) ==\n");
  std::printf("%-34s | %-34s\n", "(a) predicted", "(b) real");
  for (int row = grid.rows() - 1; row >= 0; --row) {
    std::string pred_line, real_line;
    for (int col = 0; col < grid.cols(); ++col) {
      const auto& reg = r.region_idle[static_cast<size_t>(
          grid.RegionAt(row, col))];
      if (reg.count == 0) {
        pred_line += "   . ";
        real_line += "   . ";
      } else {
        pred_line += StrFormat("%4.0f ", reg.MeanPredicted());
        real_line += StrFormat("%4.0f ", reg.MeanReal());
      }
    }
    std::printf("%s | %s\n", pred_line.c_str(), real_line.c_str());
  }
  std::printf("('.' = no driver rejoined that region)\n");
  return 0;
}
