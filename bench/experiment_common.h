// Shared infrastructure for the table/figure reproduction benches.
//
// Each bench binary is a thin parameter sweep over this module. Scale is
// controlled by environment variables so the default run finishes quickly:
//   MRVD_SCALE    fraction of the paper's workload (default 0.1)
//   MRVD_FULL=1   full paper scale (282,255 orders, 1K-8K drivers)
//   MRVD_TLC_CSV  path to a real TLC yellow-taxi CSV (used instead of the
//                 synthetic generator when set)
//   MRVD_SEED     master seed (default 20190417)
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "sim/engine.h"
#include "workload/generator.h"

namespace mrvd::bench {

/// Resolved experiment scale.
struct ExperimentScale {
  double scale = 0.1;
  uint64_t seed = 20190417;
  std::string tlc_csv;  ///< empty = synthetic

  /// Scales the order volume from the paper's numbers.
  double Orders() const { return 282255.0 * scale; }

  /// Scales a fleet size. Trip durations shrink with the city's linear
  /// dimension (sqrt(scale)), so preserving the paper's demand-to-capacity
  /// ratio requires drivers to scale as scale^1.5, not scale.
  int Count(int paper_count) const {
    return std::max(1, static_cast<int>(paper_count * scale * std::sqrt(scale)));
  }
};

/// Reads MRVD_* environment variables.
ExperimentScale ResolveScale();

/// The paper's default parameters (Table 2, bold values).
struct PaperDefaults {
  int num_drivers = 3000;
  double tau_seconds = 120.0;
  double delta_seconds = 3.0;
  double tc_seconds = 20.0 * 60.0;
};

/// Fully assembled experiment environment.
class Experiment {
 public:
  /// Builds the generator, the evaluation-day workload, the travel-cost
  /// model and (lazily) trained predictors. `tau` adjusts the base pickup
  /// waiting time of the generated riders.
  Experiment(const ExperimentScale& scale, int num_drivers,
             double tau_seconds);

  const Grid& grid() const { return generator_->grid(); }
  const Workload& workload() const { return workload_; }
  const TravelCostModel& cost_model() const { return cost_; }
  const NycLikeGenerator& generator() const { return *generator_; }

  /// Trains (once) and returns a forecast for the evaluation day under the
  /// given predictor name: "HA", "LR", "GBRT", "DeepST", or "Real".
  const DemandForecast* ForecastFor(const std::string& predictor_name);

  /// The observed tensor (training days + evaluation day) and the step at
  /// which evaluation starts; used by the prediction-accuracy bench.
  const DemandHistory& observed() const { return *observed_; }
  int eval_start_step() const { return eval_day_ * 48; }
  int eval_day() const { return eval_day_; }

  /// Runs one approach over the workload. Recognized names: RAND, NEAR,
  /// LTG, IRG-P, IRG-R, LS-P, LS-R, SHORT, POLAR, UPPER. "-P" variants use
  /// the DeepST forecast, "-R" the ground-truth forecast; SHORT and POLAR
  /// use DeepST.
  SimResult RunApproach(const std::string& name, double delta_seconds,
                        double tc_seconds);

  /// Table-4 variant: run `approach` ("IRG", "LS" or "POLAR") with the given
  /// demand predictor ("HA", "LR", "GBRT", "DeepST", "Real").
  SimResult RunApproachWithPredictor(const std::string& approach,
                                     const std::string& predictor,
                                     double delta_seconds, double tc_seconds);

 private:
  std::unique_ptr<DemandPredictor> MakePredictor(const std::string& name);

  ExperimentScale scale_;
  std::unique_ptr<NycLikeGenerator> generator_;
  Workload workload_;
  StraightLineCostModel cost_;
  std::unique_ptr<DemandHistory> observed_;
  int eval_day_ = 0;

  struct NamedForecast {
    std::string name;
    std::unique_ptr<DemandForecast> forecast;
  };
  std::vector<NamedForecast> forecasts_;
};

/// Markdown-ish table printing.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Formats a revenue in the paper's 1e8-style scientific units.
std::string FormatRevenue(double revenue);

}  // namespace mrvd::bench
