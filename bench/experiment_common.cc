#include "experiment_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"
#include "workload/tlc_parser.h"

namespace mrvd::bench {

ExperimentScale ResolveScale() {
  ExperimentScale s;
  if (const char* full = std::getenv("MRVD_FULL");
      full != nullptr && full[0] == '1') {
    s.scale = 1.0;
  } else if (const char* sc = std::getenv("MRVD_SCALE")) {
    auto parsed = ParseDouble(sc);
    if (parsed.ok() && *parsed > 0.0 && *parsed <= 1.0) s.scale = *parsed;
  }
  if (const char* seed = std::getenv("MRVD_SEED")) {
    auto parsed = ParseInt64(seed);
    if (parsed.ok()) s.seed = static_cast<uint64_t>(*parsed);
  }
  if (const char* csv = std::getenv("MRVD_TLC_CSV")) s.tlc_csv = csv;
  return s;
}

namespace {
/// Training history: 21 days (as in the paper's chi-square setup) before
/// the evaluation day.
constexpr int kTrainDays = 21;
}  // namespace

Experiment::Experiment(const ExperimentScale& scale, int num_drivers,
                       double tau_seconds)
    // ~40 km/h cruising with a 1.3 street-detour factor (NYC TLC reports
    // city-wide averages of 20-40 km/h depending on borough and hour).
    : scale_(scale), cost_(11.0, 1.3) {
  GeneratorConfig cfg;
  cfg.orders_per_day = scale.Orders();
  cfg.base_pickup_wait = tau_seconds;
  cfg.seed = scale.seed;
  // Scale the city area with the order volume (linear dims by sqrt(scale))
  // so spatial density — and with it the queueing regimes and pickup
  // feasibility — matches the paper at every scale.
  if (scale.scale < 1.0) {
    double shrink = std::sqrt(scale.scale);
    LatLon c = cfg.box.Center();
    double half_w = cfg.box.WidthDegrees() * 0.5 * shrink;
    double half_h = cfg.box.HeightDegrees() * 0.5 * shrink;
    cfg.box = {c.lon - half_w, c.lon + half_w, c.lat - half_h, c.lat + half_h};
  }
  generator_ = std::make_unique<NycLikeGenerator>(cfg);

  eval_day_ = kTrainDays;
  if (!scale_.tlc_csv.empty()) {
    TlcParseOptions opt;
    opt.base_pickup_wait = tau_seconds;
    opt.seed = scale.seed;
    auto parsed = ParseTlcCsv(scale_.tlc_csv, num_drivers, opt);
    if (parsed.ok()) {
      workload_ = std::move(parsed).value();
      MRVD_LOG(Info) << "loaded " << workload_.orders.size()
                     << " TLC orders from " << scale_.tlc_csv;
    } else {
      MRVD_LOG(Warn) << "TLC parse failed (" << parsed.status()
                     << "); falling back to synthetic";
    }
  }
  if (workload_.orders.empty()) {
    workload_ = generator_->GenerateDay(eval_day_, num_drivers);
  }

  // Observed tensor: generated training history plus the realized counts of
  // the evaluation day appended as the final day.
  DemandHistory train = generator_->GenerateHistory(kTrainDays, 48);
  observed_ = std::make_unique<DemandHistory>(kTrainDays + 1, 48,
                                              grid().num_regions());
  for (int d = 0; d < kTrainDays; ++d) {
    for (int s = 0; s < 48; ++s) {
      for (int r = 0; r < grid().num_regions(); ++r) {
        observed_->set(d, s, r, train.at(d, s, r));
      }
    }
  }
  DemandHistory realized = generator_->RealizedCounts(workload_, 48);
  for (int s = 0; s < 48; ++s) {
    for (int r = 0; r < grid().num_regions(); ++r) {
      observed_->set(eval_day_, s, r, realized.at(0, s, r));
    }
  }
}

std::unique_ptr<DemandPredictor> Experiment::MakePredictor(
    const std::string& name) {
  if (name == "HA") return MakeHistoricalAveragePredictor();
  if (name == "LR") return MakeLinearRegressionPredictor();
  if (name == "GBRT") return MakeGbrtPredictor();
  if (name == "DeepST") return MakeDeepStSurrogatePredictor();
  if (name == "Real") return MakeOraclePredictor();
  return nullptr;
}

const DemandForecast* Experiment::ForecastFor(
    const std::string& predictor_name) {
  for (const auto& nf : forecasts_) {
    if (nf.name == predictor_name) return nf.forecast.get();
  }
  auto predictor = MakePredictor(predictor_name);
  if (predictor == nullptr) return nullptr;
  Status st = predictor->Train(*observed_, grid());
  if (!st.ok()) {
    MRVD_LOG(Warn) << predictor_name << " training failed: " << st;
    return nullptr;
  }
  auto fc = DemandForecast::Build(*predictor, *observed_, eval_day_);
  if (!fc.ok()) {
    MRVD_LOG(Warn) << predictor_name << " forecast failed: " << fc.status();
    return nullptr;
  }
  forecasts_.push_back(
      {predictor_name,
       std::make_unique<DemandForecast>(std::move(fc).value())});
  return forecasts_.back().forecast.get();
}

SimResult Experiment::RunApproach(const std::string& name,
                                  double delta_seconds, double tc_seconds) {
  SimConfig cfg;
  cfg.batch_interval = delta_seconds;
  cfg.window_seconds = tc_seconds;

  const DemandForecast* forecast = nullptr;
  std::unique_ptr<Dispatcher> dispatcher;
  if (name == "RAND") {
    dispatcher = MakeRandomDispatcher(scale_.seed ^ 0xABCD);
  } else if (name == "NEAR") {
    dispatcher = MakeNearestDispatcher();
  } else if (name == "LTG") {
    dispatcher = MakeLongTripGreedyDispatcher();
  } else if (name == "IRG-P" || name == "IRG") {
    dispatcher = MakeIrgDispatcher();
    forecast = ForecastFor("DeepST");
  } else if (name == "IRG-R") {
    dispatcher = MakeIrgDispatcher();
    forecast = ForecastFor("Real");
  } else if (name == "LS-P" || name == "LS") {
    dispatcher = MakeLocalSearchDispatcher();
    forecast = ForecastFor("DeepST");
  } else if (name == "LS-R") {
    dispatcher = MakeLocalSearchDispatcher();
    forecast = ForecastFor("Real");
  } else if (name == "SHORT") {
    dispatcher = MakeShortDispatcher();
    forecast = ForecastFor("DeepST");
  } else if (name == "POLAR") {
    dispatcher = MakePolarDispatcher();
    forecast = ForecastFor("DeepST");
  } else if (name == "UPPER") {
    dispatcher = MakeUpperBoundDispatcher();
    cfg.zero_pickup_travel = true;
  } else {
    MRVD_LOG(Error) << "unknown approach: " << name;
    return {};
  }

  Simulator sim(cfg, workload_, grid(), cost_, forecast);
  return sim.Run(*dispatcher);
}

SimResult Experiment::RunApproachWithPredictor(const std::string& approach,
                                               const std::string& predictor,
                                               double delta_seconds,
                                               double tc_seconds) {
  SimConfig cfg;
  cfg.batch_interval = delta_seconds;
  cfg.window_seconds = tc_seconds;
  std::unique_ptr<Dispatcher> dispatcher;
  if (approach == "IRG") {
    dispatcher = MakeIrgDispatcher();
  } else if (approach == "LS") {
    dispatcher = MakeLocalSearchDispatcher();
  } else if (approach == "POLAR") {
    dispatcher = MakePolarDispatcher();
  } else if (approach == "SHORT") {
    dispatcher = MakeShortDispatcher();
  } else {
    MRVD_LOG(Error) << "unknown prediction-guided approach: " << approach;
    return {};
  }
  Simulator sim(cfg, workload_, grid(), cost_, ForecastFor(predictor));
  return sim.Run(*dispatcher);
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " | ", columns[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s--------------", i == 0 ? "" : "-+-");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " | ", cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatRevenue(double revenue) {
  return StrFormat("%.4fe8", revenue / 1e8);
}

}  // namespace mrvd::bench
