// Micro-benchmarks of the matching substrate and one-batch dispatch latency
// (google-benchmark): Hungarian and Hopcroft-Karp scaling, greedy matching,
// and the IRG lazy-requeue greedy vs. a full re-sort baseline — the
// "lazy re-sorting" ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "geo/travel.h"
#include "matching/bipartite.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace mrvd {
namespace {

void BM_Hungarian(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<double> cost(static_cast<size_t>(n) * n);
  for (auto& c : cost) c = rng.Uniform(0, 1000);
  for (auto _ : state) {
    auto r = SolveMinCostAssignment(cost, n, n);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  BipartiteGraph g(n, n);
  for (int i = 0; i < 8 * n; ++i) {
    g.AddEdge(static_cast<int>(rng.UniformInt(0, n - 1)),
              static_cast<int>(rng.UniformInt(0, n - 1)));
  }
  for (auto _ : state) {
    auto m = MaxCardinalityMatching(g);
    benchmark::DoNotOptimize(m.size);
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GreedyMatch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<WeightedPair> pairs;
  for (int i = 0; i < 10 * n; ++i) {
    pairs.push_back({static_cast<int>(rng.UniformInt(0, n - 1)),
                     static_cast<int>(rng.UniformInt(0, n - 1)),
                     rng.Uniform(0, 1)});
  }
  for (auto _ : state) {
    auto sel = GreedyMatch(pairs);
    benchmark::DoNotOptimize(sel.size());
  }
}
BENCHMARK(BM_GreedyMatch)->Arg(100)->Arg(1000)->Arg(10000);

// --- One-batch dispatch latency on a synthetic peak-hour batch ----------

struct BatchFixture {
  Grid grid{kNycBoundingBox, 16, 16};
  StraightLineCostModel cost{11.0, 1.3};
  BatchContext ctx{36000.0, 1200.0, 0.02, grid, cost};

  explicit BatchFixture(int riders, int drivers) {
    Rng rng(13);
    auto random_point = [&] {
      return LatLon{rng.Uniform(40.58, 40.92), rng.Uniform(-74.03, -73.77)};
    };
    for (int i = 0; i < riders; ++i) {
      WaitingRider r;
      r.order_id = i;
      r.pickup = random_point();
      r.dropoff = random_point();
      r.request_time = 36000.0 - rng.Uniform(0, 60);
      r.pickup_deadline = 36000.0 + rng.Uniform(30, 125);
      r.trip_seconds = cost.TravelSeconds(r.pickup, r.dropoff);
      r.revenue = r.trip_seconds;
      r.pickup_region = grid.RegionOf(r.pickup);
      r.dropoff_region = grid.RegionOf(r.dropoff);
      ctx.AddRider(r);
    }
    for (int j = 0; j < drivers; ++j) {
      AvailableDriver d;
      d.driver_id = j;
      d.location = random_point();
      d.region = grid.RegionOf(d.location);
      d.available_since = 36000.0 - rng.Uniform(0, 300);
      ctx.AddDriver(d);
    }
    std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
    for (const auto& r : ctx.riders())
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    for (const auto& d : ctx.drivers())
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    for (auto& s : snaps) s.predicted_riders = 20.0;
    ctx.SetSnapshots(std::move(snaps));
  }
};

void BM_OneBatchDispatch(benchmark::State& state, const char* which) {
  BatchFixture fx(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
  std::unique_ptr<Dispatcher> d = MakeDispatcherByName(which);
  for (auto _ : state) {
    std::vector<Assignment> out;
    d->Dispatch(fx.ctx, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK_CAPTURE(BM_OneBatchDispatch, irg, "IRG")
    ->Args({500, 300})
    ->Args({2000, 1000});
BENCHMARK_CAPTURE(BM_OneBatchDispatch, ls, "LS")
    ->Args({500, 300})
    ->Args({2000, 1000});
BENCHMARK_CAPTURE(BM_OneBatchDispatch, near, "NEAR")
    ->Args({500, 300})
    ->Args({2000, 1000});
BENCHMARK_CAPTURE(BM_OneBatchDispatch, polar, "POLAR")
    ->Args({500, 300})
    ->Args({2000, 1000});

// Lazy-requeue ablation: the IRG selection loop vs. re-sorting all pairs
// after every acceptance (the naive reading of Algorithm 2's line 7+11).
void BM_IrgLazyGreedy(benchmark::State& state) {
  BatchFixture fx(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
  auto pairs = GenerateValidPairs(fx.ctx);
  for (auto _ : state) {
    IrgState s = RunGreedySelection(fx.ctx, pairs,
                                    GreedyObjective::kIdleRatio);
    benchmark::DoNotOptimize(s.assignments.size());
  }
  state.counters["pairs"] = static_cast<double>(pairs.size());
}
BENCHMARK(BM_IrgLazyGreedy)->Args({500, 300})->Args({2000, 1000});

void BM_IrgFullResort(benchmark::State& state) {
  BatchFixture fx(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
  auto pairs = GenerateValidPairs(fx.ctx);
  for (auto _ : state) {
    // Naive variant: recompute and fully re-sort the remaining pairs after
    // each accepted assignment.
    std::vector<int> extra(static_cast<size_t>(fx.grid.num_regions()), 0);
    std::vector<char> rider_used(fx.ctx.riders().size(), false);
    std::vector<char> driver_used(fx.ctx.drivers().size(), false);
    std::vector<size_t> remaining(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) remaining[i] = i;
    size_t accepted = 0;
    while (!remaining.empty()) {
      // Score and pick the min.
      size_t best = 0;
      double best_score = 1e300;
      for (size_t k = 0; k < remaining.size(); ++k) {
        const auto& cp = pairs[remaining[k]];
        const auto& rider =
            fx.ctx.riders()[static_cast<size_t>(cp.rider_index)];
        double s = ScorePair(
            fx.ctx, rider, GreedyObjective::kIdleRatio,
            extra[static_cast<size_t>(rider.dropoff_region)],
            cp.pickup_seconds);
        if (s < best_score) {
          best_score = s;
          best = k;
        }
      }
      const auto& cp = pairs[remaining[best]];
      rider_used[static_cast<size_t>(cp.rider_index)] = true;
      driver_used[static_cast<size_t>(cp.driver_index)] = true;
      ++extra[static_cast<size_t>(
          fx.ctx.riders()[static_cast<size_t>(cp.rider_index)]
              .dropoff_region)];
      ++accepted;
      std::erase_if(remaining, [&](size_t idx) {
        return rider_used[static_cast<size_t>(pairs[idx].rider_index)] ||
               driver_used[static_cast<size_t>(pairs[idx].driver_index)];
      });
    }
    benchmark::DoNotOptimize(accepted);
  }
}
BENCHMARK(BM_IrgFullResort)->Args({500, 300});

}  // namespace
}  // namespace mrvd

BENCHMARK_MAIN();
