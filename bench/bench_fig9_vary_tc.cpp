// Figure 9: effect of the scheduling-window length t_c (5..100 minutes) on
// total revenue and batch running time. Expected shape: IRG/LS peak for
// t_c <= 20 min and decay for larger windows (rejoin forecasts beyond the
// typical trip length stop being informative); RAND/LTG are flat in t_c.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 9 (scale=%.2f)\n", scale.scale);

  const std::vector<std::string> approaches = {"RAND",  "LTG",   "NEAR",
                                               "POLAR", "IRG-P", "LS-P"};
  const std::vector<double> tcs_minutes = {5, 10, 15, 20, 40, 60, 80, 100};

  Experiment exp(scale, scale.Count(3000), 120.0);
  std::vector<std::vector<SimResult>> results(approaches.size());
  for (double tc : tcs_minutes) {
    for (size_t a = 0; a < approaches.size(); ++a) {
      results[a].push_back(exp.RunApproach(approaches[a], 3.0, tc * 60.0));
    }
  }

  std::vector<std::string> header = {"approach"};
  for (double tc : tcs_minutes) header.push_back(StrFormat("%.0fm", tc));

  PrintTableHeader("Figure 9(a): total revenue vs t_c", header);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) row.push_back(FormatRevenue(r.total_revenue));
    PrintTableRow(row);
  }

  PrintTableHeader("Figure 9(b): mean batch running time (ms) vs t_c", header);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) {
      row.push_back(StrFormat("%.3f", r.batch_seconds.mean() * 1e3));
    }
    PrintTableRow(row);
  }
  return 0;
}
