// Tables 7/8 + Figures 11/12 (Appendix B): chi-square goodness-of-fit tests
// of the Poisson-arrival hypothesis for orders (Table 7) and rejoined
// drivers (Table 8), over 21 working days of per-minute counts in two
// example sub-regions at 7 A.M. and 8 A.M.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "stats/chi_square.h"
#include "util/strings.h"
#include "workload/generator.h"

using namespace mrvd;
using namespace mrvd::bench;

namespace {

// The paper's example regions as fractions of the city box (region 1:
// -74.01..-73.97 lon, 40.70..40.80 lat of the NYC box; region 2 the next
// longitude band). Using fractions keeps the sub-regions meaningful at any
// MRVD_SCALE.
BoundingBox FractionalBox(const BoundingBox& city, double lon_f0,
                          double lon_f1, double lat_f0, double lat_f1) {
  return {city.lon_min + city.WidthDegrees() * lon_f0,
          city.lon_min + city.WidthDegrees() * lon_f1,
          city.lat_min + city.HeightDegrees() * lat_f0,
          city.lat_min + city.HeightDegrees() * lat_f1};
}

struct SampleSet {
  std::string label;
  std::vector<int64_t> samples;  // per-minute counts, 21 days x 10 minutes
};

void PrintChiSquare(const SampleSet& set) {
  auto result = ChiSquarePoissonTest(set.samples);
  if (!result.ok()) {
    std::printf("%-28s : %s\n", set.label.c_str(),
                result.status().ToString().c_str());
    return;
  }
  PrintTableRow({set.label, StrFormat("%d", result->num_intervals),
                 StrFormat("%.4f", result->statistic),
                 StrFormat("%.3f", result->critical_value),
                 result->reject ? "REJECT" : "not rejected"});
}

void PrintHistogram(const SampleSet& set) {
  auto result = ChiSquarePoissonTest(set.samples);
  if (!result.ok()) return;
  std::printf("\n-- %s: observed vs expected (Figs. 11/12 style) --\n",
              set.label.c_str());
  for (const auto& b : result->buckets) {
    std::string range =
        b.hi == INT64_MAX
            ? StrFormat(">=%lld", (long long)b.lo)
            : StrFormat("%lld~%lld", (long long)b.lo, (long long)b.hi);
    std::printf("  %-12s observed=%4lld expected=%7.1f |", range.c_str(),
                (long long)b.observed, b.expected);
    for (int i = 0; i < b.observed / 2; ++i) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Tables 7/8 and Figures 11/12 (scale=%.2f)\n",
              scale.scale);

  GeneratorConfig cfg;
  cfg.orders_per_day = scale.Orders();
  cfg.seed = scale.seed;
  NycLikeGenerator gen(cfg);
  const BoundingBox& city = gen.config().box;
  BoundingBox region1 = FractionalBox(city, 0.077, 0.231, 0.353, 0.647);
  BoundingBox region2 = FractionalBox(city, 0.231, 0.385, 0.353, 0.647);

  // Collect per-minute samples over 21 "working" days (skip weekends by
  // picking weekday day-indices).
  struct Window {
    const char* name;
    int start_minute;
  };
  const Window windows[] = {{"7:00~7:10", 7 * 60}, {"8:00~8:10", 8 * 60}};
  const struct {
    const char* name;
    const BoundingBox* box;
  } regions[] = {{"region 1", &region1}, {"region 2", &region2}};

  // samples[region][window] for orders and for rejoined drivers.
  SampleSet order_sets[2][2], driver_sets[2][2];
  for (int ri = 0; ri < 2; ++ri) {
    for (int wi = 0; wi < 2; ++wi) {
      order_sets[ri][wi].label =
          StrFormat("%s %s", regions[ri].name, windows[wi].name);
      driver_sets[ri][wi].label = order_sets[ri][wi].label;
    }
  }

  StraightLineCostModel cost(11.0, 1.3);
  int days_collected = 0;
  for (int day = 0; days_collected < 21; ++day) {
    if (day % 7 >= 5) continue;  // working days only
    ++days_collected;
    Workload w = gen.GenerateDay(day, 0);
    for (int ri = 0; ri < 2; ++ri) {
      for (int wi = 0; wi < 2; ++wi) {
        int64_t order_counts[10] = {0};
        int64_t driver_counts[10] = {0};
        for (const Order& o : w.orders) {
          // Orders: pickup inside the region during the window.
          int m = static_cast<int>(o.request_time / 60.0) -
                  windows[wi].start_minute;
          if (m >= 0 && m < 10 && regions[ri].box->Contains(o.pickup)) {
            ++order_counts[m];
          }
          // Rejoined drivers: order destinations are the drivers'
          // birth-locations (Appendix B); rejoin at dropoff time.
          double rejoin = o.request_time +
                          cost.TravelSeconds(o.pickup, o.dropoff);
          int md = static_cast<int>(rejoin / 60.0) - windows[wi].start_minute;
          if (md >= 0 && md < 10 && regions[ri].box->Contains(o.dropoff)) {
            ++driver_counts[md];
          }
        }
        for (int m = 0; m < 10; ++m) {
          order_sets[ri][wi].samples.push_back(order_counts[m]);
          driver_sets[ri][wi].samples.push_back(driver_counts[m]);
        }
      }
    }
  }

  PrintTableHeader("Table 7: chi-square test of orders",
                   {"region/slot", "r", "k", "chi2_{r-1}(0.05)", "verdict"});
  for (int ri = 0; ri < 2; ++ri) {
    for (int wi = 0; wi < 2; ++wi) PrintChiSquare(order_sets[ri][wi]);
  }
  PrintTableHeader("Table 8: chi-square test of rejoined drivers",
                   {"region/slot", "r", "k", "chi2_{r-1}(0.05)", "verdict"});
  for (int ri = 0; ri < 2; ++ri) {
    for (int wi = 0; wi < 2; ++wi) PrintChiSquare(driver_sets[ri][wi]);
  }

  // Figures 11/12: one histogram per region/window.
  PrintHistogram(order_sets[0][0]);
  PrintHistogram(order_sets[0][1]);
  PrintHistogram(driver_sets[1][0]);
  PrintHistogram(driver_sets[1][1]);
  return 0;
}
