// Table 4: effect of the demand-prediction method (HA, LR, GBRT, DeepST,
// Real) on the total revenue achieved by the prediction-guided approaches
// (IRG, LS, POLAR). Expected shape: revenue rises with predictor accuracy
// and LS >= IRG >= POLAR.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Table 4 (scale=%.2f)\n", scale.scale);

  Experiment exp(scale, scale.Count(3000), 120.0);
  const std::vector<std::string> predictors = {"HA", "LR", "GBRT", "DeepST",
                                               "Real"};
  const std::vector<std::string> approaches = {"IRG", "LS", "POLAR"};

  PrintTableHeader("Table 4: Effects of Prediction Methods (total revenue)",
                   {"approach", "HA", "LR", "GBRT", "DeepST", "Real"});
  for (const auto& approach : approaches) {
    std::vector<std::string> row = {approach};
    for (const auto& pred : predictors) {
      SimResult r = exp.RunApproachWithPredictor(approach, pred, 3.0, 1200.0);
      row.push_back(FormatRevenue(r.total_revenue));
    }
    PrintTableRow(row);
  }
  return 0;
}
