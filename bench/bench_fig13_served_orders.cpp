// Figure 13 (Appendix C): number of served orders under the
// served-order-maximizing objective — SHORT vs RAND, NEAR, POLAR across the
// four parameter sweeps (n, t_c, Δ, τ). Expected shape: SHORT serves the
// most orders in every sweep.
//
// Ported onto the campaign subsystem following bench_fig7_vary_n /
// bench_fig10_vary_tau: the workload-shaping axes (n and τ change the
// generated orders or fleet) are `fig13` workload-catalog entries, while
// the engine-only axes (t_c, Δ) sweep as config deltas over one shared
// default workload — the catalog builds that Simulation once for both
// sweeps. The approach roster is the dispatcher axis and
// CampaignRunner::Resume makes every sweep content-addressed and
// resumable: kill the bench mid-run and the rerun re-executes only the
// missing cells.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign_runner.h"
#include "campaign/campaign_spec.h"
#include "campaign/workload_catalog.h"
#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

namespace {

const std::vector<std::string> kApproaches = {"RAND", "NEAR", "POLAR",
                                              "SHORT"};

// CampaignRunner builds each workload once per campaign, but the built
// Simulation only borrows what the Experiment owns — pin every Experiment
// for the life of the bench process. Keyed by (drivers, tau) so the four
// campaigns share the default-parameter Experiment instead of regenerating
// it per sweep.
Experiment& PinExperiment(const ExperimentScale& scale, int num_drivers,
                          double tau_seconds) {
  static std::map<std::pair<int, double>, std::unique_ptr<Experiment>> pool;
  std::unique_ptr<Experiment>& slot = pool[{num_drivers, tau_seconds}];
  if (slot == nullptr) {
    slot = std::make_unique<Experiment>(scale, num_drivers, tau_seconds);
  }
  return *slot;
}

// Out-of-tree workload entry: "fig13:drivers=2000" / "fig13:tau=180" is the
// evaluation-day workload at that fleet size / base pickup waiting time,
// with the DeepST forecast attached (SHORT and POLAR read it; the
// prediction-free baselines ignore it — the same pairing RunApproach
// hard-coded).
const WorkloadRegistrar kFig13Workload(
    "fig13",
    {
        {"drivers", CatalogParam::Type::kInt64, "3000",
         "paper-scale fleet size (shrunk by MRVD_SCALE)"},
        {"tau", CatalogParam::Type::kDouble, "120",
         "base pickup waiting time (s)"},
        {"delta", CatalogParam::Type::kDouble, "3",
         "batch interval (s)"},
        {"tc", CatalogParam::Type::kDouble, "1200",
         "prediction window (s)"},
    },
    [](const CatalogParams& p) -> StatusOr<Simulation> {
      ExperimentScale scale = ResolveScale();
      Experiment& exp = PinExperiment(
          scale, scale.Count(static_cast<int>(p.GetInt("drivers"))),
          p.GetDouble("tau"));
      const DemandForecast* forecast = exp.ForecastFor("DeepST");
      SimulationBuilder builder;
      builder.BorrowWorkload(exp.workload(), exp.grid())
          .WithTravelModel(exp.cost_model())
          .BatchInterval(p.GetDouble("delta"))
          .WindowSeconds(p.GetDouble("tc"));
      if (forecast != nullptr) builder.WithForecast(*forecast);
      return builder.Build();
    });

struct SweepResult {
  /// served[column][approach]; -1 marks a failed cell.
  std::vector<std::vector<long long>> served;
  int64_t failed = 0;
};

/// Runs one fig13 campaign. Columns are the workload axis when `workloads`
/// is non-empty, otherwise the config-delta axis over the default
/// workload.
StatusOr<SweepResult> RunSweep(const ExperimentScale& scale,
                               const std::string& name,
                               const std::vector<std::string>& workloads,
                               const std::vector<std::string>& deltas) {
  CampaignSpec spec;
  spec.name = name;
  spec.workloads =
      workloads.empty() ? std::vector<std::string>{"fig13"} : workloads;
  spec.dispatchers = kApproaches;
  // RunApproach seeded RAND with scale.seed ^ 0xABCD; the seed axis
  // reproduces that.
  spec.seeds = {scale.seed ^ 0xABCD};
  if (!deltas.empty()) spec.config_deltas = deltas;

  // Cell keys hash the canonical specs, which do not see MRVD_SCALE /
  // MRVD_SEED — keep artifacts from different scales apart by directory.
  std::string artifact_dir = StrFormat(
      "bench_artifacts/%s/scale_%g_seed_%llu", name.c_str(), scale.scale,
      static_cast<unsigned long long>(scale.seed));
  CampaignRunner runner(spec, artifact_dir);
  CampaignOptions options;
  options.num_threads = 1;  // comparable timings, like the other figures
  StatusOr<CampaignReport> report = runner.Resume(options);
  if (!report.ok()) return report.status();
  std::printf("%s: %lld executed, %lld resumed from %s, %lld failed\n",
              name.c_str(), static_cast<long long>(report->executed),
              static_cast<long long>(report->loaded), artifact_dir.c_str(),
              static_cast<long long>(report->failed));

  SweepResult out;
  const size_t columns =
      workloads.empty() ? deltas.size() : workloads.size();
  out.served.assign(columns,
                    std::vector<long long>(kApproaches.size(), -1));
  for (const CellOutcome& cell : report->cells) {
    if (cell.source == CellOutcome::Source::kFailed) continue;
    const size_t column = workloads.empty()
                              ? static_cast<size_t>(cell.cell.delta_index)
                              : static_cast<size_t>(cell.cell.workload_index);
    out.served[column][static_cast<size_t>(cell.cell.dispatcher_index)] =
        static_cast<long long>(cell.artifact.served);
  }
  out.failed = report->failed;
  return out;
}

void PrintServedTable(const std::string& title,
                      std::vector<std::string> header,
                      const std::vector<std::vector<long long>>& served) {
  header.insert(header.begin(), "approach");
  PrintTableHeader(title, header);
  for (size_t a = 0; a < kApproaches.size(); ++a) {
    std::vector<std::string> row = {kApproaches[a]};
    for (const std::vector<long long>& column : served) {
      row.push_back(column[a] >= 0 ? StrFormat("%lld", column[a]) : "n/a");
    }
    PrintTableRow(row);
  }
}

}  // namespace

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 13 (scale=%.2f)\n", scale.scale);
  int64_t failed = 0;

  {  // (a) vary n — workload axis
    std::vector<std::string> workloads;
    for (int n : {1000, 2000, 3000, 4000, 5000}) {
      workloads.push_back(StrFormat("fig13:drivers=%d", n));
    }
    StatusOr<SweepResult> sweep =
        RunSweep(scale, "fig13a_vary_n", workloads, {});
    if (!sweep.ok()) {
      std::fprintf(stderr, "fig13a failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    PrintServedTable("Figure 13(a): served orders vs n",
                     {"1K", "2K", "3K", "4K", "5K"}, sweep->served);
    failed += sweep->failed;
  }
  {  // (b) vary t_c — config deltas over the shared default workload
    std::vector<std::string> deltas;
    std::vector<std::string> header;
    for (double tc : {5.0, 10.0, 20.0, 40.0, 80.0}) {
      deltas.push_back(StrFormat("window_seconds=%g", tc * 60.0));
      header.push_back(StrFormat("%.0fm", tc));
    }
    StatusOr<SweepResult> sweep =
        RunSweep(scale, "fig13b_vary_tc", {}, deltas);
    if (!sweep.ok()) {
      std::fprintf(stderr, "fig13b failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    PrintServedTable("Figure 13(b): served orders vs t_c", header,
                     sweep->served);
    failed += sweep->failed;
  }
  {  // (c) vary Δ — config deltas over the same workload
    std::vector<std::string> deltas;
    std::vector<std::string> header;
    for (double delta : {3.0, 5.0, 10.0, 20.0, 30.0}) {
      deltas.push_back(StrFormat("batch_interval=%g", delta));
      header.push_back(StrFormat("%.0fs", delta));
    }
    StatusOr<SweepResult> sweep =
        RunSweep(scale, "fig13c_vary_delta", {}, deltas);
    if (!sweep.ok()) {
      std::fprintf(stderr, "fig13c failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    PrintServedTable("Figure 13(c): served orders vs Δ", header,
                     sweep->served);
    failed += sweep->failed;
  }
  {  // (d) vary τ — workload axis (deadlines are part of the orders)
    std::vector<std::string> workloads;
    std::vector<std::string> header;
    for (double tau : {60.0, 120.0, 180.0, 240.0, 300.0}) {
      workloads.push_back(StrFormat("fig13:tau=%g", tau));
      header.push_back(StrFormat("%.0fs", tau));
    }
    StatusOr<SweepResult> sweep =
        RunSweep(scale, "fig13d_vary_tau", workloads, {});
    if (!sweep.ok()) {
      std::fprintf(stderr, "fig13d failed: %s\n",
                   sweep.status().ToString().c_str());
      return 1;
    }
    PrintServedTable("Figure 13(d): served orders vs τ", header,
                     sweep->served);
    failed += sweep->failed;
  }
  return failed == 0 ? 0 : 1;
}
