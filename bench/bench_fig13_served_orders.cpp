// Figure 13 (Appendix C): number of served orders under the
// served-order-maximizing objective — SHORT vs RAND, NEAR, POLAR across the
// four parameter sweeps (n, t_c, Δ, τ). Expected shape: SHORT serves the
// most orders in every sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

namespace {

const std::vector<std::string> kApproaches = {"RAND", "NEAR", "POLAR",
                                              "SHORT"};

void PrintServedTable(const std::string& title,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<SimResult>>& results) {
  PrintTableHeader(title, header);
  for (size_t a = 0; a < kApproaches.size(); ++a) {
    std::vector<std::string> row = {kApproaches[a]};
    for (const auto& r : results[a]) {
      row.push_back(StrFormat("%lld", (long long)r.served_orders));
    }
    PrintTableRow(row);
  }
}

}  // namespace

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 13 (scale=%.2f)\n", scale.scale);

  {  // (a) vary n
    std::vector<std::vector<SimResult>> results(kApproaches.size());
    for (int n : {1000, 2000, 3000, 4000, 5000}) {
      Experiment exp(scale, scale.Count(n), 120.0);
      for (size_t a = 0; a < kApproaches.size(); ++a) {
        results[a].push_back(exp.RunApproach(kApproaches[a], 3.0, 1200.0));
      }
    }
    PrintServedTable("Figure 13(a): served orders vs n",
                     {"approach", "1K", "2K", "3K", "4K", "5K"}, results);
  }
  {  // (b) vary t_c
    Experiment exp(scale, scale.Count(3000), 120.0);
    std::vector<std::vector<SimResult>> results(kApproaches.size());
    std::vector<std::string> header = {"approach"};
    for (double tc : {5.0, 10.0, 20.0, 40.0, 80.0}) {
      header.push_back(StrFormat("%.0fm", tc));
      for (size_t a = 0; a < kApproaches.size(); ++a) {
        results[a].push_back(
            exp.RunApproach(kApproaches[a], 3.0, tc * 60.0));
      }
    }
    PrintServedTable("Figure 13(b): served orders vs t_c", header, results);
  }
  {  // (c) vary Δ
    Experiment exp(scale, scale.Count(3000), 120.0);
    std::vector<std::vector<SimResult>> results(kApproaches.size());
    std::vector<std::string> header = {"approach"};
    for (double delta : {3.0, 5.0, 10.0, 20.0, 30.0}) {
      header.push_back(StrFormat("%.0fs", delta));
      for (size_t a = 0; a < kApproaches.size(); ++a) {
        results[a].push_back(exp.RunApproach(kApproaches[a], delta, 1200.0));
      }
    }
    PrintServedTable("Figure 13(c): served orders vs Δ", header, results);
  }
  {  // (d) vary τ
    std::vector<std::vector<SimResult>> results(kApproaches.size());
    std::vector<std::string> header = {"approach"};
    for (double tau : {60.0, 120.0, 180.0, 240.0, 300.0}) {
      header.push_back(StrFormat("%.0fs", tau));
      Experiment exp(scale, scale.Count(3000), tau);
      for (size_t a = 0; a < kApproaches.size(); ++a) {
        results[a].push_back(exp.RunApproach(kApproaches[a], 3.0, 1200.0));
      }
    }
    PrintServedTable("Figure 13(d): served orders vs τ", header, results);
  }
  return 0;
}
