// Micro-benchmark of the region-sharded parallel dispatch pipeline:
// serial vs. sharded per-batch latency for IRG / LS / SHORT on one
// synthetic NYC-scale batch, swept over thread counts — plus an
// engine-phase section that drives the staged engine over a synthetic
// day-slice and times batch *construction* (incremental snapshots +
// shard-parallel materialisation) separately from dispatch, via the
// engine's SimResult::batch_build_seconds series.
//
// Emits BENCH_pipeline.json (override the path with MRVD_BENCH_JSON) with
// one record per (dispatcher, threads): median per-batch milliseconds and
// speedup over the serial run, and one engine record per (dispatcher,
// threads) with mean construction/dispatch milliseconds. Every sharded run
// is also checked for bit-identical output against the serial baseline
// (assignments per batch, SimResult aggregates per run), so the bench
// doubles as a large-scale equivalence harness.
//
// Scale knobs (env):
//   MRVD_BENCH_RIDERS         riders in the batch        (default 1200)
//   MRVD_BENCH_DRIVERS        drivers in the batch       (default 900)
//   MRVD_BENCH_REPS           timed repetitions          (default 5)
//   MRVD_BENCH_THREADS        max threads swept          (default 8)
//   MRVD_BENCH_ENGINE_ORDERS  engine-phase orders/day    (default 20000)
//   MRVD_BENCH_ENGINE_DRIVERS engine-phase fleet size    (default 150)
//   MRVD_BENCH_ENGINE_HOURS   engine-phase horizon hours (default 2)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatchers.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

int EnvInt(const char* name, int fallback, int min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int parsed = std::atoi(v);  // non-numeric -> 0 -> clamped
  return parsed < min_value ? min_value : parsed;
}

/// One synthetic batch at NYC scale: Zipf-skewed pickups over the 16x16
/// grid (the Manhattan-core concentration of Fig. 5) and gravity-style
/// dropoffs, fully deterministic from the seed.
std::unique_ptr<BatchContext> MakeBatch(const Grid& grid,
                                        const TravelCostModel& cost,
                                        int num_riders, int num_drivers,
                                        uint64_t seed) {
  auto ctx = std::make_unique<BatchContext>(
      /*now=*/3600.0, /*window=*/1200.0, /*beta=*/0.02, grid, cost,
      CandidateMode::kRingExpand);
  Rng rng(seed);
  ZipfTable hotspots(grid.num_regions(), /*s=*/0.9);
  auto point_in = [&](RegionId region) {
    BoundingBox cell = grid.CellBox(region);
    return LatLon{rng.Uniform(cell.lat_min, cell.lat_max),
                  rng.Uniform(cell.lon_min, cell.lon_max)};
  };
  for (int i = 0; i < num_riders; ++i) {
    WaitingRider r;
    r.order_id = i;
    r.pickup = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    r.dropoff = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    r.request_time = 3600.0 - rng.Uniform(0.0, 120.0);
    r.pickup_deadline = 3600.0 + rng.Uniform(120.0, 600.0);
    r.trip_seconds = cost.TravelSeconds(r.pickup, r.dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid.RegionOf(r.pickup);
    r.dropoff_region = grid.RegionOf(r.dropoff);
    ctx->AddRider(r);
  }
  for (int j = 0; j < num_drivers; ++j) {
    AvailableDriver d;
    d.driver_id = j;
    d.location = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    d.region = grid.RegionOf(d.location);
    d.available_since = 3600.0 - rng.Uniform(0.0, 300.0);
    ctx->AddDriver(d);
  }
  std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
  for (const auto& r : ctx->riders()) {
    ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
  }
  for (const auto& d : ctx->drivers()) {
    ++snaps[static_cast<size_t>(d.region)].available_drivers;
  }
  for (auto& s : snaps) {
    s.predicted_riders = rng.Uniform(0.0, 40.0);
    s.predicted_drivers = rng.Uniform(0.0, 15.0);
  }
  ctx->SetSnapshots(std::move(snaps));
  return ctx;
}

struct Record {
  std::string dispatcher;
  int threads;
  double median_ms;
  double speedup;
  bool identical;
};

/// Engine-phase record: per-batch construction vs. dispatch time through
/// the staged engine on one synthetic day-slice.
struct EngineRecord {
  std::string dispatcher;
  int threads;
  double build_ms_mean;
  double build_ms_max;
  double dispatch_ms_mean;
  int64_t num_batches;
  bool identical;
};

double MedianMs(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Serial-vs-sharded SimResult equivalence (the bit-exact aggregates).
bool SameResult(const SimResult& a, const SimResult& b) {
  return a.served_orders == b.served_orders &&
         a.reneged_orders == b.reneged_orders &&
         a.total_revenue == b.total_revenue &&
         a.num_batches == b.num_batches &&
         a.served_wait_seconds.mean() == b.served_wait_seconds.mean() &&
         a.driver_idle_seconds.mean() == b.driver_idle_seconds.mean();
}

}  // namespace

int Main() {
  const int num_riders = EnvInt("MRVD_BENCH_RIDERS", 1200, 0);
  const int num_drivers = EnvInt("MRVD_BENCH_DRIVERS", 900, 0);
  const int reps = EnvInt("MRVD_BENCH_REPS", 5, 1);
  const int max_threads = EnvInt("MRVD_BENCH_THREADS", 8, 1);
  const uint64_t seed = 20190417;

  Grid grid = MakeNycGrid16x16();
  StraightLineCostModel cost(7.0, 1.3);

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::printf("pipeline micro-bench: %d riders, %d drivers, %d reps\n",
              num_riders, num_drivers, reps);
  std::printf("%-10s %8s %12s %9s %10s\n", "dispatcher", "threads",
              "ms/batch", "speedup", "identical");

  std::vector<Record> records;
  for (const char* name : {"IRG", "LS", "SHORT"}) {
    double serial_ms = 0.0;
    std::vector<Assignment> serial_out;
    for (int threads : thread_counts) {
      // Pool and partitioner are built once and reused across reps — the
      // same lifecycle Simulator::Run gives them across batches.
      std::unique_ptr<ThreadPool> pool;
      std::unique_ptr<RegionPartitioner> parts;
      BatchExecution exec;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
        parts = std::make_unique<RegionPartitioner>(
            RegionPartitioner::RowBands(grid, 2 * threads));
        exec.pool = pool.get();
        exec.partitioner = parts.get();
      }
      std::vector<double> ms;
      std::vector<Assignment> out;
      for (int rep = 0; rep < reps; ++rep) {
        // Fresh context per rep: the ET memo table must start cold, as it
        // does for every batch of a real run.
        auto ctx = MakeBatch(grid, cost, num_riders, num_drivers, seed);
        if (pool != nullptr) ctx->SetExecution(&exec);
        auto dispatcher = MakeDispatcherByName(name);
        out.clear();
        Stopwatch watch;
        dispatcher->Dispatch(*ctx, &out);
        ms.push_back(watch.ElapsedSeconds() * 1e3);
      }
      double median = MedianMs(ms);
      bool identical = true;
      if (threads == 1) {
        serial_ms = median;
        serial_out = out;
      } else {
        identical = out.size() == serial_out.size();
        for (size_t i = 0; identical && i < out.size(); ++i) {
          identical = out[i].rider_index == serial_out[i].rider_index &&
                      out[i].driver_index == serial_out[i].driver_index;
        }
      }
      Record rec{name, threads, median, serial_ms / median, identical};
      records.push_back(rec);
      std::printf("%-10s %8d %12.2f %8.2fx %10s\n", name, threads, median,
                  rec.speedup, identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: %s diverged from serial at %d threads\n", name,
                     threads);
        return 1;
      }
    }
  }

  // ---- Engine phase: batch construction vs. dispatch through the staged
  // engine on a synthetic day-slice. Construction time covers the
  // incremental snapshot assembly plus the (shard-parallel) rider/driver
  // materialisation and shard-index build; dispatch time is the
  // dispatcher's Dispatch() call. Sharded runs must reproduce the serial
  // SimResult bit-for-bit.
  const int engine_orders = EnvInt("MRVD_BENCH_ENGINE_ORDERS", 20000, 0);
  const int engine_drivers = EnvInt("MRVD_BENCH_ENGINE_DRIVERS", 150, 1);
  const int engine_hours = EnvInt("MRVD_BENCH_ENGINE_HOURS", 2, 1);

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = static_cast<double>(engine_orders);
  gen_cfg.seed = seed;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/1, engine_drivers);
  StraightLineCostModel engine_cost(7.0, 1.3);

  std::printf(
      "\nengine phase: %zu orders, %d drivers, %dh horizon, delta=5s\n",
      day.orders.size(), engine_drivers, engine_hours);
  std::printf("%-10s %8s %12s %12s %12s %10s\n", "dispatcher", "threads",
              "build-ms", "dispatch-ms", "batches", "identical");

  std::vector<EngineRecord> engine_records;
  for (const char* name : {"IRG", "SHORT"}) {
    SimResult serial_result;
    for (int threads : thread_counts) {
      SimConfig cfg;
      cfg.horizon_seconds = engine_hours * 3600.0;
      cfg.batch_interval = 5.0;
      cfg.num_threads = threads;
      Simulator sim(cfg, day, generator.grid(), engine_cost, nullptr);
      auto dispatcher = MakeDispatcherByName(name);
      SimResult r = sim.Run(*dispatcher);
      bool identical = true;
      if (threads == 1) {
        serial_result = r;
      } else {
        identical = SameResult(serial_result, r);
      }
      EngineRecord rec{name,
                       threads,
                       r.batch_build_seconds.mean() * 1e3,
                       r.batch_build_seconds.max() * 1e3,
                       r.batch_seconds.mean() * 1e3,
                       r.num_batches,
                       identical};
      engine_records.push_back(rec);
      std::printf("%-10s %8d %12.4f %12.4f %12lld %10s\n", name, threads,
                  rec.build_ms_mean, rec.dispatch_ms_mean,
                  static_cast<long long>(rec.num_batches),
                  identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: %s engine run diverged from serial at %d "
                     "threads\n",
                     name, threads);
        return 1;
      }
    }
  }

  const char* json_path = std::getenv("MRVD_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_pipeline.json";
  std::ofstream json(path);
  json << "{\n"
       << "  \"bench\": \"micro_pipeline\",\n"
       << "  \"grid\": \"16x16\",\n"
       << "  \"riders\": " << num_riders << ",\n"
       << "  \"drivers\": " << num_drivers << ",\n"
       << "  \"reps\": " << reps << ",\n"
       // The box's hardware concurrency, embedded so bench diffs across
       // machines stay comparable (a 1-core run cannot show speedups).
       << "  \"hardware_concurrency\": " << ThreadPool::HardwareThreads()
       << ",\n"
       << "  \"results\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    json << "    {\"dispatcher\": \"" << r.dispatcher
         << "\", \"threads\": " << r.threads << ", \"ms_per_batch\": "
         << r.median_ms << ", \"speedup\": " << r.speedup
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"engine\": {\n"
       << "    \"orders\": " << day.orders.size() << ",\n"
       << "    \"drivers\": " << engine_drivers << ",\n"
       << "    \"horizon_hours\": " << engine_hours << ",\n"
       << "    \"batch_interval_s\": 5,\n"
       << "    \"results\": [\n";
  for (size_t i = 0; i < engine_records.size(); ++i) {
    const EngineRecord& r = engine_records[i];
    json << "      {\"dispatcher\": \"" << r.dispatcher
         << "\", \"threads\": " << r.threads
         << ", \"build_ms_mean\": " << r.build_ms_mean
         << ", \"build_ms_max\": " << r.build_ms_max
         << ", \"dispatch_ms_mean\": " << r.dispatch_ms_mean
         << ", \"num_batches\": " << r.num_batches
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < engine_records.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";
  if (!json) {
    std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace mrvd

int main() { return mrvd::Main(); }
