// Micro-benchmark of the region-sharded parallel dispatch pipeline:
// serial vs. sharded per-batch latency for IRG / LS / SHORT on one
// synthetic NYC-scale batch, swept over thread counts — plus an
// engine-phase section that drives the staged engine over a synthetic
// day-slice and times batch *construction* (incremental snapshots +
// shard-parallel materialisation) separately from dispatch, via the
// engine's SimResult::batch_build_seconds series.
//
// Emits BENCH_pipeline.json (override the path with MRVD_BENCH_JSON) with
// one record per (dispatcher, threads): median per-batch milliseconds and
// speedup over the serial run, and one engine record per (dispatcher,
// threads) with mean construction/dispatch milliseconds. Every sharded run
// is also checked for bit-identical output against the serial baseline
// (assignments per batch, SimResult aggregates per run), so the bench
// doubles as a large-scale equivalence harness.
//
// The engine phase and the replication sweep run through the experiment
// API (SimulationBuilder + ExperimentRunner), so the bench doubles as an
// at-scale exercise of that layer; the "experiment_runner" series times an
// N-replication sweep at runner threads {1, 4} against serial. The same
// sweep is then routed through the campaign layer (CampaignRunner over a
// WorkloadCatalog spec, artifacts in a scratch dir) so the grid overhead —
// catalog build, content keys, artifact writes, manifest — is on the perf
// record, including an all-loaded resume timing; campaign cells must stay
// bit-identical to the ExperimentRunner serial baseline.
//
// Scale knobs (env):
//   MRVD_BENCH_RIDERS         riders in the batch        (default 1200)
//   MRVD_BENCH_DRIVERS        drivers in the batch       (default 900)
//   MRVD_BENCH_REPS           timed repetitions          (default 5)
//   MRVD_BENCH_THREADS        max threads swept          (default 8)
//   MRVD_BENCH_ENGINE_ORDERS  engine-phase orders/day    (default 20000)
//   MRVD_BENCH_ENGINE_DRIVERS engine-phase fleet size    (default 150)
//   MRVD_BENCH_ENGINE_HOURS   engine-phase horizon hours (default 2)
//   MRVD_BENCH_SWEEP_REPS     replication-sweep size     (default 6)
//   MRVD_BENCH_STREAM_ORDERS  streaming-phase trace size (default 200000;
//                             set 10000000 to reproduce the city-scale
//                             flat-RSS demonstration)
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/api.h"
#include "campaign/campaign.h"
#include "dispatch/dispatchers.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "telemetry/session.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/generator.h"
#include "workload/order_stream.h"

// Injected by bench/CMakeLists.txt; fall back for non-CMake compiles.
#ifndef MRVD_BUILD_TYPE
#define MRVD_BUILD_TYPE "unknown"
#endif
#ifndef MRVD_SANITIZER
#define MRVD_SANITIZER ""
#endif

namespace mrvd {
namespace {

int EnvInt(const char* name, int fallback, int min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int parsed = std::atoi(v);  // non-numeric -> 0 -> clamped
  return parsed < min_value ? min_value : parsed;
}

/// One synthetic batch at NYC scale: Zipf-skewed pickups over the 16x16
/// grid (the Manhattan-core concentration of Fig. 5) and gravity-style
/// dropoffs, fully deterministic from the seed.
std::unique_ptr<BatchContext> MakeBatch(const Grid& grid,
                                        const TravelCostModel& cost,
                                        int num_riders, int num_drivers,
                                        uint64_t seed) {
  auto ctx = std::make_unique<BatchContext>(
      /*now=*/3600.0, /*window=*/1200.0, /*beta=*/0.02, grid, cost,
      CandidateMode::kRingExpand);
  Rng rng(seed);
  ZipfTable hotspots(grid.num_regions(), /*s=*/0.9);
  auto point_in = [&](RegionId region) {
    BoundingBox cell = grid.CellBox(region);
    return LatLon{rng.Uniform(cell.lat_min, cell.lat_max),
                  rng.Uniform(cell.lon_min, cell.lon_max)};
  };
  for (int i = 0; i < num_riders; ++i) {
    WaitingRider r;
    r.order_id = i;
    r.pickup = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    r.dropoff = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    r.request_time = 3600.0 - rng.Uniform(0.0, 120.0);
    r.pickup_deadline = 3600.0 + rng.Uniform(120.0, 600.0);
    r.trip_seconds = cost.TravelSeconds(r.pickup, r.dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid.RegionOf(r.pickup);
    r.dropoff_region = grid.RegionOf(r.dropoff);
    ctx->AddRider(r);
  }
  for (int j = 0; j < num_drivers; ++j) {
    AvailableDriver d;
    d.driver_id = j;
    d.location = point_in(static_cast<RegionId>(hotspots.Sample(rng)));
    d.region = grid.RegionOf(d.location);
    d.available_since = 3600.0 - rng.Uniform(0.0, 300.0);
    ctx->AddDriver(d);
  }
  std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
  for (const auto& r : ctx->riders()) {
    ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
  }
  for (const auto& d : ctx->drivers()) {
    ++snaps[static_cast<size_t>(d.region)].available_drivers;
  }
  for (auto& s : snaps) {
    s.predicted_riders = rng.Uniform(0.0, 40.0);
    s.predicted_drivers = rng.Uniform(0.0, 15.0);
  }
  ctx->SetSnapshots(std::move(snaps));
  return ctx;
}

struct Record {
  std::string dispatcher;
  int threads;
  double median_ms;
  double speedup;
  bool identical;
};

/// Engine-phase record: per-batch construction vs. dispatch time through
/// the staged engine on one synthetic day-slice.
struct EngineRecord {
  std::string dispatcher;
  int threads;
  double build_ms_mean;
  double build_ms_max;
  double dispatch_ms_mean;
  int64_t num_batches;
  bool identical;
};

double MedianMs(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Serial-vs-sharded SimResult equivalence (the bit-exact aggregates).
bool SameResult(const SimResult& a, const SimResult& b) {
  return a.served_orders == b.served_orders &&
         a.reneged_orders == b.reneged_orders &&
         a.total_revenue == b.total_revenue &&
         a.num_batches == b.num_batches &&
         a.served_wait_seconds.mean() == b.served_wait_seconds.mean() &&
         a.driver_idle_seconds.mean() == b.driver_idle_seconds.mean();
}

}  // namespace

int Main() {
  const int num_riders = EnvInt("MRVD_BENCH_RIDERS", 1200, 0);
  const int num_drivers = EnvInt("MRVD_BENCH_DRIVERS", 900, 0);
  const int reps = EnvInt("MRVD_BENCH_REPS", 5, 1);
  const int max_threads = EnvInt("MRVD_BENCH_THREADS", 8, 1);
  const uint64_t seed = 20190417;

  Grid grid = MakeNycGrid16x16();
  StraightLineCostModel cost(7.0, 1.3);

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const char* sanitizer = MRVD_SANITIZER[0] != '\0' ? MRVD_SANITIZER : "none";
  std::printf("pipeline micro-bench: %d riders, %d drivers, %d reps "
              "(build=%s sanitizer=%s)\n",
              num_riders, num_drivers, reps, MRVD_BUILD_TYPE, sanitizer);
  std::printf("%-10s %8s %12s %9s %10s\n", "dispatcher", "threads",
              "ms/batch", "speedup", "identical");

  std::vector<Record> records;
  for (const char* name : {"IRG", "LS", "SHORT"}) {
    double serial_ms = 0.0;
    std::vector<Assignment> serial_out;
    for (int threads : thread_counts) {
      // Pool and partitioner are built once and reused across reps — the
      // same lifecycle Simulator::Run gives them across batches. The shard
      // count is routed through SimConfig::ResolveShards so the bench
      // measures exactly the partition the engine would run.
      std::unique_ptr<ThreadPool> pool;
      std::unique_ptr<RegionPartitioner> parts;
      BatchExecution exec;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
        parts = std::make_unique<RegionPartitioner>(
            RegionPartitioner::RowBands(grid,
                                        SimConfig().ResolveShards(threads)));
        exec.pool = pool.get();
        exec.partitioner = parts.get();
      }
      std::vector<double> ms;
      std::vector<Assignment> out;
      for (int rep = 0; rep < reps; ++rep) {
        // Fresh context per rep: the ET memo table must start cold, as it
        // does for every batch of a real run.
        auto ctx = MakeBatch(grid, cost, num_riders, num_drivers, seed);
        if (pool != nullptr) ctx->SetExecution(&exec);
        auto dispatcher = MakeDispatcherByName(name);
        out.clear();
        Stopwatch watch;
        dispatcher->Dispatch(*ctx, &out);
        ms.push_back(watch.ElapsedSeconds() * 1e3);
      }
      double median = MedianMs(ms);
      bool identical = true;
      if (threads == 1) {
        serial_ms = median;
        serial_out = out;
      } else {
        identical = out.size() == serial_out.size();
        for (size_t i = 0; identical && i < out.size(); ++i) {
          identical = out[i].rider_index == serial_out[i].rider_index &&
                      out[i].driver_index == serial_out[i].driver_index;
        }
      }
      Record rec{name, threads, median, serial_ms / median, identical};
      records.push_back(rec);
      std::printf("%-10s %8d %12.2f %8.2fx %10s\n", name, threads, median,
                  rec.speedup, identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: %s diverged from serial at %d threads\n", name,
                     threads);
        return 1;
      }
    }
  }

  // ---- LS parallel phase: the conflict-decomposed parallel local search
  // ("LS:parallel=1") against the sequential sweep ("LS:parallel=0") on
  // the same batch, swept over thread counts. Both paths must produce the
  // identical assignment (the decomposition commits in slot order with
  // exact revalidation), so next to the timing the series records the
  // speculation economics: proposals made per run vs. proposals the commit
  // pass had to recompute because an earlier swap dirtied a footprint
  // region. recomputed/proposals is the conflict rate — the fraction of
  // parallel work thrown away.
  struct LsRecord {
    int threads;
    double median_ms;
    double speedup;  ///< serial ("parallel=0") median over this median
    int64_t proposals;
    int64_t recomputed;
    int64_t swaps;
    bool identical;
  };
  std::printf("\nls_parallel phase: conflict-decomposed LS vs sequential\n");
  std::printf("%-14s %8s %12s %9s %10s %11s %10s\n", "variant", "threads",
              "ms/batch", "speedup", "proposals", "recomputed", "identical");

  auto run_ls = [&](const std::string& spec, BatchExecution* exec,
                    std::vector<Assignment>* out, DispatchCounters* counters) {
    std::vector<double> ms;
    for (int rep = 0; rep < reps; ++rep) {
      auto ctx = MakeBatch(grid, cost, num_riders, num_drivers, seed);
      if (exec != nullptr) ctx->SetExecution(exec);
      auto dispatcher = DispatcherRegistry::Global().Create(spec);
      if (!dispatcher.ok()) return -1.0;
      out->clear();
      Stopwatch watch;
      (*dispatcher)->Dispatch(*ctx, out);
      ms.push_back(watch.ElapsedSeconds() * 1e3);
      if (const DispatchCounters* c = (*dispatcher)->counters()) {
        *counters = *c;
      }
    }
    return MedianMs(ms);
  };

  std::vector<LsRecord> ls_records;
  std::vector<Assignment> ls_serial_out;
  DispatchCounters ls_serial_counters;
  double ls_serial_ms =
      run_ls("LS:parallel=0", nullptr, &ls_serial_out, &ls_serial_counters);
  if (ls_serial_ms < 0.0) {
    std::fprintf(stderr, "FATAL: could not create LS:parallel=0\n");
    return 1;
  }
  std::printf("%-14s %8d %12.2f %9s %10lld %11lld %10s\n", "LS:parallel=0",
              1, ls_serial_ms, "1.00x",
              static_cast<long long>(ls_serial_counters.proposals),
              static_cast<long long>(ls_serial_counters.proposals_recomputed),
              "base");
  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<RegionPartitioner> parts;
    BatchExecution exec;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      parts = std::make_unique<RegionPartitioner>(
          RegionPartitioner::RowBands(grid,
                                      SimConfig().ResolveShards(threads)));
      exec.pool = pool.get();
      exec.partitioner = parts.get();
    }
    std::vector<Assignment> out;
    DispatchCounters counters;
    double median = run_ls("LS:parallel=1", pool != nullptr ? &exec : nullptr,
                           &out, &counters);
    if (median < 0.0) {
      std::fprintf(stderr, "FATAL: could not create LS:parallel=1\n");
      return 1;
    }
    bool identical = out.size() == ls_serial_out.size() &&
                     counters.sweeps == ls_serial_counters.sweeps &&
                     counters.swaps_applied == ls_serial_counters.swaps_applied;
    for (size_t i = 0; identical && i < out.size(); ++i) {
      identical = out[i].rider_index == ls_serial_out[i].rider_index &&
                  out[i].driver_index == ls_serial_out[i].driver_index;
    }
    LsRecord rec{threads,
                 median,
                 ls_serial_ms / median,
                 counters.proposals,
                 counters.proposals_recomputed,
                 counters.swaps_applied,
                 identical};
    ls_records.push_back(rec);
    std::printf("%-14s %8d %12.2f %8.2fx %10lld %11lld %10s\n",
                "LS:parallel=1", threads, median, rec.speedup,
                static_cast<long long>(rec.proposals),
                static_cast<long long>(rec.recomputed),
                identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: parallel LS diverged from sequential LS at %d "
                   "threads\n",
                   threads);
      return 1;
    }
  }

  // ---- Engine phase: batch construction vs. dispatch through the staged
  // engine on a synthetic day-slice, expressed as an ExperimentRunner sweep
  // (one RunSpec per dispatcher × thread count, runner itself serial so the
  // per-batch timings stay clean). Construction time covers the incremental
  // snapshot assembly plus the (shard-parallel) rider/driver
  // materialisation and shard-index build; dispatch time is the
  // dispatcher's Dispatch() call. Sharded runs must reproduce the serial
  // SimResult bit-for-bit.
  const int engine_orders = EnvInt("MRVD_BENCH_ENGINE_ORDERS", 20000, 0);
  const int engine_drivers = EnvInt("MRVD_BENCH_ENGINE_DRIVERS", 150, 1);
  const int engine_hours = EnvInt("MRVD_BENCH_ENGINE_HOURS", 2, 1);

  GeneratorConfig gen_cfg;
  gen_cfg.orders_per_day = static_cast<double>(engine_orders);
  gen_cfg.seed = seed;
  NycLikeGenerator generator(gen_cfg);
  Workload day = generator.GenerateDay(/*day_index=*/1, engine_drivers);
  StraightLineCostModel engine_cost(7.0, 1.3);

  SimConfig engine_cfg;
  engine_cfg.horizon_seconds = engine_hours * 3600.0;
  engine_cfg.batch_interval = 5.0;
  StatusOr<Simulation> engine_sim = SimulationBuilder()
                                        .BorrowWorkload(day, generator.grid())
                                        .WithTravelModel(engine_cost)
                                        .WithConfig(engine_cfg)
                                        .Build();
  if (!engine_sim.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 engine_sim.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\nengine phase: %zu orders, %d drivers, %dh horizon, delta=5s\n",
      day.orders.size(), engine_drivers, engine_hours);
  std::printf("%-10s %8s %12s %12s %12s %10s\n", "dispatcher", "threads",
              "build-ms", "dispatch-ms", "batches", "identical");

  const std::vector<std::string> engine_names{"IRG", "SHORT"};
  std::vector<RunSpec> engine_specs;
  for (const std::string& name : engine_names) {
    for (int threads : thread_counts) {
      RunSpec spec(name, name + "@" + std::to_string(threads));
      SimConfig cfg = engine_cfg;
      cfg.num_threads = threads;
      spec.config = cfg;
      engine_specs.push_back(std::move(spec));
    }
  }
  ExperimentRunner engine_runner(*engine_sim, /*num_threads=*/1);
  StatusOr<std::vector<RunResult>> engine_runs =
      engine_runner.RunAll(engine_specs);
  if (!engine_runs.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 engine_runs.status().ToString().c_str());
    return 1;
  }

  std::vector<EngineRecord> engine_records;
  for (size_t n = 0; n < engine_names.size(); ++n) {
    const SimResult* serial_result = nullptr;
    for (size_t t = 0; t < thread_counts.size(); ++t) {
      const RunResult& run =
          (*engine_runs)[n * thread_counts.size() + t];
      const SimResult& r = run.result;
      bool identical = true;
      if (thread_counts[t] == 1) {
        serial_result = &r;
      } else {
        identical = SameResult(*serial_result, r);
      }
      EngineRecord rec{engine_names[n],
                       thread_counts[t],
                       r.batch_build_seconds.mean() * 1e3,
                       r.batch_build_seconds.max() * 1e3,
                       r.batch_seconds.mean() * 1e3,
                       r.num_batches,
                       identical};
      engine_records.push_back(rec);
      std::printf("%-10s %8d %12.4f %12.4f %12lld %10s\n",
                  engine_names[n].c_str(), thread_counts[t],
                  rec.build_ms_mean, rec.dispatch_ms_mean,
                  static_cast<long long>(rec.num_batches),
                  identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: %s engine run diverged from serial at %d "
                     "threads\n",
                     engine_names[n].c_str(), thread_counts[t]);
        return 1;
      }
    }
  }

  // ---- Shard-balance phase: static vs load-aware adaptive row-band
  // sharding on a skewed-demand day (a rush-hour surge funnelling ~70% of
  // the window's arrivals into the top three grid rows, via the nyc-skew
  // catalog entry). For every thread count both modes must reproduce the
  // serial SimResult bit-for-bit — the partition never affects results,
  // only which worker does the work — while the per-shard telemetry
  // (DispatchCounters → SimResult) shows the imbalance the repartitioning
  // closes. On a 1-core box parity is the expected outcome; speedups need
  // real cores (see hardware_concurrency).
  struct ShardBalanceRecord {
    std::string mode;  ///< "static" | "adaptive"
    int threads;
    double ms_per_batch;
    double vs_static;  ///< static ms over this ms at the same thread count
    double size_imbalance;  ///< mean max/mean per-shard rider count
    double time_imbalance;  ///< mean max/mean per-shard wall time
    int64_t repartitions;
    bool identical;
  };
  const std::string skew_spec =
      "nyc-skew:orders=" + std::to_string(engine_orders) +
      ",drivers=" + std::to_string(engine_drivers) +
      ",speed_mps=7,batch_interval=5,horizon_hours=" +
      std::to_string(engine_hours) +
      ",surge_start_hour=0.5,surge_end_hour=1.5";
  StatusOr<Simulation> skew_sim = WorkloadCatalog::Global().Build(skew_spec);
  if (!skew_sim.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", skew_sim.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshard_balance phase: skewed demand (%s)\n", skew_spec.c_str());
  std::printf("%-10s %8s %12s %10s %9s %9s %7s %10s\n", "mode", "threads",
              "ms/batch", "vs-static", "size-imb", "time-imb", "repart",
              "identical");

  std::vector<RunSpec> skew_specs;
  for (const char* mode : {"static", "adaptive"}) {
    for (int threads : thread_counts) {
      RunSpec spec("IRG",
                   std::string(mode) + "@" + std::to_string(threads));
      SimConfig cfg = skew_sim->config();
      cfg.num_threads = threads;
      cfg.adaptive_sharding = mode == std::string("adaptive");
      spec.config = cfg;
      skew_specs.push_back(std::move(spec));
    }
  }
  ExperimentRunner skew_runner(*skew_sim, /*num_threads=*/1);
  StatusOr<std::vector<RunResult>> skew_runs = skew_runner.RunAll(skew_specs);
  if (!skew_runs.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", skew_runs.status().ToString().c_str());
    return 1;
  }
  std::vector<ShardBalanceRecord> shard_records;
  const SimResult& skew_serial = (*skew_runs)[0].result;  // static@1
  for (size_t i = 0; i < skew_runs->size(); ++i) {
    const bool adaptive = i >= thread_counts.size();
    const size_t t = i % thread_counts.size();
    const SimResult& r = (*skew_runs)[i].result;
    const double static_ms =
        shard_records.empty() ? 0.0
                              : shard_records[t].ms_per_batch;
    ShardBalanceRecord rec{adaptive ? "adaptive" : "static",
                           thread_counts[t],
                           r.batch_seconds.mean() * 1e3,
                           adaptive ? static_ms / (r.batch_seconds.mean() *
                                                   1e3)
                                    : 1.0,
                           r.shard_size_imbalance.mean(),
                           r.shard_time_imbalance.mean(),
                           r.repartitions,
                           i == 0 || SameResult(skew_serial, r)};
    shard_records.push_back(rec);
    std::printf("%-10s %8d %12.2f %9.2fx %9.2f %9.2f %7lld %10s\n",
                rec.mode.c_str(), rec.threads, rec.ms_per_batch,
                rec.vs_static, rec.size_imbalance, rec.time_imbalance,
                static_cast<long long>(rec.repartitions),
                rec.identical ? "yes" : "NO");
    if (!rec.identical) {
      std::fprintf(stderr,
                   "FATAL: %s sharding diverged from serial at %d threads\n",
                   rec.mode.c_str(), rec.threads);
      return 1;
    }
  }

  // ---- ExperimentRunner phase: wall-clock of an N-replication sweep
  // (RAND:seed=i over a one-hour slice) executed serially vs. on runner
  // threads {4}. Replications are independent runs, so the sweep must be
  // bit-identical at every thread count; speedup requires real cores.
  const int sweep_reps = EnvInt("MRVD_BENCH_SWEEP_REPS", 6, 1);
  SimConfig sweep_cfg = engine_cfg;
  sweep_cfg.horizon_seconds = 3600.0;
  std::vector<RunSpec> sweep_specs;
  for (int i = 0; i < sweep_reps; ++i) {
    RunSpec spec("RAND", "RAND#" + std::to_string(i + 1));
    spec.config = sweep_cfg;
    spec.replication_seed = static_cast<uint64_t>(i + 1);
    sweep_specs.push_back(std::move(spec));
  }

  struct SweepRecord {
    int runner_threads;
    double wall_seconds;
    double speedup;
    bool identical;
  };
  std::printf("\nexperiment_runner phase: %d replications, 1h slice\n",
              sweep_reps);
  std::printf("%8s %12s %9s %10s\n", "threads", "wall-s", "speedup",
              "identical");
  std::vector<SweepRecord> sweep_records;
  std::vector<RunResult> sweep_serial;
  for (int runner_threads : {1, 4}) {
    ExperimentRunner sweep_runner(*engine_sim, runner_threads);
    Stopwatch sweep_watch;
    StatusOr<std::vector<RunResult>> sweep_runs =
        sweep_runner.RunAll(sweep_specs);
    double wall = sweep_watch.ElapsedSeconds();
    if (!sweep_runs.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   sweep_runs.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (runner_threads == 1) {
      sweep_serial = std::move(sweep_runs).value();
    } else {
      for (size_t i = 0; identical && i < sweep_serial.size(); ++i) {
        identical = SameResult(sweep_serial[i].result,
                               (*sweep_runs)[i].result);
      }
    }
    SweepRecord rec{runner_threads, wall,
                    sweep_records.empty()
                        ? 1.0
                        : sweep_records.front().wall_seconds / wall,
                    identical};
    sweep_records.push_back(rec);
    std::printf("%8d %12.3f %8.2fx %10s\n", rec.runner_threads,
                rec.wall_seconds, rec.speedup,
                identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: replication sweep diverged at %d runner threads\n",
                   runner_threads);
      return 1;
    }
  }

  // ---- Campaign phase: the identical replication sweep expressed as a
  // one-workload campaign grid (RAND x seeds) through CampaignRunner, so
  // the grid layer's overhead — catalog Simulation build, key hashing,
  // per-run artifact writes, manifest — lands on the perf record next to
  // the bare ExperimentRunner numbers. A final Resume() times the
  // all-loaded path (pure artifact reads, no simulation).
  struct CampaignRecord {
    std::string mode;  ///< "run@1", "run@4", "resume"
    double wall_seconds;
    int64_t executed;
    int64_t loaded;
    bool identical;
  };
  CampaignSpec campaign_spec;
  campaign_spec.name = "bench_micro_pipeline";
  campaign_spec.workloads = {
      "nyc:orders=" + std::to_string(engine_orders) +
      ",drivers=" + std::to_string(engine_drivers) +
      ",grid_rows=16,grid_cols=16,oracle=0,speed_mps=7"
      ",batch_interval=5,horizon_hours=1"};
  campaign_spec.dispatchers = {"RAND"};
  for (int i = 0; i < sweep_reps; ++i) {
    campaign_spec.seeds.push_back(static_cast<uint64_t>(i + 1));
  }
  // PID-suffixed scratch dir: concurrent bench invocations (parallel CI
  // jobs on one box) must not remove_all each other's in-flight artifacts.
  const std::string campaign_dir =
      (std::filesystem::temp_directory_path() /
       ("mrvd_bench_campaign_" + std::to_string(getpid())))
          .string();

  std::printf("\ncampaign phase: same sweep through the campaign layer\n");
  std::printf("%8s %12s %9s %9s %10s\n", "mode", "wall-s", "executed",
              "loaded", "identical");
  std::vector<CampaignRecord> campaign_records;
  auto check_campaign = [&](const char* mode, const CampaignReport& report,
                            double wall) -> bool {
    bool identical = report.failed == 0 &&
                     report.cells.size() == sweep_serial.size();
    for (size_t i = 0; identical && i < report.cells.size(); ++i) {
      const CellOutcome& outcome = report.cells[i];
      if (outcome.live.has_value()) {
        identical = SameResult(sweep_serial[i].result, outcome.live->result);
      } else {
        // Loaded cells carry headline aggregates only; check those.
        identical =
            outcome.artifact.served == sweep_serial[i].result.served_orders &&
            outcome.artifact.revenue == sweep_serial[i].result.total_revenue;
      }
    }
    campaign_records.push_back({mode, wall, report.executed, report.loaded,
                                identical});
    std::printf("%8s %12.3f %9lld %9lld %10s\n", mode, wall,
                (long long)report.executed, (long long)report.loaded,
                identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "FATAL: campaign %s diverged from the serial "
                           "sweep\n", mode);
    }
    return identical;
  };
  for (int campaign_threads : {1, 4}) {
    std::filesystem::remove_all(campaign_dir);
    CampaignRunner campaign_runner(campaign_spec, campaign_dir);
    CampaignOptions campaign_options;
    campaign_options.num_threads = campaign_threads;
    Stopwatch campaign_watch;
    StatusOr<CampaignReport> report = campaign_runner.Run(campaign_options);
    double wall = campaign_watch.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::string mode = "run@" + std::to_string(campaign_threads);
    if (!check_campaign(mode.c_str(), *report, wall)) return 1;
  }
  {
    // Resume over the complete artifact dir: every cell loads, nothing runs.
    CampaignRunner campaign_runner(campaign_spec, campaign_dir);
    Stopwatch campaign_watch;
    StatusOr<CampaignReport> report = campaign_runner.Resume();
    double wall = campaign_watch.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", report.status().ToString().c_str());
      return 1;
    }
    if (report->executed != 0) {
      std::fprintf(stderr, "FATAL: resume re-executed %lld completed cells\n",
                   (long long)report->executed);
      return 1;
    }
    if (!check_campaign("resume", *report, wall)) return 1;
  }
  std::filesystem::remove_all(campaign_dir);

  // ---- Telemetry overhead phase: the serial engine run with (a) no
  // session attached — the arm every run without WithTelemetry takes,
  // where each instrumentation site degrades to a null-pointer check —
  // (b) a metrics-only synchronous session, and (c) full tracing through
  // the async drainer. All arms must produce the identical SimResult, and
  // the instrumented arms must agree on the deterministic metric
  // signature; the overhead ratios land on the perf record (expected:
  // metrics ~1.00, tracing < 1.05) without a hard wall-clock gate — a
  // timing assert on a loaded CI box would flake.
  struct TelemetryRecord {
    std::string mode;  ///< "off" | "metrics" | "trace_async"
    double median_wall_s;
    double overhead;  ///< median over the off arm's median
    int64_t drained_events;
    bool identical;
  };
  std::printf("\ntelemetry_overhead phase: NEAR serial, %d reps\n", reps);
  std::printf("%-12s %12s %10s %12s %10s\n", "mode", "wall-s", "overhead",
              "spans", "identical");
  std::vector<TelemetryRecord> telemetry_records;
  SimResult telemetry_baseline;
  std::string telemetry_signature;
  for (const char* mode : {"off", "metrics", "trace_async"}) {
    const bool off = mode == std::string("off");
    const bool trace = mode == std::string("trace_async");
    std::vector<double> wall;
    SimResult last;
    int64_t drained = 0;
    std::string signature;
    for (int rep = 0; rep < reps; ++rep) {
      std::optional<telemetry::TelemetrySession> session;
      SimConfig cfg = engine_cfg;
      if (!off) {
        telemetry::TelemetryConfig tcfg;
        tcfg.tracing = trace;
        tcfg.async_drain = trace;
        session.emplace(tcfg);
        cfg.telemetry = &*session;
      }
      auto near = MakeDispatcherByName("NEAR");
      Stopwatch watch;
      StatusOr<SimResult> run =
          engine_sim->RunWith(cfg, *near, /*scenario=*/nullptr);
      wall.push_back(watch.ElapsedSeconds());
      if (!run.ok()) {
        std::fprintf(stderr, "FATAL: %s\n", run.status().ToString().c_str());
        return 1;
      }
      last = *run;
      if (session.has_value()) {
        session->Finish();
        drained = session->drained_events();
        signature = session->metrics().DeterministicSignature();
      }
    }
    double median_wall = MedianMs(wall);  // sorts in place; unit-agnostic
    bool identical = true;
    if (off) {
      telemetry_baseline = last;
    } else {
      identical = SameResult(telemetry_baseline, last);
      if (telemetry_signature.empty()) {
        telemetry_signature = signature;
      } else {
        identical = identical && signature == telemetry_signature;
      }
    }
    TelemetryRecord rec{
        mode, median_wall,
        telemetry_records.empty()
            ? 1.0
            : median_wall / telemetry_records.front().median_wall_s,
        drained, identical};
    telemetry_records.push_back(rec);
    std::printf("%-12s %12.3f %9.2fx %12lld %10s\n", mode, rec.median_wall_s,
                rec.overhead, static_cast<long long>(rec.drained_events),
                identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: telemetry arm %s changed the simulation result "
                   "or metric signature\n",
                   mode);
      return 1;
    }
  }

  // ---- Streaming phase: the binary order-trace ingestion path. A
  // synthetic multi-day trace is written record-at-a-time through
  // OrderStreamWriter (the writer itself is O(1) memory), then consumed
  // three ways: header-only startup (OrderStreamReader::Open), a pure
  // drain (Peek/Pop to exhaustion, no simulation — the raw ingest rate),
  // and a full NEAR serial run via SimulationBuilder::StreamTrace. The
  // streamed arms run at two sizes, N/10 and N, BEFORE the materialised
  // arm: ru_maxrss is process-lifetime-monotone, so flat peak RSS across a
  // 10x trace-size jump is only demonstrable while the full day has never
  // been resident. The materialised arm (ReadOrderTrace + WithWorkload on
  // the same N-order trace, same config) then pushes RSS linearly and must
  // reproduce the streamed SimResult bit-for-bit.
  struct StreamRecord {
    std::string mode;  ///< "streamed" | "materialised"
    int64_t orders;
    int64_t input_bytes;
    double startup_ms;  ///< Open() (header + fleet) vs full ReadOrderTrace
    double drain_orders_per_sec;  ///< streamed arms only (0 otherwise)
    double wall_seconds;          ///< NEAR serial run
    int64_t peak_rss_kb;          ///< ru_maxrss after the arm (monotone)
    bool identical;  ///< materialised arm vs streamed run of the same trace
  };
  const int stream_orders = EnvInt("MRVD_BENCH_STREAM_ORDERS", 200000, 1000);
  const int stream_drivers = 120;
  const double stream_rate = 25.0;  ///< arrivals per second of sim time

  auto peak_rss_kb = []() -> int64_t {
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<int64_t>(usage.ru_maxrss);  // KiB on Linux
  };
  auto write_stream_trace = [&](const std::string& path,
                                int64_t n) -> Status {
    StatusOr<std::unique_ptr<OrderStreamWriter>> writer =
        OrderStreamWriter::Create(path, /*horizon_seconds=*/0.0);
    MRVD_RETURN_NOT_OK(writer.status());
    Rng rng(seed);
    auto point = [&]() {
      return LatLon{rng.Uniform(kNycBoundingBox.lat_min,
                                kNycBoundingBox.lat_max),
                    rng.Uniform(kNycBoundingBox.lon_min,
                                kNycBoundingBox.lon_max)};
    };
    for (int j = 0; j < stream_drivers; ++j) {
      MRVD_RETURN_NOT_OK((*writer)->AddDriver(DriverSpec{j, point(), 0.0}));
    }
    for (int64_t i = 0; i < n; ++i) {
      Order o;
      o.id = i;
      o.request_time = static_cast<double>(i) / stream_rate;
      o.pickup = point();
      o.dropoff = point();
      o.pickup_deadline = o.request_time + 120.0 + rng.Uniform(0.0, 60.0);
      MRVD_RETURN_NOT_OK((*writer)->AddOrder(o));
    }
    return (*writer)->Finish();
  };

  std::printf("\nstreaming phase: binary trace, NEAR serial, %d drivers\n",
              stream_drivers);
  std::printf("%-13s %10s %12s %10s %12s %10s %12s %10s\n", "mode", "orders",
              "bytes", "open-ms", "drain-o/s", "wall-s", "rss-kb",
              "identical");
  std::vector<StreamRecord> stream_records;
  SimResult stream_full_result;  ///< streamed run of the N-order trace
  const std::string trace_dir =
      (std::filesystem::temp_directory_path() /
       ("mrvd_bench_stream_" + std::to_string(getpid())))
          .string();
  std::filesystem::create_directories(trace_dir);
  for (int64_t n : {static_cast<int64_t>(stream_orders) / 10,
                    static_cast<int64_t>(stream_orders)}) {
    const std::string trace_path =
        trace_dir + "/trace_" + std::to_string(n) + ".bin";
    if (Status st = write_stream_trace(trace_path, n); !st.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
      return 1;
    }

    // Startup: header + fleet only, independent of trace length.
    Stopwatch open_watch;
    StatusOr<std::unique_ptr<OrderStreamReader>> reader =
        OrderStreamReader::Open(trace_path);
    double open_ms = open_watch.ElapsedSeconds() * 1e3;
    if (!reader.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    const int64_t input_bytes = (*reader)->info().file_bytes;

    // Pure drain: the raw buffered-decode rate with no simulation on top.
    Stopwatch drain_watch;
    while ((*reader)->Peek() != nullptr) (*reader)->Pop();
    double drain_s = drain_watch.ElapsedSeconds();
    if (!(*reader)->status().ok() || (*reader)->consumed() != n) {
      std::fprintf(stderr, "FATAL: drain stopped at %lld/%lld: %s\n",
                   (long long)(*reader)->consumed(), (long long)n,
                   (*reader)->status().ToString().c_str());
      return 1;
    }

    SimConfig stream_cfg;
    stream_cfg.horizon_seconds = (*reader)->info().horizon_seconds;
    stream_cfg.batch_interval = 60.0;
    StatusOr<Simulation> stream_sim = SimulationBuilder()
                                          .StreamTrace(trace_path, grid)
                                          .WithTravelModel(engine_cost)
                                          .WithConfig(stream_cfg)
                                          .Build();
    if (!stream_sim.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   stream_sim.status().ToString().c_str());
      return 1;
    }
    auto near = MakeDispatcherByName("NEAR");
    Stopwatch run_watch;
    StatusOr<SimResult> run =
        stream_sim->RunWith(stream_cfg, *near, /*scenario=*/nullptr);
    double wall = run_watch.ElapsedSeconds();
    if (!run.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", run.status().ToString().c_str());
      return 1;
    }
    // Every order must have flowed through the stream into the engine
    // (the horizon covers the last deadline, so each one resolves).
    if (run->total_orders != n ||
        run->served_orders + run->reneged_orders + run->cancelled_orders !=
            n) {
      std::fprintf(stderr,
                   "FATAL: streamed run accounted for %lld of %lld orders\n",
                   (long long)(run->served_orders + run->reneged_orders +
                               run->cancelled_orders),
                   (long long)n);
      return 1;
    }
    if (n == stream_orders) stream_full_result = *run;
    StreamRecord rec{"streamed", n,    input_bytes,    open_ms,
                     n / drain_s, wall, peak_rss_kb(), true};
    stream_records.push_back(rec);
    std::printf("%-13s %10lld %12lld %10.2f %12.0f %10.2f %12lld %10s\n",
                rec.mode.c_str(), (long long)rec.orders,
                (long long)rec.input_bytes, rec.startup_ms,
                rec.drain_orders_per_sec, rec.wall_seconds,
                (long long)rec.peak_rss_kb, "-");
  }

  {
    // Materialised arm on the same N-order trace: full-day ReadOrderTrace
    // into a Workload, then the identical config/dispatcher. Must be
    // bit-identical to the streamed run — the whole point of the format.
    const std::string trace_path =
        trace_dir + "/trace_" + std::to_string(stream_orders) + ".bin";
    Stopwatch mat_watch;
    StatusOr<Workload> materialised = ReadOrderTrace(trace_path);
    double mat_ms = mat_watch.ElapsedSeconds() * 1e3;
    if (!materialised.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   materialised.status().ToString().c_str());
      return 1;
    }
    const int64_t input_bytes =
        static_cast<int64_t>(std::filesystem::file_size(trace_path));
    SimConfig stream_cfg;
    stream_cfg.horizon_seconds = materialised->horizon_seconds;
    stream_cfg.batch_interval = 60.0;
    StatusOr<Simulation> mat_sim =
        SimulationBuilder()
            .WithWorkload(std::move(materialised).value(), grid)
            .WithTravelModel(engine_cost)
            .WithConfig(stream_cfg)
            .Build();
    if (!mat_sim.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   mat_sim.status().ToString().c_str());
      return 1;
    }
    auto near = MakeDispatcherByName("NEAR");
    Stopwatch run_watch;
    StatusOr<SimResult> run =
        mat_sim->RunWith(stream_cfg, *near, /*scenario=*/nullptr);
    double wall = run_watch.ElapsedSeconds();
    if (!run.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", run.status().ToString().c_str());
      return 1;
    }
    bool identical = SameResult(stream_full_result, *run);
    StreamRecord rec{"materialised", stream_orders, input_bytes, mat_ms,
                     0.0,            wall,          peak_rss_kb(), identical};
    stream_records.push_back(rec);
    std::printf("%-13s %10lld %12lld %10.2f %12s %10.2f %12lld %10s\n",
                rec.mode.c_str(), (long long)rec.orders,
                (long long)rec.input_bytes, rec.startup_ms, "-",
                rec.wall_seconds, (long long)rec.peak_rss_kb,
                identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: streamed run diverged from the materialised run "
                   "of the same trace\n");
      return 1;
    }
  }
  std::filesystem::remove_all(trace_dir);

  const char* json_path = std::getenv("MRVD_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_pipeline.json";
  std::ofstream json(path);
  JsonWriter w(json);
  w.BeginObject();
  w.Key("bench").String("micro_pipeline");
  // Build-configuration stamp: Debug or sanitizer numbers must never be
  // diffed against Release records.
  w.Key("build_type").String(MRVD_BUILD_TYPE);
  w.Key("sanitizer").String(sanitizer);
  w.Key("grid").String("16x16");
  w.Key("riders").Number(num_riders);
  w.Key("drivers").Number(num_drivers);
  w.Key("reps").Number(reps);
  // The box's hardware concurrency, embedded so bench diffs across
  // machines stay comparable (a 1-core run cannot show speedups).
  w.Key("hardware_concurrency").Number(ThreadPool::HardwareThreads());
  w.Key("results").BeginArray();
  for (const Record& r : records) {
    w.BeginObject();
    w.Key("dispatcher").String(r.dispatcher);
    w.Key("threads").Number(r.threads);
    w.Key("ms_per_batch").Number(r.median_ms);
    w.Key("speedup").Number(r.speedup);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  // Conflict-decomposed LS vs the sequential sweep: timing plus the
  // speculation counters (conflict_rate = recomputed / proposals).
  w.Key("ls_parallel").BeginObject();
  w.Key("serial_ms_per_batch").Number(ls_serial_ms);
  w.Key("serial_proposals").Number(ls_serial_counters.proposals);
  w.Key("serial_swaps").Number(ls_serial_counters.swaps_applied);
  w.Key("results").BeginArray();
  for (const LsRecord& r : ls_records) {
    w.BeginObject();
    w.Key("threads").Number(r.threads);
    w.Key("ms_per_batch").Number(r.median_ms);
    w.Key("speedup").Number(r.speedup);
    w.Key("proposals").Number(r.proposals);
    w.Key("recomputed").Number(r.recomputed);
    w.Key("conflict_rate")
        .Number(r.proposals > 0
                    ? static_cast<double>(r.recomputed) / r.proposals
                    : 0.0);
    w.Key("swaps_applied").Number(r.swaps);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("engine").BeginObject();
  w.Key("orders").Number(static_cast<int64_t>(day.orders.size()));
  w.Key("drivers").Number(engine_drivers);
  w.Key("horizon_hours").Number(engine_hours);
  w.Key("batch_interval_s").Number(5);
  w.Key("results").BeginArray();
  for (const EngineRecord& r : engine_records) {
    w.BeginObject();
    w.Key("dispatcher").String(r.dispatcher);
    w.Key("threads").Number(r.threads);
    w.Key("build_ms_mean").Number(r.build_ms_mean);
    w.Key("build_ms_max").Number(r.build_ms_max);
    w.Key("dispatch_ms_mean").Number(r.dispatch_ms_mean);
    w.Key("num_batches").Number(r.num_batches);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // Static vs adaptive sharding on the skewed-demand scenario. A 1-core
  // baseline can only show parity (vs_static ≈ 1); regenerate on multicore
  // hardware to see the win — hence the embedded hardware_concurrency.
  w.Key("shard_balance").BeginObject();
  w.Key("workload").String(skew_spec);
  w.Key("hardware_concurrency").Number(ThreadPool::HardwareThreads());
  w.Key("results").BeginArray();
  for (const ShardBalanceRecord& r : shard_records) {
    w.BeginObject();
    w.Key("mode").String(r.mode);
    w.Key("threads").Number(r.threads);
    w.Key("ms_per_batch").Number(r.ms_per_batch);
    w.Key("vs_static").Number(r.vs_static);
    w.Key("size_imbalance").Number(r.size_imbalance);
    w.Key("time_imbalance").Number(r.time_imbalance);
    w.Key("repartitions").Number(r.repartitions);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("experiment_runner").BeginObject();
  w.Key("replications").Number(sweep_reps);
  w.Key("horizon_hours").Number(1);
  w.Key("results").BeginArray();
  for (const SweepRecord& r : sweep_records) {
    w.BeginObject();
    w.Key("runner_threads").Number(r.runner_threads);
    w.Key("wall_seconds").Number(r.wall_seconds);
    w.Key("speedup").Number(r.speedup);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  // The same sweep through the campaign layer: wall-clock includes the
  // catalog Simulation build and the artifact store (writes for run@N,
  // reads for resume). Overhead = campaign run@1 vs runner_threads=1.
  w.Key("campaign").BeginArray();
  for (const CampaignRecord& r : campaign_records) {
    w.BeginObject();
    w.Key("mode").String(r.mode);
    w.Key("wall_seconds").Number(r.wall_seconds);
    w.Key("executed").Number(r.executed);
    w.Key("loaded").Number(r.loaded);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // Telemetry overhead: the off arm has no session (each instrumentation
  // site is a null-pointer check), the instrumented arms record their
  // wall-clock ratio over it plus the spans the tracing arm drained.
  w.Key("telemetry_overhead").BeginObject();
  w.Key("reps").Number(reps);
  w.Key("results").BeginArray();
  for (const TelemetryRecord& r : telemetry_records) {
    w.BeginObject();
    w.Key("mode").String(r.mode);
    w.Key("wall_seconds").Number(r.median_wall_s);
    w.Key("overhead").Number(r.overhead);
    w.Key("drained_events").Number(r.drained_events);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // Streaming ingestion: startup / raw drain rate / full-run wall clock,
  // with ru_maxrss after each arm. The streamed arms precede the
  // materialised arm in program order, so "peak_rss_kb" flat across the
  // 10x size jump (and jumping only at the materialised arm) is the
  // O(batch)-memory demonstration; input_bytes is the on-disk trace size.
  w.Key("streaming").BeginObject();
  w.Key("drivers").Number(stream_drivers);
  w.Key("arrivals_per_sec").Number(stream_rate);
  w.Key("batch_interval_s").Number(60);
  w.Key("results").BeginArray();
  for (const StreamRecord& r : stream_records) {
    w.BeginObject();
    w.Key("mode").String(r.mode);
    w.Key("orders").Number(r.orders);
    w.Key("input_bytes").Number(r.input_bytes);
    w.Key("startup_ms").Number(r.startup_ms);
    w.Key("drain_orders_per_sec").Number(r.drain_orders_per_sec);
    w.Key("wall_seconds").Number(r.wall_seconds);
    w.Key("peak_rss_kb").Number(r.peak_rss_kb);
    w.Key("identical").Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  json << "\n";
  if (!json) {
    std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace mrvd

int main() { return mrvd::Main(); }
