// Figure 5: spatial distribution of order pickup locations from 8:00 to
// 8:45 A.M., rendered as a per-cell density map over the 16x16 grid.
#include <algorithm>
#include <cstdio>

#include "experiment_common.h"
#include "util/histogram.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 5 (scale=%.2f)\n", scale.scale);

  Experiment exp(scale, scale.Count(3000), 120.0);
  const Grid& grid = exp.grid();

  std::vector<int64_t> counts(static_cast<size_t>(grid.num_regions()), 0);
  int64_t total = 0;
  for (const Order& o : exp.workload().orders) {
    if (o.request_time >= 8 * 3600.0 && o.request_time < 8 * 3600.0 + 45 * 60) {
      ++counts[static_cast<size_t>(grid.RegionOf(o.pickup))];
      ++total;
    }
  }

  std::printf("\n== Figure 5: pickups 8:00-8:45 (%lld orders) ==\n",
              (long long)total);
  int64_t peak = 1;
  for (int64_t c : counts) peak = std::max(peak, c);
  const char* shades = " .:-=+*#%@";
  for (int row = grid.rows() - 1; row >= 0; --row) {
    for (int col = 0; col < grid.cols(); ++col) {
      int64_t c = counts[static_cast<size_t>(grid.RegionAt(row, col))];
      int shade = static_cast<int>(9.0 * static_cast<double>(c) /
                                   static_cast<double>(peak));
      std::printf("%c%c", shades[shade], shades[shade]);
    }
    std::printf("\n");
  }
  std::printf("(darker = more pickups; peak cell has %lld)\n",
              (long long)peak);

  // Top-10 cells, as a numeric cross-check.
  std::vector<std::pair<int64_t, RegionId>> ranked;
  for (RegionId r = 0; r < grid.num_regions(); ++r) {
    ranked.push_back({counts[static_cast<size_t>(r)], r});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  PrintTableHeader("Top pickup cells", {"region", "row", "col", "pickups"});
  for (int i = 0; i < 10; ++i) {
    PrintTableRow({StrFormat("%d", ranked[static_cast<size_t>(i)].second),
                   StrFormat("%d", grid.RowOf(ranked[static_cast<size_t>(i)].second)),
                   StrFormat("%d", grid.ColOf(ranked[static_cast<size_t>(i)].second)),
                   StrFormat("%lld",
                             (long long)ranked[static_cast<size_t>(i)].first)});
  }
  return 0;
}
