// Figure 10: effect of the base pickup waiting time τ (60..300 s) on total
// revenue and batch running time. Expected shape: revenue rises with τ for
// every approach (patient riders are easier to serve); LS-R slightly above
// LS-P; IRG/LS above the baselines.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 10 (scale=%.2f)\n", scale.scale);

  const std::vector<std::string> approaches = {
      "RAND", "LTG", "NEAR", "POLAR", "IRG-P", "LS-P", "LS-R"};
  const std::vector<double> taus = {60, 120, 180, 240, 300};

  std::vector<std::vector<SimResult>> results(approaches.size());
  for (double tau : taus) {
    // τ changes the workload itself (deadlines are part of the orders).
    Experiment exp(scale, scale.Count(3000), tau);
    for (size_t a = 0; a < approaches.size(); ++a) {
      results[a].push_back(exp.RunApproach(approaches[a], 3.0, 1200.0));
    }
  }

  std::vector<std::string> header = {"approach"};
  for (double tau : taus) header.push_back(StrFormat("%.0fs", tau));

  PrintTableHeader("Figure 10(a): total revenue vs τ", header);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) row.push_back(FormatRevenue(r.total_revenue));
    PrintTableRow(row);
  }

  PrintTableHeader("Figure 10(b): mean batch running time (ms) vs τ", header);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) {
      row.push_back(StrFormat("%.3f", r.batch_seconds.mean() * 1e3));
    }
    PrintTableRow(row);
  }
  return 0;
}
