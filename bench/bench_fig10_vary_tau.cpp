// Figure 10: effect of the base pickup waiting time τ (60..300 s) on total
// revenue and batch running time. Expected shape: revenue rises with τ for
// every approach (patient riders are easier to serve); the ground-truth
// forecast rows (IRG-R/LS-R) sit slightly above their DeepST counterparts;
// IRG/LS above the baselines.
//
// Ported onto the campaign subsystem following bench_fig7_vary_n: the τ
// axis is a `fig10` workload-catalog entry (τ changes the workload itself —
// deadlines are part of the orders), the approach roster is the dispatcher
// axis, and CampaignRunner::Resume makes the sweep content-addressed and
// resumable. The paper's "-R" variants become a second, smaller campaign
// over the same entry with predictor=Real.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign_runner.h"
#include "campaign/campaign_spec.h"
#include "campaign/workload_catalog.h"
#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

namespace {

// CampaignRunner builds each workload once and shares it across that
// workload's cells, but the built Simulation only borrows what the
// Experiment owns (workload, grid, forecast, cost model) — so pin every
// Experiment for the life of the bench process.
Experiment& PinExperiment(const ExperimentScale& scale, int num_drivers,
                          double tau_seconds) {
  static std::vector<std::unique_ptr<Experiment>> pool;
  pool.push_back(
      std::make_unique<Experiment>(scale, num_drivers, tau_seconds));
  return *pool.back();
}

// Out-of-tree workload entry: "fig10:tau=180" is the evaluation-day
// workload regenerated with that base pickup waiting time, with the chosen
// predictor's forecast attached (DeepST reproduces the "-P" rows, Real the
// "-R" rows). Prediction-free dispatchers ignore the forecast.
const WorkloadRegistrar kFig10Workload(
    "fig10",
    {
        {"tau", CatalogParam::Type::kDouble, "120",
         "base pickup waiting time (s)"},
        {"drivers", CatalogParam::Type::kInt64, "3000",
         "paper-scale fleet size (shrunk by MRVD_SCALE)"},
        {"predictor", CatalogParam::Type::kString, "DeepST",
         "demand predictor attached as the forecast (HA/LR/GBRT/DeepST/Real)"},
        {"delta", CatalogParam::Type::kDouble, "3",
         "batch interval (s)"},
        {"tc", CatalogParam::Type::kDouble, "1200",
         "prediction window (s)"},
    },
    [](const CatalogParams& p) -> StatusOr<Simulation> {
      ExperimentScale scale = ResolveScale();
      Experiment& exp = PinExperiment(
          scale, scale.Count(static_cast<int>(p.GetInt("drivers"))),
          p.GetDouble("tau"));
      const DemandForecast* forecast = exp.ForecastFor(p.GetString("predictor"));
      SimulationBuilder builder;
      builder.BorrowWorkload(exp.workload(), exp.grid())
          .WithTravelModel(exp.cost_model())
          .BatchInterval(p.GetDouble("delta"))
          .WindowSeconds(p.GetDouble("tc"));
      if (forecast != nullptr) builder.WithForecast(*forecast);
      return builder.Build();
    });

/// Runs one campaign over the τ axis with the given dispatcher roster and
/// predictor; returns the outcome grid[tau][dispatcher] (null = failed).
StatusOr<std::vector<std::vector<const CellOutcome*>>> RunTauSweep(
    const ExperimentScale& scale, const std::vector<double>& taus,
    const std::vector<std::string>& dispatchers, const std::string& predictor,
    const std::string& campaign_name, CampaignReport* report_out) {
  CampaignSpec spec;
  spec.name = campaign_name;
  for (double tau : taus) {
    spec.workloads.push_back(
        StrFormat("fig10:tau=%g,predictor=%s", tau, predictor.c_str()));
  }
  spec.dispatchers = dispatchers;
  spec.seeds = {scale.seed ^ 0xABCD};

  // Cell keys hash the canonical specs, which do not see MRVD_SCALE /
  // MRVD_SEED — keep artifacts from different scales apart by directory.
  std::string artifact_dir =
      StrFormat("bench_artifacts/%s/scale_%g_seed_%llu", campaign_name.c_str(),
                scale.scale, static_cast<unsigned long long>(scale.seed));
  CampaignRunner runner(spec, artifact_dir);

  // Serial cells: 10(b) measures per-batch dispatcher time, so nothing
  // else may compete for the cores while a cell runs.
  CampaignOptions options;
  options.num_threads = 1;
  StatusOr<CampaignReport> report = runner.Resume(options);
  if (!report.ok()) return report.status();
  std::printf("%s: %lld executed, %lld resumed from %s, %lld failed\n",
              campaign_name.c_str(), static_cast<long long>(report->executed),
              static_cast<long long>(report->loaded), artifact_dir.c_str(),
              static_cast<long long>(report->failed));
  *report_out = *std::move(report);

  std::vector<std::vector<const CellOutcome*>> grid(
      taus.size(),
      std::vector<const CellOutcome*>(dispatchers.size(), nullptr));
  for (const CellOutcome& cell : report_out->cells) {
    if (cell.source == CellOutcome::Source::kFailed) continue;
    grid[cell.cell.workload_index][cell.cell.dispatcher_index] = &cell;
  }
  return grid;
}

}  // namespace

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 10 (scale=%.2f)\n", scale.scale);

  const std::vector<double> taus = {60, 120, 180, 240, 300};
  const std::vector<std::string> roster = {"RAND", "LTG",  "NEAR", "POLAR",
                                           "IRG",  "LS",   "UPPER"};
  // The "-R" comparison rows: the same grid with the ground-truth
  // forecast, for the dispatchers where the predictor matters most.
  const std::vector<std::string> real_roster = {"IRG", "LS"};

  CampaignReport deepst_report, real_report;
  auto deepst = RunTauSweep(scale, taus, roster, "DeepST", "fig10_vary_tau",
                            &deepst_report);
  if (!deepst.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 deepst.status().ToString().c_str());
    return 1;
  }
  auto real = RunTauSweep(scale, taus, real_roster, "Real",
                          "fig10_vary_tau_real", &real_report);
  if (!real.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 real.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> header = {"approach"};
  for (double tau : taus) header.push_back(StrFormat("%.0fs", tau));

  auto revenue_row = [&](const std::string& label,
                         const std::vector<std::vector<const CellOutcome*>>& g,
                         size_t d) {
    std::vector<std::string> row = {label};
    for (size_t w = 0; w < taus.size(); ++w) {
      const CellOutcome* c = g[w][d];
      row.push_back(FormatRevenue(c != nullptr ? c->artifact.revenue : 0.0));
    }
    PrintTableRow(row);
  };
  auto ms_row = [&](const std::string& label,
                    const std::vector<std::vector<const CellOutcome*>>& g,
                    size_t d) {
    std::vector<std::string> row = {label};
    for (size_t w = 0; w < taus.size(); ++w) {
      const CellOutcome* c = g[w][d];
      row.push_back(
          StrFormat("%.3f", c != nullptr ? c->artifact.dispatch_ms_mean : 0.0));
    }
    PrintTableRow(row);
  };

  PrintTableHeader("Figure 10(a): total revenue vs τ", header);
  for (size_t d = 0; d < roster.size(); ++d) {
    revenue_row(roster[d] == "IRG" || roster[d] == "LS" ? roster[d] + "-P"
                                                        : roster[d],
                *deepst, d);
  }
  for (size_t d = 0; d < real_roster.size(); ++d) {
    revenue_row(real_roster[d] + "-R", *real, d);
  }

  PrintTableHeader("Figure 10(b): mean batch running time (ms) vs τ", header);
  for (size_t d = 0; d < roster.size(); ++d) {
    ms_row(roster[d] == "IRG" || roster[d] == "LS" ? roster[d] + "-P"
                                                   : roster[d],
           *deepst, d);
  }
  for (size_t d = 0; d < real_roster.size(); ++d) {
    ms_row(real_roster[d] + "-R", *real, d);
  }

  return deepst_report.failed == 0 && real_report.failed == 0 ? 0 : 1;
}
