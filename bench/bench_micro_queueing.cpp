// Micro-benchmarks of the queueing substrate (google-benchmark):
// closed-form ET(λ, μ) evaluation across regimes, the reneging-strength
// (β) ablation called out in DESIGN.md, and the CTMC queue simulator.
#include <benchmark/benchmark.h>

#include "queueing/birth_death.h"
#include "queueing/queue_sim.h"
#include "util/rng.h"

namespace mrvd {
namespace {

void BM_SolveChain_MoreRiders(benchmark::State& state) {
  QueueParams params{2.0, 1.0, 0.05, state.range(0)};
  for (auto _ : state) {
    auto chain = BirthDeathChain::Solve(params);
    benchmark::DoNotOptimize(chain->ExpectedIdleSeconds());
  }
}
BENCHMARK(BM_SolveChain_MoreRiders)->Arg(10)->Arg(100)->Arg(1000);

void BM_SolveChain_MoreDrivers(benchmark::State& state) {
  // λ < μ exercises the O(K) scaled summation.
  QueueParams params{1.0, 1.5, 0.05, state.range(0)};
  for (auto _ : state) {
    auto chain = BirthDeathChain::Solve(params);
    benchmark::DoNotOptimize(chain->ExpectedIdleSeconds());
  }
}
BENCHMARK(BM_SolveChain_MoreDrivers)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SolveChain_Balanced(benchmark::State& state) {
  QueueParams params{1.0, 1.0, 0.05, state.range(0)};
  for (auto _ : state) {
    auto chain = BirthDeathChain::Solve(params);
    benchmark::DoNotOptimize(chain->ExpectedIdleSeconds());
  }
}
BENCHMARK(BM_SolveChain_Balanced)->Arg(100)->Arg(1000);

// Reneging-strength ablation: β shifts work into/out of the positive tail.
void BM_RenegingBetaAblation(benchmark::State& state) {
  double beta = static_cast<double>(state.range(0)) / 1000.0;
  QueueParams params{2.0, 1.0, beta, 100};
  for (auto _ : state) {
    auto chain = BirthDeathChain::Solve(params);
    benchmark::DoNotOptimize(chain->p0());
  }
  auto chain = BirthDeathChain::Solve(params);
  state.counters["tail_len"] =
      static_cast<double>(chain->positive_tail_length());
  state.counters["ET_s"] = chain->ExpectedIdleSeconds();
}
BENCHMARK(BM_RenegingBetaAblation)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Arg(500);

void BM_EstimateIdleTimeHelper(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateIdleTimeSeconds(1.3, 0.9, 50, 0.02));
  }
}
BENCHMARK(BM_EstimateIdleTimeHelper);

void BM_QueueCtmcSimulation(benchmark::State& state) {
  QueueParams params{2.0, 1.0, 0.05, 30};
  Rng rng(7);
  for (auto _ : state) {
    auto result =
        SimulateDoubleSidedQueue(params, static_cast<double>(state.range(0)),
                                 rng);
    benchmark::DoNotOptimize(result.mean_driver_idle);
  }
}
BENCHMARK(BM_QueueCtmcSimulation)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace mrvd

BENCHMARK_MAIN();
