// Figure 7: total revenue (a) and mean batch running time (b) as the fleet
// grows from 1K to 5K drivers. Expected shape: revenue rises with n for
// every approach; IRG/LS lead at small n; the gap narrows toward UPPER as
// the fleet saturates demand.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 7 (scale=%.2f)\n", scale.scale);

  const std::vector<std::string> approaches = {
      "RAND", "LTG", "NEAR", "POLAR", "IRG-P", "LS-P", "UPPER"};
  const std::vector<int> fleet = {1000, 2000, 3000, 4000, 5000};

  std::vector<std::vector<SimResult>> results(approaches.size());
  for (int n : fleet) {
    Experiment exp(scale, scale.Count(n), 120.0);
    for (size_t a = 0; a < approaches.size(); ++a) {
      results[a].push_back(exp.RunApproach(approaches[a], 3.0, 1200.0));
    }
  }

  PrintTableHeader("Figure 7(a): total revenue vs n",
                   {"approach", "1K", "2K", "3K", "4K", "5K"});
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) row.push_back(FormatRevenue(r.total_revenue));
    PrintTableRow(row);
  }

  PrintTableHeader("Figure 7(b): mean batch running time (ms) vs n",
                   {"approach", "1K", "2K", "3K", "4K", "5K"});
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {approaches[a]};
    for (const auto& r : results[a]) {
      row.push_back(StrFormat("%.3f", r.batch_seconds.mean() * 1e3));
    }
    PrintTableRow(row);
  }

  PrintTableHeader("LS-P as share of UPPER (paper: 78.1% at 1K -> 92.0% at 5K)",
                   {"n", "share"});
  size_t ls = 5, upper = 6;
  for (size_t i = 0; i < fleet.size(); ++i) {
    PrintTableRow({StrFormat("%dK", fleet[i] / 1000),
                   StrFormat("%.1f%%", 100.0 * results[ls][i].total_revenue /
                                           results[upper][i].total_revenue)});
  }
  return 0;
}
