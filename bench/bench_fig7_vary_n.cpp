// Figure 7: total revenue (a) and mean batch running time (b) as the fleet
// grows from 1K to 5K drivers. Expected shape: revenue rises with n for
// every approach; IRG/LS lead at small n; the gap narrows toward UPPER as
// the fleet saturates demand.
//
// This bench is the migration template for moving the hand-rolled sweep
// binaries onto the campaign subsystem: the fleet axis is a `fig7`
// workload-catalog entry (registered out-of-tree below), the approach
// roster is the dispatcher axis, and CampaignRunner::Resume gives the
// sweep content-addressed artifacts for free — kill the bench mid-run and
// the rerun re-executes only the missing cells.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign_runner.h"
#include "campaign/campaign_spec.h"
#include "campaign/workload_catalog.h"
#include "experiment_common.h"
#include "util/strings.h"

using namespace mrvd;
using namespace mrvd::bench;

namespace {

// CampaignRunner builds each workload once and shares it across that
// workload's cells, but the built Simulation only borrows what the
// Experiment owns (workload, grid, forecast, cost model) — so pin every
// Experiment for the life of the bench process.
Experiment& PinExperiment(const ExperimentScale& scale, int num_drivers,
                          double tau_seconds) {
  static std::vector<std::unique_ptr<Experiment>> pool;
  pool.push_back(
      std::make_unique<Experiment>(scale, num_drivers, tau_seconds));
  return *pool.back();
}

// Out-of-tree workload entry: "fig7:drivers=2000" is the evaluation-day
// workload at the given paper-scale fleet size (MRVD_SCALE shrinks it via
// ExperimentScale::Count), with the DeepST forecast attached. The
// prediction-guided dispatchers (IRG, LS, SHORT, POLAR) read the forecast;
// the prediction-free ones ignore it — the same pairing RunApproach's
// "-P" variants hard-coded.
const WorkloadRegistrar kFig7Workload(
    "fig7",
    {
        {"drivers", CatalogParam::Type::kInt64, "3000",
         "paper-scale fleet size (shrunk by MRVD_SCALE)"},
        {"tau", CatalogParam::Type::kDouble, "120",
         "base pickup waiting time (s)"},
        {"delta", CatalogParam::Type::kDouble, "3",
         "batch interval (s)"},
        {"tc", CatalogParam::Type::kDouble, "1200",
         "prediction window (s)"},
    },
    [](const CatalogParams& p) -> StatusOr<Simulation> {
      ExperimentScale scale = ResolveScale();
      Experiment& exp =
          PinExperiment(scale, scale.Count(static_cast<int>(p.GetInt("drivers"))),
                        p.GetDouble("tau"));
      const DemandForecast* forecast = exp.ForecastFor("DeepST");
      SimulationBuilder builder;
      builder.BorrowWorkload(exp.workload(), exp.grid())
          .WithTravelModel(exp.cost_model())
          .BatchInterval(p.GetDouble("delta"))
          .WindowSeconds(p.GetDouble("tc"));
      if (forecast != nullptr) builder.WithForecast(*forecast);
      return builder.Build();
    });

std::string FormatMs(double ms) { return StrFormat("%.3f", ms); }

}  // namespace

int main() {
  ExperimentScale scale = ResolveScale();
  std::printf("Reproduction of Figure 7 (scale=%.2f)\n", scale.scale);

  const std::vector<int> fleet = {1000, 2000, 3000, 4000, 5000};
  CampaignSpec spec;
  spec.name = "fig7_vary_n";
  for (int n : fleet) {
    spec.workloads.push_back(StrFormat("fig7:drivers=%d", n));
  }
  // RunApproach seeded RAND with scale.seed ^ 0xABCD; the seed axis
  // reproduces that (the registry routes a non-zero replication seed into
  // any dispatcher declaring a "seed" parameter).
  spec.dispatchers = {"RAND", "LTG", "NEAR", "POLAR", "IRG", "LS", "UPPER"};
  spec.seeds = {scale.seed ^ 0xABCD};

  // Cell keys hash the canonical specs, which do not see MRVD_SCALE /
  // MRVD_SEED — keep artifacts from different scales apart by directory.
  std::string artifact_dir = StrFormat(
      "bench_artifacts/fig7_vary_n/scale_%g_seed_%llu", scale.scale,
      static_cast<unsigned long long>(scale.seed));
  CampaignRunner runner(spec, artifact_dir);

  // Serial cells: 7(b) measures per-batch dispatcher time, so nothing else
  // may compete for the cores while a cell runs.
  CampaignOptions options;
  options.num_threads = 1;
  StatusOr<CampaignReport> report = runner.Resume(options);
  if (!report.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("cells: %lld executed, %lld resumed from %s, %lld failed\n",
              static_cast<long long>(report->executed),
              static_cast<long long>(report->loaded), artifact_dir.c_str(),
              static_cast<long long>(report->failed));

  // grid[workload][dispatcher], grid-order cells indexed by axis position.
  std::vector<std::vector<const CellOutcome*>> grid(
      fleet.size(),
      std::vector<const CellOutcome*>(spec.dispatchers.size(), nullptr));
  for (const CellOutcome& cell : report->cells) {
    grid[cell.cell.workload_index][cell.cell.dispatcher_index] = &cell;
  }
  auto revenue_at = [&](size_t w, size_t d) {
    const CellOutcome* c = grid[w][d];
    return (c != nullptr && c->source != CellOutcome::Source::kFailed)
               ? c->artifact.revenue
               : 0.0;
  };

  PrintTableHeader("Figure 7(a): total revenue vs n",
                   {"approach", "1K", "2K", "3K", "4K", "5K"});
  for (size_t d = 0; d < spec.dispatchers.size(); ++d) {
    std::vector<std::string> row = {spec.dispatchers[d]};
    for (size_t w = 0; w < fleet.size(); ++w) {
      row.push_back(FormatRevenue(revenue_at(w, d)));
    }
    PrintTableRow(row);
  }

  PrintTableHeader("Figure 7(b): mean batch running time (ms) vs n",
                   {"approach", "1K", "2K", "3K", "4K", "5K"});
  for (size_t d = 0; d < spec.dispatchers.size(); ++d) {
    std::vector<std::string> row = {spec.dispatchers[d]};
    for (size_t w = 0; w < fleet.size(); ++w) {
      const CellOutcome* c = grid[w][d];
      row.push_back(FormatMs(c != nullptr ? c->artifact.dispatch_ms_mean : 0.0));
    }
    PrintTableRow(row);
  }

  PrintTableHeader("LS as share of UPPER (paper: 78.1% at 1K -> 92.0% at 5K)",
                   {"n", "share"});
  const size_t ls = 5, upper = 6;
  for (size_t w = 0; w < fleet.size(); ++w) {
    double denom = revenue_at(w, upper);
    PrintTableRow({StrFormat("%dK", fleet[w] / 1000),
                   denom > 0.0
                       ? StrFormat("%.1f%%", 100.0 * revenue_at(w, ls) / denom)
                       : "n/a"});
  }
  return report->failed == 0 ? 0 : 1;
}
