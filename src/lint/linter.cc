#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/json_writer.h"

namespace mrvd {
namespace lint {

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- layer table
//
// The enforced DAG, lowest rank first (see ARCHITECTURE.md "Static
// analysis"). A file in layer L may include its own layer and any layer of
// strictly lower rank; equal-rank layers are mutually independent.
struct LayerRank {
  const char* dir;
  int rank;
};
constexpr LayerRank kLayers[] = {
    {"util", 0},      {"geo", 0},                          // foundations
    {"stats", 1},     {"matching", 1},  {"queueing", 1},   // leaf math
    {"roadnet", 1},   {"workload", 1},  {"lint", 1},       // data + tooling
    {"telemetry", 1},                                      // observability
    {"scenario", 2},  {"prediction", 2},                   // feed the engine
    {"sim", 3},                                            // engine stages
    {"dispatch", 4},                                       // dispatchers
    {"api", 5},                                            // front door
    {"campaign", 6},                                       // grid layer
};

int LayerRankOf(const std::string& dir) {
  for (const LayerRank& l : kLayers) {
    if (dir == l.dir) return l.rank;
  }
  return -1;  // not a known layer
}

/// Layer directory of `path`: the component after the last "src/" segment
/// (empty when the file is not under a src/ tree or sits directly in src/).
std::string LayerOf(const std::string& path) {
  size_t pos = path.rfind("src/");
  if (pos != std::string::npos && pos > 0 && path[pos - 1] != '/') {
    // "foosrc/x" is not a src segment; retry from before it.
    pos = path.rfind("/src/", pos - 1);
    if (pos != std::string::npos) pos += 1;  // point at "src/"
  }
  if (pos == std::string::npos) return "";
  size_t start = pos + 4;
  size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";  // file directly under src/
  return path.substr(start, slash - start);
}

// --------------------------------------------------------------- rule ids
constexpr const char* kIncludeLayering = "include-layering";
constexpr const char* kUnorderedIteration = "unordered-iteration";
constexpr const char* kBannedRandom = "banned-random";
constexpr const char* kBannedWallclock = "banned-wallclock";
constexpr const char* kPointerKey = "pointer-key";
constexpr const char* kHardwareConcurrency = "hardware-concurrency";
constexpr const char* kNakedNew = "naked-new";
constexpr const char* kUsingNamespaceHeader = "using-namespace-header";
constexpr const char* kUnknownRule = "unknown-rule";
constexpr const char* kSuppressionNeedsReason = "suppression-needs-reason";
constexpr const char* kUnusedSuppression = "unused-suppression";

/// Layers whose traversal order reaches SimResult aggregates.
bool IsResultAffectingLayer(const std::string& layer) {
  return layer == "sim" || layer == "dispatch" || layer == "campaign";
}

// --------------------------------------------------- source preprocessing
//
// One pass splits the file into two same-length views: `code` (comments,
// string literals and char literals blanked to spaces; preprocessor lines
// kept verbatim so #include paths survive) and `comment` (only comment
// text, where suppressions live). Offsets are preserved, so scans can run
// over the whole buffer and map back to lines.
struct SourceViews {
  std::string code;
  std::string comment;
  std::vector<size_t> line_starts;  ///< offset of each line's first char
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

SourceViews BuildViews(const std::string& text) {
  SourceViews v;
  v.code.assign(text.size(), ' ');
  v.comment.assign(text.size(), ' ');
  v.line_starts.push_back(0);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  bool line_is_preproc = false;
  bool line_seen_code = false;  // any non-ws code char yet on this line
  std::string raw_delim;        // for R"delim( ... )delim"

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n') {
      v.code[i] = '\n';
      v.comment[i] = '\n';
      v.line_starts.push_back(i + 1);
      if (state == State::kLineComment) state = State::kCode;
      if (state != State::kBlockComment && state != State::kRawString &&
          state != State::kString) {
        // Unterminated ordinary strings don't span lines.
        if (state == State::kChar) state = State::kCode;
      }
      line_is_preproc = false;
      line_seen_code = false;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (!line_seen_code && c == '#') line_is_preproc = true;
        if (!std::isspace(static_cast<unsigned char>(c))) line_seen_code = true;
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          v.comment[i] = c;
          break;
        }
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          v.comment[i] = c;
          break;
        }
        if (c == '"') {
          if (line_is_preproc) {
            v.code[i] = c;  // keep #include "..." paths scannable
            // Consume the quoted path verbatim.
            size_t j = i + 1;
            while (j < text.size() && text[j] != '"' && text[j] != '\n') {
              v.code[j] = text[j];
              ++j;
            }
            if (j < text.size() && text[j] == '"') v.code[j] = '"';
            i = (j < text.size() && text[j] != '\n') ? j : j - 1;
            break;
          }
          if (i > 0 && text[i - 1] == 'R') {
            state = State::kRawString;
            raw_delim.clear();
            size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n') {
              raw_delim.push_back(text[j]);
              ++j;
            }
            i = j > i ? j - 1 : i;  // loop ++ lands on '(' (blanked)
            break;
          }
          state = State::kString;
          break;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          if (i > 0 && IsWordChar(text[i - 1]) &&
              std::isdigit(static_cast<unsigned char>(text[i - 1]))) {
            break;
          }
          state = State::kChar;
          break;
        }
        v.code[i] = c;
        break;
      }
      case State::kLineComment:
        v.comment[i] = c;
        break;
      case State::kBlockComment:
        v.comment[i] = c;
        if (c == '/' && i > 0 && text[i - 1] == '*') state = State::kCode;
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (offset blanked already)
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        if (c == ')' && text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  return v;
}

int LineOf(const SourceViews& v, size_t offset) {
  auto it = std::upper_bound(v.line_starts.begin(), v.line_starts.end(),
                             offset);
  return static_cast<int>(it - v.line_starts.begin());
}

std::string LineSlice(const std::string& buf, const SourceViews& v, int line) {
  size_t start = v.line_starts[static_cast<size_t>(line - 1)];
  size_t end = buf.find('\n', start);
  if (end == std::string::npos) end = buf.size();
  return buf.substr(start, end - start);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ------------------------------------------------------------ suppressions
struct Suppression {
  int line = 0;          ///< line the comment sits on
  int covered_line = 0;  ///< code line covered: own line, or (comment-only
                         ///< lines, so multi-line reasons work) the next
                         ///< line carrying code
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

/// Strips the leading "— " / "- " / ": " joiner off a suppression reason.
std::string StripReasonJoiner(std::string s) {
  s = Trim(s);
  static const char* kJoiners[] = {"\xE2\x80\x94", "\xE2\x80\x93", "--", "-",
                                   ":"};
  for (const char* j : kJoiners) {
    size_t n = std::strlen(j);
    if (s.compare(0, n, j) == 0) {
      s = Trim(s.substr(n));
      break;
    }
  }
  return s;
}

std::vector<Suppression> ParseSuppressions(const SourceViews& v,
                                           std::vector<Finding>* meta) {
  std::vector<Suppression> out;
  const std::string marker = "mrvd-lint:";
  int num_lines = static_cast<int>(v.line_starts.size());
  for (int line = 1; line <= num_lines; ++line) {
    std::string comment = LineSlice(v.comment, v, line);
    size_t m = comment.find(marker);
    if (m == std::string::npos) continue;
    Suppression sup;
    sup.line = line;
    sup.covered_line = line;
    if (Trim(LineSlice(v.code, v, line)).empty()) {
      int num = static_cast<int>(v.line_starts.size());
      int target = line + 1;
      while (target <= num && Trim(LineSlice(v.code, v, target)).empty()) {
        ++target;
      }
      sup.covered_line = target;
    }
    std::string rest = Trim(comment.substr(m + marker.size()));
    size_t open = rest.find("allow(");
    size_t close = open == std::string::npos ? std::string::npos
                                             : rest.find(')', open);
    if (open != 0 || close == std::string::npos) {
      meta->push_back({"", line, kUnknownRule,
                       "malformed mrvd-lint comment; expected "
                       "'allow(<rule-id>)' followed by a reason",
                       false, ""});
      continue;
    }
    std::string ids = rest.substr(open + 6, close - open - 6);
    std::istringstream split(ids);
    std::string id;
    while (std::getline(split, id, ',')) {
      id = Trim(id);
      if (id.empty()) continue;
      if (!IsKnownRule(id)) {
        meta->push_back({"", line, kUnknownRule,
                         "suppression names unknown rule '" + id + "'", false,
                         ""});
        continue;
      }
      sup.rules.push_back(id);
    }
    sup.reason = StripReasonJoiner(rest.substr(close + 1));
    if (sup.reason.empty()) {
      meta->push_back({"", line, kSuppressionNeedsReason,
                       "suppression must say why the finding is safe "
                       "(text after the closing ')')",
                       false, ""});
    }
    if (!sup.rules.empty()) out.push_back(std::move(sup));
  }
  return out;
}

// ------------------------------------------------------------ scan helpers

/// All offsets where `needle` occurs in `hay` as a whole word (neither
/// neighbour is a word char).
std::vector<size_t> FindWord(const std::string& hay, const std::string& needle,
                             size_t from = 0) {
  std::vector<size_t> out;
  for (size_t pos = hay.find(needle, from); pos != std::string::npos;
       pos = hay.find(needle, pos + 1)) {
    if (pos > 0 && IsWordChar(hay[pos - 1])) continue;
    size_t end = pos + needle.size();
    if (end < hay.size() && IsWordChar(hay[end])) continue;
    out.push_back(pos);
  }
  return out;
}

size_t SkipWs(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Offset just past the '>' matching the '<' at `open`, or npos.
size_t MatchAngle(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    }
    if (s[i] == ';') return std::string::npos;  // statement ended: malformed
  }
  return std::string::npos;
}

/// Offset just past the ')' matching the '(' at `open`, or npos.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Last non-space character before `pos`, skipping an immediately
/// preceding "std::" qualifier. '\0' at buffer start.
char PrevSignificantChar(const std::string& s, size_t pos) {
  while (true) {
    while (pos > 0 &&
           std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
      --pos;
    }
    if (pos >= 5 && s.compare(pos - 5, 5, "std::") == 0) {
      pos -= 5;
      continue;
    }
    return pos == 0 ? '\0' : s[pos - 1];
  }
}

std::string ReadIdentifier(const std::string& s, size_t pos) {
  size_t start = SkipWs(s, pos);
  size_t end = start;
  while (end < s.size() && IsWordChar(s[end])) ++end;
  return s.substr(start, end - start);
}

std::set<std::string> IdentifiersIn(const std::string& s) {
  std::set<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    if (IsWordChar(s[i]) &&
        std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
      size_t j = i;
      while (j < s.size() && IsWordChar(s[j])) ++j;
      out.insert(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// ------------------------------------------------------------------ rules

void CheckIncludeLayering(const std::string& layer, const SourceViews& v,
                          std::vector<Finding>* out) {
  int src_rank = LayerRankOf(layer);
  if (src_rank < 0) return;
  const std::string& code = v.code;
  for (size_t pos = code.find("#include \""); pos != std::string::npos;
       pos = code.find("#include \"", pos + 1)) {
    size_t path_start = pos + 10;
    size_t path_end = code.find('"', path_start);
    if (path_end == std::string::npos) continue;
    std::string inc = code.substr(path_start, path_end - path_start);
    size_t slash = inc.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    std::string target = inc.substr(0, slash);
    int dst_rank = LayerRankOf(target);
    if (dst_rank < 0 || target == layer || dst_rank < src_rank) continue;
    out->push_back(
        {"", LineOf(v, pos), kIncludeLayering,
         "\"" + inc + "\" is layer '" + target + "' (rank " +
             std::to_string(dst_rank) + "), not below '" + layer + "' (rank " +
             std::to_string(src_rank) +
             ") — the layer DAG only allows downward includes",
         false, ""});
  }
}

/// Names declared (variables, members, parameters) with a direct
/// unordered_map/unordered_set type. Nested uses (vector<unordered_map<..>>)
/// are skipped: iterating the outer container is ordered.
std::set<std::string> CollectUnorderedNames(const SourceViews& v) {
  std::set<std::string> names;
  const std::string& code = v.code;
  for (const char* type : {"unordered_map", "unordered_set"}) {
    for (size_t pos : FindWord(code, type)) {
      char before = PrevSignificantChar(code, pos);
      if (before == '<' || before == ',') continue;  // nested template arg
      size_t open = SkipWs(code, pos + std::strlen(type));
      if (open >= code.size() || code[open] != '<') continue;
      size_t after = MatchAngle(code, open);
      if (after == std::string::npos) continue;
      size_t p = SkipWs(code, after);
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipWs(code, p + 1);
      }
      std::string name = ReadIdentifier(code, p);
      if (name.empty() || name == "const") continue;
      names.insert(name);
    }
  }
  return names;
}

void CheckUnorderedIteration(const std::string& layer, const SourceViews& v,
                             std::vector<Finding>* out) {
  if (!IsResultAffectingLayer(layer)) return;
  std::set<std::string> names = CollectUnorderedNames(v);
  const std::string& code = v.code;

  // Range-for over an unordered name (or a direct unordered temporary).
  for (size_t pos : FindWord(code, "for")) {
    size_t open = SkipWs(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    size_t close = MatchParen(code, open);
    if (close == std::string::npos) continue;
    std::string head = code.substr(open + 1, close - open - 2);
    // Top-level ':' (not '::') marks a range-for.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = 0; i < head.size(); ++i) {
      if (head[i] == '(' || head[i] == '<' || head[i] == '[') ++depth;
      if (head[i] == ')' || head[i] == '>' || head[i] == ']') --depth;
      if (depth == 0 && head[i] == ':' &&
          (i + 1 >= head.size() || head[i + 1] != ':') &&
          (i == 0 || head[i - 1] != ':')) {
        colon = i;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = head.substr(colon + 1);
    bool direct = range.find("unordered_map") != std::string::npos ||
                  range.find("unordered_set") != std::string::npos;
    std::string hit;
    for (const std::string& id : IdentifiersIn(range)) {
      if (names.count(id) != 0) {
        hit = id;
        break;
      }
    }
    if (!direct && hit.empty()) continue;
    out->push_back({"", LineOf(v, pos), kUnorderedIteration,
                    "range-for over unordered container" +
                        (hit.empty() ? std::string()
                                     : " '" + hit + "'") +
                        " in result-affecting layer '" + layer +
                        "' — traversal order is unspecified; iterate a "
                        "sorted copy or an index vector",
                    false, ""});
  }

  // Explicit iterator walks: name.begin() / name->cbegin() / ...
  for (const char* fn : {"begin", "cbegin", "rbegin"}) {
    for (size_t pos : FindWord(code, fn)) {
      size_t after = SkipWs(code, pos + std::strlen(fn));
      if (after >= code.size() || code[after] != '(') continue;
      size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
        --p;
      }
      bool member = false;
      if (p >= 1 && code[p - 1] == '.') {
        member = true;
        p -= 1;
      } else if (p >= 2 && code[p - 2] == '-' && code[p - 1] == '>') {
        member = true;
        p -= 2;
      }
      if (!member) continue;
      size_t id_end = p;
      while (p > 0 && IsWordChar(code[p - 1])) --p;
      std::string name = code.substr(p, id_end - p);
      if (names.count(name) == 0) continue;
      out->push_back({"", LineOf(v, pos), kUnorderedIteration,
                      "iterator walk over unordered container '" + name +
                          "' in result-affecting layer '" + layer +
                          "' — traversal order is unspecified",
                      false, ""});
    }
  }
}

void CheckBannedRandom(const SourceViews& v, std::vector<Finding>* out) {
  const std::string& code = v.code;
  for (const char* token : {"rand", "srand"}) {
    for (size_t pos : FindWord(code, token)) {
      size_t after = SkipWs(code, pos + std::strlen(token));
      if (after >= code.size() || code[after] != '(') continue;
      out->push_back({"", LineOf(v, pos), kBannedRandom,
                      std::string("'") + token +
                          "()' draws from hidden global state — use "
                          "util/rng.h (seeded xoshiro256**)",
                      false, ""});
    }
  }
  for (size_t pos : FindWord(code, "random_device")) {
    out->push_back({"", LineOf(v, pos), kBannedRandom,
                    "'std::random_device' is nondeterministic by design — "
                    "derive seeds from the workload/config instead",
                    false, ""});
  }
}

void CheckBannedWallclock(const std::string& path, const SourceViews& v,
                          std::vector<Finding>* out) {
  // The one place allowed to read the clock; everything else times itself
  // through its Stopwatch.
  if (path.ends_with("util/stopwatch.h")) return;
  const std::string& code = v.code;
  for (size_t pos : FindWord(code, "now")) {
    if (pos < 2 || code[pos - 1] != ':' || code[pos - 2] != ':') continue;
    size_t p = pos - 2;
    size_t id_end = p;
    while (p > 0 && IsWordChar(code[p - 1])) --p;
    std::string owner = code.substr(p, id_end - p);
    std::string lower = owner;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.size() < 5 || lower.compare(lower.size() - 5, 5, "clock") != 0) {
      continue;
    }
    out->push_back({"", LineOf(v, pos), kBannedWallclock,
                    "clock read '" + owner +
                        "::now()' outside util/stopwatch.h — results must "
                        "not depend on real time; wrap timing in Stopwatch",
                    false, ""});
  }
  for (size_t pos : FindWord(code, "time")) {
    size_t after = SkipWs(code, pos + 4);
    if (after >= code.size() || code[after] != '(') continue;
    size_t close = MatchParen(code, after);
    if (close == std::string::npos) continue;
    std::string arg = Trim(code.substr(after + 1, close - after - 2));
    if (arg != "nullptr" && arg != "NULL" && arg != "0") continue;
    out->push_back({"", LineOf(v, pos), kBannedWallclock,
                    "'time(" + arg +
                        ")' reads the wall clock — results must not depend "
                        "on real time",
                    false, ""});
  }
  for (size_t pos : FindWord(code, "clock")) {
    size_t after = SkipWs(code, pos + 5);
    if (after >= code.size() || code[after] != '(') continue;
    size_t close = MatchParen(code, after);
    if (close != after + 2) continue;  // only the zero-argument clock()
    out->push_back({"", LineOf(v, pos), kBannedWallclock,
                    "'clock()' reads process time — use util/stopwatch.h",
                    false, ""});
  }
  for (size_t pos : FindWord(code, "gettimeofday")) {
    out->push_back({"", LineOf(v, pos), kBannedWallclock,
                    "'gettimeofday' reads the wall clock — use "
                    "util/stopwatch.h",
                    false, ""});
  }
}

void CheckPointerKey(const SourceViews& v, std::vector<Finding>* out) {
  const std::string& code = v.code;
  for (const char* type : {"map", "set", "multimap", "multiset"}) {
    for (size_t pos : FindWord(code, type)) {
      char before = pos == 0 ? '\0' : code[pos - 1];
      if (before != '\0' && IsWordChar(before)) continue;  // unordered_map &c
      size_t open = pos + std::strlen(type);
      if (open >= code.size() || code[open] != '<') continue;
      // First top-level template argument.
      size_t end = MatchAngle(code, open);
      if (end == std::string::npos) continue;
      size_t arg_end = end - 1;
      int depth = 0;
      for (size_t i = open; i < end; ++i) {
        if (code[i] == '<' || code[i] == '(') ++depth;
        if (code[i] == '>' || code[i] == ')') --depth;
        if (depth == 1 && code[i] == ',') {
          arg_end = i;
          break;
        }
      }
      std::string key = Trim(code.substr(open + 1, arg_end - open - 1));
      if (key.empty() || key.back() != '*') continue;
      out->push_back({"", LineOf(v, pos), kPointerKey,
                      std::string("std::") + type + " keyed by pointer '" +
                          key +
                          "' — iteration order follows allocation "
                          "addresses, which vary run to run; key by a "
                          "stable id instead",
                      false, ""});
    }
  }
}

void CheckHardwareConcurrency(const SourceViews& v,
                              std::vector<Finding>* out) {
  for (size_t pos : FindWord(v.code, "hardware_concurrency")) {
    out->push_back({"", LineOf(v, pos), kHardwareConcurrency,
                    "direct hardware_concurrency read — thread-count "
                    "policy belongs in SimConfig::ResolveShards / the "
                    "single ThreadPool::HardwareThreads wrapper",
                    false, ""});
  }
}

void CheckNakedNew(const SourceViews& v, std::vector<Finding>* out) {
  for (size_t pos : FindWord(v.code, "new")) {
    // `make_unique`-style code never spells `new`; flag every expression.
    // (Skip `operator new` declarations, should one ever appear.)
    size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(v.code[before - 1])) != 0) {
      --before;
    }
    if (before >= 8 && v.code.compare(before - 8, 8, "operator") == 0) {
      continue;
    }
    out->push_back({"", LineOf(v, pos), kNakedNew,
                    "naked 'new' — allocate through std::make_unique (or "
                    "wrap immediately in a smart pointer and suppress with "
                    "the reason the ctor is private / the leak is "
                    "deliberate)",
                    false, ""});
  }
}

void CheckUsingNamespaceHeader(const std::string& path, const SourceViews& v,
                               std::vector<Finding>* out) {
  if (path.size() < 2 || path.compare(path.size() - 2, 2, ".h") != 0) return;
  const std::string& code = v.code;
  for (size_t pos : FindWord(code, "using")) {
    size_t after = SkipWs(code, pos + 5);
    if (code.compare(after, 9, "namespace") != 0) continue;
    out->push_back({"", LineOf(v, pos), kUsingNamespaceHeader,
                    "'using namespace' in a header leaks the namespace "
                    "into every includer",
                    false, ""});
  }
}

}  // namespace

// ------------------------------------------------------------- public API

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {kIncludeLayering,
       "includes must point down the ARCHITECTURE.md layer DAG"},
      {kUnorderedIteration,
       "no unordered_map/unordered_set iteration in sim, dispatch, campaign"},
      {kBannedRandom,
       "no rand()/srand()/std::random_device; randomness goes through "
       "util/rng.h"},
      {kBannedWallclock,
       "no *_clock::now()/time()/clock()/gettimeofday outside "
       "util/stopwatch.h"},
      {kPointerKey,
       "no std::map/std::set keyed by pointers (address-ordered iteration)"},
      {kHardwareConcurrency,
       "hardware_concurrency only via ThreadPool::HardwareThreads / "
       "SimConfig::ResolveShards"},
      {kNakedNew, "no naked new; use std::make_unique"},
      {kUsingNamespaceHeader, "no 'using namespace' in headers"},
      {kUnknownRule, "suppressions must name known rules"},
      {kSuppressionNeedsReason, "suppressions must carry a reason"},
      {kUnusedSuppression, "suppressions must suppress something"},
  };
  return kRules;
}

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : Rules()) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content) {
  SourceViews views = BuildViews(content);
  std::string layer = LayerOf(path);

  std::vector<Finding> findings;
  std::vector<Suppression> sups = ParseSuppressions(views, &findings);

  CheckIncludeLayering(layer, views, &findings);
  CheckUnorderedIteration(layer, views, &findings);
  CheckBannedRandom(views, &findings);
  CheckBannedWallclock(path, views, &findings);
  CheckPointerKey(views, &findings);
  CheckHardwareConcurrency(views, &findings);
  CheckNakedNew(views, &findings);
  CheckUsingNamespaceHeader(path, views, &findings);

  // Apply suppressions: a suppression covers its own line, and the next
  // line when it sits on a comment-only line.
  for (Finding& f : findings) {
    for (Suppression& s : sups) {
      if (f.line != s.line && f.line != s.covered_line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
          s.rules.end()) {
        continue;
      }
      f.suppressed = true;
      f.suppress_reason = s.reason;
      s.used = true;
      break;
    }
  }
  for (const Suppression& s : sups) {
    if (s.used) continue;
    std::string ids;
    for (const std::string& id : s.rules) {
      if (!ids.empty()) ids += ", ";
      ids += id;
    }
    findings.push_back({"", s.line, kUnusedSuppression,
                        "suppression for '" + ids +
                            "' matched no finding — delete it",
                        false, ""});
  }

  for (Finding& f : findings) f.file = path;
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

StatusOr<std::vector<Finding>> LintPaths(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        return Status::IoError("could not walk '" + p + "': " + ec.message());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      return Status::NotFound("no such file or directory: '" + p + "'");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return IoErrorFromErrno("could not open '" + file + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> fs_file = LintFile(file, buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(fs_file.begin()),
                    std::make_move_iterator(fs_file.end()));
  }
  return findings;
}

size_t CountUnsuppressed(const std::vector<Finding>& findings) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::string RenderText(const std::vector<Finding>& findings,
                       bool show_suppressed) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    if (f.suppressed && !show_suppressed) continue;
    os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
    if (f.suppressed) os << " [suppressed: " << f.suppress_reason << "]";
    os << "\n";
  }
  return os.str();
}

std::string RenderJson(const std::vector<Finding>& findings,
                       size_t files_checked, bool show_suppressed) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("findings").BeginArray();
  for (const Finding& f : findings) {
    if (f.suppressed && !show_suppressed) continue;
    w.BeginObject();
    w.Key("file").String(f.file);
    w.Key("line").Number(static_cast<int64_t>(f.line));
    w.Key("rule").String(f.rule);
    w.Key("message").String(f.message);
    w.Key("suppressed").Bool(f.suppressed);
    if (f.suppressed) w.Key("reason").String(f.suppress_reason);
    w.EndObject();
  }
  w.EndArray();
  w.Key("files_checked").Number(static_cast<int64_t>(files_checked));
  w.Key("unsuppressed").Number(static_cast<int64_t>(CountUnsuppressed(findings)));
  w.EndObject();
  os << "\n";
  return os.str();
}

}  // namespace lint
}  // namespace mrvd
