// mrvd_lint: the determinism & concurrency static-analysis pass.
//
// A token/line scanner (no libclang) over the source tree that enforces the
// invariants every headline claim rests on — sharded == serial, streamed ==
// materialised, resumed == from-scratch — *at review time* instead of
// waiting for an equivalence test to flake:
//
//   include-layering          the ARCHITECTURE.md layer DAG: a file may only
//                             include headers from layers strictly below its
//                             own (or its own layer)
//   unordered-iteration       iterating an unordered_map/unordered_set in a
//                             result-affecting layer (sim, dispatch,
//                             campaign) — traversal order is unspecified
//   banned-random             rand()/srand()/std::random_device anywhere in
//                             src/ — all randomness goes through util/rng.h
//   banned-wallclock          *_clock::now(), time(nullptr), clock(),
//                             gettimeofday outside util/stopwatch.h
//   pointer-key               std::map/std::set keyed by a pointer type —
//                             iteration order follows allocation addresses
//   hardware-concurrency      direct std::thread::hardware_concurrency —
//                             thread-count policy lives in
//                             SimConfig::ResolveShards / the single
//                             ThreadPool::HardwareThreads wrapper
//   naked-new                 a `new` expression outside a smart-pointer
//                             constructor idiom
//   using-namespace-header    `using namespace` in a header
//
// Plus three meta rules keeping the suppression mechanism honest:
// unknown-rule, suppression-needs-reason, unused-suppression.
//
// Findings print as `file:line: rule-id: message` (or --json). A finding is
// suppressed by a comment on the same line — or on a comment-only line
// directly above — spelling the lint marker (the tool name, then a colon)
// followed by `allow(<rule-id>)` and a mandatory reason. The marker is not
// written out here because this header is itself linted; see
// ARCHITECTURE.md "Static analysis" for the exact syntax and rule table.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace mrvd {
namespace lint {

/// One diagnostic.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  ///< non-empty iff suppressed
};

/// Rule-id plus one-line summary, for --list-rules and the docs table.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the linter knows, in stable order.
const std::vector<RuleInfo>& Rules();

/// True if `id` names a known rule.
bool IsKnownRule(const std::string& id);

/// Lints one in-memory file. `path` drives layer classification: the path
/// component following the last "src/" segment is the layer directory
/// (fixture trees under tests/data/lint/src/<layer>/ classify identically
/// to the real tree). Findings are sorted by line, then rule.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content);

/// Lints files and directories (directories recurse into *.h, *.cc, *.cpp;
/// the walk order is sorted, so output is deterministic). Reports missing
/// paths and unreadable files as a non-OK Status.
StatusOr<std::vector<Finding>> LintPaths(const std::vector<std::string>& paths);

/// Findings that would fail CI (not suppressed).
size_t CountUnsuppressed(const std::vector<Finding>& findings);

/// `file:line: rule-id: message` lines; suppressed findings are included
/// (marked `[suppressed: reason]`) only when `show_suppressed`.
std::string RenderText(const std::vector<Finding>& findings,
                       bool show_suppressed);

/// {"findings": [...], "files_checked": N, "unsuppressed": M}. Suppressed
/// findings appear (with "suppressed": true and their reason) only when
/// `show_suppressed`.
std::string RenderJson(const std::vector<Finding>& findings,
                       size_t files_checked, bool show_suppressed);

}  // namespace lint
}  // namespace mrvd
