#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace mrvd {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ShortestPathEngine::ShortestPathEngine(const RoadNetwork& net) : net_(net) {
  auto n = static_cast<size_t>(net.num_nodes());
  dist_.assign(n, kInf);
  parent_.assign(n, kInvalidNode);
  epoch_.assign(n, 0);
}

std::vector<double> ShortestPathEngine::SingleSource(NodeId source) {
  PathResult ignored = Search(source, kInvalidNode, /*use_heuristic=*/false,
                              /*want_path=*/false);
  (void)ignored;
  std::vector<double> out(static_cast<size_t>(net_.num_nodes()), kInf);
  for (size_t i = 0; i < out.size(); ++i) {
    if (epoch_[i] == current_epoch_) out[i] = dist_[i];
  }
  return out;
}

PathResult ShortestPathEngine::PointToPoint(NodeId source, NodeId target,
                                            bool want_path) {
  return Search(source, target, /*use_heuristic=*/false, want_path);
}

PathResult ShortestPathEngine::AStar(NodeId source, NodeId target,
                                     bool want_path) {
  return Search(source, target, /*use_heuristic=*/true, want_path);
}

PathResult ShortestPathEngine::Search(NodeId source, NodeId target,
                                      bool use_heuristic, bool want_path) {
  ++current_epoch_;
  last_settled_ = 0;

  auto touch = [&](NodeId n) {
    auto i = static_cast<size_t>(n);
    if (epoch_[i] != current_epoch_) {
      epoch_[i] = current_epoch_;
      dist_[i] = kInf;
      parent_[i] = kInvalidNode;
    }
  };

  const bool has_target = target != kInvalidNode;
  const double inv_speed =
      use_heuristic && has_target ? 1.0 / net_.max_speed_mps() : 0.0;
  auto h = [&](NodeId n) -> double {
    if (!use_heuristic || !has_target) return 0.0;
    return EquirectangularMeters(net_.position(n), net_.position(target)) *
           inv_speed;
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      pq;
  touch(source);
  dist_[static_cast<size_t>(source)] = 0.0;
  pq.push({h(source), source});

  while (!pq.empty()) {
    auto [prio, u] = pq.top();
    pq.pop();
    auto ui = static_cast<size_t>(u);
    // Lazy-deletion check: a stale entry's priority exceeds the settled g+h.
    if (prio > dist_[ui] + h(u) + 1e-12) continue;
    ++last_settled_;
    if (has_target && u == target) break;
    for (int64_t e = net_.out_begin(u); e < net_.out_end(u); ++e) {
      NodeId v = net_.target(e);
      touch(v);
      double nd = dist_[ui] + net_.cost(e);
      auto vi = static_cast<size_t>(v);
      if (nd < dist_[vi]) {
        dist_[vi] = nd;
        parent_[vi] = u;
        pq.push({nd + h(v), v});
      }
    }
  }

  PathResult result;
  if (!has_target) return result;
  auto ti = static_cast<size_t>(target);
  if (epoch_[ti] != current_epoch_ || dist_[ti] == kInf) return result;
  result.reachable = true;
  result.cost_seconds = dist_[ti];
  if (want_path) {
    for (NodeId cur = target; cur != kInvalidNode;
         cur = parent_[static_cast<size_t>(cur)]) {
      result.path.push_back(cur);
    }
    std::reverse(result.path.begin(), result.path.end());
  }
  return result;
}

RoadNetworkCostModel::RoadNetworkCostModel(
    std::shared_ptr<const RoadNetwork> net, const BoundingBox& box,
    double fallback_speed_mps)
    : net_(std::move(net)),
      snap_(*net_, box, /*rows=*/32, /*cols=*/32),
      engine_(std::make_unique<ShortestPathEngine>(*net_)),
      fallback_speed_mps_(fallback_speed_mps) {}

double RoadNetworkCostModel::TravelSeconds(const LatLon& from,
                                           const LatLon& to) const {
  NodeId s = snap_.Snap(from);
  NodeId t = snap_.Snap(to);
  if (s == kInvalidNode || t == kInvalidNode) {
    return EquirectangularMeters(from, to) / fallback_speed_mps_;
  }
  PathResult r = engine_->AStar(s, t);
  if (!r.reachable) {
    return EquirectangularMeters(from, to) / fallback_speed_mps_;
  }
  // Access legs: walk-on/off the network at fallback speed.
  double access = (EquirectangularMeters(from, net_->position(s)) +
                   EquirectangularMeters(to, net_->position(t))) /
                  fallback_speed_mps_;
  return r.cost_seconds + access;
}

}  // namespace mrvd
