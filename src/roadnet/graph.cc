#include "roadnet/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/strings.h"

namespace mrvd {

StatusOr<RoadNetwork> RoadNetwork::Build(std::vector<LatLon> nodes,
                                         const std::vector<EdgeInput>& edges) {
  const auto n = static_cast<NodeId>(nodes.size());
  for (const auto& e : edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      return Status::InvalidArgument(
          StrFormat("edge endpoint out of range: %d -> %d (n=%d)", e.from,
                    e.to, n));
    }
    if (!(e.cost_seconds >= 0.0) || !std::isfinite(e.cost_seconds)) {
      return Status::InvalidArgument("edge cost must be finite and >= 0");
    }
  }

  RoadNetwork net;
  net.nodes_ = std::move(nodes);
  net.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (const auto& e : edges) ++net.offsets_[static_cast<size_t>(e.from) + 1];
  for (size_t i = 1; i < net.offsets_.size(); ++i)
    net.offsets_[i] += net.offsets_[i - 1];

  net.targets_.resize(edges.size());
  net.costs_.resize(edges.size());
  std::vector<int64_t> cursor(net.offsets_.begin(), net.offsets_.end() - 1);
  double max_speed = 1e-9;
  for (const auto& e : edges) {
    int64_t slot = cursor[static_cast<size_t>(e.from)]++;
    net.targets_[static_cast<size_t>(slot)] = e.to;
    net.costs_[static_cast<size_t>(slot)] = e.cost_seconds;
    if (e.cost_seconds > 0.0) {
      double meters = EquirectangularMeters(net.nodes_[static_cast<size_t>(e.from)],
                                            net.nodes_[static_cast<size_t>(e.to)]);
      max_speed = std::max(max_speed, meters / e.cost_seconds);
    }
  }
  net.max_speed_mps_ = max_speed;
  return net;
}

NodeId RoadNetwork::NearestNodeLinear(const LatLon& p) const {
  NodeId best = kInvalidNode;
  double best_d = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i < num_nodes(); ++i) {
    double d = EquirectangularMeters(p, nodes_[static_cast<size_t>(i)]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

SnapIndex::SnapIndex(const RoadNetwork& net, const BoundingBox& box, int rows,
                     int cols)
    : net_(net), box_(box), rows_(rows), cols_(cols) {
  cells_.resize(static_cast<size_t>(rows) * cols);
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    cells_[static_cast<size_t>(CellOf(net.position(i)))].push_back(i);
  }
}

int SnapIndex::CellOf(const LatLon& p) const {
  int col = static_cast<int>((p.lon - box_.lon_min) / box_.WidthDegrees() *
                             cols_);
  int row = static_cast<int>((p.lat - box_.lat_min) / box_.HeightDegrees() *
                             rows_);
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return row * cols_ + col;
}

NodeId SnapIndex::Snap(const LatLon& p) const {
  int cell = CellOf(p);
  int row = cell / cols_, col = cell % cols_;
  NodeId best = kInvalidNode;
  double best_d = std::numeric_limits<double>::infinity();
  // Expand rings until a ring adds nothing closer than the best found and at
  // least one candidate exists. Cell sizes are uniform, so once we have a
  // candidate we only need one extra ring to be exact.
  int max_ring = std::max(rows_, cols_);
  int found_ring = -1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (found_ring >= 0 && ring > found_ring + 1) break;
    bool any_cell = false;
    for (int dr = -ring; dr <= ring; ++dr) {
      for (int dc = -ring; dc <= ring; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != ring) continue;
        int rr = row + dr, cc = col + dc;
        if (rr < 0 || rr >= rows_ || cc < 0 || cc >= cols_) continue;
        any_cell = true;
        for (NodeId nid : cells_[static_cast<size_t>(rr * cols_ + cc)]) {
          double d = EquirectangularMeters(p, net_.position(nid));
          if (d < best_d) {
            best_d = d;
            best = nid;
            if (found_ring < 0) found_ring = ring;
          }
        }
        if (best != kInvalidNode && found_ring < 0) found_ring = ring;
      }
    }
    if (!any_cell && ring > 0 && best != kInvalidNode) break;
  }
  return best;
}

RoadNetwork MakeGridNetwork(const BoundingBox& box, int rows, int cols,
                            double speed_mps, double jitter, uint64_t seed) {
  assert(rows >= 2 && cols >= 2);
  std::vector<LatLon> nodes;
  nodes.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      nodes.push_back(
          {box.lat_min + box.HeightDegrees() * r / (rows - 1),
           box.lon_min + box.WidthDegrees() * c / (cols - 1)});
    }
  }
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };

  Rng rng(seed);
  std::vector<EdgeInput> edges;
  auto add_street = [&](NodeId a, NodeId b) {
    double meters = EquirectangularMeters(nodes[static_cast<size_t>(a)],
                                          nodes[static_cast<size_t>(b)]);
    double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
    double secs = meters / (speed_mps / factor);
    edges.push_back({a, b, secs});
    edges.push_back({b, a, secs});
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) add_street(id(r, c), id(r, c + 1));
      if (r + 1 < rows) add_street(id(r, c), id(r + 1, c));
    }
  }
  auto net = RoadNetwork::Build(std::move(nodes), edges);
  assert(net.ok());
  return std::move(net).value();
}

}  // namespace mrvd
