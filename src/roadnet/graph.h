// Road-network graph G = <V, E> (§2): directed, weighted by travel cost in
// seconds, stored in CSR form for cache-friendly shortest-path queries.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "util/status.h"

namespace mrvd {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// One directed edge during graph construction.
struct EdgeInput {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double cost_seconds = 0.0;
};

/// Immutable CSR road network. Nodes carry geographic positions so A* can use
/// a great-circle admissible heuristic and so simulator locations can be
/// snapped to the network.
class RoadNetwork {
 public:
  /// Builds from node positions and a directed edge list. Edge endpoints must
  /// be valid node ids and costs non-negative.
  static StatusOr<RoadNetwork> Build(std::vector<LatLon> nodes,
                                     const std::vector<EdgeInput>& edges);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(targets_.size()); }

  const LatLon& position(NodeId n) const {
    return nodes_[static_cast<size_t>(n)];
  }

  /// Out-edge span of node n: indices [offsets_[n], offsets_[n+1]) into
  /// targets()/costs().
  int64_t out_begin(NodeId n) const { return offsets_[static_cast<size_t>(n)]; }
  int64_t out_end(NodeId n) const {
    return offsets_[static_cast<size_t>(n) + 1];
  }
  NodeId target(int64_t e) const { return targets_[static_cast<size_t>(e)]; }
  double cost(int64_t e) const { return costs_[static_cast<size_t>(e)]; }

  /// Nearest node to a point by straight-line distance. O(num_nodes) scan;
  /// SnapIndex (below) provides the indexed version used in hot paths.
  NodeId NearestNodeLinear(const LatLon& p) const;

  /// Maximum speed implied by any edge (used by A*'s admissible heuristic:
  /// h(n) = straight_line / max_speed). Computed once at build.
  double max_speed_mps() const { return max_speed_mps_; }

 private:
  RoadNetwork() = default;

  std::vector<LatLon> nodes_;
  std::vector<int64_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<double> costs_;
  double max_speed_mps_ = 1.0;
};

/// Grid-based spatial index for snapping arbitrary lat/lon points to their
/// nearest network node in ~O(1).
class SnapIndex {
 public:
  SnapIndex(const RoadNetwork& net, const BoundingBox& box, int rows, int cols);

  /// Nearest node to `p` (searches outward ring by ring; exact).
  NodeId Snap(const LatLon& p) const;

 private:
  const RoadNetwork& net_;
  BoundingBox box_;
  int rows_, cols_;
  std::vector<std::vector<NodeId>> cells_;

  int CellOf(const LatLon& p) const;
};

/// Synthetic Manhattan-style grid network over `box`: rows x cols nodes,
/// bidirectional street edges between 4-neighbours. `speed_mps` sets edge
/// costs from geographic edge lengths. Streets get per-edge random speed
/// perturbation in [1-jitter, 1+jitter] from `seed` to avoid degenerate ties.
RoadNetwork MakeGridNetwork(const BoundingBox& box, int rows, int cols,
                            double speed_mps = 7.0, double jitter = 0.2,
                            uint64_t seed = 42);

}  // namespace mrvd
