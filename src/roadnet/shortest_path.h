// Shortest-path queries over the road network: Dijkstra (single-source and
// point-to-point with early exit), A* with the great-circle admissible
// heuristic, and a travel-cost model adapter for the simulator.
#pragma once

#include <memory>
#include <vector>

#include "geo/travel.h"
#include "roadnet/graph.h"

namespace mrvd {

/// Result of a point-to-point query.
struct PathResult {
  bool reachable = false;
  double cost_seconds = 0.0;
  /// Node sequence from source to target (inclusive); empty if !reachable or
  /// path reconstruction was not requested.
  std::vector<NodeId> path;
};

/// Reusable shortest-path engine. Not thread-safe (owns scratch buffers);
/// create one per thread.
class ShortestPathEngine {
 public:
  explicit ShortestPathEngine(const RoadNetwork& net);

  /// Single-source Dijkstra; returns cost to every node (infinity if
  /// unreachable).
  std::vector<double> SingleSource(NodeId source);

  /// Point-to-point Dijkstra with early exit at `target`.
  PathResult PointToPoint(NodeId source, NodeId target,
                          bool want_path = false);

  /// Point-to-point A* using straight-line/max-speed heuristic (admissible,
  /// consistent); typically expands far fewer nodes than Dijkstra.
  PathResult AStar(NodeId source, NodeId target, bool want_path = false);

  /// Number of nodes popped in the last point-to-point query (for tests and
  /// the ablation bench comparing Dijkstra vs A*).
  int64_t last_settled_count() const { return last_settled_; }

 private:
  struct QueueEntry {
    double priority;
    NodeId node;
    bool operator>(const QueueEntry& o) const { return priority > o.priority; }
  };

  PathResult Search(NodeId source, NodeId target, bool use_heuristic,
                    bool want_path);

  const RoadNetwork& net_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<int32_t> epoch_;
  int32_t current_epoch_ = 0;
  int64_t last_settled_ = 0;
};

/// TravelCostModel backed by the road network: snaps endpoints to nodes and
/// runs A*. Falls back to straight-line cost if either endpoint fails to
/// snap (cannot happen for in-box points). Caching: none — NYC-scale grids
/// answer in microseconds; the simulator's default remains StraightLine for
/// full-day sweeps, with this model exercised in examples/tests.
class RoadNetworkCostModel : public TravelCostModel {
 public:
  RoadNetworkCostModel(std::shared_ptr<const RoadNetwork> net,
                       const BoundingBox& box, double fallback_speed_mps = 7.0);

  double TravelSeconds(const LatLon& from, const LatLon& to) const override;
  double SpeedMps() const override { return fallback_speed_mps_; }

 private:
  std::shared_ptr<const RoadNetwork> net_;
  SnapIndex snap_;
  // Scratch buffers for the search; the model is logically const but reuses
  // the engine between queries. Not thread-safe, like the simulator itself.
  mutable std::unique_ptr<ShortestPathEngine> engine_;
  double fallback_speed_mps_;
};

}  // namespace mrvd
