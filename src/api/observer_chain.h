// ObserverChain: the experiment API's composable fan-out observer.
//
// Simulator::Run accepts a single SimObserver; before this layer existed,
// metrics collection, hourly breakdowns and traces competed for that one
// slot. An ObserverChain composes them: every engine hook is forwarded to each
// link in registration order, and links can be either borrowed (caller
// keeps ownership and lifetime) or owned by the chain. The engine's
// built-in MetricsCollector is just another link — Simulation::Run chains
// it in front of whatever the caller attaches.
//
//   HourlyBreakdown hourly;
//   ObserverChain chain;
//   chain.Add(&hourly)                       // borrowed
//        .Own(std::make_unique<Tracer>());   // owned
//   sim.Run(dispatcher, &chain);
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "sim/observer.h"

namespace mrvd {

/// Fan-out observer with optional link ownership. Hooks fire on every link
/// in the order the links were added, regardless of how they are owned.
class ObserverChain final : public ObserverList {
 public:
  ObserverChain() = default;

  /// Appends a borrowed link (null is ignored). The pointee must outlive
  /// the chain's last forwarded hook.
  ObserverChain& Add(SimObserver* observer) {
    ObserverList::Add(observer);
    return *this;
  }

  /// Appends a link the chain owns (null is ignored).
  ObserverChain& Own(std::unique_ptr<SimObserver> observer) {
    if (observer != nullptr) {
      ObserverList::Add(observer.get());
      owned_.push_back(std::move(observer));
    }
    return *this;
  }

 private:
  std::vector<std::unique_ptr<SimObserver>> owned_;
};

}  // namespace mrvd
