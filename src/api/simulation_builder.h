// The experiment API's front door: a fluent, validated builder that
// assembles everything a run needs — workload, grid, travel model, demand
// forecast, scenario script, SimConfig — with sane defaults derived from
// the workload, so a complete simulation is a handful of lines:
//
//   GeneratorConfig city;
//   city.orders_per_day = 20000;
//   auto sim = SimulationBuilder()
//                  .GenerateNycDay(/*day_index=*/7, /*num_drivers=*/250, city)
//                  .WithOracleForecast()
//                  .Build();
//   if (!sim.ok()) return Fail(sim.status());
//   StatusOr<SimResult> result = sim->Run("LS");
//
// Build() validates (SimConfig::Validate, forecast/grid region match,
// missing workload) and returns Status instead of crashing later; the built
// Simulation owns (or borrows) its pieces and can run any dispatcher from
// the DispatcherRegistry by spec string. Simulator::Run remains the thin
// engine underneath — the Simulation just assembles its arguments.
#pragma once

#include <memory>
#include <string>

#include "geo/grid.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "scenario/script.h"
#include "sim/engine.h"
#include "util/status.h"
#include "workload/generator.h"

namespace mrvd {

/// A fully assembled, runnable experiment environment. Copyable (shared
/// ownership of the assembled pieces) and cheap to pass around; every Run
/// constructs a fresh Simulator, so runs are independent and repeatable.
class Simulation {
 public:
  /// On the streaming path the workload holds the trace's drivers and
  /// horizon with an EMPTY orders vector — orders never materialise.
  const Workload& workload() const { return *workload_; }
  const Grid& grid() const { return *grid_; }
  const TravelCostModel& travel_model() const { return *travel_; }
  const SimConfig& config() const { return config_; }
  /// Null when the simulation is prediction-free.
  const DemandForecast* forecast() const { return forecast_; }
  /// Null when no scenario script is attached.
  const ScenarioScript* scenario() const { return scenario_; }
  /// The generator behind GenerateNycDay(), or null for external workloads.
  const NycLikeGenerator* generator() const { return generator_.get(); }

  /// Runs one dispatcher built from a DispatcherRegistry spec ("IRG",
  /// "LS:max_sweeps=8", ...). Unknown names fail with a Status listing the
  /// known roster. Dispatchers marked requires_zero_pickup_travel (UPPER)
  /// automatically run with SimConfig::zero_pickup_travel set.
  StatusOr<SimResult> Run(const std::string& dispatcher_spec,
                          SimObserver* observer = nullptr) const;

  /// Runs a caller-constructed dispatcher over the same environment.
  /// Streamed simulations abort on stream I/O failure (use RunWith, or the
  /// spec overload above, where a Status is wanted).
  SimResult Run(Dispatcher& dispatcher, SimObserver* observer = nullptr) const;

  /// The single-run engine path under an explicit, already trait-applied
  /// config — what every Run overload (and the ExperimentRunner) bottoms
  /// out in. A streamed simulation opens a fresh OrderStreamReader per
  /// call (runs stay independent, so sweeps parallelise), and stream
  /// open/read failures surface as the Status.
  StatusOr<SimResult> RunWith(const SimConfig& config, Dispatcher& dispatcher,
                              const ScenarioScript* scenario,
                              SimObserver* observer = nullptr) const;

  /// True when orders stream from a binary trace instead of memory.
  bool streaming() const { return !stream_path_.empty(); }
  /// The trace path behind a streaming simulation ("" otherwise).
  const std::string& stream_path() const { return stream_path_; }

  /// A copy of this simulation with `script` attached (shared ownership),
  /// replacing any existing script. The campaign layer uses this to pair
  /// one built workload with each scenario of a grid without re-running
  /// the generator or re-deriving the forecast.
  Simulation WithScenario(ScenarioScript script) const;

 private:
  friend class SimulationBuilder;
  friend class ExperimentRunner;
  Simulation() = default;

  /// The effective per-run config for a dispatcher display name (applies
  /// the registry's zero-pickup-travel trait).
  SimConfig ConfigFor(const std::string& dispatcher_name) const;

  std::shared_ptr<const NycLikeGenerator> generator_;
  std::shared_ptr<const Workload> owned_workload_;
  const Workload* workload_ = nullptr;  ///< always set after Build()
  std::shared_ptr<const Grid> grid_;
  std::shared_ptr<const TravelCostModel> owned_travel_;
  const TravelCostModel* travel_ = nullptr;  ///< always set after Build()
  std::shared_ptr<const DemandForecast> owned_forecast_;
  const DemandForecast* forecast_ = nullptr;  ///< may stay null
  std::shared_ptr<const ScenarioScript> owned_scenario_;
  const ScenarioScript* scenario_ = nullptr;  ///< may stay null
  SimConfig config_;
  std::string stream_path_;        ///< non-empty: stream orders from here
  int64_t stream_max_orders_ = 0;  ///< > 0: cap the streamed order count
};

/// Fluent builder for Simulation. All setters return *this; Build() may be
/// called repeatedly (the builder stays valid, so sweeps can tweak the
/// config between builds). Exactly one workload source must be set.
class SimulationBuilder {
 public:
  SimulationBuilder() = default;

  // ---- Workload sources (exactly one) ----

  /// Generates a synthetic NYC-like day (the paper's §6.1 substitute
  /// workload): `config` controls grid and demand shape, the generator and
  /// its grid are owned by the built Simulation.
  SimulationBuilder& GenerateNycDay(int day_index, int num_drivers,
                                    const GeneratorConfig& config = {});

  /// Takes ownership of an externally built workload (e.g. a parsed TLC
  /// day) over `grid`.
  SimulationBuilder& WithWorkload(Workload workload, const Grid& grid);

  /// Borrows a workload owned by the caller, which must outlive every
  /// Simulation built from this builder.
  SimulationBuilder& BorrowWorkload(const Workload& workload, const Grid& grid);

  /// Streams orders from a binary trace (see workload/order_stream.h)
  /// instead of materialising them: Build() reads only the trace's header
  /// and driver section, and every Run pulls arrivals through a fresh
  /// buffered reader with O(batch) peak memory — bit-identical to
  /// materialising the same trace. `max_orders` > 0 caps the streamed
  /// count. Incompatible with WithOracleForecast() (the oracle needs the
  /// realized orders in memory; derive a forecast offline and pass
  /// WithForecast() instead).
  SimulationBuilder& StreamTrace(const std::string& trace_path,
                                 const Grid& grid, int64_t max_orders = 0);

  // ---- Travel model (default: straight-line at 11 m/s, 1.3 detour) ----

  /// Borrows a travel-cost model (e.g. RoadNetworkCostModel); the caller
  /// keeps it alive.
  SimulationBuilder& WithTravelModel(const TravelCostModel& model);

  /// Owns a straight-line model with the given speed/detour factor.
  SimulationBuilder& WithStraightLineTravel(double speed_mps,
                                            double detour_factor);

  // ---- Demand forecast (default: none — prediction-free dispatch) ----

  /// Borrows a caller-owned forecast (must match the grid's region count).
  SimulationBuilder& WithForecast(const DemandForecast& forecast);

  /// Takes ownership of a forecast.
  SimulationBuilder& WithForecast(DemandForecast&& forecast);

  /// Derives the ground-truth oracle forecast from the workload's realized
  /// per-slot counts at Build() time (Table 4's "Real" predictor). Works
  /// for any workload source.
  SimulationBuilder& WithOracleForecast(int slots_per_day = 48);

  // ---- Scenario script (default: none) ----

  /// Takes ownership of a scenario script (driver shifts, cancellations,
  /// surge windows) merged into every run.
  SimulationBuilder& WithScenario(ScenarioScript script);

  /// Borrows a caller-owned script.
  SimulationBuilder& BorrowScenario(const ScenarioScript& script);

  // ---- Engine config (default: the paper's Table-2 values) ----

  SimulationBuilder& WithConfig(const SimConfig& config);
  SimulationBuilder& BatchInterval(double seconds);
  SimulationBuilder& WindowSeconds(double seconds);
  SimulationBuilder& HorizonSeconds(double seconds);
  SimulationBuilder& Threads(int num_threads);
  SimulationBuilder& Shards(int num_shards);

  /// Attaches a borrowed telemetry session (may be null to detach): runs
  /// record per-stage trace spans and feed the session's MetricsRegistry.
  /// The session must outlive every Simulation built from this builder and
  /// must not be shared by concurrently executing runs. Telemetry never
  /// affects results — only observes them.
  SimulationBuilder& WithTelemetry(telemetry::TelemetrySession* session);

  const SimConfig& config() const { return config_; }

  /// Validates and assembles. Fails with InvalidArgument when no workload
  /// source was set, the config does not pass SimConfig::Validate(), or a
  /// forecast's region count does not match the grid.
  StatusOr<Simulation> Build() const;

 private:
  std::shared_ptr<const NycLikeGenerator> generator_;
  std::shared_ptr<const Workload> owned_workload_;
  const Workload* borrowed_workload_ = nullptr;
  std::shared_ptr<const Grid> grid_;
  const TravelCostModel* borrowed_travel_ = nullptr;
  std::shared_ptr<const TravelCostModel> owned_travel_;
  const DemandForecast* borrowed_forecast_ = nullptr;
  std::shared_ptr<const DemandForecast> owned_forecast_;
  int oracle_slots_ = 0;  ///< > 0: derive the oracle forecast at Build()
  const ScenarioScript* borrowed_scenario_ = nullptr;
  std::shared_ptr<const ScenarioScript> owned_scenario_;
  SimConfig config_;
  std::string stream_path_;
  int64_t stream_max_orders_ = 0;
};

}  // namespace mrvd
