// ExperimentRunner: declarative sweep execution over one assembled
// Simulation — the paper's §6 evaluation grid (8 dispatchers × parameter
// sweeps × workloads) as data.
//
// Callers describe each run as a RunSpec (dispatcher spec string, optional
// SimConfig override, scenario choice, replication seed); the runner
// resolves every spec against the DispatcherRegistry up front (so a typo
// fails with the known roster before anything runs), then executes the runs
// concurrently on the existing ThreadPool and returns one RunResult per
// spec, in spec order.
//
// Determinism: runs are fully independent (each gets its own dispatcher
// instance and Simulator), so identical specs + seeds produce bit-identical
// SimResult aggregates at any runner thread count — the equivalence-suite
// guarantee extended to the sweep layer (tests/api_test.cc enforces it).
//
// Nested parallelism note: engine-level sharding (SimConfig::num_threads)
// inside a runner worker degrades to inline execution (ThreadPool nests
// inline rather than deadlock), which never changes results — but for
// throughput pick ONE level: runner threads for many small runs, engine
// threads for few big ones.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "api/simulation_builder.h"
#include "sim/metrics.h"
#include "util/status.h"

namespace mrvd {

class JsonWriter;

/// One declarative run of a sweep.
struct RunSpec {
  RunSpec() = default;
  RunSpec(std::string dispatcher_spec, std::string run_label = "")
      : dispatcher(std::move(dispatcher_spec)), label(std::move(run_label)) {}

  /// DispatcherRegistry spec, e.g. "IRG" or "LS:max_sweeps=8".
  std::string dispatcher;

  /// Row label in the RunResult table; defaults to the dispatcher spec.
  std::string label;

  /// Per-run engine config; unset inherits the Simulation's config. The
  /// registry's zero-pickup-travel trait (UPPER) is applied on top.
  std::optional<SimConfig> config;

  /// Run under the Simulation's scenario script (if one is attached).
  bool use_scenario = true;

  /// Replication seed: when non-zero and the dispatcher declares a "seed"
  /// parameter (RAND), it overrides the spec's seed — so replications are
  /// `for (s : seeds) specs.push_back({"RAND", label, ..., s})`. Recorded
  /// in the RunResult either way.
  uint64_t replication_seed = 0;

  /// Optional per-run observer. Fires on the runner worker executing this
  /// spec — do not share one observer across specs when the runner is
  /// multi-threaded.
  SimObserver* observer = nullptr;
};

/// Outcome of one RunSpec.
struct RunResult {
  std::string label;
  std::string dispatcher;  ///< resolved display name (Dispatcher::name())
  std::string spec;        ///< the RunSpec's dispatcher spec string
  uint64_t replication_seed = 0;
  double wall_seconds = 0.0;  ///< this run's wall time on its worker
  SimResult result;
};

/// Executes RunSpec batches against one Simulation.
class ExperimentRunner {
 public:
  /// `num_threads` concurrent runs (0 = hardware concurrency, 1 = serial).
  explicit ExperimentRunner(Simulation simulation, int num_threads = 1);

  const Simulation& simulation() const { return simulation_; }

  /// Resolves and validates every spec (unknown dispatchers / bad params /
  /// invalid configs fail before any run starts), then executes all runs
  /// and returns results in spec order.
  StatusOr<std::vector<RunResult>> RunAll(
      const std::vector<RunSpec>& specs) const;

  /// Resolves and executes one spec inline on the calling thread — the
  /// exact single-run path RunAll's workers take, exposed so higher layers
  /// (CampaignRunner) that schedule their own parallelism produce
  /// bit-identical RunResults to a RunAll over the same specs.
  static StatusOr<RunResult> RunOne(const Simulation& simulation,
                                    const RunSpec& spec);

 private:
  Simulation simulation_;
  int num_threads_;
};

/// Serialises results as a JSON array of run records (label, dispatcher,
/// seed, wall_seconds, and the headline SimResult aggregates) — the same
/// writer the benches use, so sweeps land as artifacts next to the bench
/// series.
void WriteRunResults(JsonWriter& writer, const std::vector<RunResult>& results);

/// Writes `{"runs": [...]}` to `path`.
Status WriteRunResultsJsonFile(const std::string& path,
                               const std::vector<RunResult>& results);

/// The `{"runs": [...]}` document as a string.
std::string RunResultsToJson(const std::vector<RunResult>& results);

}  // namespace mrvd
