// Umbrella header for the experiment API — the canonical way to assemble
// and execute runs:
//
//   * SimulationBuilder / Simulation  — fluent, validated assembly
//   * DispatcherRegistry              — dispatchers from spec strings
//   * ObserverChain                   — composable observation
//   * ExperimentRunner                — declarative, parallel sweeps
//
// Start with examples/quickstart.cpp; ARCHITECTURE.md ("Experiment API")
// explains how the layer sits above the engine.
#pragma once

#include "api/dispatcher_registry.h"   // IWYU pragma: export
#include "api/experiment_runner.h"     // IWYU pragma: export
#include "api/observer_chain.h"        // IWYU pragma: export
#include "api/simulation_builder.h"    // IWYU pragma: export
