#include "api/simulation_builder.h"

#include <cstdlib>
#include <utility>

#include "api/dispatcher_registry.h"
#include "prediction/predictor.h"
#include "util/logging.h"
#include "workload/demand_history.h"
#include "workload/order_source.h"
#include "workload/order_stream.h"

namespace mrvd {

// ---------------------------------------------------------------------
// Simulation

SimConfig Simulation::ConfigFor(const std::string& dispatcher_name) const {
  SimConfig cfg = config_;
  if (DispatcherRegistry::Global().RequiresZeroPickupTravel(dispatcher_name)) {
    cfg.zero_pickup_travel = true;
  }
  return cfg;
}

StatusOr<SimResult> Simulation::Run(const std::string& dispatcher_spec,
                                    SimObserver* observer) const {
  StatusOr<std::unique_ptr<Dispatcher>> dispatcher =
      DispatcherRegistry::Global().Create(dispatcher_spec);
  if (!dispatcher.ok()) return dispatcher.status();
  return RunWith(ConfigFor((*dispatcher)->name()), **dispatcher, scenario_,
                 observer);
}

SimResult Simulation::Run(Dispatcher& dispatcher, SimObserver* observer) const {
  StatusOr<SimResult> result =
      RunWith(ConfigFor(dispatcher.name()), dispatcher, scenario_, observer);
  if (!result.ok()) {
    // This overload predates streaming and returns a bare SimResult; an
    // unreadable trace here is an environment failure with no recovery
    // path, on par with the engine's invalid-config abort.
    MRVD_LOG(Error) << "simulation run failed: " << result.status();
    std::abort();
  }
  return std::move(result).value();
}

StatusOr<SimResult> Simulation::RunWith(const SimConfig& config,
                                        Dispatcher& dispatcher,
                                        const ScenarioScript* scenario,
                                        SimObserver* observer) const {
  if (!streaming()) {
    Simulator simulator(config, *workload_, *grid_, *travel_, forecast_);
    return scenario != nullptr
               ? simulator.Run(dispatcher, *scenario, observer)
               : simulator.Run(dispatcher, observer);
  }
  // A fresh reader per run: Simulation is copyable and Run is const, so
  // concurrent sweeps over one streamed simulation must not share a file
  // cursor. The opened reader's drivers are identical to workload_'s (same
  // file; Build() validated it), so the engine uses the shared vector.
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(stream_path_);
  if (!reader.ok()) return reader.status();
  StreamingOrderSource source(std::move(reader).value(), stream_max_orders_);
  Simulator simulator(config, source, workload_->drivers, *grid_, *travel_,
                      forecast_);
  SimResult result = scenario != nullptr
                         ? simulator.Run(dispatcher, *scenario, observer)
                         : simulator.Run(dispatcher, observer);
  // A stream that died mid-run produced a silently truncated day — fail
  // the run rather than hand back misleading aggregates.
  MRVD_RETURN_NOT_OK(source.status());
  return result;
}

Simulation Simulation::WithScenario(ScenarioScript script) const {
  Simulation copy = *this;
  copy.owned_scenario_ =
      std::make_shared<const ScenarioScript>(std::move(script));
  copy.scenario_ = copy.owned_scenario_.get();
  return copy;
}

// ---------------------------------------------------------------------
// SimulationBuilder

SimulationBuilder& SimulationBuilder::GenerateNycDay(
    int day_index, int num_drivers, const GeneratorConfig& config) {
  auto generator = std::make_shared<const NycLikeGenerator>(config);
  owned_workload_ = std::make_shared<const Workload>(
      generator->GenerateDay(day_index, num_drivers));
  grid_ = std::make_shared<const Grid>(generator->grid());
  generator_ = std::move(generator);
  borrowed_workload_ = nullptr;
  stream_path_.clear();
  return *this;
}

SimulationBuilder& SimulationBuilder::WithWorkload(Workload workload,
                                                   const Grid& grid) {
  owned_workload_ = std::make_shared<const Workload>(std::move(workload));
  grid_ = std::make_shared<const Grid>(grid);
  generator_ = nullptr;
  borrowed_workload_ = nullptr;
  stream_path_.clear();
  return *this;
}

SimulationBuilder& SimulationBuilder::BorrowWorkload(const Workload& workload,
                                                     const Grid& grid) {
  borrowed_workload_ = &workload;
  grid_ = std::make_shared<const Grid>(grid);
  generator_ = nullptr;
  owned_workload_ = nullptr;
  stream_path_.clear();
  return *this;
}

SimulationBuilder& SimulationBuilder::StreamTrace(const std::string& trace_path,
                                                  const Grid& grid,
                                                  int64_t max_orders) {
  stream_path_ = trace_path;
  stream_max_orders_ = max_orders;
  grid_ = std::make_shared<const Grid>(grid);
  generator_ = nullptr;
  owned_workload_ = nullptr;
  borrowed_workload_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithTravelModel(
    const TravelCostModel& model) {
  borrowed_travel_ = &model;
  owned_travel_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithStraightLineTravel(
    double speed_mps, double detour_factor) {
  owned_travel_ =
      std::make_shared<const StraightLineCostModel>(speed_mps, detour_factor);
  borrowed_travel_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithForecast(
    const DemandForecast& forecast) {
  borrowed_forecast_ = &forecast;
  owned_forecast_ = nullptr;
  oracle_slots_ = 0;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithForecast(DemandForecast&& forecast) {
  owned_forecast_ = std::make_shared<const DemandForecast>(std::move(forecast));
  borrowed_forecast_ = nullptr;
  oracle_slots_ = 0;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithOracleForecast(int slots_per_day) {
  oracle_slots_ = slots_per_day;
  borrowed_forecast_ = nullptr;
  owned_forecast_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithScenario(ScenarioScript script) {
  owned_scenario_ = std::make_shared<const ScenarioScript>(std::move(script));
  borrowed_scenario_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::BorrowScenario(
    const ScenarioScript& script) {
  borrowed_scenario_ = &script;
  owned_scenario_ = nullptr;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithConfig(const SimConfig& config) {
  config_ = config;
  return *this;
}

SimulationBuilder& SimulationBuilder::BatchInterval(double seconds) {
  config_.batch_interval = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::WindowSeconds(double seconds) {
  config_.window_seconds = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::HorizonSeconds(double seconds) {
  config_.horizon_seconds = seconds;
  return *this;
}

SimulationBuilder& SimulationBuilder::Threads(int num_threads) {
  config_.num_threads = num_threads;
  return *this;
}

SimulationBuilder& SimulationBuilder::Shards(int num_shards) {
  config_.num_shards = num_shards;
  return *this;
}

SimulationBuilder& SimulationBuilder::WithTelemetry(
    telemetry::TelemetrySession* session) {
  config_.telemetry = session;
  return *this;
}

StatusOr<Simulation> SimulationBuilder::Build() const {
  const Workload* workload = borrowed_workload_ != nullptr
                                 ? borrowed_workload_
                                 : owned_workload_.get();
  if (workload == nullptr && stream_path_.empty()) {
    return Status::InvalidArgument(
        "no workload: call GenerateNycDay(), WithWorkload(), "
        "BorrowWorkload() or StreamTrace() before Build()");
  }
  MRVD_RETURN_NOT_OK(config_.Validate());

  Simulation sim;
  sim.generator_ = generator_;
  sim.owned_workload_ = owned_workload_;
  sim.workload_ = workload;
  sim.grid_ = grid_;
  sim.config_ = config_;

  if (!stream_path_.empty()) {
    if (oracle_slots_ > 0) {
      return Status::InvalidArgument(
          "WithOracleForecast() needs a materialised workload (it "
          "accumulates the realized per-slot counts); a streamed trace is "
          "scanned once at run time — derive the forecast offline and pass "
          "WithForecast() instead");
    }
    // Header + driver section only: the shell workload carries the fleet
    // and horizon, and validates the trace before the first Run.
    StatusOr<std::unique_ptr<OrderStreamReader>> reader =
        OrderStreamReader::Open(stream_path_);
    if (!reader.ok()) return reader.status();
    Workload shell;
    shell.drivers = (*reader)->drivers();
    shell.horizon_seconds = (*reader)->info().horizon_seconds;
    sim.owned_workload_ = std::make_shared<const Workload>(std::move(shell));
    sim.workload_ = sim.owned_workload_.get();
    sim.stream_path_ = stream_path_;
    sim.stream_max_orders_ = stream_max_orders_;
  }

  if (borrowed_travel_ != nullptr) {
    sim.travel_ = borrowed_travel_;
  } else {
    sim.owned_travel_ =
        owned_travel_ != nullptr
            ? owned_travel_
            // The workload-derived default: the examples' straight-line
            // taxi model (11 m/s, 1.3 detour factor).
            : std::make_shared<const StraightLineCostModel>(11.0, 1.3);
    sim.travel_ = sim.owned_travel_.get();
  }

  if (oracle_slots_ > 0) {
    DemandHistory realized(1, oracle_slots_, sim.grid_->num_regions());
    MRVD_RETURN_NOT_OK(realized.AccumulateDay(0, *workload, *sim.grid_));
    std::unique_ptr<DemandPredictor> oracle = MakeOraclePredictor();
    StatusOr<DemandForecast> forecast =
        DemandForecast::Build(*oracle, realized, /*eval_day=*/0);
    if (!forecast.ok()) return forecast.status();
    sim.owned_forecast_ =
        std::make_shared<const DemandForecast>(std::move(forecast).value());
    sim.forecast_ = sim.owned_forecast_.get();
  } else if (borrowed_forecast_ != nullptr || owned_forecast_ != nullptr) {
    sim.owned_forecast_ = owned_forecast_;
    sim.forecast_ = borrowed_forecast_ != nullptr ? borrowed_forecast_
                                                  : owned_forecast_.get();
    if (sim.forecast_->num_regions() != sim.grid_->num_regions()) {
      return Status::InvalidArgument(
          "forecast covers " + std::to_string(sim.forecast_->num_regions()) +
          " regions but the grid has " +
          std::to_string(sim.grid_->num_regions()));
    }
  }

  if (borrowed_scenario_ != nullptr) {
    sim.scenario_ = borrowed_scenario_;
  } else if (owned_scenario_ != nullptr) {
    sim.owned_scenario_ = owned_scenario_;
    sim.scenario_ = owned_scenario_.get();
  }
  return sim;
}

}  // namespace mrvd
