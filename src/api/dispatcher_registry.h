// Self-registering dispatcher factory registry — the experiment API's
// replacement for the old MakeDispatcherByName if/else chain.
//
// Every dispatcher registers a factory keyed by its display name together
// with the typed parameters it accepts, so callers assemble dispatchers
// from declarative spec strings:
//
//   "IRG"                 the prediction-guided greedy, no parameters
//   "LS:max_sweeps=8"     local search capped at 8 sweeps
//   "RAND:seed=42"        the random baseline with an explicit seed
//
// Unknown names and malformed parameters fail with a Status naming the
// known roster / the declared parameters — never a silent nullptr.
//
// The built-in roster (IRG, LS, SHORT, RAND, NEAR, LTG, POLAR, UPPER)
// registers itself when the global registry is first touched; out-of-tree
// dispatchers self-register from their own translation unit with a static
// DispatcherRegistrar (see examples/custom_dispatcher.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/batch.h"
#include "util/status.h"

namespace mrvd {

/// One typed parameter a registered dispatcher accepts in its spec string.
struct DispatcherParam {
  enum class Type { kInt64, kDouble };

  std::string name;
  Type type = Type::kInt64;
  /// Default for the declared type (int64 defaults must round-trip through
  /// double exactly, i.e. |value| < 2^53 — parsed overrides are NOT bound
  /// by this: they are stored at full int64 fidelity).
  double default_value = 0.0;
  std::string help;
};

/// Parsed parameter values handed to a factory: every declared parameter is
/// present (spec overrides on top of the declared defaults). Int64 values
/// are stored exactly — never squeezed through a double.
class DispatcherParams {
 public:
  int64_t GetInt(const std::string& name) const { return values_.at(name).i; }
  double GetDouble(const std::string& name) const { return values_.at(name).d; }

 private:
  friend class DispatcherRegistry;
  struct Value {
    int64_t i = 0;
    double d = 0.0;
  };
  std::map<std::string, Value> values_;
};

using DispatcherFactory =
    std::function<std::unique_ptr<Dispatcher>(const DispatcherParams&)>;

/// A dispatcher spec split into its name and raw key=value overrides.
struct ParsedDispatcherSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
};

class DispatcherRegistry {
 public:
  /// The process-wide registry, with the built-in roster pre-registered.
  static DispatcherRegistry& Global();

  /// Registers `factory` under `name`. `params` declares the accepted spec
  /// parameters with their defaults; `requires_zero_pickup_travel` marks
  /// dispatchers (UPPER) that are only meaningful when the engine waives
  /// pickup travel — Simulation::Run applies the flag automatically.
  /// Duplicate names fail with FailedPrecondition (first registration wins).
  Status Register(std::string name, std::vector<DispatcherParam> params,
                  DispatcherFactory factory,
                  bool requires_zero_pickup_travel = false);

  /// Builds a dispatcher from a "NAME" or "NAME:key=value,key=value" spec.
  StatusOr<std::unique_ptr<Dispatcher>> Create(const std::string& spec) const;

  /// Builds from a pre-split name + override list (values still parsed and
  /// type-checked against the declaration).
  StatusOr<std::unique_ptr<Dispatcher>> Create(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& overrides) const;

  /// Splits "NAME:key=value,..." without resolving the name (syntax-only).
  static StatusOr<ParsedDispatcherSpec> ParseSpec(const std::string& spec);

  /// Validates `spec` and returns its canonical form: the name plus the
  /// FULL resolved parameter list (declared defaults with the spec's
  /// overrides applied), sorted by key, values re-formatted at the
  /// declared type ("seed=07" -> "seed=7"). Numerically identical specs —
  /// including ones relying on defaults ("RAND" vs "RAND:seed=1") — map to
  /// one string; the campaign layer hashes this into content keys, so the
  /// key tracks what the dispatcher actually runs with.
  StatusOr<std::string> CanonicalizeSpec(const std::string& spec) const;

  bool Known(const std::string& name) const;
  bool HasParam(const std::string& name, const std::string& param) const;
  /// True for dispatchers that require SimConfig::zero_pickup_travel.
  bool RequiresZeroPickupTravel(const std::string& name) const;

  /// Registered names, sorted — THE roster; tests and benches sweep this
  /// instead of carrying their own name lists.
  std::vector<std::string> Names() const;
  /// "IRG, LS, LTG, ..." for error messages.
  std::string RosterString() const;

 private:
  struct Entry {
    std::vector<DispatcherParam> params;
    DispatcherFactory factory;
    bool requires_zero_pickup_travel = false;
  };

  std::map<std::string, Entry> entries_;
};

/// Self-registration handle: a static DispatcherRegistrar in the dispatcher's
/// translation unit adds it to the global roster before main() runs. A
/// duplicate name logs and keeps the first registration.
class DispatcherRegistrar {
 public:
  DispatcherRegistrar(std::string name, std::vector<DispatcherParam> params,
                      DispatcherFactory factory,
                      bool requires_zero_pickup_travel = false);
};

}  // namespace mrvd
