#include "api/dispatcher_registry.h"

#include <algorithm>
#include <utility>

#include "dispatch/dispatchers.h"
#include "util/logging.h"
#include "util/strings.h"

namespace mrvd {

namespace {

/// Declares the built-in roster (§6.3's eight approaches). Each entry is
/// self-contained: the factory lambda owns its parameter interpretation, so
/// adding an approach never touches a shared if/else chain.
void RegisterBuiltins(DispatcherRegistry* r) {
  auto must = [](Status st) {
    if (!st.ok()) {
      MRVD_LOG(Error) << "built-in dispatcher registration failed: " << st;
    }
  };
  must(r->Register(
      "RAND",
      {{"seed", DispatcherParam::Type::kInt64, 1.0, "RNG seed"}},
      [](const DispatcherParams& p) {
        return MakeRandomDispatcher(static_cast<uint64_t>(p.GetInt("seed")));
      }));
  must(r->Register("NEAR", {}, [](const DispatcherParams&) {
    return MakeNearestDispatcher();
  }));
  must(r->Register("LTG", {}, [](const DispatcherParams&) {
    return MakeLongTripGreedyDispatcher();
  }));
  must(r->Register("IRG", {}, [](const DispatcherParams&) {
    return MakeIrgDispatcher();
  }));
  must(r->Register(
      "LS",
      {{"max_sweeps", DispatcherParam::Type::kInt64, 16.0,
        "local-search pass cap (L_max)"},
       {"parallel", DispatcherParam::Type::kInt64, 1.0,
        "1 = conflict-decomposed parallel sweeps, 0 = sequential sweep"}},
      [](const DispatcherParams& p) {
        return MakeLocalSearchDispatcher(
            static_cast<int>(p.GetInt("max_sweeps")),
            p.GetInt("parallel") != 0);
      }));
  must(r->Register("SHORT", {}, [](const DispatcherParams&) {
    return MakeShortDispatcher();
  }));
  must(r->Register("POLAR", {}, [](const DispatcherParams&) {
    return MakePolarDispatcher();
  }));
  must(r->Register(
      "UPPER", {},
      [](const DispatcherParams&) { return MakeUpperBoundDispatcher(); },
      /*requires_zero_pickup_travel=*/true));
}

std::string DeclaredParamList(const std::vector<DispatcherParam>& params) {
  std::string out;
  for (const auto& p : params) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

}  // namespace

DispatcherRegistry& DispatcherRegistry::Global() {
  static DispatcherRegistry* registry = [] {
    // mrvd-lint: allow(naked-new) — deliberately leaked singleton; a static
    // object would be destroyed at exit while worker threads may still read it
    auto* r = new DispatcherRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

Status DispatcherRegistry::Register(std::string name,
                                    std::vector<DispatcherParam> params,
                                    DispatcherFactory factory,
                                    bool requires_zero_pickup_travel) {
  if (name.empty()) {
    return Status::InvalidArgument("dispatcher name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("dispatcher '" + name +
                                   "' registered without a factory");
  }
  auto [it, inserted] = entries_.try_emplace(
      std::move(name),
      Entry{std::move(params), std::move(factory), requires_zero_pickup_travel});
  if (!inserted) {
    return Status::FailedPrecondition("dispatcher '" + it->first +
                                      "' is already registered");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Dispatcher>> DispatcherRegistry::Create(
    const std::string& spec) const {
  StatusOr<ParsedDispatcherSpec> parsed = ParseSpec(spec);
  if (!parsed.ok()) return parsed.status();
  return Create(parsed->name, parsed->params);
}

StatusOr<std::unique_ptr<Dispatcher>> DispatcherRegistry::Create(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& overrides) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown dispatcher '" + name +
                            "'; known dispatchers: " + RosterString());
  }
  const Entry& entry = it->second;

  DispatcherParams params;
  for (const DispatcherParam& p : entry.params) {
    DispatcherParams::Value value;
    value.d = p.default_value;
    if (p.type == DispatcherParam::Type::kInt64) {
      value.i = static_cast<int64_t>(p.default_value);
    }
    params.values_[p.name] = value;
  }
  for (const auto& [key, raw] : overrides) {
    const DispatcherParam* decl = nullptr;
    for (const DispatcherParam& p : entry.params) {
      if (p.name == key) {
        decl = &p;
        break;
      }
    }
    if (decl == nullptr) {
      return Status::InvalidArgument(
          "dispatcher '" + name + "' has no parameter '" + key + "'" +
          (entry.params.empty()
               ? "; it takes no parameters"
               : "; declared parameters: " + DeclaredParamList(entry.params)));
    }
    if (decl->type == DispatcherParam::Type::kInt64) {
      // Full int64 fidelity (and ParseInt64 rejects overflowing digit
      // strings) — a seed must reach the factory bit-exact or fail loudly.
      StatusOr<int64_t> v = ParseInt64(raw);
      if (!v.ok()) {
        return Status::InvalidArgument("dispatcher '" + name + "' parameter '" +
                                       key + "': not an int64: '" + raw + "'");
      }
      params.values_[key] = {*v, static_cast<double>(*v)};
    } else {
      StatusOr<double> v = ParseDouble(raw);
      if (!v.ok()) {
        return Status::InvalidArgument("dispatcher '" + name + "' parameter '" +
                                       key + "': not a number: '" + raw + "'");
      }
      // .i stays 0: GetInt on a kDouble-declared parameter is a factory
      // bug, and casting an arbitrary double to int64 would be UB.
      params.values_[key] = {0, *v};
    }
  }
  std::unique_ptr<Dispatcher> dispatcher = entry.factory(params);
  if (dispatcher == nullptr) {
    return Status::Internal("factory for dispatcher '" + name +
                            "' returned null");
  }
  return dispatcher;
}

StatusOr<ParsedDispatcherSpec> DispatcherRegistry::ParseSpec(
    const std::string& spec) {
  ParsedDispatcherSpec out;
  std::string_view rest = StripAsciiWhitespace(spec);
  size_t colon = rest.find(':');
  out.name = std::string(StripAsciiWhitespace(rest.substr(0, colon)));
  if (out.name.empty()) {
    return Status::InvalidArgument("empty dispatcher name in spec '" + spec +
                                   "'");
  }
  if (colon == std::string_view::npos) return out;
  MRVD_RETURN_NOT_OK(ParseKeyValueList(rest.substr(colon + 1),
                                       "spec '" + spec + "'", &out.params));
  return out;
}

StatusOr<std::string> DispatcherRegistry::CanonicalizeSpec(
    const std::string& spec) const {
  StatusOr<ParsedDispatcherSpec> parsed = ParseSpec(spec);
  if (!parsed.ok()) return parsed.status();
  auto it = entries_.find(parsed->name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown dispatcher '" + parsed->name +
                            "'; known dispatchers: " + RosterString());
  }
  const Entry& entry = it->second;

  auto format_value = [](const DispatcherParam& decl,
                         const std::string* raw) -> StatusOr<std::string> {
    if (decl.type == DispatcherParam::Type::kInt64) {
      int64_t value = static_cast<int64_t>(decl.default_value);
      if (raw != nullptr) {
        StatusOr<int64_t> v = ParseInt64(*raw);
        if (!v.ok()) {
          return Status::InvalidArgument("parameter '" + decl.name +
                                         "': not an int64: '" + *raw + "'");
        }
        value = *v;
      }
      return std::to_string(value);
    }
    double value = decl.default_value;
    if (raw != nullptr) {
      StatusOr<double> v = ParseDouble(*raw);
      if (!v.ok()) {
        return Status::InvalidArgument("parameter '" + decl.name +
                                       "': not a number: '" + *raw + "'");
      }
      value = *v;
    }
    return FormatDouble(value);
  };

  std::vector<std::pair<std::string, std::string>> canonical;
  canonical.reserve(entry.params.size());
  for (const DispatcherParam& decl : entry.params) {
    const std::string* raw = nullptr;
    for (const auto& [key, value] : parsed->params) {
      if (key == decl.name) {
        raw = &value;
        break;
      }
    }
    StatusOr<std::string> value = format_value(decl, raw);
    if (!value.ok()) {
      return Status::InvalidArgument("dispatcher '" + parsed->name + "' " +
                                     value.status().message());
    }
    canonical.emplace_back(decl.name, std::move(value).value());
  }
  // Unknown override keys fail with the declared list, mirroring Create's
  // diagnostics (typed value validation already happened above).
  for (const auto& [key, unused] : parsed->params) {
    bool declared = false;
    for (const DispatcherParam& decl : entry.params) {
      if (decl.name == key) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Status::InvalidArgument(
          "dispatcher '" + parsed->name + "' has no parameter '" + key + "'" +
          (entry.params.empty()
               ? "; it takes no parameters"
               : "; declared parameters: " + DeclaredParamList(entry.params)));
    }
  }
  std::sort(canonical.begin(), canonical.end());

  std::string out = parsed->name;
  for (size_t i = 0; i < canonical.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += canonical[i].first;
    out += '=';
    out += canonical[i].second;
  }
  return out;
}

bool DispatcherRegistry::Known(const std::string& name) const {
  return entries_.count(name) != 0;
}

bool DispatcherRegistry::HasParam(const std::string& name,
                                  const std::string& param) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  for (const DispatcherParam& p : it->second.params) {
    if (p.name == param) return true;
  }
  return false;
}

bool DispatcherRegistry::RequiresZeroPickupTravel(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.requires_zero_pickup_travel;
}

std::vector<std::string> DispatcherRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, unused] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::string DispatcherRegistry::RosterString() const {
  std::string out;
  for (const auto& [name, unused] : entries_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

DispatcherRegistrar::DispatcherRegistrar(std::string name,
                                         std::vector<DispatcherParam> params,
                                         DispatcherFactory factory,
                                         bool requires_zero_pickup_travel) {
  Status st = DispatcherRegistry::Global().Register(
      std::move(name), std::move(params), std::move(factory),
      requires_zero_pickup_travel);
  if (!st.ok()) {
    MRVD_LOG(Warn) << "dispatcher self-registration ignored: " << st;
  }
}

/// Legacy shim kept for the pre-registry call sites (declared in
/// dispatch/dispatchers.h). Prefer DispatcherRegistry::Create, which
/// reports unknown names with a Status instead of nullptr. The full uint64
/// seed domain is preserved: seeds above int64 max are formatted as their
/// two's-complement int64 (spec parameters are int64), and the factory's
/// cast back to uint64 restores the exact bit pattern.
std::unique_ptr<Dispatcher> MakeDispatcherByName(const std::string& name,
                                                 uint64_t seed,
                                                 int max_sweeps) {
  DispatcherRegistry& registry = DispatcherRegistry::Global();
  std::vector<std::pair<std::string, std::string>> overrides;
  if (registry.HasParam(name, "seed")) {
    overrides.emplace_back("seed",
                           std::to_string(static_cast<int64_t>(seed)));
  }
  if (registry.HasParam(name, "max_sweeps")) {
    overrides.emplace_back("max_sweeps", std::to_string(max_sweeps));
  }
  StatusOr<std::unique_ptr<Dispatcher>> d = registry.Create(name, overrides);
  return d.ok() ? std::move(d).value() : nullptr;
}

}  // namespace mrvd
