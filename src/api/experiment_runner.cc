#include "api/experiment_runner.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "api/dispatcher_registry.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

namespace {

/// A fully resolved run, ready to execute on any worker.
struct ResolvedRun {
  const RunSpec* spec = nullptr;
  std::unique_ptr<Dispatcher> dispatcher;
  SimConfig config;
  const ScenarioScript* scenario = nullptr;  ///< null = unscripted run
};

/// Resolves one spec against the registry and the simulation's defaults
/// (dispatcher construction, config override + zero-pickup trait,
/// replication-seed injection, scenario choice).
StatusOr<ResolvedRun> ResolveRunSpec(const Simulation& simulation,
                                     const RunSpec& spec) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  StatusOr<ParsedDispatcherSpec> parsed =
      DispatcherRegistry::ParseSpec(spec.dispatcher);
  if (!parsed.ok()) return parsed.status();
  if (spec.replication_seed != 0 && registry.HasParam(parsed->name, "seed")) {
    // Two's-complement int64 formatting keeps the full uint64 seed
    // domain through the int64 spec parameter (as the legacy shim does);
    // the factory's cast back to uint64 restores the exact bit pattern.
    std::string seed_value =
        std::to_string(static_cast<int64_t>(spec.replication_seed));
    bool replaced = false;
    for (auto& [key, value] : parsed->params) {
      if (key == "seed") {
        value = seed_value;
        replaced = true;
      }
    }
    if (!replaced) parsed->params.emplace_back("seed", seed_value);
  }
  StatusOr<std::unique_ptr<Dispatcher>> dispatcher =
      registry.Create(parsed->name, parsed->params);
  if (!dispatcher.ok()) return dispatcher.status();

  ResolvedRun run;
  run.spec = &spec;
  run.config = spec.config.has_value() ? *spec.config : simulation.config();
  if (registry.RequiresZeroPickupTravel(parsed->name)) {
    run.config.zero_pickup_travel = true;
  }
  MRVD_RETURN_NOT_OK(run.config.Validate());
  run.scenario = spec.use_scenario ? simulation.scenario() : nullptr;
  run.dispatcher = std::move(dispatcher).value();
  return run;
}

/// Executes a resolved run inline; runs are independent (own dispatcher,
/// Simulator, and — when streaming — stream reader), so the same
/// ResolvedRun gives the same RunResult on any thread of any pool. Fails
/// only on stream I/O errors (Simulation::RunWith), never on engine work.
StatusOr<RunResult> ExecuteResolved(const Simulation& simulation,
                                    ResolvedRun& run) {
  Stopwatch watch;
  StatusOr<SimResult> sim_result = simulation.RunWith(
      run.config, *run.dispatcher, run.scenario, run.spec->observer);
  if (!sim_result.ok()) return sim_result.status();
  RunResult out;
  out.wall_seconds = watch.ElapsedSeconds();
  out.label = run.spec->label.empty() ? run.spec->dispatcher : run.spec->label;
  out.dispatcher = run.dispatcher->name();
  out.spec = run.spec->dispatcher;
  out.replication_seed = run.spec->replication_seed;
  out.result = std::move(sim_result).value();
  return out;
}

}  // namespace

ExperimentRunner::ExperimentRunner(Simulation simulation, int num_threads)
    : simulation_(std::move(simulation)),
      num_threads_(num_threads == 0 ? ThreadPool::HardwareThreads()
                                    : num_threads) {}

StatusOr<std::vector<RunResult>> ExperimentRunner::RunAll(
    const std::vector<RunSpec>& specs) const {
  // Resolve every spec before any run starts: a typo in spec #7 must not
  // cost the wall-clock of specs #1-#6.
  std::vector<ResolvedRun> runs;
  runs.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    StatusOr<ResolvedRun> run = ResolveRunSpec(simulation_, spec);
    if (!run.ok()) return run.status();
    runs.push_back(std::move(run).value());
  }

  // Execute. Runs are independent — each worker gets its own Simulator and
  // dispatcher — so the pool's schedule cannot affect any aggregate and
  // results land in pre-sized, disjoint slots. Failures (a streamed trace
  // turning unreadable mid-sweep) are per-slot; the first one, in spec
  // order, fails the sweep after every worker has finished.
  std::vector<RunResult> results(runs.size());
  std::vector<Status> statuses(runs.size());
  ThreadPool pool(num_threads_);
  pool.ParallelFor(static_cast<int>(runs.size()), [&](int i) {
    StatusOr<RunResult> result =
        ExecuteResolved(simulation_, runs[static_cast<size_t>(i)]);
    if (result.ok()) {
      results[static_cast<size_t>(i)] = std::move(result).value();
    } else {
      statuses[static_cast<size_t>(i)] = result.status();
    }
  });
  for (const Status& st : statuses) MRVD_RETURN_NOT_OK(st);
  return results;
}

StatusOr<RunResult> ExperimentRunner::RunOne(const Simulation& simulation,
                                             const RunSpec& spec) {
  StatusOr<ResolvedRun> run = ResolveRunSpec(simulation, spec);
  if (!run.ok()) return run.status();
  return ExecuteResolved(simulation, *run);
}

void WriteRunResults(JsonWriter& writer,
                     const std::vector<RunResult>& results) {
  writer.BeginArray();
  for (const RunResult& r : results) {
    writer.BeginObject();
    writer.Key("label").String(r.label);
    writer.Key("dispatcher").String(r.dispatcher);
    writer.Key("spec").String(r.spec);
    writer.Key("replication_seed").Number(r.replication_seed);
    writer.Key("wall_seconds").Number(r.wall_seconds);
    writer.Key("revenue").Number(r.result.total_revenue);
    writer.Key("served").Number(r.result.served_orders);
    writer.Key("reneged").Number(r.result.reneged_orders);
    writer.Key("cancelled").Number(r.result.cancelled_orders);
    writer.Key("total_orders").Number(r.result.total_orders);
    writer.Key("service_rate").Number(r.result.ServiceRate());
    writer.Key("num_batches").Number(r.result.num_batches);
    writer.Key("dispatch_ms_mean").Number(r.result.batch_seconds.mean() * 1e3);
    writer.Key("build_ms_mean")
        .Number(r.result.batch_build_seconds.mean() * 1e3);
    writer.Key("wait_mean_s").Number(r.result.served_wait_seconds.mean());
    writer.Key("idle_mean_s").Number(r.result.driver_idle_seconds.mean());
    writer.EndObject();
  }
  writer.EndArray();
}

std::string RunResultsToJson(const std::vector<RunResult>& results) {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.BeginObject();
  writer.Key("runs");
  WriteRunResults(writer, results);
  writer.EndObject();
  os << "\n";
  return os.str();
}

Status WriteRunResultsJsonFile(const std::string& path,
                               const std::vector<RunResult>& results) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return IoErrorFromErrno("could not open '" + path + "' for writing");
  }
  file << RunResultsToJson(results);
  file.flush();
  if (!file) {
    return IoErrorFromErrno("could not write run results to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mrvd
