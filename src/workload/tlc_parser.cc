#include "workload/tlc_parser.h"

#include <algorithm>
#include <cctype>

#include "util/csv.h"
#include "util/rng.h"
#include "util/strings.h"

namespace mrvd {

namespace {

// Days since epoch for a Gregorian date (civil-days algorithm, H. Hinnant).
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

bool ColumnMatches(const std::string& header, const char* needle) {
  std::string lower;
  lower.reserve(header.size());
  for (char c : header) lower.push_back(static_cast<char>(std::tolower(c)));
  return lower.find(needle) != std::string::npos;
}

}  // namespace

StatusOr<int64_t> ParseDateTimeSeconds(const std::string& s) {
  // Expected: "YYYY-MM-DD HH:MM:SS".
  int y, mo, d, h, mi, se;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi, &se) !=
      6) {
    return Status::InvalidArgument("bad datetime: '" + s + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || se < 0 || se > 60) {
    return Status::InvalidArgument("datetime fields out of range: '" + s + "'");
  }
  return DaysFromCivil(y, mo, d) * 86400 + h * 3600 + mi * 60 + se;
}

StatusOr<Workload> ParseTlcCsv(const std::string& path, int num_drivers,
                               const TlcParseOptions& options,
                               TlcParseStats* stats_out) {
  int col_pickup_dt = -1, col_plon = -1, col_plat = -1, col_dlon = -1,
      col_dlat = -1;
  TlcParseStats stats;
  Workload w;
  Rng rng(options.seed);
  int64_t first_midnight = -1;

  auto header_fn = [&](const std::vector<std::string>& h) {
    for (int i = 0; i < static_cast<int>(h.size()); ++i) {
      if (ColumnMatches(h[static_cast<size_t>(i)], "pickup_datetime"))
        col_pickup_dt = i;
      else if (ColumnMatches(h[static_cast<size_t>(i)], "pickup_longitude"))
        col_plon = i;
      else if (ColumnMatches(h[static_cast<size_t>(i)], "pickup_latitude"))
        col_plat = i;
      else if (ColumnMatches(h[static_cast<size_t>(i)], "dropoff_longitude"))
        col_dlon = i;
      else if (ColumnMatches(h[static_cast<size_t>(i)], "dropoff_latitude"))
        col_dlat = i;
    }
  };

  auto row_fn = [&](const std::vector<std::string>& row) -> bool {
    ++stats.rows_total;
    int max_col = std::max({col_pickup_dt, col_plon, col_plat, col_dlon,
                            col_dlat});
    if (max_col < 0 || static_cast<int>(row.size()) <= max_col) {
      ++stats.rows_bad;
      return true;
    }
    auto ts = ParseDateTimeSeconds(row[static_cast<size_t>(col_pickup_dt)]);
    auto plon = ParseDouble(row[static_cast<size_t>(col_plon)]);
    auto plat = ParseDouble(row[static_cast<size_t>(col_plat)]);
    auto dlon = ParseDouble(row[static_cast<size_t>(col_dlon)]);
    auto dlat = ParseDouble(row[static_cast<size_t>(col_dlat)]);
    if (!ts.ok() || !plon.ok() || !plat.ok() || !dlon.ok() || !dlat.ok()) {
      ++stats.rows_bad;
      return true;
    }
    LatLon pickup{*plat, *plon};
    LatLon dropoff{*dlat, *dlon};
    if (!options.box.Contains(pickup) || !options.box.Contains(dropoff)) {
      ++stats.rows_out_of_box;
      return true;
    }
    if (first_midnight < 0) first_midnight = *ts - (*ts % 86400);
    int day = static_cast<int>((*ts - first_midnight) / 86400);
    if (options.day_filter >= 0 && day != options.day_filter) return true;

    Order o;
    o.request_time = static_cast<double>(*ts - first_midnight -
                                         static_cast<int64_t>(options.day_filter >= 0
                                                                  ? options.day_filter
                                                                  : 0) *
                                             86400);
    o.pickup = pickup;
    o.dropoff = dropoff;
    o.pickup_deadline =
        o.request_time +
        rng.Uniform(options.extra_wait_lo, options.extra_wait_hi) +
        options.base_pickup_wait;
    w.orders.push_back(o);
    ++stats.rows_kept;
    return options.max_orders == 0 || stats.rows_kept < options.max_orders;
  };

  MRVD_RETURN_NOT_OK(ReadCsvFile(path, /*has_header=*/true, header_fn, row_fn));
  if (col_pickup_dt < 0 || col_plon < 0 || col_plat < 0 || col_dlon < 0 ||
      col_dlat < 0) {
    return Status::InvalidArgument(
        "TLC header missing pickup/dropoff datetime or coordinate columns");
  }

  std::sort(w.orders.begin(), w.orders.end(),
            [](const Order& a, const Order& b) {
              return a.request_time < b.request_time;
            });
  for (size_t i = 0; i < w.orders.size(); ++i)
    w.orders[i].id = static_cast<OrderId>(i);

  for (int d = 0; d < num_drivers; ++d) {
    DriverSpec spec;
    spec.id = d;
    if (!w.orders.empty()) {
      auto pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(w.orders.size()) - 1));
      spec.origin = w.orders[pick].pickup;
    } else {
      spec.origin = options.box.Center();
    }
    w.drivers.push_back(spec);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return w;
}

}  // namespace mrvd
