// Historical per-region per-time-slot order counts — the training input of
// the offline demand-prediction process (§3.1.1, Appendix A). Layout is a
// dense [day][slot][region] tensor of counts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "workload/types.h"

namespace mrvd {

/// Dense count tensor over days x slots-per-day x regions.
class DemandHistory {
 public:
  DemandHistory(int num_days, int slots_per_day, int num_regions);

  int num_days() const { return num_days_; }
  int slots_per_day() const { return slots_per_day_; }
  int num_regions() const { return num_regions_; }
  /// Total number of (day, slot) time steps.
  int num_steps() const { return num_days_ * slots_per_day_; }

  /// Count accessors. `step` is day * slots_per_day + slot.
  double at(int day, int slot, int region) const {
    return data_[Index(day, slot, region)];
  }
  double at_step(int step, int region) const {
    return data_[static_cast<size_t>(step) * num_regions_ + region];
  }
  void set(int day, int slot, int region, double v) {
    data_[Index(day, slot, region)] = v;
  }
  void add(int day, int slot, int region, double v) {
    data_[Index(day, slot, region)] += v;
  }

  /// Accumulates the orders of `w` as day `day` of this history (bucketed by
  /// request_time and pickup region).
  Status AccumulateDay(int day, const Workload& w, const Grid& grid);

  /// Seconds per slot for a given day horizon.
  static double SlotSeconds(int slots_per_day) {
    return kSecondsPerDay / slots_per_day;
  }

 private:
  size_t Index(int day, int slot, int region) const {
    return (static_cast<size_t>(day) * slots_per_day_ + slot) *
               num_regions_ +
           region;
  }

  int num_days_, slots_per_day_, num_regions_;
  std::vector<double> data_;
};

}  // namespace mrvd
