// Parser for NYC TLC yellow-taxi trip records (§6.1). Supports both the
// 2013-era trip_data schema (medallion, ..., pickup_datetime,
// pickup_longitude, ...) and the modern tpep_* column names; columns are
// located by header name, so extra columns are ignored.
//
// If a dataset file is available, bench binaries will use it instead of the
// synthetic generator (set MRVD_TLC_CSV=/path/to/trips.csv).
#pragma once

#include <string>

#include "geo/point.h"
#include "util/status.h"
#include "workload/types.h"

namespace mrvd {

struct TlcParseOptions {
  /// Rows with pickup/dropoff outside this box are dropped (bad GPS fixes).
  BoundingBox box = kNycBoundingBox;
  /// τ_i = t_i + U[extra_lo, extra_hi] + base_wait, as in §6.2.
  double base_pickup_wait = 120.0;
  double extra_wait_lo = 1.0;
  double extra_wait_hi = 10.0;
  /// Seed for deadline noise and driver-origin sampling.
  uint64_t seed = 20190417;
  /// Keep only trips whose pickup falls on this day of the file, indexed
  /// from the first timestamp seen (-1 = keep all; the paper uses a single
  /// test day, 2013-05-28).
  int day_filter = -1;
  /// Hard cap on parsed orders (0 = unlimited).
  int64_t max_orders = 0;
};

/// Statistics from a parse run.
struct TlcParseStats {
  int64_t rows_total = 0;
  int64_t rows_bad = 0;       ///< unparseable fields
  int64_t rows_out_of_box = 0;
  int64_t rows_kept = 0;
};

/// Parses `path` into a Workload (orders sorted by request time; request
/// times are seconds from the first kept day's midnight). `num_drivers`
/// driver origins are sampled from kept pickup locations.
StatusOr<Workload> ParseTlcCsv(const std::string& path, int num_drivers,
                               const TlcParseOptions& options = {},
                               TlcParseStats* stats = nullptr);

/// Parses "YYYY-MM-DD HH:MM:SS" into seconds since 1970-01-01 (UTC,
/// calendar-exact for the Gregorian range we care about). Returns an error
/// for malformed input.
StatusOr<int64_t> ParseDateTimeSeconds(const std::string& s);

}  // namespace mrvd
