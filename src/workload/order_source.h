// OrderSource: the engine's pull interface for order arrivals. The
// OrderBook injects arrivals with a Peek()/Pop() loop, so it never needs
// the day materialised — a MaterializedOrderSource walks today's
// Workload::orders vector (the default, zero-copy), while a
// StreamingOrderSource drains an OrderStreamReader so a multi-day
// city-scale trace simulates with O(stream buffer + waiting pool) peak
// memory. Both hand out the same records in the same sequence, so results
// are bit-identical either way (tests/order_stream_test.cc enforces this
// across the dispatcher roster).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"
#include "workload/order_stream.h"
#include "workload/types.h"

namespace mrvd {

/// Sequential, rewindable supplier of orders sorted by request time.
class OrderSource {
 public:
  virtual ~OrderSource() = default;

  /// The next order, or null when the source is exhausted or failed
  /// (distinguish via status()). Valid until the next Pop().
  virtual const Order* Peek() = 0;

  /// Consumes the peeked order (no-op when nothing is peeked).
  virtual void Pop() = 0;

  /// Orders this source will deliver over a full drain.
  virtual int64_t total_orders() const = 0;

  /// Orders not yet popped (a peeked-but-unpopped order still counts).
  virtual int64_t remaining() const = 0;

  /// Resets to the first order so one source can feed repeated runs.
  virtual Status Rewind() = 0;

  /// Sticky error state; OK for in-memory sources and healthy streams. A
  /// failed source stops delivering (Peek() == null) with remaining() > 0,
  /// so a run over it can never silently pass as complete.
  virtual Status status() const { return Status::OK(); }
};

/// Borrows a caller-owned order vector (must outlive the source).
class MaterializedOrderSource final : public OrderSource {
 public:
  /// `max_orders` > 0 caps the drain, mirroring a streamed cap.
  explicit MaterializedOrderSource(const std::vector<Order>& orders,
                                   int64_t max_orders = 0);

  const Order* Peek() override;
  void Pop() override;
  int64_t total_orders() const override { return limit_; }
  int64_t remaining() const override { return limit_ - next_; }
  Status Rewind() override;

 private:
  const std::vector<Order>* orders_;
  int64_t limit_;
  int64_t next_ = 0;
};

/// Owns an OrderStreamReader and drains its order section.
class StreamingOrderSource final : public OrderSource {
 public:
  /// `max_orders` > 0 caps the drain below the trace's order count.
  explicit StreamingOrderSource(std::unique_ptr<OrderStreamReader> reader,
                                int64_t max_orders = 0);

  const Order* Peek() override;
  void Pop() override;
  int64_t total_orders() const override { return limit_; }
  int64_t remaining() const override { return limit_ - reader_->consumed(); }
  Status Rewind() override { return reader_->Rewind(); }
  Status status() const override { return reader_->status(); }

  const OrderStreamReader& reader() const { return *reader_; }

 private:
  std::unique_ptr<OrderStreamReader> reader_;
  int64_t limit_;
};

}  // namespace mrvd
