// Core workload records: ride orders (impatient riders, Def. 1) and drivers
// (Def. 2). All times are seconds relative to the workload's day start.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace mrvd {

using OrderId = int64_t;
using DriverId = int64_t;

/// One impatient rider r_i / order o_i (the paper uses rider and order
/// interchangeably: one rider posts exactly one order).
struct Order {
  OrderId id = -1;
  double request_time = 0.0;     ///< t_i, seconds from day start
  LatLon pickup;                 ///< s_i
  LatLon dropoff;                ///< e_i
  double pickup_deadline = 0.0;  ///< τ_i (absolute seconds)
};

/// Initial state of a driver d_j.
struct DriverSpec {
  DriverId id = -1;
  LatLon origin;           ///< l_j(0)
  double join_time = 0.0;  ///< drivers join at day start by default
};

/// A full problem instance: one day of orders plus the driver fleet.
struct Workload {
  std::vector<Order> orders;    ///< sorted by request_time
  std::vector<DriverSpec> drivers;
  double horizon_seconds = 86400.0;
};

inline constexpr double kSecondsPerDay = 86400.0;

}  // namespace mrvd
