#include "workload/demand_history.h"

#include <cassert>

namespace mrvd {

DemandHistory::DemandHistory(int num_days, int slots_per_day, int num_regions)
    : num_days_(num_days),
      slots_per_day_(slots_per_day),
      num_regions_(num_regions) {
  assert(num_days > 0 && slots_per_day > 0 && num_regions > 0);
  data_.assign(static_cast<size_t>(num_days) * slots_per_day * num_regions,
               0.0);
}

Status DemandHistory::AccumulateDay(int day, const Workload& w,
                                    const Grid& grid) {
  if (day < 0 || day >= num_days_) {
    return Status::OutOfRange("day index out of history range");
  }
  if (grid.num_regions() != num_regions_) {
    return Status::InvalidArgument("grid/history region count mismatch");
  }
  const double slot_secs = SlotSeconds(slots_per_day_);
  for (const Order& o : w.orders) {
    int slot = static_cast<int>(o.request_time / slot_secs);
    if (slot < 0) slot = 0;
    if (slot >= slots_per_day_) slot = slots_per_day_ - 1;
    add(day, slot, grid.RegionOf(o.pickup), 1.0);
  }
  return Status::OK();
}

}  // namespace mrvd
