#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mrvd {

namespace {

double Gauss(double x, double mean, double sigma) {
  double d = (x - mean) / sigma;
  return std::exp(-0.5 * d * d);
}

}  // namespace

NycLikeGenerator::NycLikeGenerator(const GeneratorConfig& config)
    : config_(config),
      grid_(config.box, config.grid_rows, config.grid_cols) {
  const int n = grid_.num_regions();
  Rng field_rng(config_.seed);

  // Lay down the two hotspot fields. Hotspot centers are random cells;
  // weight(r) = background + Σ_h peak * gauss(ring distance).
  auto make_field = [&](Rng rng) {
    std::vector<std::pair<double, double>> centers;  // (row, col)
    for (int h = 0; h < config_.hotspots_per_field; ++h) {
      centers.push_back({rng.Uniform(0, grid_.rows()),
                         rng.Uniform(0, grid_.cols())});
    }
    std::vector<double> field(static_cast<size_t>(n), 1.0);
    for (RegionId r = 0; r < n; ++r) {
      double row = grid_.RowOf(r) + 0.5, col = grid_.ColOf(r) + 0.5;
      for (auto& [hr, hc] : centers) {
        double d = std::hypot(row - hr, col - hc);
        field[static_cast<size_t>(r)] +=
            config_.hotspot_peak_ratio *
            Gauss(d, 0.0, config_.hotspot_sigma_cells);
      }
    }
    double sum = 0.0;
    for (double v : field) sum += v;
    for (double& v : field) v /= sum;
    return field;
  };
  residential_ = make_field(field_rng.Fork(1));
  business_ = make_field(field_rng.Fork(2));

  // Diurnal profile over 48 half-hour slots: overnight low, AM peak ~8:30,
  // midday shoulder, PM peak ~18:30.
  weekday_slot_weights_.resize(kSlotsPerDay);
  double sum = 0.0;
  for (int s = 0; s < kSlotsPerDay; ++s) {
    double hour = (s + 0.5) * 0.5;
    double w = 0.25 + 1.0 * Gauss(hour, 8.5, 1.6) + 0.45 * Gauss(hour, 13.0, 2.8) +
               1.1 * Gauss(hour, 18.5, 2.2) + 0.3 * Gauss(hour, 22.5, 1.5);
    weekday_slot_weights_[static_cast<size_t>(s)] = w;
    sum += w;
  }
  for (double& w : weekday_slot_weights_) w /= sum;

  weekend_slot_weights_.resize(kSlotsPerDay);
  sum = 0.0;
  for (int s = 0; s < kSlotsPerDay; ++s) {
    double w = (1.0 - config_.weekend_flatten) *
                   weekday_slot_weights_[static_cast<size_t>(s)] +
               config_.weekend_flatten / kSlotsPerDay;
    weekend_slot_weights_[static_cast<size_t>(s)] = w;
    sum += w;
  }
  for (double& w : weekend_slot_weights_) w /= sum;
}

double NycLikeGenerator::MorningMix(int slot) {
  // Residential-leaning near the AM commute, business-leaning near the PM
  // commute. The amplitude is deliberately partial (±0.25 around 0.5): both
  // fields always contribute, so destination hotspots also generate pickup
  // demand — as in the real city, where the core is busy all day. Fully
  // polarized fields would strand rejoining drivers in rider-free zones.
  double hour = (slot + 0.5) * 0.5;
  return 0.5 + 0.25 * std::cos((hour - 8.5) / 24.0 * 2.0 * M_PI);
}

double NycLikeGenerator::SlotWeight(int day_index, int slot) const {
  const auto& w = IsWeekend(day_index) ? weekend_slot_weights_
                                       : weekday_slot_weights_;
  return w[static_cast<size_t>(slot)];
}

double NycLikeGenerator::OriginShare(int slot, RegionId region) const {
  double m = MorningMix(slot);
  return m * residential_[static_cast<size_t>(region)] +
         (1.0 - m) * business_[static_cast<size_t>(region)];
}

double NycLikeGenerator::ExpectedSlotCount(int day_index, int slot,
                                           RegionId region) const {
  double day_scale = IsWeekend(day_index) ? config_.weekend_scale : 1.0;
  return config_.orders_per_day * day_scale * SlotWeight(day_index, slot) *
         OriginShare(slot, region);
}

double NycLikeGenerator::ExpectedPerMinuteRate(int day_index,
                                               int minute_of_day,
                                               RegionId region) const {
  int slot = std::clamp(minute_of_day / 30, 0, kSlotsPerDay - 1);
  return ExpectedSlotCount(day_index, slot, region) / 30.0;
}

LatLon NycLikeGenerator::RandomPointIn(RegionId region, Rng& rng) const {
  BoundingBox cell = grid_.CellBox(region);
  return {rng.Uniform(cell.lat_min, cell.lat_max),
          rng.Uniform(cell.lon_min, cell.lon_max)};
}

RegionId NycLikeGenerator::SampleDestination(int slot, RegionId from,
                                             Rng& rng) const {
  // Destination field is the *opposite* mix of the origin field: morning
  // trips end at business hotspots, evening trips end at residential ones.
  double m = MorningMix(slot);
  const int n = grid_.num_regions();
  auto dest_share = [&](RegionId r) {
    return (1.0 - m) * residential_[static_cast<size_t>(r)] +
           m * business_[static_cast<size_t>(r)];
  };

  bool local = rng.Bernoulli(config_.local_dest_prob);
  // Inverse-CDF over the (possibly gravity-damped) destination weights.
  double total = 0.0;
  thread_local std::vector<double> weights;
  weights.assign(static_cast<size_t>(n), 0.0);
  for (RegionId r = 0; r < n; ++r) {
    double w = dest_share(r);
    if (local) {
      double d = grid_.RingDistance(from, r);
      w *= std::exp(-d / config_.gravity_scale_cells);
    }
    weights[static_cast<size_t>(r)] = w;
    total += w;
  }
  double u = rng.NextDouble() * total;
  double acc = 0.0;
  for (RegionId r = 0; r < n; ++r) {
    acc += weights[static_cast<size_t>(r)];
    if (u <= acc) return r;
  }
  return static_cast<RegionId>(n - 1);
}

std::vector<double> NycLikeGenerator::DestinationDistribution(
    int day_index, int slot, RegionId from) const {
  (void)day_index;
  double m = MorningMix(slot);
  const int n = grid_.num_regions();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  // Marginal over the local/global mixture.
  double total_local = 0.0, total_global = 0.0;
  std::vector<double> local_w(static_cast<size_t>(n));
  for (RegionId r = 0; r < n; ++r) {
    double base = (1.0 - m) * residential_[static_cast<size_t>(r)] +
                  m * business_[static_cast<size_t>(r)];
    double d = grid_.RingDistance(from, r);
    local_w[static_cast<size_t>(r)] =
        base * std::exp(-d / config_.gravity_scale_cells);
    total_local += local_w[static_cast<size_t>(r)];
    out[static_cast<size_t>(r)] = base;
    total_global += base;
  }
  for (RegionId r = 0; r < n; ++r) {
    auto i = static_cast<size_t>(r);
    out[i] = config_.local_dest_prob * local_w[i] / total_local +
             (1.0 - config_.local_dest_prob) * out[i] / total_global;
  }
  return out;
}

Workload NycLikeGenerator::GenerateDay(int day_index, int num_drivers) const {
  Rng rng = Rng(config_.seed).Fork(0x1000 + static_cast<uint64_t>(day_index));
  Workload w;
  w.horizon_seconds = kSecondsPerDay;
  const double slot_secs = kSecondsPerDay / kSlotsPerDay;

  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    for (RegionId r = 0; r < grid_.num_regions(); ++r) {
      double mean = ExpectedSlotCount(day_index, slot, r);
      int64_t count = rng.Poisson(mean);
      for (int64_t c = 0; c < count; ++c) {
        Order o;
        o.request_time = slot * slot_secs + rng.Uniform(0.0, slot_secs);
        o.pickup = RandomPointIn(r, rng);
        RegionId dest = SampleDestination(slot, r, rng);
        o.dropoff = RandomPointIn(dest, rng);
        o.pickup_deadline =
            o.request_time +
            rng.Uniform(config_.extra_wait_lo, config_.extra_wait_hi) +
            config_.base_pickup_wait;
        w.orders.push_back(o);
      }
    }
  }
  std::sort(w.orders.begin(), w.orders.end(),
            [](const Order& a, const Order& b) {
              return a.request_time < b.request_time;
            });
  for (size_t i = 0; i < w.orders.size(); ++i) {
    w.orders[i].id = static_cast<OrderId>(i);
  }

  // Driver origins = pickup locations of randomly selected orders (§6.2).
  w.drivers.reserve(static_cast<size_t>(num_drivers));
  for (int d = 0; d < num_drivers; ++d) {
    DriverSpec spec;
    spec.id = d;
    if (!w.orders.empty()) {
      auto pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(w.orders.size()) - 1));
      spec.origin = w.orders[pick].pickup;
    } else {
      spec.origin = grid_.box().Center();
    }
    spec.join_time = 0.0;
    w.drivers.push_back(spec);
  }
  return w;
}

DemandHistory NycLikeGenerator::GenerateHistory(int num_days,
                                                int slots_per_day) const {
  DemandHistory hist(num_days, slots_per_day, grid_.num_regions());
  Rng rng = Rng(config_.seed).Fork(0x2000);
  // Counts are Poisson around the intensity, aggregated/split to the
  // requested slot resolution (the intensity is piecewise-constant over
  // 30-minute slots).
  const double slot_secs = kSecondsPerDay / slots_per_day;
  for (int day = 0; day < num_days; ++day) {
    for (int slot = 0; slot < slots_per_day; ++slot) {
      double t0 = slot * slot_secs;
      double t1 = t0 + slot_secs;
      for (RegionId r = 0; r < grid_.num_regions(); ++r) {
        // Integrate the 30-min intensity over [t0, t1).
        double mean = 0.0;
        int s0 = static_cast<int>(t0 / 1800.0);
        int s1 = static_cast<int>((t1 - 1e-9) / 1800.0);
        for (int s = s0; s <= s1 && s < kSlotsPerDay; ++s) {
          double lo = std::max(t0, s * 1800.0);
          double hi = std::min(t1, (s + 1) * 1800.0);
          mean += ExpectedSlotCount(day, s, r) * (hi - lo) / 1800.0;
        }
        hist.set(day, slot, r, static_cast<double>(rng.Poisson(mean)));
      }
    }
  }
  return hist;
}

DemandHistory NycLikeGenerator::RealizedCounts(const Workload& day,
                                               int slots_per_day) const {
  DemandHistory hist(1, slots_per_day, grid_.num_regions());
  Status st = hist.AccumulateDay(0, day, grid_);
  assert(st.ok());
  (void)st;
  return hist;
}

}  // namespace mrvd
