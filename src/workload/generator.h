// Synthetic NYC-like workload generator.
//
// Substitute for the (non-redistributable) NYC TLC yellow-taxi trips the
// paper evaluates on (§6.1). The generator produces per-region inhomogeneous
// Poisson order arrivals over the paper's 16x16 grid and bounding box with:
//   * a diurnal rate profile with AM and PM peaks,
//   * two static spatial fields ("residential" and "business" hotspots)
//     whose mixing rotates through the day, so morning flow runs
//     residential -> business and evening flow reverses — reproducing the
//     demand/supply imbalance that motivates the paper (Example 1),
//   * gravity-kernel destination choice (most trips are short; §6.6 notes
//     most NYC taxi trips are under 20 minutes),
//   * day-of-week modulation for multi-day training histories.
//
// Because arrivals are Poisson by construction, the Appendix-B chi-square
// validation holds on this data, and the queueing model's inputs are
// exercised in all three regimes (λ>μ, λ<μ, λ≈μ).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "util/rng.h"
#include "workload/demand_history.h"
#include "workload/types.h"

namespace mrvd {

/// Configuration; defaults reproduce the paper's setup (Table 2 defaults,
/// 282,255 orders/day, 16x16 NYC grid).
struct GeneratorConfig {
  int grid_rows = 16;
  int grid_cols = 16;
  BoundingBox box = kNycBoundingBox;

  double orders_per_day = 282255.0;

  /// Pickup deadline: τ_i = t_i + U[extra_lo, extra_hi] + base_wait (§6.2).
  double base_pickup_wait = 120.0;
  double extra_wait_lo = 1.0;
  double extra_wait_hi = 10.0;

  /// Hotspot fields. The strong concentration mirrors yellow-taxi demand,
  /// which is dominated by the Manhattan core (Fig. 5): most pickups land
  /// in a handful of dense cells, which is what makes post-dropoff
  /// re-matching fast there and starves the periphery.
  int hotspots_per_field = 4;
  double hotspot_sigma_cells = 2.0;
  double hotspot_peak_ratio = 30.0;  ///< peak weight over background

  /// Destination choice: probability of gravity-local destination vs.
  /// global popularity draw, and the gravity decay length in cells. The
  /// defaults give a ~17-minute mean trip at taxi speeds — calibrated so
  /// that the paper's default fleet (3K drivers) runs near saturation, as
  /// its reported revenue-vs-fleet-capacity ratio implies.
  double local_dest_prob = 0.55;
  double gravity_scale_cells = 3.0;

  /// Weekend demand multiplier and profile flattening.
  double weekend_scale = 0.85;
  double weekend_flatten = 0.35;

  uint64_t seed = 20190417;  ///< master seed (ICDE'19 nod)
};

/// Deterministic generator: the same (config, day_index) always produces the
/// same day; different day indices are independent Poisson draws around the
/// same day-of-week intensity.
class NycLikeGenerator {
 public:
  explicit NycLikeGenerator(const GeneratorConfig& config = {});

  const Grid& grid() const { return grid_; }
  const GeneratorConfig& config() const { return config_; }

  /// Expected number of orders originating in `region` during 30-minute slot
  /// `slot` (0..47) of day `day_index` (day-of-week = day_index % 7).
  double ExpectedSlotCount(int day_index, int slot, RegionId region) const;

  /// Expected per-minute order rate (= ExpectedSlotCount / 30).
  double ExpectedPerMinuteRate(int day_index, int minute_of_day,
                               RegionId region) const;

  /// Generates one full day of orders (sorted by request time) plus
  /// `num_drivers` drivers whose origins are the pickup locations of
  /// randomly selected orders (§6.2).
  Workload GenerateDay(int day_index, int num_drivers) const;

  /// Generates a count-level training history of `num_days` days with
  /// `slots_per_day` slots (counts are Poisson draws around the intensity,
  /// matching what AccumulateDay over GenerateDay would produce).
  DemandHistory GenerateHistory(int num_days, int slots_per_day) const;

  /// The realized per-slot counts of one generated day, as a history with a
  /// single day (used by the oracle "Real" predictor in Table 4).
  DemandHistory RealizedCounts(const Workload& day, int slots_per_day) const;

  /// Destination-region share for origin `from` in slot `slot` — exposed for
  /// tests and the Table-8 driver-side chi-square (rejoined drivers are born
  /// at order destinations).
  std::vector<double> DestinationDistribution(int day_index, int slot,
                                              RegionId from) const;

 private:
  static constexpr int kSlotsPerDay = 48;  ///< 30-minute slots

  /// Slot weight of time-of-day (sums to 1 across a weekday).
  double SlotWeight(int day_index, int slot) const;
  /// Origin field value for a region at a slot (normalized across regions).
  double OriginShare(int slot, RegionId region) const;
  bool IsWeekend(int day_index) const { return day_index % 7 >= 5; }
  /// Morning-ness in [0,1] for mixing residential/business fields.
  static double MorningMix(int slot);

  RegionId SampleDestination(int slot, RegionId from, Rng& rng) const;
  LatLon RandomPointIn(RegionId region, Rng& rng) const;

  GeneratorConfig config_;
  Grid grid_;
  std::vector<double> residential_;  ///< normalized field over regions
  std::vector<double> business_;     ///< normalized field over regions
  std::vector<double> weekday_slot_weights_;  ///< 48, sums to 1
  std::vector<double> weekend_slot_weights_;  ///< 48, sums to 1
};

}  // namespace mrvd
