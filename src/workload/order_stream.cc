#include "workload/order_stream.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mrvd {

namespace {

// ---------------------------------------------------------------------
// Little-endian field codecs (the static_assert in the header guarantees
// host order == disk order, so these are straight memcpys the compiler
// folds into unaligned loads/stores).

void PutU32(unsigned char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutI64(unsigned char* p, int64_t v) { std::memcpy(p, &v, 8); }
void PutF64(unsigned char* p, double v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
int64_t GetI64(const unsigned char* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
double GetF64(const unsigned char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

// Header layout (64 bytes):
//   [0]  magic[8]
//   [8]  u32 version
//   [12] u32 header_bytes (= 64; lets future versions grow the header)
//   [16] i64 driver_count
//   [24] i64 order_count
//   [32] f64 horizon_seconds
//   [40] f64 first_request_time
//   [48] f64 last_request_time
//   [56] u64 reserved (0)

void EncodeHeader(unsigned char* p, const OrderTraceInfo& info) {
  std::memcpy(p, kOrderTraceMagic, 8);
  PutU32(p + 8, info.version);
  PutU32(p + 12, static_cast<uint32_t>(kOrderTraceHeaderBytes));
  PutI64(p + 16, info.driver_count);
  PutI64(p + 24, info.order_count);
  PutF64(p + 32, info.horizon_seconds);
  PutF64(p + 40, info.first_request_time);
  PutF64(p + 48, info.last_request_time);
  PutI64(p + 56, 0);
}

void EncodeDriver(unsigned char* p, const DriverSpec& d) {
  PutI64(p + 0, d.id);
  PutF64(p + 8, d.origin.lat);
  PutF64(p + 16, d.origin.lon);
  PutF64(p + 24, d.join_time);
}

DriverSpec DecodeDriver(const unsigned char* p) {
  DriverSpec d;
  d.id = GetI64(p + 0);
  d.origin.lat = GetF64(p + 8);
  d.origin.lon = GetF64(p + 16);
  d.join_time = GetF64(p + 24);
  return d;
}

void EncodeOrder(unsigned char* p, const Order& o) {
  PutI64(p + 0, o.id);
  PutF64(p + 8, o.request_time);
  PutF64(p + 16, o.pickup.lat);
  PutF64(p + 24, o.pickup.lon);
  PutF64(p + 32, o.dropoff.lat);
  PutF64(p + 40, o.dropoff.lon);
  PutF64(p + 48, o.pickup_deadline);
}

void DecodeOrder(const unsigned char* p, Order* o) {
  o->id = GetI64(p + 0);
  o->request_time = GetF64(p + 8);
  o->pickup.lat = GetF64(p + 16);
  o->pickup.lon = GetF64(p + 24);
  o->dropoff.lat = GetF64(p + 32);
  o->dropoff.lon = GetF64(p + 40);
  o->pickup_deadline = GetF64(p + 48);
}

int64_t ExpectedFileBytes(int64_t driver_count, int64_t order_count) {
  return static_cast<int64_t>(kOrderTraceHeaderBytes) +
         driver_count * static_cast<int64_t>(kDriverRecordBytes) +
         order_count * static_cast<int64_t>(kOrderRecordBytes);
}

}  // namespace

// ---------------------------------------------------------------------
// OrderStreamWriter

OrderStreamWriter::OrderStreamWriter(std::FILE* file, std::string path,
                                     std::string tmp_path,
                                     double horizon_seconds)
    : file_(file),
      path_(std::move(path)),
      tmp_path_(std::move(tmp_path)),
      horizon_seconds_(horizon_seconds) {}

StatusOr<std::unique_ptr<OrderStreamWriter>> OrderStreamWriter::Create(
    const std::string& path, double horizon_seconds) {
  std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return IoErrorFromErrno("could not open '" + tmp + "' for writing");
  }
  // Placeholder header; Finish() backpatches the real counts and span. A
  // reader opening the temp file mid-write sees order_count = -1, which
  // fails validation — only the rename publishes a readable trace.
  unsigned char header[kOrderTraceHeaderBytes];
  OrderTraceInfo placeholder;
  placeholder.driver_count = -1;
  placeholder.order_count = -1;
  EncodeHeader(header, placeholder);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    Status st = IoErrorFromErrno("could not write '" + tmp + "'");
    std::fclose(file);
    std::remove(tmp.c_str());
    return st;
  }
  return std::unique_ptr<OrderStreamWriter>(
      // mrvd-lint: allow(naked-new) — private ctor, make_unique can't reach it;
      // the result is owned by the unique_ptr on the surrounding line
      new OrderStreamWriter(file, path, std::move(tmp), horizon_seconds));
}

OrderStreamWriter::~OrderStreamWriter() {
  if (file_ != nullptr) {  // abandoned before Finish(): leave nothing behind
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status OrderStreamWriter::AddDriver(const DriverSpec& driver) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("order-trace writer for '" + path_ +
                                      "' is already finished");
  }
  if (orders_written_ > 0) {
    return Status::FailedPrecondition(
        "drivers must be written before orders (the driver section "
        "precedes the order section in '" + path_ + "')");
  }
  unsigned char rec[kDriverRecordBytes];
  EncodeDriver(rec, driver);
  if (std::fwrite(rec, 1, sizeof(rec), file_) != sizeof(rec)) {
    return IoErrorFromErrno("could not write driver record to '" +
                            tmp_path_ + "'");
  }
  ++drivers_written_;
  return Status::OK();
}

Status OrderStreamWriter::AddOrder(const Order& order) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("order-trace writer for '" + path_ +
                                      "' is already finished");
  }
  if (!(order.request_time >= (orders_written_ == 0 ? -1e300
                                                    : last_request_))) {
    return Status::InvalidArgument(
        "orders must be appended in non-decreasing request-time order: "
        "order " + std::to_string(order.id) + " at t=" +
        std::to_string(order.request_time) + " after t=" +
        std::to_string(last_request_));
  }
  unsigned char rec[kOrderRecordBytes];
  EncodeOrder(rec, order);
  if (std::fwrite(rec, 1, sizeof(rec), file_) != sizeof(rec)) {
    return IoErrorFromErrno("could not write order record to '" +
                            tmp_path_ + "'");
  }
  if (orders_written_ == 0) first_request_ = order.request_time;
  last_request_ = order.request_time;
  ++orders_written_;
  return Status::OK();
}

Status OrderStreamWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("order-trace writer for '" + path_ +
                                      "' is already finished");
  }
  OrderTraceInfo info;
  info.driver_count = drivers_written_;
  info.order_count = orders_written_;
  info.horizon_seconds = horizon_seconds_ > 0.0
                             ? horizon_seconds_
                             : last_request_ + 1200.0;
  info.first_request_time = first_request_;
  info.last_request_time = last_request_;
  unsigned char header[kOrderTraceHeaderBytes];
  EncodeHeader(header, info);

  std::FILE* file = file_;
  file_ = nullptr;  // the writer is spent whatever happens next
  Status st = Status::OK();
  if (std::fseek(file, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    st = IoErrorFromErrno("could not backpatch the header of '" +
                          tmp_path_ + "'");
  }
  if (st.ok() && std::fclose(file) != 0) {
    st = IoErrorFromErrno("could not flush '" + tmp_path_ + "'");
  } else if (!st.ok()) {
    std::fclose(file);
  }
  if (st.ok() && std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    st = IoErrorFromErrno("could not rename '" + tmp_path_ + "' to '" +
                          path_ + "'");
  }
  if (!st.ok()) std::remove(tmp_path_.c_str());
  return st;
}

// ---------------------------------------------------------------------
// OrderStreamReader

OrderStreamReader::OrderStreamReader(std::FILE* file, std::string path,
                                     size_t buffer_bytes)
    : file_(file), path_(std::move(path)) {
  buffer_.resize(std::max<size_t>(buffer_bytes, 1));
}

OrderStreamReader::~OrderStreamReader() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<OrderStreamReader>> OrderStreamReader::Open(
    const std::string& path, size_t buffer_bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoErrorFromErrno("could not open order trace '" + path + "'");
  }
  std::unique_ptr<OrderStreamReader> reader(
      // mrvd-lint: allow(naked-new) — private ctor, make_unique can't reach it;
      // the result is owned by the unique_ptr on the surrounding line
      new OrderStreamReader(file, path, buffer_bytes));

  unsigned char header[kOrderTraceHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
    return Status::IoError("'" + path + "' is too short to be an order "
                           "trace (no complete " +
                           std::to_string(kOrderTraceHeaderBytes) +
                           "-byte header)");
  }
  if (std::memcmp(header, kOrderTraceMagic, 8) != 0) {
    return Status::InvalidArgument(
        "'" + path + "' is not an order trace (bad magic); convert CSVs "
        "with tlc_to_trace or `campaign convert` first");
  }
  OrderTraceInfo& info = reader->info_;
  info.version = GetU32(header + 8);
  if (info.version != kOrderTraceVersion) {
    return Status::InvalidArgument(
        "order trace '" + path + "' has format version " +
        std::to_string(info.version) + "; this build reads version " +
        std::to_string(kOrderTraceVersion) + " — re-run the converter");
  }
  const uint32_t header_bytes = GetU32(header + 12);
  if (header_bytes != kOrderTraceHeaderBytes) {
    return Status::InvalidArgument(
        "order trace '" + path + "' declares a " +
        std::to_string(header_bytes) + "-byte header (expected " +
        std::to_string(kOrderTraceHeaderBytes) + "); the file is corrupt");
  }
  info.driver_count = GetI64(header + 16);
  info.order_count = GetI64(header + 24);
  info.horizon_seconds = GetF64(header + 32);
  info.first_request_time = GetF64(header + 40);
  info.last_request_time = GetF64(header + 48);
  if (info.driver_count < 0 || info.order_count < 0) {
    return Status::InvalidArgument(
        "order trace '" + path + "' has negative record counts (" +
        std::to_string(info.driver_count) + " drivers, " +
        std::to_string(info.order_count) +
        " orders); the header was never finalised or is corrupt");
  }

  // The expected length is a pure function of the header; verify it now so
  // truncation is an actionable open-time error, not an EOF mid-run.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return IoErrorFromErrno("could not seek '" + path + "'");
  }
  const int64_t actual = static_cast<int64_t>(std::ftell(file));
  const int64_t expected =
      ExpectedFileBytes(info.driver_count, info.order_count);
  if (actual < expected) {
    const int64_t missing_bytes = expected - actual;
    return Status::IoError(
        "order trace '" + path + "' is truncated: header promises " +
        std::to_string(expected) + " bytes (" +
        std::to_string(info.driver_count) + " drivers + " +
        std::to_string(info.order_count) + " orders) but the file has " +
        std::to_string(actual) + " — " + std::to_string(missing_bytes) +
        " bytes (~" +
        std::to_string((missing_bytes + kOrderRecordBytes - 1) /
                       kOrderRecordBytes) +
        " order records) are missing");
  }
  if (actual > expected) {
    return Status::InvalidArgument(
        "order trace '" + path + "' has " +
        std::to_string(actual - expected) +
        " trailing bytes beyond the " + std::to_string(expected) +
        " the header promises; the file is corrupt");
  }
  info.file_bytes = actual;

  // Driver section: materialised eagerly (it is tiny next to the orders).
  if (std::fseek(file, static_cast<long>(kOrderTraceHeaderBytes),
                 SEEK_SET) != 0) {
    return IoErrorFromErrno("could not seek '" + path + "'");
  }
  reader->drivers_.reserve(static_cast<size_t>(info.driver_count));
  unsigned char rec[kDriverRecordBytes];
  for (int64_t j = 0; j < info.driver_count; ++j) {
    if (std::fread(rec, 1, sizeof(rec), file) != sizeof(rec)) {
      return IoErrorFromErrno("could not read driver record " +
                              std::to_string(j) + " of '" + path + "'");
    }
    reader->drivers_.push_back(DecodeDriver(rec));
  }
  reader->orders_offset_ =
      static_cast<int64_t>(kOrderTraceHeaderBytes) +
      info.driver_count * static_cast<int64_t>(kDriverRecordBytes);
  return reader;
}

bool OrderStreamReader::ReadRecord(unsigned char* out) {
  size_t got = 0;
  while (got < kOrderRecordBytes) {
    if (buf_pos_ == buf_end_) {  // refill on drain
      const size_t n = std::fread(buffer_.data(), 1, buffer_.size(), file_);
      if (n == 0) {
        // Open() verified the length, so this means the file shrank (or an
        // I/O error hit) underneath us.
        status_ = std::ferror(file_) != 0
                      ? IoErrorFromErrno("read error in order trace '" +
                                         path_ + "'")
                      : Status::IoError(
                            "order trace '" + path_ +
                            "' ended early at order record " +
                            std::to_string(consumed_) + " of " +
                            std::to_string(info_.order_count) +
                            "; the file changed since it was opened");
        return false;
      }
      buf_pos_ = 0;
      buf_end_ = n;
    }
    const size_t take =
        std::min(kOrderRecordBytes - got, buf_end_ - buf_pos_);
    std::memcpy(out + got, buffer_.data() + buf_pos_, take);
    buf_pos_ += take;
    got += take;
  }
  return true;
}

const Order* OrderStreamReader::Peek() {
  if (current_valid_) return &current_;
  if (!status_.ok() || consumed_ >= info_.order_count) return nullptr;
  unsigned char rec[kOrderRecordBytes];
  if (!ReadRecord(rec)) return nullptr;
  DecodeOrder(rec, &current_);
  if (consumed_ > 0 && !(current_.request_time >= prev_request_)) {
    status_ = Status::InvalidArgument(
        "order trace '" + path_ + "' is not sorted by request time: "
        "record " + std::to_string(consumed_) + " has t=" +
        std::to_string(current_.request_time) + " after t=" +
        std::to_string(prev_request_) +
        " (NaN or out of order); the file is corrupt");
    return nullptr;
  }
  current_valid_ = true;
  return &current_;
}

void OrderStreamReader::Pop() {
  if (!current_valid_) return;
  prev_request_ = current_.request_time;
  current_valid_ = false;
  ++consumed_;
}

Status OrderStreamReader::Rewind() {
  std::clearerr(file_);
  if (std::fseek(file_, static_cast<long>(orders_offset_), SEEK_SET) != 0) {
    return IoErrorFromErrno("could not rewind order trace '" + path_ + "'");
  }
  buf_pos_ = buf_end_ = 0;
  current_valid_ = false;
  consumed_ = 0;
  prev_request_ = 0.0;
  status_ = Status::OK();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Whole-trace helpers

Status WriteOrderTrace(const std::string& path, const Workload& workload) {
  StatusOr<std::unique_ptr<OrderStreamWriter>> writer =
      OrderStreamWriter::Create(path, workload.horizon_seconds);
  if (!writer.ok()) return writer.status();
  for (const DriverSpec& d : workload.drivers) {
    MRVD_RETURN_NOT_OK((*writer)->AddDriver(d));
  }
  for (const Order& o : workload.orders) {
    MRVD_RETURN_NOT_OK((*writer)->AddOrder(o));
  }
  return (*writer)->Finish();
}

StatusOr<Workload> ReadOrderTrace(const std::string& path,
                                  int64_t max_orders) {
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path);
  if (!reader.ok()) return reader.status();
  Workload workload;
  workload.drivers = (*reader)->drivers();
  workload.horizon_seconds = (*reader)->info().horizon_seconds;
  int64_t keep = (*reader)->info().order_count;
  if (max_orders > 0) keep = std::min(keep, max_orders);
  workload.orders.reserve(static_cast<size_t>(keep));
  while (static_cast<int64_t>(workload.orders.size()) < keep) {
    const Order* o = (*reader)->Peek();
    if (o == nullptr) break;
    workload.orders.push_back(*o);
    (*reader)->Pop();
  }
  MRVD_RETURN_NOT_OK((*reader)->status());
  return workload;
}

StatusOr<OrderTraceInfo> ReadOrderTraceInfo(const std::string& path) {
  // Open() with the minimum buffer: header + drivers only are read, and
  // nothing survives past the return.
  StatusOr<std::unique_ptr<OrderStreamReader>> reader =
      OrderStreamReader::Open(path, /*buffer_bytes=*/1);
  if (!reader.ok()) return reader.status();
  return (*reader)->info();
}

Status ConvertTlcCsvToTrace(const std::string& csv_path,
                            const std::string& trace_path, int num_drivers,
                            const TlcParseOptions& options,
                            TlcParseStats* stats) {
  // ParseTlcCsv consumes the CSV row by row (line-buffered); memory is
  // O(kept records), never O(file text) — the sort by request time that
  // the trace format requires needs the kept records in one place anyway.
  StatusOr<Workload> workload = ParseTlcCsv(csv_path, num_drivers, options,
                                            stats);
  if (!workload.ok()) return workload.status();
  return WriteOrderTrace(trace_path, *workload);
}

}  // namespace mrvd
