// Versioned binary order-trace format plus a buffered streaming reader —
// the city-scale ingestion path. A trace is a complete problem instance in
// one flat file:
//
//   [64-byte header]  magic "MRVDTRC\n", format version, driver/order
//                     counts, horizon and request-time span
//   [driver section]  driver_count fixed 32-byte records (id, origin,
//                     join time) — materialised eagerly on open (fleets
//                     are thousands, not millions)
//   [order section]   order_count fixed 56-byte records (id, request
//                     time, pickup, dropoff, deadline), sorted by
//                     request time — streamed through a refill-on-drain
//                     buffer, so a multi-day city trace simulates with
//                     O(buffer + waiting pool) memory instead of O(day)
//
// All fields are little-endian (enforced at compile time; every target we
// build for is little-endian). Records are fixed-size so the expected file
// length is a pure function of the header — OrderStreamReader::Open
// cross-checks it against the actual size and reports truncation with the
// missing-record count up front, instead of a surprise EOF mid-run.
// Writers go through temp-then-rename, so readers (and crashed converts)
// never observe a half-written trace.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/tlc_parser.h"
#include "workload/types.h"

namespace mrvd {

static_assert(std::endian::native == std::endian::little,
              "the order-trace format is little-endian on disk; add byte "
              "swapping before building for a big-endian target");

inline constexpr char kOrderTraceMagic[8] = {'M', 'R', 'V', 'D',
                                             'T', 'R', 'C', '\n'};
inline constexpr uint32_t kOrderTraceVersion = 1;
inline constexpr size_t kOrderTraceHeaderBytes = 64;
inline constexpr size_t kDriverRecordBytes = 32;  ///< id, lat, lon, join
inline constexpr size_t kOrderRecordBytes = 56;   ///< id, t, s_i, e_i, τ
inline constexpr size_t kDefaultStreamBufferBytes = size_t{1} << 20;

/// Decoded trace header.
struct OrderTraceInfo {
  uint32_t version = kOrderTraceVersion;
  int64_t driver_count = 0;
  int64_t order_count = 0;
  double horizon_seconds = 0.0;      ///< Workload::horizon_seconds
  double first_request_time = 0.0;   ///< 0 when the trace has no orders
  double last_request_time = 0.0;
  int64_t file_bytes = 0;            ///< total on-disk size (derived)
};

/// Sequential trace writer. Drivers first, then orders in non-decreasing
/// request-time order (enforced — the reader and the engine rely on it).
/// Everything lands in `path + ".tmp"`; Finish() backpatches the header
/// with the final counts/span and renames into place. A writer destroyed
/// without Finish() removes its temp file, leaving no trace behind.
class OrderStreamWriter {
 public:
  /// `horizon_seconds` <= 0 derives the horizon at Finish() as the last
  /// request time plus the default patience window (20 min).
  static StatusOr<std::unique_ptr<OrderStreamWriter>> Create(
      const std::string& path, double horizon_seconds);

  ~OrderStreamWriter();
  OrderStreamWriter(const OrderStreamWriter&) = delete;
  OrderStreamWriter& operator=(const OrderStreamWriter&) = delete;

  /// Fails once any order has been written (the driver section precedes
  /// the order section on disk).
  Status AddDriver(const DriverSpec& driver);

  /// Fails when `order.request_time` is NaN or decreases.
  Status AddOrder(const Order& order);

  /// Backpatches the header and renames the temp file onto `path`.
  Status Finish();

  int64_t drivers_written() const { return drivers_written_; }
  int64_t orders_written() const { return orders_written_; }

 private:
  OrderStreamWriter(std::FILE* file, std::string path, std::string tmp_path,
                    double horizon_seconds);

  std::FILE* file_;  ///< null once finished or failed
  std::string path_;
  std::string tmp_path_;
  double horizon_seconds_;
  int64_t drivers_written_ = 0;
  int64_t orders_written_ = 0;
  double first_request_ = 0.0;
  double last_request_ = 0.0;
};

/// Buffered sequential reader over a trace's order section. Open()
/// validates magic/version/size and materialises the driver section; the
/// order section is then consumed through Peek()/Pop() with block reads
/// that refill the buffer only when it drains, independent of record
/// alignment (a record may straddle any number of refills — buffer sizes
/// down to one byte work, they are just slow).
class OrderStreamReader {
 public:
  static StatusOr<std::unique_ptr<OrderStreamReader>> Open(
      const std::string& path,
      size_t buffer_bytes = kDefaultStreamBufferBytes);

  ~OrderStreamReader();
  OrderStreamReader(const OrderStreamReader&) = delete;
  OrderStreamReader& operator=(const OrderStreamReader&) = delete;

  const OrderTraceInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  const std::vector<DriverSpec>& drivers() const { return drivers_; }

  /// The next order, or null when the stream is exhausted OR an I/O /
  /// corruption error occurred — distinguish via status(). The pointer is
  /// valid until the next Pop().
  const Order* Peek();

  /// Consumes the peeked order (no-op if nothing is peeked).
  void Pop();

  /// Orders consumed (popped) so far.
  int64_t consumed() const { return consumed_; }

  /// Sticky stream error: truncated-on-disk reads, out-of-order records.
  /// OK while the stream is merely exhausted.
  const Status& status() const { return status_; }

  /// Seeks back to the first order record and clears the error state, so
  /// one reader can feed repeated runs.
  Status Rewind();

 private:
  OrderStreamReader(std::FILE* file, std::string path, size_t buffer_bytes);
  bool ReadRecord(unsigned char* out);  ///< false: sets status_

  std::FILE* file_;
  std::string path_;
  OrderTraceInfo info_;
  std::vector<DriverSpec> drivers_;
  int64_t orders_offset_ = 0;  ///< file offset of the first order record

  std::vector<unsigned char> buffer_;
  size_t buf_pos_ = 0;
  size_t buf_end_ = 0;

  Order current_;
  bool current_valid_ = false;
  int64_t consumed_ = 0;
  double prev_request_ = 0.0;
  Status status_;
};

/// Writes a materialised workload as a trace (orders must already be
/// sorted by request time, which Workload guarantees).
Status WriteOrderTrace(const std::string& path, const Workload& workload);

/// Materialises a trace back into a Workload (drivers, orders, horizon).
/// `max_orders` > 0 caps the order section, mirroring a streamed run with
/// the same cap.
StatusOr<Workload> ReadOrderTrace(const std::string& path,
                                  int64_t max_orders = 0);

/// Header-only peek: counts, horizon and time span without touching the
/// record sections (still validates magic/version/file size).
StatusOr<OrderTraceInfo> ReadOrderTraceInfo(const std::string& path);

/// TLC-CSV → trace converter: parses the CSV line-buffered (never holding
/// the file text in memory; the kept order records are materialised once
/// for the format's sorted-by-request-time guarantee) and writes the trace
/// temp-then-rename. `stats` (may be null) receives the parse counters.
Status ConvertTlcCsvToTrace(const std::string& csv_path,
                            const std::string& trace_path, int num_drivers,
                            const TlcParseOptions& options = {},
                            TlcParseStats* stats = nullptr);

}  // namespace mrvd
