#include "workload/order_source.h"

#include <algorithm>

namespace mrvd {

MaterializedOrderSource::MaterializedOrderSource(
    const std::vector<Order>& orders, int64_t max_orders)
    : orders_(&orders), limit_(static_cast<int64_t>(orders.size())) {
  if (max_orders > 0) limit_ = std::min(limit_, max_orders);
}

const Order* MaterializedOrderSource::Peek() {
  if (next_ >= limit_) return nullptr;
  return &(*orders_)[static_cast<size_t>(next_)];
}

void MaterializedOrderSource::Pop() {
  if (next_ < limit_) ++next_;
}

Status MaterializedOrderSource::Rewind() {
  next_ = 0;
  return Status::OK();
}

StreamingOrderSource::StreamingOrderSource(
    std::unique_ptr<OrderStreamReader> reader, int64_t max_orders)
    : reader_(std::move(reader)), limit_(reader_->info().order_count) {
  if (max_orders > 0) limit_ = std::min(limit_, max_orders);
}

const Order* StreamingOrderSource::Peek() {
  if (reader_->consumed() >= limit_) return nullptr;
  return reader_->Peek();
}

void StreamingOrderSource::Pop() {
  if (reader_->consumed() < limit_) reader_->Pop();
}

}  // namespace mrvd
