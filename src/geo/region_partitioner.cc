#include "geo/region_partitioner.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace mrvd {

RegionPartitioner RegionPartitioner::RowBands(const Grid& grid,
                                              int num_shards) {
  return RowBands(grid, num_shards, {});
}

RegionPartitioner RegionPartitioner::RowBands(
    const Grid& grid, int num_shards, const std::vector<double>& weights) {
  const int rows = grid.rows();
  const int cols = grid.cols();
  int k = std::clamp(num_shards, 1, rows);

  // Per-row weight; uniform when no (or degenerate) weights are given.
  std::vector<double> row_weight(static_cast<size_t>(rows), 0.0);
  double total = 0.0;
  if (static_cast<int>(weights.size()) == grid.num_regions()) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        row_weight[static_cast<size_t>(r)] +=
            weights[static_cast<size_t>(grid.RegionAt(r, c))];
      }
      total += row_weight[static_cast<size_t>(r)];
    }
  }
  if (total <= 0.0) {
    std::fill(row_weight.begin(), row_weight.end(), 1.0);
    total = static_cast<double>(rows);
  }

  RegionPartitioner out;
  out.shard_of_.assign(static_cast<size_t>(grid.num_regions()), 0);
  out.shard_regions_.resize(static_cast<size_t>(k));

  // Walk rows accumulating weight; close band b once the cumulative weight
  // passes (b+1)/k of the total, and force a close when the rows remaining
  // are only just enough to give every later band one row — so no band
  // ends up empty.
  double cum = 0.0;
  int band = 0;
  for (int r = 0; r < rows; ++r) {
    int rows_left = rows - r;
    if (band < k - 1 &&
        !out.shard_regions_[static_cast<size_t>(band)].empty() &&
        (rows_left <= k - 1 - band ||
         cum >= (static_cast<double>(band) + 1.0) * total / k)) {
      ++band;
    }
    cum += row_weight[static_cast<size_t>(r)];
    for (int c = 0; c < cols; ++c) {
      RegionId reg = grid.RegionAt(r, c);
      out.shard_of_[static_cast<size_t>(reg)] = band;
      out.shard_regions_[static_cast<size_t>(band)].push_back(reg);
    }
  }
  assert(!out.shard_regions_.back().empty());
  return out;
}

bool RegionPartitioner::ShardsConnected(const Grid& grid) const {
  for (const auto& regions : shard_regions_) {
    if (regions.empty()) return false;
    std::vector<char> in_shard(static_cast<size_t>(grid.num_regions()), 0);
    for (RegionId r : regions) in_shard[static_cast<size_t>(r)] = 1;
    std::vector<char> seen(static_cast<size_t>(grid.num_regions()), 0);
    std::deque<RegionId> frontier{regions.front()};
    seen[static_cast<size_t>(regions.front())] = 1;
    size_t reached = 1;
    while (!frontier.empty()) {
      RegionId cur = frontier.front();
      frontier.pop_front();
      for (RegionId nb : grid.Neighbors(cur)) {
        if (in_shard[static_cast<size_t>(nb)] &&
            !seen[static_cast<size_t>(nb)]) {
          seen[static_cast<size_t>(nb)] = 1;
          ++reached;
          frontier.push_back(nb);
        }
      }
    }
    if (reached != regions.size()) return false;
  }
  return true;
}

}  // namespace mrvd
