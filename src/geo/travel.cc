#include "geo/travel.h"

namespace mrvd {

double TravelCostModel::TravelMeters(const LatLon& from, const LatLon& to) const {
  return TravelSeconds(from, to) * SpeedMps();
}

}  // namespace mrvd
