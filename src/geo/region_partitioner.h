// Groups the grid's regions a_1..a_n into K connected shards for the
// region-sharded dispatch pipeline. Shards are contiguous row bands of the
// grid (each band is connected under 8-neighbour adjacency, and the split
// respects the row-major region numbering), optionally balanced by a
// per-region weight such as the current batch's rider count.
#pragma once

#include <vector>

#include "geo/grid.h"

namespace mrvd {

class RegionPartitioner {
 public:
  /// Unweighted row-band split: bands of near-equal row counts.
  /// `num_shards` is clamped to [1, grid.rows()].
  static RegionPartitioner RowBands(const Grid& grid, int num_shards);

  /// Row-band split balancing the total per-region `weights` (size
  /// num_regions) across bands; zero total weight falls back to row counts.
  static RegionPartitioner RowBands(const Grid& grid, int num_shards,
                                    const std::vector<double>& weights);

  int num_shards() const { return static_cast<int>(shard_regions_.size()); }

  /// Regions of the grid this partitioner was built for. Lets consumers
  /// (BatchContext::EnsureShardIndex, the engine's BatchBuilder) assert the
  /// partitioner matches their grid before indexing by region id.
  int num_regions() const { return static_cast<int>(shard_of_.size()); }

  /// Shard owning region `r`.
  int shard_of(RegionId r) const {
    return shard_of_[static_cast<size_t>(r)];
  }

  bool SameShard(RegionId a, RegionId b) const {
    return shard_of(a) == shard_of(b);
  }

  /// Regions of each shard, ascending region id within a shard.
  const std::vector<std::vector<RegionId>>& shard_regions() const {
    return shard_regions_;
  }

  /// True if every shard is connected under 8-neighbour adjacency
  /// (row bands are by construction; exposed for tests).
  bool ShardsConnected(const Grid& grid) const;

  /// True if `other` assigns every region to the same shard index. Lets the
  /// engine's adaptive repartitioning skip installing a rebuilt map that
  /// could not actually move any region (hysteresis against churn when the
  /// row banding cannot improve on the current split).
  bool SamePartition(const RegionPartitioner& other) const {
    return shard_of_ == other.shard_of_;
  }

 private:
  RegionPartitioner() = default;

  std::vector<int> shard_of_;  ///< region id -> shard index
  std::vector<std::vector<RegionId>> shard_regions_;
};

}  // namespace mrvd
