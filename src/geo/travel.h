// Travel-cost models. The paper expresses all costs as travel time and notes
// time and distance are interchangeable given a speed (§2); the simulator
// works in seconds throughout.
#pragma once

#include <memory>

#include "geo/point.h"

namespace mrvd {

/// Abstract travel-cost oracle: seconds to drive from `from` to `to`.
/// Implementations must be symmetric-free (directed cost is allowed) and
/// return non-negative finite values for in-city points.
class TravelCostModel {
 public:
  virtual ~TravelCostModel() = default;

  /// Travel time in seconds from `from` to `to`.
  virtual double TravelSeconds(const LatLon& from, const LatLon& to) const = 0;

  /// Travel distance in meters (default: seconds * reference speed).
  virtual double TravelMeters(const LatLon& from, const LatLon& to) const;

  /// Reference cruising speed in m/s used for time<->distance conversion.
  virtual double SpeedMps() const = 0;
};

/// Straight-line cost: equirectangular distance inflated by a fixed detour
/// factor, at constant speed. `detour_factor` ~1.3 approximates Manhattan
/// street routing over crow-fly distance; `speed_mps` ~7 m/s (~25 km/h)
/// matches mid-town taxi speeds.
class StraightLineCostModel : public TravelCostModel {
 public:
  explicit StraightLineCostModel(double speed_mps = 7.0,
                                 double detour_factor = 1.3)
      : speed_mps_(speed_mps), detour_factor_(detour_factor) {}

  double TravelSeconds(const LatLon& from, const LatLon& to) const override {
    return EquirectangularMeters(from, to) * detour_factor_ / speed_mps_;
  }

  double TravelMeters(const LatLon& from, const LatLon& to) const override {
    return EquirectangularMeters(from, to) * detour_factor_;
  }

  double SpeedMps() const override { return speed_mps_; }

 private:
  double speed_mps_;
  double detour_factor_;
};

/// L1 (Manhattan) cost in the lat/lon axes; models a perfect grid street
/// network at constant speed.
class ManhattanCostModel : public TravelCostModel {
 public:
  explicit ManhattanCostModel(double speed_mps = 7.0)
      : speed_mps_(speed_mps) {}

  double TravelSeconds(const LatLon& from, const LatLon& to) const override {
    LatLon corner{from.lat, to.lon};
    double meters = EquirectangularMeters(from, corner) +
                    EquirectangularMeters(corner, to);
    return meters / speed_mps_;
  }

  double SpeedMps() const override { return speed_mps_; }

 private:
  double speed_mps_;
};

}  // namespace mrvd
