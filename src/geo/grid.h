// Uniform grid partitioning of the city into regions a_1..a_n (§2).
// The paper divides NYC into 16x16 grids (§6.2); region ids are row-major.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace mrvd {

/// Region identifier; row-major cell index in [0, rows*cols).
using RegionId = int32_t;
inline constexpr RegionId kInvalidRegion = -1;

/// Uniform rows x cols partition of a bounding box into regions.
class Grid {
 public:
  Grid(const BoundingBox& box, int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_regions() const { return rows_ * cols_; }
  const BoundingBox& box() const { return box_; }

  /// Region containing `p`; points outside the box are clamped to the nearest
  /// border cell (the TLC data contains a small number of off-box GPS fixes).
  RegionId RegionOf(const LatLon& p) const;

  /// Row/col of a region id.
  int RowOf(RegionId r) const { return r / cols_; }
  int ColOf(RegionId r) const { return r % cols_; }
  RegionId RegionAt(int row, int col) const { return row * cols_ + col; }

  /// Geographic center of a region.
  LatLon CenterOf(RegionId r) const;

  /// Bounding box of a region cell.
  BoundingBox CellBox(RegionId r) const;

  /// The (up to 8) adjacent regions of `r`.
  std::vector<RegionId> Neighbors(RegionId r) const;

  /// All regions at Chebyshev distance exactly `ring` from `r` (ring 0 is
  /// {r} itself). Used by dispatchers to expand candidate-driver search
  /// outward until the pickup deadline prunes.
  std::vector<RegionId> Ring(RegionId r, int ring) const;

  /// Chebyshev ring distance between two regions.
  int RingDistance(RegionId a, RegionId b) const;

  /// Approximate center-to-center distance in meters between two regions.
  double CenterDistanceMeters(RegionId a, RegionId b) const;

 private:
  BoundingBox box_;
  int rows_, cols_;
  double cell_w_deg_, cell_h_deg_;
};

/// The paper's default spatial configuration: 16x16 grid over NYC.
Grid MakeNycGrid16x16();

}  // namespace mrvd
