#include "geo/grid.h"

#include <algorithm>
#include <cassert>

namespace mrvd {

Grid::Grid(const BoundingBox& box, int rows, int cols)
    : box_(box),
      rows_(rows),
      cols_(cols),
      cell_w_deg_(box.WidthDegrees() / cols),
      cell_h_deg_(box.HeightDegrees() / rows) {
  assert(rows > 0 && cols > 0);
}

RegionId Grid::RegionOf(const LatLon& p) const {
  int col = static_cast<int>((p.lon - box_.lon_min) / cell_w_deg_);
  int row = static_cast<int>((p.lat - box_.lat_min) / cell_h_deg_);
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return RegionAt(row, col);
}

LatLon Grid::CenterOf(RegionId r) const {
  int row = RowOf(r), col = ColOf(r);
  return {box_.lat_min + (row + 0.5) * cell_h_deg_,
          box_.lon_min + (col + 0.5) * cell_w_deg_};
}

BoundingBox Grid::CellBox(RegionId r) const {
  int row = RowOf(r), col = ColOf(r);
  return {box_.lon_min + col * cell_w_deg_,
          box_.lon_min + (col + 1) * cell_w_deg_,
          box_.lat_min + row * cell_h_deg_,
          box_.lat_min + (row + 1) * cell_h_deg_};
}

std::vector<RegionId> Grid::Neighbors(RegionId r) const {
  return Ring(r, 1);
}

std::vector<RegionId> Grid::Ring(RegionId r, int ring) const {
  assert(r >= 0 && r < num_regions());
  if (ring == 0) return {r};
  std::vector<RegionId> out;
  int row = RowOf(r), col = ColOf(r);
  int r0 = row - ring, r1 = row + ring;
  int c0 = col - ring, c1 = col + ring;
  for (int c = c0; c <= c1; ++c) {
    if (c < 0 || c >= cols_) continue;
    if (r0 >= 0) out.push_back(RegionAt(r0, c));
    if (r1 < rows_) out.push_back(RegionAt(r1, c));
  }
  for (int rr = r0 + 1; rr <= r1 - 1; ++rr) {
    if (rr < 0 || rr >= rows_) continue;
    if (c0 >= 0) out.push_back(RegionAt(rr, c0));
    if (c1 < cols_) out.push_back(RegionAt(rr, c1));
  }
  return out;
}

int Grid::RingDistance(RegionId a, RegionId b) const {
  return std::max(std::abs(RowOf(a) - RowOf(b)), std::abs(ColOf(a) - ColOf(b)));
}

double Grid::CenterDistanceMeters(RegionId a, RegionId b) const {
  return EquirectangularMeters(CenterOf(a), CenterOf(b));
}

Grid MakeNycGrid16x16() { return Grid(kNycBoundingBox, 16, 16); }

}  // namespace mrvd
