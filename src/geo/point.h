// Geographic primitives: WGS84 lat/lon points, bounding boxes, distances.
#pragma once

#include <cmath>
#include <ostream>

namespace mrvd {

/// Mean Earth radius in meters (spherical model).
inline constexpr double kEarthRadiusMeters = 6371000.0;

/// A WGS84 coordinate in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const LatLon&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const LatLon& p) {
  return os << "(" << p.lat << ", " << p.lon << ")";
}

/// Great-circle distance in meters (haversine formula). Exact on the sphere;
/// used in tests and as the reference for the fast path below.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Equirectangular-approximation distance in meters. Error < 0.1% at city
/// scale (tens of km); ~4x faster than haversine. This is the simulator's
/// default metric.
double EquirectangularMeters(const LatLon& a, const LatLon& b);

/// Axis-aligned geographic bounding box. `lon_min < lon_max`,
/// `lat_min < lat_max` (NYC: lon -74.03..-73.77, lat 40.58..40.92).
struct BoundingBox {
  double lon_min = 0.0, lon_max = 0.0;
  double lat_min = 0.0, lat_max = 0.0;

  bool Contains(const LatLon& p) const {
    return p.lon >= lon_min && p.lon <= lon_max && p.lat >= lat_min &&
           p.lat <= lat_max;
  }

  LatLon Center() const {
    return {0.5 * (lat_min + lat_max), 0.5 * (lon_min + lon_max)};
  }

  double WidthDegrees() const { return lon_max - lon_min; }
  double HeightDegrees() const { return lat_max - lat_min; }

  /// Clamps `p` into the box (used to keep generated noise inside the city).
  LatLon Clamp(const LatLon& p) const {
    return {std::fmin(std::fmax(p.lat, lat_min), lat_max),
            std::fmin(std::fmax(p.lon, lon_min), lon_max)};
  }
};

/// The evaluation-area box from the paper (§6.2): New York City,
/// -73.77° ~ -74.03° longitude, 40.58° ~ 40.92° latitude.
inline constexpr BoundingBox kNycBoundingBox = {
    /*lon_min=*/-74.03, /*lon_max=*/-73.77,
    /*lat_min=*/40.58, /*lat_max=*/40.92};

}  // namespace mrvd
