#include "geo/point.h"

namespace mrvd {

namespace {
inline double Deg2Rad(double d) { return d * (M_PI / 180.0); }
}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  double lat1 = Deg2Rad(a.lat), lat2 = Deg2Rad(b.lat);
  double dlat = lat2 - lat1;
  double dlon = Deg2Rad(b.lon - a.lon);
  double s = std::sin(dlat / 2);
  double t = std::sin(dlon / 2);
  double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(std::fmin(1.0, h)));
}

double EquirectangularMeters(const LatLon& a, const LatLon& b) {
  double mean_lat = Deg2Rad(0.5 * (a.lat + b.lat));
  double x = Deg2Rad(b.lon - a.lon) * std::cos(mean_lat);
  double y = Deg2Rad(b.lat - a.lat);
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

}  // namespace mrvd
