// IRG (Algorithm 2) and SHORT (Appendix C) dispatchers.
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"

namespace mrvd {

namespace {

class IrgDispatcher final : public Dispatcher {
 public:
  explicit IrgDispatcher(GreedyObjective objective, std::string name)
      : objective_(objective), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto pairs = GenerateValidPairs(ctx);
    IrgState state = RunGreedySelection(ctx, pairs, objective_);
    *out = std::move(state.assignments);
  }

 private:
  GreedyObjective objective_;
  std::string name_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeIrgDispatcher() {
  return std::make_unique<IrgDispatcher>(GreedyObjective::kIdleRatio, "IRG");
}

std::unique_ptr<Dispatcher> MakeShortDispatcher() {
  return std::make_unique<IrgDispatcher>(GreedyObjective::kShortestTotalTime,
                                         "SHORT");
}

}  // namespace mrvd
