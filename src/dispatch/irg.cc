// IRG (Algorithm 2) and SHORT (Appendix C) dispatchers.
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "dispatch/pipeline.h"

namespace mrvd {

namespace {

class IrgDispatcher final : public Dispatcher {
 public:
  explicit IrgDispatcher(GreedyObjective objective, std::string name)
      : objective_(objective), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  const DispatchCounters* counters() const override { return &counters_; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    // Sharded preparation (parallel when the batch carries an execution),
    // then the exact sequential selection over the canonical pair list.
    counters_ = {};
    PreparedBatch prepared = PrepareShardedBatch(ctx, objective_);
    counters_.shards = std::move(prepared.shard_stats);
    IrgState state = RunGreedySelection(ctx, prepared.pairs, objective_);
    *out = std::move(state.assignments);
  }

 private:
  GreedyObjective objective_;
  std::string name_;
  DispatchCounters counters_;  ///< shard telemetry of the latest Dispatch
};

}  // namespace

std::unique_ptr<Dispatcher> MakeIrgDispatcher() {
  return std::make_unique<IrgDispatcher>(GreedyObjective::kIdleRatio, "IRG");
}

std::unique_ptr<Dispatcher> MakeShortDispatcher() {
  return std::make_unique<IrgDispatcher>(GreedyObjective::kShortestTotalTime,
                                         "SHORT");
}

}  // namespace mrvd
