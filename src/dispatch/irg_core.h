// Shared lazy-greedy core of IRG (Algorithm 2) and SHORT (Appendix C).
//
// Both algorithms repeatedly pick the best-scored valid pair, where the
// score depends on the expected idle time of the destination region — which
// rises as earlier selections promise more rejoining drivers to that region
// (line 11 of Algorithm 2). The selection loop uses a lazy priority queue:
// entries carry the destination region's version; popping a stale entry
// re-scores and re-inserts it instead of re-sorting everything. Ties are
// broken by pair index, so the pop order is a strict total order and the
// selection is deterministic regardless of how the heap was built.
#pragma once

#include <functional>
#include <vector>

#include "dispatch/candidates.h"
#include "sim/batch.h"

namespace mrvd {

enum class GreedyObjective {
  /// IRG: minimize IR = ET / (cost + ET)  (Eq. 17).
  kIdleRatio,
  /// SHORT: minimize cost + ET (maximizes served orders, Appendix C).
  kShortestTotalTime,
};

struct IrgState {
  std::vector<Assignment> assignments;
  /// Per-region count of selections whose rider destination is the region
  /// (the tentative extra rejoining drivers priced into ET).
  std::vector<int> extra_drivers;
  /// Which rider/driver context indices are matched.
  std::vector<char> rider_used;
  std::vector<char> driver_used;
};

/// ET oracle: seconds of expected idle time for (region, extra_drivers).
/// The serial path uses BatchContext::ExpectedIdleSeconds; shard workers
/// pass ShardedBatchContext::ExpectedIdleSeconds so memoisation stays
/// thread-local.
using IdleTimeFn = std::function<double(RegionId, int)>;

/// Score from an already-resolved ET value (pure arithmetic shared by every
/// ET oracle).
double ScoreFromIdle(double idle_seconds, const WaitingRider& rider,
                     GreedyObjective objective, double pickup_seconds = 0.0);

/// ScoreFromIdle with the rider's trip time passed directly — for SoA hot
/// loops (parallel LS propose) that carry trip seconds in a dense array
/// instead of dereferencing a WaitingRider. ScoreFromIdle delegates here,
/// so both spellings evaluate the one compiled expression and stay
/// bit-identical.
double ScoreFromIdleTrip(double idle_seconds, double trip_seconds,
                         GreedyObjective objective,
                         double pickup_seconds = 0.0);

/// Scores a pair under `objective` given the current tentative supply. The
/// paper's IR (Eq. 17) depends only on the rider; `pickup_seconds` adds an
/// infinitesimal tie-break so that among equal-IR pairs the closer driver
/// is preferred (pure implementation detail: it only reorders exact ties).
double ScorePair(const BatchContext& ctx, const WaitingRider& rider,
                 GreedyObjective objective, int dest_extra_drivers,
                 double pickup_seconds = 0.0);

/// Runs the greedy selection over `pairs` and returns the final state.
IrgState RunGreedySelection(const BatchContext& ctx,
                            const std::vector<CandidatePair>& pairs,
                            GreedyObjective objective);

/// Greedy selection with ET queries routed through `idle`. Used by the
/// sharded pipeline's speculative per-shard pass; semantics are identical
/// to RunGreedySelection when `idle` returns the same values.
IrgState RunGreedySelectionWithIdle(const BatchContext& ctx,
                                    const std::vector<CandidatePair>& pairs,
                                    GreedyObjective objective,
                                    const IdleTimeFn& idle);

}  // namespace mrvd
