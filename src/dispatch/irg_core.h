// Shared lazy-greedy core of IRG (Algorithm 2) and SHORT (Appendix C).
//
// Both algorithms repeatedly pick the best-scored valid pair, where the
// score depends on the expected idle time of the destination region — which
// rises as earlier selections promise more rejoining drivers to that region
// (line 11 of Algorithm 2). The selection loop uses a lazy priority queue:
// entries carry the destination region's version; popping a stale entry
// re-scores and re-inserts it instead of re-sorting everything.
#pragma once

#include <vector>

#include "dispatch/candidates.h"
#include "sim/batch.h"

namespace mrvd {

enum class GreedyObjective {
  /// IRG: minimize IR = ET / (cost + ET)  (Eq. 17).
  kIdleRatio,
  /// SHORT: minimize cost + ET (maximizes served orders, Appendix C).
  kShortestTotalTime,
};

struct IrgState {
  std::vector<Assignment> assignments;
  /// Per-region count of selections whose rider destination is the region
  /// (the tentative extra rejoining drivers priced into ET).
  std::vector<int> extra_drivers;
  /// Which rider/driver context indices are matched.
  std::vector<char> rider_used;
  std::vector<char> driver_used;
};

/// Scores a pair under `objective` given the current tentative supply. The
/// paper's IR (Eq. 17) depends only on the rider; `pickup_seconds` adds an
/// infinitesimal tie-break so that among equal-IR pairs the closer driver
/// is preferred (pure implementation detail: it only reorders exact ties).
double ScorePair(const BatchContext& ctx, const WaitingRider& rider,
                 GreedyObjective objective, int dest_extra_drivers,
                 double pickup_seconds = 0.0);

/// Runs the greedy selection over `pairs` and returns the final state.
IrgState RunGreedySelection(const BatchContext& ctx,
                            const std::vector<CandidatePair>& pairs,
                            GreedyObjective objective);

}  // namespace mrvd
