#include "dispatch/irg_core.h"

#include <algorithm>
#include <queue>

#include "util/thread_pool.h"

namespace mrvd {

double ScoreFromIdleTrip(double idle_seconds, double trip_seconds,
                         GreedyObjective objective, double pickup_seconds) {
  switch (objective) {
    case GreedyObjective::kIdleRatio:
      // Eq. 17 plus an epsilon-scale pickup tie-break (see header).
      return idle_seconds / (trip_seconds + idle_seconds) +
             pickup_seconds * 1e-9;
    case GreedyObjective::kShortestTotalTime:
      return trip_seconds + idle_seconds + pickup_seconds * 1e-6;
  }
  return 0.0;
}

double ScoreFromIdle(double idle_seconds, const WaitingRider& rider,
                     GreedyObjective objective, double pickup_seconds) {
  return ScoreFromIdleTrip(idle_seconds, rider.trip_seconds, objective,
                           pickup_seconds);
}

double ScorePair(const BatchContext& ctx, const WaitingRider& rider,
                 GreedyObjective objective, int dest_extra_drivers,
                 double pickup_seconds) {
  double et = ctx.ExpectedIdleSeconds(rider.dropoff_region,
                                      dest_extra_drivers);
  return ScoreFromIdle(et, rider, objective, pickup_seconds);
}

IrgState RunGreedySelectionWithIdle(const BatchContext& ctx,
                                    const std::vector<CandidatePair>& pairs,
                                    GreedyObjective objective,
                                    const IdleTimeFn& idle) {
  IrgState state;
  state.extra_drivers.assign(static_cast<size_t>(ctx.grid().num_regions()),
                             0);
  state.rider_used.assign(ctx.riders().size(), false);
  state.driver_used.assign(ctx.drivers().size(), false);

  struct Entry {
    double score;
    int pair_index;
    int version;  ///< destination-region version at scoring time
    /// Strict total order (score, then pair index) so equal-score pops are
    /// deterministic and independent of heap construction order.
    bool operator>(const Entry& o) const {
      if (score != o.score) return score > o.score;
      return pair_index > o.pair_index;
    }
  };
  std::vector<int> region_version(
      static_cast<size_t>(ctx.grid().num_regions()), 0);

  // Initial scoring: every pair is scored at zero tentative supply, so one
  // dense ET(k, 0) table replaces a hash lookup per pair, and the heap is
  // built in O(P) from the scored vector. The comparator's strict total
  // order makes the pop sequence independent of heap layout, so this is
  // exactly the per-pair-push behaviour, faster.
  std::vector<double> idle_at_zero(
      static_cast<size_t>(ctx.grid().num_regions()), -1.0);
  for (const CandidatePair& cp : pairs) {
    idle_at_zero[static_cast<size_t>(
        ctx.riders()[static_cast<size_t>(cp.rider_index)].dropoff_region)] =
        0.0;
  }
  for (RegionId k = 0;
       k < static_cast<RegionId>(ctx.grid().num_regions()); ++k) {
    if (idle_at_zero[static_cast<size_t>(k)] == 0.0) {
      idle_at_zero[static_cast<size_t>(k)] = idle(k, 0);
    }
  }
  std::vector<Entry> entries;
  entries.reserve(pairs.size());
  for (int i = 0; i < static_cast<int>(pairs.size()); ++i) {
    const CandidatePair& cp = pairs[static_cast<size_t>(i)];
    const auto& rider = ctx.riders()[static_cast<size_t>(cp.rider_index)];
    double s = ScoreFromIdle(
        idle_at_zero[static_cast<size_t>(rider.dropoff_region)], rider,
        objective, cp.pickup_seconds);
    entries.push_back({s, i, 0});
  }
  // The lazy queue is consumed as a merge of two sources: the initial
  // entries sorted once (almost all pops are rider/driver-dead skips, and a
  // sorted scan beats heap sift-downs by a wide margin), plus a small
  // priority queue holding only the re-scored stale entries (hundreds, not
  // tens of thousands). Both orders follow the same strict total order, so
  // the merged pop sequence is exactly the single-heap one.
  auto ascending = [](const Entry& a, const Entry& b) { return b > a; };
  const BatchExecution* exec = ctx.execution();
  if (exec != nullptr && exec->Parallel() && entries.size() >= 4096) {
    // Chunk-sort on the pool, then pairwise in-place merges. The sorted
    // result is unique under the strict total order, so this is
    // indistinguishable from the serial sort.
    size_t chunks = static_cast<size_t>(exec->pool->num_threads());
    std::vector<size_t> bounds(chunks + 1);
    for (size_t c = 0; c <= chunks; ++c) {
      bounds[c] = entries.size() * c / chunks;
    }
    exec->pool->ParallelFor(static_cast<int>(chunks), [&](int c) {
      std::sort(entries.begin() + static_cast<ptrdiff_t>(bounds[c]),
                entries.begin() + static_cast<ptrdiff_t>(bounds[c + 1]),
                ascending);
    });
    for (size_t width = 1; width < chunks; width *= 2) {
      for (size_t c = 0; c + width < chunks; c += 2 * width) {
        std::inplace_merge(
            entries.begin() + static_cast<ptrdiff_t>(bounds[c]),
            entries.begin() + static_cast<ptrdiff_t>(bounds[c + width]),
            entries.begin() + static_cast<ptrdiff_t>(
                bounds[std::min(c + 2 * width, chunks)]),
            ascending);
      }
    }
  } else {
    std::sort(entries.begin(), entries.end(), ascending);
  }
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> requeue;
  size_t next_sorted = 0;

  while (next_sorted < entries.size() || !requeue.empty()) {
    Entry e;
    if (!requeue.empty() && (next_sorted >= entries.size() ||
                             !(requeue.top() > entries[next_sorted]))) {
      e = requeue.top();
      requeue.pop();
    } else {
      e = entries[next_sorted++];
    }
    const CandidatePair& cp = pairs[static_cast<size_t>(e.pair_index)];
    if (state.rider_used[static_cast<size_t>(cp.rider_index)] ||
        state.driver_used[static_cast<size_t>(cp.driver_index)]) {
      continue;
    }
    const WaitingRider& rider =
        ctx.riders()[static_cast<size_t>(cp.rider_index)];
    auto dest = static_cast<size_t>(rider.dropoff_region);
    if (e.version != region_version[dest]) {
      // Destination supply changed since scoring; refresh and reinsert.
      double s = ScoreFromIdle(
          idle(rider.dropoff_region, state.extra_drivers[dest]), rider,
          objective, cp.pickup_seconds);
      requeue.push({s, e.pair_index, region_version[dest]});
      continue;
    }
    // Accept.
    state.rider_used[static_cast<size_t>(cp.rider_index)] = true;
    state.driver_used[static_cast<size_t>(cp.driver_index)] = true;
    state.assignments.push_back({cp.rider_index, cp.driver_index});
    ++state.extra_drivers[dest];
    ++region_version[dest];
  }
  return state;
}

IrgState RunGreedySelection(const BatchContext& ctx,
                            const std::vector<CandidatePair>& pairs,
                            GreedyObjective objective) {
  return RunGreedySelectionWithIdle(
      ctx, pairs, objective, [&ctx](RegionId region, int extra) {
        return ctx.ExpectedIdleSeconds(region, extra);
      });
}

}  // namespace mrvd
