#include "dispatch/irg_core.h"

#include <queue>

namespace mrvd {

double ScorePair(const BatchContext& ctx, const WaitingRider& rider,
                 GreedyObjective objective, int dest_extra_drivers,
                 double pickup_seconds) {
  double et = ctx.ExpectedIdleSeconds(rider.dropoff_region,
                                      dest_extra_drivers);
  switch (objective) {
    case GreedyObjective::kIdleRatio:
      // Eq. 17 plus an epsilon-scale pickup tie-break (see header).
      return et / (rider.trip_seconds + et) + pickup_seconds * 1e-9;
    case GreedyObjective::kShortestTotalTime:
      return rider.trip_seconds + et + pickup_seconds * 1e-6;
  }
  return 0.0;
}

IrgState RunGreedySelection(const BatchContext& ctx,
                            const std::vector<CandidatePair>& pairs,
                            GreedyObjective objective) {
  IrgState state;
  state.extra_drivers.assign(static_cast<size_t>(ctx.grid().num_regions()),
                             0);
  state.rider_used.assign(ctx.riders().size(), false);
  state.driver_used.assign(ctx.drivers().size(), false);

  struct Entry {
    double score;
    int pair_index;
    int version;  ///< destination-region version at scoring time
    bool operator>(const Entry& o) const { return score > o.score; }
  };
  std::vector<int> region_version(
      static_cast<size_t>(ctx.grid().num_regions()), 0);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (int i = 0; i < static_cast<int>(pairs.size()); ++i) {
    const CandidatePair& cp = pairs[static_cast<size_t>(i)];
    const auto& rider = ctx.riders()[static_cast<size_t>(cp.rider_index)];
    double s = ScorePair(
        ctx, rider, objective,
        state.extra_drivers[static_cast<size_t>(rider.dropoff_region)],
        cp.pickup_seconds);
    pq.push({s, i, region_version[static_cast<size_t>(rider.dropoff_region)]});
  }

  while (!pq.empty()) {
    Entry e = pq.top();
    pq.pop();
    const CandidatePair& cp = pairs[static_cast<size_t>(e.pair_index)];
    if (state.rider_used[static_cast<size_t>(cp.rider_index)] ||
        state.driver_used[static_cast<size_t>(cp.driver_index)]) {
      continue;
    }
    const WaitingRider& rider =
        ctx.riders()[static_cast<size_t>(cp.rider_index)];
    auto dest = static_cast<size_t>(rider.dropoff_region);
    if (e.version != region_version[dest]) {
      // Destination supply changed since scoring; refresh and reinsert.
      double s = ScorePair(ctx, rider, objective, state.extra_drivers[dest],
                           cp.pickup_seconds);
      pq.push({s, e.pair_index, region_version[dest]});
      continue;
    }
    // Accept.
    state.rider_used[static_cast<size_t>(cp.rider_index)] = true;
    state.driver_used[static_cast<size_t>(cp.driver_index)] = true;
    state.assignments.push_back({cp.rider_index, cp.driver_index});
    ++state.extra_drivers[dest];
    ++region_version[dest];
  }
  return state;
}

}  // namespace mrvd
