// Factories for every dispatching approach in the evaluation (§5, §6.3,
// Appendix C):
//   IRG    — idle-ratio-oriented greedy (Algorithm 2)
//   LS     — local search refinement of IRG (Algorithm 3)
//   SHORT  — minimum (travel cost + idle time), maximizes served orders
//   RAND   — random valid assignment
//   NEAR   — nearest-order greedy
//   LTG    — long-trip (highest revenue) greedy
//   POLAR  — prediction-guided offline-blueprint matching baseline [28]
//   UPPER  — per-batch revenue upper bound (requires
//            SimConfig::zero_pickup_travel)
//
// Every dispatcher consumes the batch through the sharded-context protocol:
// when the BatchContext carries a BatchExecution (thread pool + region
// partitioner, see sim/batch.h), candidate generation and the idle-time
// solves fan out per region shard and the selection reconciles
// sequentially, producing bit-identical assignments to the serial path.
// Without an execution the same code runs serially.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/batch.h"

namespace mrvd {

std::unique_ptr<Dispatcher> MakeRandomDispatcher(uint64_t seed = 1);
std::unique_ptr<Dispatcher> MakeNearestDispatcher();
std::unique_ptr<Dispatcher> MakeLongTripGreedyDispatcher();
std::unique_ptr<Dispatcher> MakeIrgDispatcher();

/// `max_sweeps` caps local-search passes (L_max in the complexity analysis;
/// convergence is guaranteed by Lemma 5.1 but bounded here defensively).
/// `parallel` selects the conflict-decomposed sweep (speculative parallel
/// propose + in-order commit with exact revalidation; bit-identical to the
/// sequential sweep, which `parallel = false` keeps as the A/B baseline).
std::unique_ptr<Dispatcher> MakeLocalSearchDispatcher(int max_sweeps = 16,
                                                      bool parallel = true);

std::unique_ptr<Dispatcher> MakeShortDispatcher();
std::unique_ptr<Dispatcher> MakePolarDispatcher();
std::unique_ptr<Dispatcher> MakeUpperBoundDispatcher();

/// Legacy factory by display name ("IRG", "LS", "SHORT", "RAND", "NEAR",
/// "LTG", "POLAR", "UPPER"); nullptr for unknown names. `seed` feeds RAND,
/// `max_sweeps` feeds LS. Implemented as a thin shim over the
/// DispatcherRegistry (api/dispatcher_registry.h) — prefer the registry,
/// whose Create() parses "LS:max_sweeps=8"-style specs and reports unknown
/// names with a Status listing the known roster instead of nullptr.
std::unique_ptr<Dispatcher> MakeDispatcherByName(const std::string& name,
                                                 uint64_t seed = 1,
                                                 int max_sweeps = 16);

}  // namespace mrvd
