// Valid rider-and-driver pair generation (Def. 3). Candidate drivers are
// found by expanding grid rings around the rider's pickup region until the
// pickup-deadline bound proves no farther driver can arrive in time.
#pragma once

#include <vector>

#include "sim/batch.h"

namespace mrvd {

/// One valid pair with its pickup cost.
struct CandidatePair {
  int rider_index = -1;
  int driver_index = -1;
  double pickup_seconds = 0.0;
};

/// All valid pairs of the batch. O(sum over riders of drivers within the
/// deadline-feasible ring radius); the radius shrinks as deadlines tighten.
std::vector<CandidatePair> GenerateValidPairs(const BatchContext& ctx);

/// Candidate pairs grouped per rider (same contents as GenerateValidPairs).
std::vector<std::vector<CandidatePair>> GenerateValidPairsPerRider(
    const BatchContext& ctx);

}  // namespace mrvd
