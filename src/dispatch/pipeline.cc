#include "dispatch/pipeline.h"

#include <unordered_map>

#include "geo/region_partitioner.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

PreparedBatch PrepareShardedBatch(const BatchContext& ctx,
                                  GreedyObjective objective) {
  PreparedBatch out;
  const BatchExecution* exec = ctx.execution();
  if (exec == nullptr || !exec->Parallel()) {
    out.pairs = GenerateValidPairs(ctx);
    return out;
  }
  const RegionPartitioner& parts = *exec->partitioner;
  const int num_shards = parts.num_shards();

  // One-pass shard index, shared by candidate generation and every
  // ShardedBatchContext below (built here only if the engine's
  // BatchBuilder did not already install it).
  const BatchContext::ShardIndex* index = ctx.EnsureShardIndex();
  out.shard_stats.assign(static_cast<size_t>(num_shards), {});
  for (int s = 0; s < num_shards; ++s) {
    out.shard_stats[static_cast<size_t>(s)].riders =
        static_cast<int64_t>(index->riders[static_cast<size_t>(s)].size());
    out.shard_stats[static_cast<size_t>(s)].drivers =
        static_cast<int64_t>(index->drivers[static_cast<size_t>(s)].size());
  }

  // Parallel per-shard candidate generation (sharded inside candidates.cc).
  auto per_rider = GenerateValidPairsPerRider(ctx);

  // Flatten in the canonical rider-major order and classify: shard-internal
  // pairs feed the speculative pass; the distinct dropoff regions are routed
  // to their owning shard so ET(k, 0) is warmed exactly once.
  size_t total = 0;
  for (const auto& g : per_rider) total += g.size();
  out.pairs.reserve(total);
  std::vector<std::vector<CandidatePair>> internal(
      static_cast<size_t>(num_shards));
  std::vector<std::vector<RegionId>> dests_by_shard(
      static_cast<size_t>(num_shards));
  std::vector<char> dest_seen(static_cast<size_t>(ctx.grid().num_regions()),
                              0);
  for (const auto& g : per_rider) {
    for (const CandidatePair& cp : g) {
      out.pairs.push_back(cp);
      const WaitingRider& r =
          ctx.riders()[static_cast<size_t>(cp.rider_index)];
      const AvailableDriver& d =
          ctx.drivers()[static_cast<size_t>(cp.driver_index)];
      RegionId dest = r.dropoff_region;
      if (!dest_seen[static_cast<size_t>(dest)]) {
        dest_seen[static_cast<size_t>(dest)] = 1;
        dests_by_shard[static_cast<size_t>(parts.shard_of(dest))].push_back(
            dest);
      }
      int rs = parts.shard_of(r.pickup_region);
      if (parts.shard_of(d.region) == rs && parts.shard_of(dest) == rs) {
        internal[static_cast<size_t>(rs)].push_back(cp);
        ++out.internal_pairs;
      }
    }
  }

  // Parallel warm: per shard, solve ET(k, 0) for owned dropoff regions and
  // speculatively run the greedy over the shard's internal pairs with a
  // shard-local memo table. The speculative assignments are discarded; only
  // the solved ET values survive. The speculative pass duplicates selection
  // work, so it only runs when the pool is wide enough to hide it behind
  // the other shards' generation work.
  const bool speculate = exec->pool->num_threads() >= 4;
  std::vector<std::unordered_map<int64_t, double>> caches(
      static_cast<size_t>(num_shards));
  exec->pool->ParallelFor(num_shards, [&](int s) {
    // Each ParallelFor task is exactly one shard, so the watch reads the
    // shard's parallel-phase wall time; shard_stats writes are disjoint.
    // The span lands in the executing worker's trace buffer, so Perfetto
    // shows the shard work on the thread that actually ran it.
    telemetry::TraceSpan shard_span(ctx.telemetry(), "shard_prepare");
    Stopwatch shard_watch;
    ShardedBatchContext sctx(ctx, parts, s);
    for (RegionId dest : dests_by_shard[static_cast<size_t>(s)]) {
      sctx.ExpectedIdleSeconds(dest, 0);
    }
    if (speculate && !internal[static_cast<size_t>(s)].empty()) {
      RunGreedySelectionWithIdle(ctx, internal[static_cast<size_t>(s)],
                                 objective,
                                 [&sctx](RegionId region, int extra) {
                                   return sctx.ExpectedIdleSeconds(region,
                                                                   extra);
                                 });
    }
    caches[static_cast<size_t>(s)] = sctx.ReleaseIdleCache();
    out.shard_stats[static_cast<size_t>(s)].seconds =
        shard_watch.ElapsedSeconds();
  });

  // Sequential merge into the shared memo table (first write wins; every
  // write is the pure ComputeIdleSeconds of the same snapshot).
  for (auto& cache : caches) {
    ctx.MergeIdleCache(std::move(cache));
  }
  return out;
}

}  // namespace mrvd
