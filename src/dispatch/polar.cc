// POLAR baseline [28] (Tong et al., "Flexible online task assignment in
// real-time spatial data", VLDB'17), reimplemented per the paper's
// description (§6.3): an *offline* bipartite matching over the predicted
// per-region supply and demand of the scheduling window produces a
// blueprint of region-to-region quotas; the *online* batches match riders
// to drivers guided by those quotas (blueprint pairs first, nearest pickup
// as tie-break, off-blueprint pairs as fallback). The blueprint is
// recomputed once per scheduling window, not per batch — matching POLAR's
// offline/online split.
#include <algorithm>
#include <cmath>
#include <vector>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "matching/bipartite.h"

namespace mrvd {

namespace {

class PolarDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "POLAR"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    const Grid& grid = ctx.grid();
    const int n = grid.num_regions();
    if (static_cast<int>(quota_.size()) != n * n) {
      quota_.assign(static_cast<size_t>(n) * n, 0.0);
      next_rebuild_ = -1.0;
    }
    // Rebuild the offline blueprint at window granularity (capped at 5
    // minutes so late-window state changes are still absorbed).
    if (ctx.now() >= next_rebuild_) {
      RebuildBlueprint(ctx);
      next_rebuild_ =
          ctx.now() + std::min(ctx.window_seconds(), 300.0);
    }

    // ---- Online phase: blueprint-guided greedy matching ----------------
    auto pairs = GenerateValidPairs(ctx);
    std::vector<WeightedPair> wp;
    wp.reserve(pairs.size());
    const double kOffBlueprintPenalty = 1e6;
    for (const auto& c : pairs) {
      const auto& r = ctx.riders()[static_cast<size_t>(c.rider_index)];
      const auto& d = ctx.drivers()[static_cast<size_t>(c.driver_index)];
      bool on_blueprint =
          quota_[static_cast<size_t>(d.region) * n + r.pickup_region] > 0.0;
      double score = c.pickup_seconds +
                     (on_blueprint ? 0.0 : kOffBlueprintPenalty);
      wp.push_back({c.rider_index, c.driver_index, score});
    }
    std::vector<size_t> order(wp.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return wp[a].score < wp[b].score;
    });
    std::vector<char> rider_used(ctx.riders().size(), false);
    std::vector<char> driver_used(ctx.drivers().size(), false);
    for (size_t idx : order) {
      const auto& p = wp[idx];
      if (rider_used[static_cast<size_t>(p.left)] ||
          driver_used[static_cast<size_t>(p.right)])
        continue;
      rider_used[static_cast<size_t>(p.left)] = true;
      driver_used[static_cast<size_t>(p.right)] = true;
      const auto& r = ctx.riders()[static_cast<size_t>(p.left)];
      const auto& d = ctx.drivers()[static_cast<size_t>(p.right)];
      auto& q = quota_[static_cast<size_t>(d.region) * n + r.pickup_region];
      if (q > 0.0) q -= 1.0;
      out->push_back({p.left, p.right});
    }
  }

 private:
  void RebuildBlueprint(const BatchContext& ctx) {
    const Grid& grid = ctx.grid();
    const int n = grid.num_regions();
    if (static_cast<int>(center_dist_.size()) != n * n) {
      center_dist_.resize(static_cast<size_t>(n) * n);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          center_dist_[static_cast<size_t>(i) * n + j] =
              grid.CenterDistanceMeters(i, j);
        }
      }
    }

    // Supply: available drivers now + predicted rejoiners. Demand: waiting
    // riders + predicted arrivals.
    std::vector<double> supply(static_cast<size_t>(n), 0.0);
    std::vector<double> demand(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k) {
      const RegionSnapshot& s = ctx.snapshots()[static_cast<size_t>(k)];
      supply[static_cast<size_t>(k)] =
          static_cast<double>(s.available_drivers) + s.predicted_drivers;
      demand[static_cast<size_t>(k)] =
          static_cast<double>(s.waiting_riders) + s.predicted_riders;
    }

    // Mean revenue per origin region from the current waiting riders
    // (global mean as fallback).
    std::vector<double> revenue_sum(static_cast<size_t>(n), 0.0);
    std::vector<int> revenue_cnt(static_cast<size_t>(n), 0);
    double global_sum = 0.0;
    double max_budget = 0.0;
    for (const auto& r : ctx.riders()) {
      revenue_sum[static_cast<size_t>(r.pickup_region)] += r.revenue;
      ++revenue_cnt[static_cast<size_t>(r.pickup_region)];
      global_sum += r.revenue;
      max_budget = std::max(max_budget, r.pickup_deadline - ctx.now());
    }
    double global_mean =
        ctx.riders().empty()
            ? 0.0
            : global_sum / static_cast<double>(ctx.riders().size());
    auto mean_revenue = [&](int j) {
      return revenue_cnt[static_cast<size_t>(j)] > 0
                 ? revenue_sum[static_cast<size_t>(j)] /
                       revenue_cnt[static_cast<size_t>(j)]
                 : global_mean;
    };

    double budget = max_budget > 0.0 ? max_budget : ctx.window_seconds();
    double speed = ctx.cost_model().SpeedMps();

    // Greedy transportation: allocate supply to demand in descending value.
    struct Cell {
      double value;
      int i, j;
    };
    std::vector<Cell> cells;
    for (int i = 0; i < n; ++i) {
      if (supply[static_cast<size_t>(i)] <= 0.0) continue;
      for (int j = 0; j < n; ++j) {
        if (demand[static_cast<size_t>(j)] <= 0.0) continue;
        double reposition = center_dist_[static_cast<size_t>(i) * n + j] / speed;
        if (reposition > budget) continue;
        cells.push_back({mean_revenue(j) - reposition, i, j});
      }
    }
    std::sort(cells.begin(), cells.end(),
              [](const Cell& a, const Cell& b) { return a.value > b.value; });
    std::fill(quota_.begin(), quota_.end(), 0.0);
    std::vector<double> s_left = supply, d_left = demand;
    for (const Cell& c : cells) {
      double q = std::min(s_left[static_cast<size_t>(c.i)],
                          d_left[static_cast<size_t>(c.j)]);
      if (q <= 0.0) continue;
      quota_[static_cast<size_t>(c.i) * n + c.j] += q;
      s_left[static_cast<size_t>(c.i)] -= q;
      d_left[static_cast<size_t>(c.j)] -= q;
    }
  }

  std::vector<double> quota_;
  std::vector<double> center_dist_;
  double next_rebuild_ = -1.0;
};

}  // namespace

std::unique_ptr<Dispatcher> MakePolarDispatcher() {
  return std::make_unique<PolarDispatcher>();
}

}  // namespace mrvd
