// LS (Algorithm 3): obtains the IRG assignment, then keeps replacing a
// driver's rider with a lower-idle-ratio valid alternative until no swap
// improves (convergence proved in Lemma 5.1; bounded by max_sweeps here).
#include <vector>

#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "dispatch/pipeline.h"

namespace mrvd {

namespace {

class LocalSearchDispatcher final : public Dispatcher {
 public:
  explicit LocalSearchDispatcher(int max_sweeps) : max_sweeps_(max_sweeps) {}

  std::string name() const override { return "LS"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    // Pair generation and idle-time solves run sharded; the greedy replay
    // and the sweeps below stay sequential so LS remains bit-identical to
    // the serial path (each swap depends on the previous one's supply
    // shift, which does not decompose by region).
    PreparedBatch prepared =
        PrepareShardedBatch(ctx, GreedyObjective::kIdleRatio);
    const std::vector<CandidatePair>& pairs = prepared.pairs;
    IrgState state =
        RunGreedySelection(ctx, pairs, GreedyObjective::kIdleRatio);

    // Per-driver candidate lists R_j: valid riders for each matched driver.
    std::vector<std::vector<const CandidatePair*>> by_driver(
        ctx.drivers().size());
    for (const auto& cp : pairs) {
      by_driver[static_cast<size_t>(cp.driver_index)].push_back(&cp);
    }

    // driver -> index into state.assignments (only matched drivers).
    std::vector<int> driver_slot(ctx.drivers().size(), -1);
    for (int i = 0; i < static_cast<int>(state.assignments.size()); ++i) {
      driver_slot[static_cast<size_t>(
          state.assignments[static_cast<size_t>(i)].driver_index)] = i;
    }

    auto ir = [&](int rider_index) {
      const WaitingRider& r =
          ctx.riders()[static_cast<size_t>(rider_index)];
      return ScorePair(
          ctx, r, GreedyObjective::kIdleRatio,
          state.extra_drivers[static_cast<size_t>(r.dropoff_region)]);
    };

    bool changed = true;
    for (int sweep = 0; sweep < max_sweeps_ && changed; ++sweep) {
      changed = false;
      for (auto& a : state.assignments) {
        double current_ir = ir(a.rider_index);
        int best_rider = -1;
        double best_ir = current_ir;
        for (const CandidatePair* cp :
             by_driver[static_cast<size_t>(a.driver_index)]) {
          if (cp->rider_index == a.rider_index) continue;
          if (state.rider_used[static_cast<size_t>(cp->rider_index)]) continue;
          // Score the replacement as if the current rider were released:
          // if both end in the same region the net supply change is zero.
          const WaitingRider& cand =
              ctx.riders()[static_cast<size_t>(cp->rider_index)];
          const WaitingRider& cur =
              ctx.riders()[static_cast<size_t>(a.rider_index)];
          int extra =
              state.extra_drivers[static_cast<size_t>(cand.dropoff_region)];
          if (cand.dropoff_region == cur.dropoff_region) extra -= 1;
          double cand_ir = ScorePair(ctx, cand,
                                     GreedyObjective::kIdleRatio,
                                     extra < 0 ? 0 : extra);
          if (cand_ir < best_ir) {
            best_ir = cand_ir;
            best_rider = cp->rider_index;
          }
        }
        if (best_rider >= 0) {
          const WaitingRider& old_r =
              ctx.riders()[static_cast<size_t>(a.rider_index)];
          const WaitingRider& new_r =
              ctx.riders()[static_cast<size_t>(best_rider)];
          state.rider_used[static_cast<size_t>(a.rider_index)] = false;
          state.rider_used[static_cast<size_t>(best_rider)] = true;
          --state.extra_drivers[static_cast<size_t>(old_r.dropoff_region)];
          ++state.extra_drivers[static_cast<size_t>(new_r.dropoff_region)];
          a.rider_index = best_rider;
          changed = true;
        }
      }
    }
    *out = std::move(state.assignments);
  }

 private:
  int max_sweeps_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeLocalSearchDispatcher(int max_sweeps) {
  return std::make_unique<LocalSearchDispatcher>(max_sweeps);
}

}  // namespace mrvd
