// LS (Algorithm 3): obtains the IRG assignment, then keeps replacing a
// driver's rider with a lower-idle-ratio valid alternative until no swap
// improves (convergence proved in Lemma 5.1; bounded by max_sweeps here).
//
// The swap sweep is the serial bottleneck of the roster: every swap shifts
// the tentative supply (`extra_drivers`) its successors price against, so
// the textbook loop cannot fan out as-is. The parallel path decomposes it
// by conflict footprint (dispatch/conflict_partition.h) per sweep:
//
//   1. Snapshot: dense ET tables for every candidate dropoff region at the
//      sweep-start supply (plus the "current rider released" extra-1 table
//      where a slot can need it). Computed serially through the shared
//      memo, so later sweeps and the exact recompute path reuse them.
//   2. Propose: every slot's best swap is evaluated against the sweep-start
//      state on the BatchExecution's pool — a pure scan over the plan's
//      SoA candidate arrays and the dense ET tables, no shared-memo access,
//      no pointer chasing.
//   3. Commit, in slot order: a proposal is applied directly iff no earlier
//      commit this sweep dirtied the slot's footprint (level-0 slots are
//      clean by construction and skip the check); otherwise it is
//      recomputed inline with the exact serial scan before applying.
//
// A clean footprint means the sweep-start state and the serial mid-sweep
// state agree on everything the slot reads, so the speculative proposal
// *is* the serial decision; a dirty footprint falls back to the serial
// computation itself. Commits replay in the serial order either way, so
// the refined assignment is bit-identical to the sequential sweep at any
// thread count — enforced by tests/engine_equivalence_test.cc and
// tests/local_search_test.cc. `parallel=0` keeps the original sequential
// sweep as an A/B baseline.
#include <algorithm>
#include <optional>
#include <vector>

#include "dispatch/conflict_partition.h"
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "dispatch/pipeline.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

namespace {

/// The pre-decomposition sequential sweep, kept verbatim as the
/// `parallel=0` baseline the equivalence tests pin the parallel path to.
void RunSerialSweeps(const BatchContext& ctx,
                     const std::vector<CandidatePair>& pairs, int max_sweeps,
                     IrgState* state, DispatchCounters* counters) {
  // Per-driver candidate lists R_j: valid riders for each matched driver.
  std::vector<std::vector<const CandidatePair*>> by_driver(
      ctx.drivers().size());
  for (const auto& cp : pairs) {
    by_driver[static_cast<size_t>(cp.driver_index)].push_back(&cp);
  }

  auto ir = [&](int rider_index) {
    const WaitingRider& r = ctx.riders()[static_cast<size_t>(rider_index)];
    return ScorePair(
        ctx, r, GreedyObjective::kIdleRatio,
        state->extra_drivers[static_cast<size_t>(r.dropoff_region)]);
  };

  bool changed = true;
  for (int sweep = 0; sweep < max_sweeps && changed; ++sweep) {
    ++counters->sweeps;
    counters->proposals += static_cast<int64_t>(state->assignments.size());
    changed = false;
    for (auto& a : state->assignments) {
      double current_ir = ir(a.rider_index);
      int best_rider = -1;
      double best_ir = current_ir;
      for (const CandidatePair* cp :
           by_driver[static_cast<size_t>(a.driver_index)]) {
        if (cp->rider_index == a.rider_index) continue;
        if (state->rider_used[static_cast<size_t>(cp->rider_index)]) continue;
        // Score the replacement as if the current rider were released:
        // if both end in the same region the net supply change is zero.
        const WaitingRider& cand =
            ctx.riders()[static_cast<size_t>(cp->rider_index)];
        const WaitingRider& cur =
            ctx.riders()[static_cast<size_t>(a.rider_index)];
        int extra =
            state->extra_drivers[static_cast<size_t>(cand.dropoff_region)];
        if (cand.dropoff_region == cur.dropoff_region) extra -= 1;
        double cand_ir = ScorePair(ctx, cand, GreedyObjective::kIdleRatio,
                                   extra < 0 ? 0 : extra);
        if (cand_ir < best_ir) {
          best_ir = cand_ir;
          best_rider = cp->rider_index;
        }
      }
      if (best_rider >= 0) {
        const WaitingRider& old_r =
            ctx.riders()[static_cast<size_t>(a.rider_index)];
        const WaitingRider& new_r =
            ctx.riders()[static_cast<size_t>(best_rider)];
        state->rider_used[static_cast<size_t>(a.rider_index)] = false;
        state->rider_used[static_cast<size_t>(best_rider)] = true;
        --state->extra_drivers[static_cast<size_t>(old_r.dropoff_region)];
        ++state->extra_drivers[static_cast<size_t>(new_r.dropoff_region)];
        a.rider_index = best_rider;
        changed = true;
        ++counters->swaps_applied;
      }
    }
  }
}

/// Exact serial best-swap for one slot against the *live* mid-sweep state
/// — the recompute path for proposals an earlier commit invalidated.
/// Identical scan to RunSerialSweeps' inner loop (shared-memo ET included).
int RecomputeBestSwap(const BatchContext& ctx, const LsSwapPlan& plan,
                      const IrgState& state, int slot) {
  const auto& riders = ctx.riders();
  const Assignment& a = state.assignments[static_cast<size_t>(slot)];
  const WaitingRider& cur = riders[static_cast<size_t>(a.rider_index)];
  double best_ir =
      ScorePair(ctx, cur, GreedyObjective::kIdleRatio,
                state.extra_drivers[static_cast<size_t>(cur.dropoff_region)]);
  int best_rider = -1;
  for (int c = plan.cand_offsets[static_cast<size_t>(slot)];
       c < plan.cand_offsets[static_cast<size_t>(slot) + 1]; ++c) {
    const int r = plan.cand_rider[static_cast<size_t>(c)];
    if (r == a.rider_index) continue;
    if (state.rider_used[static_cast<size_t>(r)]) continue;
    const WaitingRider& cand = riders[static_cast<size_t>(r)];
    int extra =
        state.extra_drivers[static_cast<size_t>(cand.dropoff_region)];
    if (cand.dropoff_region == cur.dropoff_region) extra -= 1;
    double cand_ir = ScorePair(ctx, cand, GreedyObjective::kIdleRatio,
                               extra < 0 ? 0 : extra);
    if (cand_ir < best_ir) {
      best_ir = cand_ir;
      best_rider = r;
    }
  }
  return best_rider;
}

/// Conflict-decomposed sweep: parallel speculative propose against the
/// sweep-start state, then in-order commit with exact revalidation.
void RunConflictDecomposedSweeps(const BatchContext& ctx,
                                 const std::vector<CandidatePair>& pairs,
                                 int max_sweeps, IrgState* state,
                                 DispatchCounters* counters) {
  // Telemetry (optional): the propose/commit/revalidate wall-time split of
  // every sweep. Execution metadata — the phase boundaries exist only on
  // this decomposed path, and the revalidate share depends on how commits
  // interleave with speculation, so all three histograms are kExecution
  // scope. Registry access stays on this (the coordinator) thread.
  telemetry::TelemetrySession* tele = ctx.telemetry();
  telemetry::LogHistogram* propose_hist = nullptr;
  telemetry::LogHistogram* commit_hist = nullptr;
  telemetry::LogHistogram* revalidate_hist = nullptr;
  if (tele != nullptr) {
    telemetry::MetricsRegistry& reg = tele->metrics();
    propose_hist = reg.histogram("ls.propose_seconds");
    commit_hist = reg.histogram("ls.commit_seconds");
    revalidate_hist = reg.histogram("ls.revalidate_seconds");
  }

  const LsSwapPlan plan = BuildLsSwapPlan(ctx, pairs, state->assignments);
  const int n = plan.num_slots;
  if (n == 0) {
    // The sequential loop still runs (and counts) one trivial sweep over an
    // empty assignment vector; keep the counters bit-identical too.
    ++counters->sweeps;
    return;
  }

  const auto& riders = ctx.riders();
  const auto num_regions = static_cast<size_t>(ctx.grid().num_regions());
  std::vector<double> et_cur(num_regions, 0.0);
  std::vector<double> et_minus(num_regions, 0.0);
  std::vector<int> proposed(static_cast<size_t>(n), -1);
  // Last sweep that committed a write into the region's supply cell (or
  // the used-flag of a rider dropping off there) — the dirty epoch.
  std::vector<int> region_dirty(num_regions, -1);

  bool changed = true;
  for (int sweep = 0; sweep < max_sweeps && changed; ++sweep) {
    ++counters->sweeps;
    changed = false;

    // Propose phase span covers the ET snapshot + the speculative scan;
    // optional<> sequences the two phase spans without re-scoping the
    // sweep body. Null session keeps all of this at two pointer checks.
    std::optional<telemetry::TraceSpan> phase_span;
    int64_t phase_ns = 0;
    if (tele != nullptr) {
      phase_ns = Stopwatch::NowNanos();
      phase_span.emplace(tele, "ls_propose");
    }

    // 1. Dense ET snapshot at the sweep-start supply. Serial, through the
    // shared memo: a pure value per (region, extra) key, so warming here
    // cannot change what any later exact recompute reads.
    for (RegionId k : plan.regions) {
      const int extra = state->extra_drivers[static_cast<size_t>(k)];
      et_cur[static_cast<size_t>(k)] = ctx.ExpectedIdleSeconds(k, extra);
      if (plan.needs_minus1[static_cast<size_t>(k)]) {
        et_minus[static_cast<size_t>(k)] =
            ctx.ExpectedIdleSeconds(k, extra > 0 ? extra - 1 : 0);
      }
    }

    // 2. Parallel propose vs the sweep-start state: pure per-slot scans
    // over the SoA candidate arrays and the dense ET tables. Disjoint
    // writes (proposed[i]), read-only shared state — safe and
    // chunk-order-independent, hence deterministic at any thread count.
    auto propose = [&](int i) {
      const int cur =
          state->assignments[static_cast<size_t>(i)].rider_index;
      const RegionId cur_d = riders[static_cast<size_t>(cur)].dropoff_region;
      double best_ir =
          ScoreFromIdleTrip(et_cur[static_cast<size_t>(cur_d)],
                            riders[static_cast<size_t>(cur)].trip_seconds,
                            GreedyObjective::kIdleRatio);
      int best_rider = -1;
      for (int c = plan.cand_offsets[static_cast<size_t>(i)];
           c < plan.cand_offsets[static_cast<size_t>(i) + 1]; ++c) {
        const int r = plan.cand_rider[static_cast<size_t>(c)];
        if (r == cur || state->rider_used[static_cast<size_t>(r)]) continue;
        const RegionId k = plan.cand_dropoff[static_cast<size_t>(c)];
        const double et = k == cur_d ? et_minus[static_cast<size_t>(k)]
                                     : et_cur[static_cast<size_t>(k)];
        const double cand_ir = ScoreFromIdleTrip(
            et, plan.cand_trip[static_cast<size_t>(c)],
            GreedyObjective::kIdleRatio);
        if (cand_ir < best_ir) {
          best_ir = cand_ir;
          best_rider = r;
        }
      }
      proposed[static_cast<size_t>(i)] = best_rider;
    };
    const BatchExecution* exec = ctx.execution();
    if (exec != nullptr && exec->Parallel() && n >= 64) {
      const int chunks = std::min(n, exec->pool->num_threads() * 4);
      exec->pool->ParallelFor(chunks, [&](int c) {
        // Worker-thread span: one per chunk, recorded in the executing
        // worker's own trace buffer.
        telemetry::TraceSpan chunk_span(tele, "ls_propose_chunk");
        const int lo = n * c / chunks;
        const int hi = n * (c + 1) / chunks;
        for (int i = lo; i < hi; ++i) propose(i);
      });
    } else {
      for (int i = 0; i < n; ++i) propose(i);
    }
    counters->proposals += n;

    double revalidate_seconds = 0.0;
    if (tele != nullptr) {
      phase_span.reset();
      const int64_t now_ns = Stopwatch::NowNanos();
      propose_hist->Add(static_cast<double>(now_ns - phase_ns) * 1e-9);
      phase_ns = now_ns;
      phase_span.emplace(tele, "ls_commit");
    }

    // 3. Serial commit in slot order. A slot whose footprint no earlier
    // commit dirtied sees exactly the sweep-start state on everything it
    // read, so its speculative proposal is the serial decision; otherwise
    // recompute it against the live state before applying.
    for (int i = 0; i < n; ++i) {
      int best_rider = proposed[static_cast<size_t>(i)];
      if (plan.level[static_cast<size_t>(i)] > 0) {
        bool dirty = false;
        for (int c = plan.region_offsets[static_cast<size_t>(i)];
             !dirty && c < plan.region_offsets[static_cast<size_t>(i) + 1];
             ++c) {
          dirty = region_dirty[static_cast<size_t>(
                      plan.slot_regions[static_cast<size_t>(c)])] == sweep;
        }
        if (dirty) {
          ++counters->proposals_recomputed;
          if (tele != nullptr) {
            const int64_t reval_ns = Stopwatch::NowNanos();
            best_rider = RecomputeBestSwap(ctx, plan, *state, i);
            revalidate_seconds += static_cast<double>(Stopwatch::NowNanos() -
                                                      reval_ns) *
                                  1e-9;
          } else {
            best_rider = RecomputeBestSwap(ctx, plan, *state, i);
          }
        }
      }
      if (best_rider < 0) continue;
      Assignment& a = state->assignments[static_cast<size_t>(i)];
      const RegionId old_d =
          riders[static_cast<size_t>(a.rider_index)].dropoff_region;
      const RegionId new_d =
          riders[static_cast<size_t>(best_rider)].dropoff_region;
      state->rider_used[static_cast<size_t>(a.rider_index)] = false;
      state->rider_used[static_cast<size_t>(best_rider)] = true;
      --state->extra_drivers[static_cast<size_t>(old_d)];
      ++state->extra_drivers[static_cast<size_t>(new_d)];
      a.rider_index = best_rider;
      region_dirty[static_cast<size_t>(old_d)] = sweep;
      region_dirty[static_cast<size_t>(new_d)] = sweep;
      changed = true;
      ++counters->swaps_applied;
    }

    if (tele != nullptr) {
      phase_span.reset();
      commit_hist->Add(
          static_cast<double>(Stopwatch::NowNanos() - phase_ns) * 1e-9);
      // The revalidate share is carved out of the commit phase: the sweep's
      // exact recomputes of proposals an earlier commit invalidated.
      revalidate_hist->Add(revalidate_seconds);
    }
  }
}

class LocalSearchDispatcher final : public Dispatcher {
 public:
  LocalSearchDispatcher(int max_sweeps, bool parallel)
      : max_sweeps_(max_sweeps), parallel_(parallel) {}

  std::string name() const override { return "LS"; }

  const DispatchCounters* counters() const override { return &counters_; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    counters_ = {};
    PreparedBatch prepared =
        PrepareShardedBatch(ctx, GreedyObjective::kIdleRatio);
    counters_.shards = std::move(prepared.shard_stats);
    IrgState state =
        RunGreedySelection(ctx, prepared.pairs, GreedyObjective::kIdleRatio);
    if (parallel_) {
      RunConflictDecomposedSweeps(ctx, prepared.pairs, max_sweeps_, &state,
                                  &counters_);
    } else {
      RunSerialSweeps(ctx, prepared.pairs, max_sweeps_, &state, &counters_);
    }
    *out = std::move(state.assignments);
  }

 private:
  int max_sweeps_;
  bool parallel_;
  DispatchCounters counters_;
};

}  // namespace

std::unique_ptr<Dispatcher> MakeLocalSearchDispatcher(int max_sweeps,
                                                      bool parallel) {
  return std::make_unique<LocalSearchDispatcher>(max_sweeps, parallel);
}

}  // namespace mrvd
