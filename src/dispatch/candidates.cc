#include "dispatch/candidates.h"

#include <algorithm>
#include <cmath>

#include "geo/region_partitioner.h"
#include "util/thread_pool.h"

namespace mrvd {

namespace {

/// Smallest cell dimension in meters (ring distance lower bound unit).
double MinCellMeters(const Grid& grid) {
  BoundingBox cell = grid.CellBox(grid.RegionAt(grid.rows() / 2, 0));
  LatLon c0{cell.lat_min, cell.lon_min};
  LatLon c_w{cell.lat_min, cell.lon_max};
  LatLon c_h{cell.lat_max, cell.lon_min};
  return std::min(EquirectangularMeters(c0, c_w),
                  EquirectangularMeters(c0, c_h));
}

/// Emits rider `ri`'s valid pairs in the canonical order: rings outward,
/// regions in ring order, drivers in region order. Every generation path
/// (serial or sharded) goes through this function with the same per-rider
/// order, so the concatenated pair list is identical no matter how the
/// riders were distributed over workers.
template <typename Sink>
void ForRiderValidPairs(const BatchContext& ctx, int ri, double min_cell_m,
                        Sink&& sink) {
  const Grid& grid = ctx.grid();
  const double speed = ctx.cost_model().SpeedMps();
  const int max_possible_ring = std::max(grid.rows(), grid.cols());
  const bool region_local =
      ctx.candidate_mode() == CandidateMode::kRegionLocal;

  const WaitingRider& r = ctx.riders()[static_cast<size_t>(ri)];
  double budget_seconds = r.pickup_deadline - ctx.now();
  if (budget_seconds < 0.0) return;
  int max_ring = 0;
  if (!region_local) {
    // Crow-fly reach (optimistic: ignores detour, so it over-covers).
    // Drivers at ring g are at least (g-1) * min_cell_m away.
    double reach_m = budget_seconds * speed;
    max_ring = std::min(max_possible_ring,
                        static_cast<int>(reach_m / min_cell_m) + 2);
  }

  for (int g = 0; g <= max_ring; ++g) {
    for (RegionId reg : grid.Ring(r.pickup_region, g)) {
      for (int di : ctx.drivers_by_region()[static_cast<size_t>(reg)]) {
        const AvailableDriver& d = ctx.drivers()[static_cast<size_t>(di)];
        double tt = ctx.PickupSeconds(d, r);
        if (ctx.now() + tt <= r.pickup_deadline) {
          sink(ri, di, tt);
        }
      }
    }
  }
}

/// Fills `out` (pre-sized to riders().size()) with each rider's pairs.
/// When the context carries a parallel execution, riders are generated
/// per-shard across the pool; each worker writes only its shard's rider
/// slots, so no synchronisation is needed and the per-rider contents are
/// exactly the serial ones.
void GeneratePerRider(const BatchContext& ctx,
                      std::vector<std::vector<CandidatePair>>* out) {
  const double min_cell_m = MinCellMeters(ctx.grid());
  const BatchExecution* exec = ctx.execution();
  if (exec != nullptr && exec->Parallel() && ctx.riders().size() > 1) {
    const RegionPartitioner& parts = *exec->partitioner;
    // Shared one-pass shard index (built once per batch and reused by the
    // pipeline's ShardedBatchContexts; must be ensured before fanning out).
    const BatchContext::ShardIndex& index = *ctx.EnsureShardIndex();
    exec->pool->ParallelFor(parts.num_shards(), [&](int s) {
      for (int ri : index.riders[static_cast<size_t>(s)]) {
        auto& dst = (*out)[static_cast<size_t>(ri)];
        ForRiderValidPairs(ctx, ri, min_cell_m,
                           [&dst](int rr, int di, double tt) {
                             dst.push_back({rr, di, tt});
                           });
      }
    });
    return;
  }
  for (int ri = 0; ri < static_cast<int>(ctx.riders().size()); ++ri) {
    auto& dst = (*out)[static_cast<size_t>(ri)];
    ForRiderValidPairs(ctx, ri, min_cell_m,
                       [&dst](int rr, int di, double tt) {
                         dst.push_back({rr, di, tt});
                       });
  }
}

}  // namespace

std::vector<CandidatePair> GenerateValidPairs(const BatchContext& ctx) {
  const BatchExecution* exec = ctx.execution();
  if (exec == nullptr || !exec->Parallel() || ctx.riders().size() <= 1) {
    // Serial: sink straight into the flat list, no per-rider buffers.
    std::vector<CandidatePair> out;
    const double min_cell_m = MinCellMeters(ctx.grid());
    for (int ri = 0; ri < static_cast<int>(ctx.riders().size()); ++ri) {
      ForRiderValidPairs(ctx, ri, min_cell_m,
                         [&out](int rr, int di, double tt) {
                           out.push_back({rr, di, tt});
                         });
    }
    return out;
  }
  std::vector<std::vector<CandidatePair>> per_rider(ctx.riders().size());
  GeneratePerRider(ctx, &per_rider);
  size_t total = 0;
  for (const auto& g : per_rider) total += g.size();
  std::vector<CandidatePair> out;
  out.reserve(total);
  for (const auto& g : per_rider) {
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

std::vector<std::vector<CandidatePair>> GenerateValidPairsPerRider(
    const BatchContext& ctx) {
  std::vector<std::vector<CandidatePair>> out(ctx.riders().size());
  GeneratePerRider(ctx, &out);
  return out;
}

}  // namespace mrvd
