#include "dispatch/candidates.h"

#include <algorithm>
#include <cmath>

namespace mrvd {

namespace {

/// Smallest cell dimension in meters (ring distance lower bound unit).
double MinCellMeters(const Grid& grid) {
  BoundingBox cell = grid.CellBox(grid.RegionAt(grid.rows() / 2, 0));
  LatLon c0{cell.lat_min, cell.lon_min};
  LatLon c_w{cell.lat_min, cell.lon_max};
  LatLon c_h{cell.lat_max, cell.lon_min};
  return std::min(EquirectangularMeters(c0, c_w),
                  EquirectangularMeters(c0, c_h));
}

template <typename Sink>
void ForEachValidPair(const BatchContext& ctx, Sink&& sink) {
  const Grid& grid = ctx.grid();
  const double min_cell_m = MinCellMeters(grid);
  const double speed = ctx.cost_model().SpeedMps();
  const int max_possible_ring = std::max(grid.rows(), grid.cols());
  const bool region_local =
      ctx.candidate_mode() == CandidateMode::kRegionLocal;

  for (int ri = 0; ri < static_cast<int>(ctx.riders().size()); ++ri) {
    const WaitingRider& r = ctx.riders()[static_cast<size_t>(ri)];
    double budget_seconds = r.pickup_deadline - ctx.now();
    if (budget_seconds < 0.0) continue;
    int max_ring = 0;
    if (!region_local) {
      // Crow-fly reach (optimistic: ignores detour, so it over-covers).
      // Drivers at ring g are at least (g-1) * min_cell_m away.
      double reach_m = budget_seconds * speed;
      max_ring = std::min(max_possible_ring,
                          static_cast<int>(reach_m / min_cell_m) + 2);
    }

    for (int g = 0; g <= max_ring; ++g) {
      for (RegionId reg : grid.Ring(r.pickup_region, g)) {
        for (int di : ctx.drivers_by_region()[static_cast<size_t>(reg)]) {
          const AvailableDriver& d =
              ctx.drivers()[static_cast<size_t>(di)];
          double tt = ctx.PickupSeconds(d, r);
          if (ctx.now() + tt <= r.pickup_deadline) {
            sink(ri, di, tt);
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<CandidatePair> GenerateValidPairs(const BatchContext& ctx) {
  std::vector<CandidatePair> out;
  ForEachValidPair(ctx, [&](int ri, int di, double tt) {
    out.push_back({ri, di, tt});
  });
  return out;
}

std::vector<std::vector<CandidatePair>> GenerateValidPairsPerRider(
    const BatchContext& ctx) {
  std::vector<std::vector<CandidatePair>> out(ctx.riders().size());
  ForEachValidPair(ctx, [&](int ri, int di, double tt) {
    out[static_cast<size_t>(ri)].push_back({ri, di, tt});
  });
  return out;
}

}  // namespace mrvd
