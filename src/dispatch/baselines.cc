// RAND, NEAR, LTG and UPPER baselines (§6.3).
#include <algorithm>
#include <numeric>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "matching/bipartite.h"
#include "util/rng.h"

namespace mrvd {

namespace {

/// RAND: assigns a uniformly random valid driver to riders in random order.
class RandomDispatcher final : public Dispatcher {
 public:
  explicit RandomDispatcher(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "RAND"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto per_rider = GenerateValidPairsPerRider(ctx);
    std::vector<int> rider_order(per_rider.size());
    std::iota(rider_order.begin(), rider_order.end(), 0);
    rng_.Shuffle(rider_order);

    std::vector<char> driver_used(ctx.drivers().size(), false);
    for (int ri : rider_order) {
      auto& cands = per_rider[static_cast<size_t>(ri)];
      // Reservoir-pick a random unused driver among the candidates.
      int chosen = -1;
      int seen = 0;
      for (const auto& c : cands) {
        if (driver_used[static_cast<size_t>(c.driver_index)]) continue;
        ++seen;
        if (rng_.UniformInt(1, seen) == 1) chosen = c.driver_index;
      }
      if (chosen >= 0) {
        driver_used[static_cast<size_t>(chosen)] = true;
        out->push_back({ri, chosen});
      }
    }
  }

 private:
  Rng rng_;
};

/// NEAR: greedily matches the globally closest (driver, order) pairs first.
class NearestDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "NEAR"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto pairs = GenerateValidPairs(ctx);
    std::vector<WeightedPair> wp;
    wp.reserve(pairs.size());
    for (const auto& c : pairs) {
      wp.push_back({c.rider_index, c.driver_index, c.pickup_seconds});
    }
    for (size_t idx : GreedyMatch(wp)) {
      out->push_back({wp[idx].left, wp[idx].right});
    }
  }
};

/// LTG: serves the highest-revenue orders first (ties: closer pickup).
class LongTripGreedyDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "LTG"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    auto pairs = GenerateValidPairs(ctx);
    std::vector<WeightedPair> wp;
    wp.reserve(pairs.size());
    for (const auto& c : pairs) {
      const auto& r = ctx.riders()[static_cast<size_t>(c.rider_index)];
      // Primary: -revenue (descending revenue); secondary: pickup time.
      double score = -r.revenue + c.pickup_seconds * 1e-6;
      wp.push_back({c.rider_index, c.driver_index, score});
    }
    for (size_t idx : GreedyMatch(wp)) {
      out->push_back({wp[idx].left, wp[idx].right});
    }
  }
};

/// UPPER: most-expensive orders onto idle drivers ignoring pickup distance
/// (§6.3). Only meaningful with SimConfig::zero_pickup_travel.
class UpperBoundDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "UPPER"; }

  void Dispatch(const BatchContext& ctx, std::vector<Assignment>* out) override {
    std::vector<int> riders(ctx.riders().size());
    std::iota(riders.begin(), riders.end(), 0);
    std::sort(riders.begin(), riders.end(), [&](int a, int b) {
      return ctx.riders()[static_cast<size_t>(a)].revenue >
             ctx.riders()[static_cast<size_t>(b)].revenue;
    });
    size_t k = std::min(riders.size(), ctx.drivers().size());
    for (size_t i = 0; i < k; ++i) {
      out->push_back({riders[i], static_cast<int>(i)});
    }
  }
};

}  // namespace

std::unique_ptr<Dispatcher> MakeRandomDispatcher(uint64_t seed) {
  return std::make_unique<RandomDispatcher>(seed);
}
std::unique_ptr<Dispatcher> MakeNearestDispatcher() {
  return std::make_unique<NearestDispatcher>();
}
std::unique_ptr<Dispatcher> MakeLongTripGreedyDispatcher() {
  return std::make_unique<LongTripGreedyDispatcher>();
}
std::unique_ptr<Dispatcher> MakeUpperBoundDispatcher() {
  return std::make_unique<UpperBoundDispatcher>();
}

}  // namespace mrvd
