// Conflict decomposition of the local-search sweep (Algorithm 3).
//
// A sweep visits every matched driver ("slot") in a fixed order and may
// swap its rider for a better-scoring candidate. Each slot's read/write
// footprint is *static*: it only ever touches the used-flags of its
// candidate riders and the `extra_drivers` cells of their dropoff regions
// (the slot's current rider is always one of its own candidates, so the
// footprint covers it at every point of the sweep). Two slots conflict iff
// those footprints intersect — they compete for the same rider or touch
// the same `extra_drivers` region cell. Since a rider's used-flag is only
// ever read/written together with its dropoff region's supply cell,
// sharing a rider implies sharing that region, and the conflict test
// reduces to region-set overlap.
//
// BuildLsSwapPlan precomputes, once per Dispatch (the candidate lists do
// not change across sweeps):
//
//   * SoA candidate arrays in CSR form — rider index, dropoff region and
//     trip seconds per candidate — so the sweep's hot scoring loop reads
//     three dense arrays instead of chasing CandidatePair pointers into
//     80-byte WaitingRider records;
//   * the per-slot distinct-region footprint (the conflict read set);
//   * ordered independence levels: level(i) = 0 if no earlier slot
//     conflicts with i, else 1 + max level among conflicting earlier
//     slots. Slots sharing a level are mutually independent, and a
//     level-0 slot can never be invalidated by an earlier commit;
//   * which regions need the "current rider released" ET table
//     (ET(k, extra-1) is only ever queried when a slot holds two
//     candidates with the same dropoff region k).
//
// local_search.cc uses the plan to propose best-swaps for all slots in
// parallel against the sweep-start state and then commit them in slot
// order, recomputing exactly the proposals whose footprint an earlier
// commit dirtied — bit-identical to the serial sweep at any thread count.
#pragma once

#include <vector>

#include "dispatch/candidates.h"
#include "sim/batch.h"

namespace mrvd {

/// Precomputed sweep layout for one LS dispatch; see file comment.
struct LsSwapPlan {
  int num_slots = 0;

  /// Candidate swaps per slot (CSR over [cand_offsets[i], cand_offsets[i+1])),
  /// in the canonical pair order the serial sweep scans.
  std::vector<int> cand_offsets;
  std::vector<int> cand_rider;         ///< context rider index
  std::vector<RegionId> cand_dropoff;  ///< rider dropoff region
  std::vector<double> cand_trip;       ///< rider trip seconds (score input)

  /// Distinct candidate dropoff regions per slot (CSR) — the conflict
  /// footprint used for dirty checks.
  std::vector<int> region_offsets;
  std::vector<RegionId> slot_regions;

  /// Ordered independence level per slot; two conflicting slots never share
  /// a level, and level-0 slots have no earlier conflicting slot at all.
  std::vector<int> level;
  int num_levels = 0;

  /// All distinct candidate dropoff regions, ascending — the regions whose
  /// ET values a sweep snapshot must cover.
  std::vector<RegionId> regions;
  /// By region id: some slot holds >= 2 candidates with this dropoff
  /// region, so the sweep also needs ET(k, extra-1) ("current rider
  /// released" scoring, local_search.cc).
  std::vector<char> needs_minus1;
};

/// Builds the plan for `assignments` (the greedy result LS refines) over
/// the canonical pair list. Slots index `assignments`; candidate order
/// within a slot matches the serial sweep's per-driver scan order.
LsSwapPlan BuildLsSwapPlan(const BatchContext& ctx,
                           const std::vector<CandidatePair>& pairs,
                           const std::vector<Assignment>& assignments);

/// True iff slots `a` and `b` conflict (footprint overlap — same candidate
/// rider or same dropoff-region supply cell). O(|regions(a)|·|regions(b)|);
/// meant for tests and diagnostics, not the hot path.
bool SlotsConflict(const LsSwapPlan& plan, int a, int b);

}  // namespace mrvd
