#include "dispatch/conflict_partition.h"

#include <algorithm>

namespace mrvd {

LsSwapPlan BuildLsSwapPlan(const BatchContext& ctx,
                           const std::vector<CandidatePair>& pairs,
                           const std::vector<Assignment>& assignments) {
  LsSwapPlan plan;
  plan.num_slots = static_cast<int>(assignments.size());
  const int num_regions = ctx.grid().num_regions();
  plan.needs_minus1.assign(static_cast<size_t>(num_regions), 0);
  plan.cand_offsets.assign(static_cast<size_t>(plan.num_slots) + 1, 0);
  plan.region_offsets.assign(static_cast<size_t>(plan.num_slots) + 1, 0);
  if (plan.num_slots == 0) return plan;

  // driver context index -> slot (assignment index); -1 for unmatched.
  std::vector<int> driver_slot(ctx.drivers().size(), -1);
  for (int i = 0; i < plan.num_slots; ++i) {
    driver_slot[static_cast<size_t>(
        assignments[static_cast<size_t>(i)].driver_index)] = i;
  }

  // CSR counts, then a stable fill — candidate order within a slot is the
  // pair order, exactly the order the serial sweep scans per driver.
  for (const CandidatePair& cp : pairs) {
    int slot = driver_slot[static_cast<size_t>(cp.driver_index)];
    if (slot >= 0) ++plan.cand_offsets[static_cast<size_t>(slot) + 1];
  }
  for (int i = 0; i < plan.num_slots; ++i) {
    plan.cand_offsets[static_cast<size_t>(i) + 1] +=
        plan.cand_offsets[static_cast<size_t>(i)];
  }
  const int total = plan.cand_offsets[static_cast<size_t>(plan.num_slots)];
  plan.cand_rider.resize(static_cast<size_t>(total));
  plan.cand_dropoff.resize(static_cast<size_t>(total));
  plan.cand_trip.resize(static_cast<size_t>(total));
  std::vector<int> cursor(plan.cand_offsets.begin(),
                          plan.cand_offsets.end() - 1);
  for (const CandidatePair& cp : pairs) {
    int slot = driver_slot[static_cast<size_t>(cp.driver_index)];
    if (slot < 0) continue;
    const WaitingRider& r = ctx.riders()[static_cast<size_t>(cp.rider_index)];
    const auto at = static_cast<size_t>(cursor[static_cast<size_t>(slot)]++);
    plan.cand_rider[at] = cp.rider_index;
    plan.cand_dropoff[at] = r.dropoff_region;
    plan.cand_trip[at] = r.trip_seconds;
  }

  // Distinct-region footprints, the global region list, and the
  // extra-minus-one flags (a repeated dropoff region within one slot means
  // the "released current rider" adjustment can fire there).
  std::vector<int> last_seen(static_cast<size_t>(num_regions), -1);
  std::vector<char> in_any(static_cast<size_t>(num_regions), 0);
  for (int i = 0; i < plan.num_slots; ++i) {
    for (int c = plan.cand_offsets[static_cast<size_t>(i)];
         c < plan.cand_offsets[static_cast<size_t>(i) + 1]; ++c) {
      const auto k = static_cast<size_t>(plan.cand_dropoff[static_cast<size_t>(c)]);
      if (last_seen[k] == i) {
        plan.needs_minus1[k] = 1;
        continue;
      }
      last_seen[k] = i;
      in_any[k] = 1;
      plan.slot_regions.push_back(plan.cand_dropoff[static_cast<size_t>(c)]);
    }
    plan.region_offsets[static_cast<size_t>(i) + 1] =
        static_cast<int>(plan.slot_regions.size());
  }
  for (RegionId k = 0; k < static_cast<RegionId>(num_regions); ++k) {
    if (in_any[static_cast<size_t>(k)]) plan.regions.push_back(k);
  }

  // Ordered independence levels via a per-region "max level of any earlier
  // slot touching this cell" map: level(i) must exceed every conflicting
  // earlier slot's level, and cells are the only way slots conflict.
  plan.level.assign(static_cast<size_t>(plan.num_slots), 0);
  std::vector<int> cell_level(static_cast<size_t>(num_regions), -1);
  for (int i = 0; i < plan.num_slots; ++i) {
    int lvl = 0;
    for (int c = plan.region_offsets[static_cast<size_t>(i)];
         c < plan.region_offsets[static_cast<size_t>(i) + 1]; ++c) {
      lvl = std::max(
          lvl, cell_level[static_cast<size_t>(
                   plan.slot_regions[static_cast<size_t>(c)])] + 1);
    }
    for (int c = plan.region_offsets[static_cast<size_t>(i)];
         c < plan.region_offsets[static_cast<size_t>(i) + 1]; ++c) {
      cell_level[static_cast<size_t>(
          plan.slot_regions[static_cast<size_t>(c)])] = lvl;
    }
    plan.level[static_cast<size_t>(i)] = lvl;
    plan.num_levels = std::max(plan.num_levels, lvl + 1);
  }
  return plan;
}

bool SlotsConflict(const LsSwapPlan& plan, int a, int b) {
  for (int i = plan.region_offsets[static_cast<size_t>(a)];
       i < plan.region_offsets[static_cast<size_t>(a) + 1]; ++i) {
    for (int j = plan.region_offsets[static_cast<size_t>(b)];
         j < plan.region_offsets[static_cast<size_t>(b) + 1]; ++j) {
      if (plan.slot_regions[static_cast<size_t>(i)] ==
          plan.slot_regions[static_cast<size_t>(j)]) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace mrvd
