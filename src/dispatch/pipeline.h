// Region-sharded parallel preparation of one dispatch batch.
//
// The batch dispatch hot path is candidate generation → greedy selection →
// (for LS) local-search sweeps. Its expensive parts — ring-expanding pair
// generation and the birth-death idle-time solves behind every score — are
// pure functions of the immutable batch snapshot, so they shard cleanly by
// region. The greedy selection itself is a sequential process whose picks
// couple arbitrary shards through the riders' dropoff regions, so it cannot
// be split exactly; instead the pipeline runs it twice:
//
//   1. Parallel phase (per shard, on the BatchExecution's pool):
//      candidate pairs are generated for the shard's riders; each worker
//      then warms a shard-local ET memo table by (a) solving ET(k, 0) for
//      every dropoff region the shard owns and (b) running a *speculative*
//      greedy over the shard's internal pairs (rider, driver and dropoff all
//      inside the shard), which touches the ET(k, extra) keys the real
//      selection will need.
//   2. Sequential reconciliation: the shard caches are merged into the
//      BatchContext memo table and the ordinary serial greedy replays over
//      the full pair list — including the kRingExpand pairs that straddle
//      shard boundaries, which the speculative phase deliberately skipped.
//
// The replay is exact, not approximate: the pair list is concatenated in
// the serial path's canonical order, the lazy-PQ comparator is a strict
// total order, and warming a memo table with values of the same pure
// function cannot change any score. Sharding therefore moves the expensive
// solves onto the pool while the cheap sequential pass guarantees
// bit-identical assignments to the serial path at any thread count.
#pragma once

#include <vector>

#include "dispatch/candidates.h"
#include "dispatch/irg_core.h"
#include "sim/batch.h"

namespace mrvd {

/// Output of the parallel preparation phase.
struct PreparedBatch {
  /// All valid pairs in the canonical serial order; the BatchContext's ET
  /// memo table has been warmed for them.
  std::vector<CandidatePair> pairs;
  /// Pairs whose rider pickup, driver and rider dropoff fall in one shard
  /// (diagnostic; the complement had to wait for reconciliation).
  size_t internal_pairs = 0;
  /// Per-shard batch sizes and parallel-phase wall times (empty on the
  /// serial fallback). Dispatchers move this into their DispatchCounters so
  /// shard imbalance reaches SimResult like the LS conflict rate does.
  std::vector<ShardLoadStat> shard_stats;
};

/// Runs the sharded preparation when `ctx` carries a parallel
/// BatchExecution; otherwise falls back to plain serial generation.
/// `objective` selects the scoring the speculative pass warms for.
PreparedBatch PrepareShardedBatch(const BatchContext& ctx,
                                  GreedyObjective objective);

}  // namespace mrvd
