#include "prediction/linalg.h"

#include <cmath>

namespace mrvd {

StatusOr<std::vector<double>> CholeskySolve(std::vector<double> a, int n,
                                            std::vector<double> b,
                                            double ridge) {
  if (static_cast<int>(a.size()) != n * n ||
      static_cast<int>(b.size()) != n) {
    return Status::InvalidArgument("CholeskySolve: dimension mismatch");
  }
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i) * n + i] += ridge;

  // In-place lower Cholesky.
  for (int j = 0; j < n; ++j) {
    double diag = a[static_cast<size_t>(j) * n + j];
    for (int k = 0; k < j; ++k) {
      double l = a[static_cast<size_t>(j) * n + k];
      diag -= l * l;
    }
    if (diag <= 0.0) {
      return Status::FailedPrecondition(
          "CholeskySolve: matrix not positive definite (increase ridge)");
    }
    diag = std::sqrt(diag);
    a[static_cast<size_t>(j) * n + j] = diag;
    for (int i = j + 1; i < n; ++i) {
      double v = a[static_cast<size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        v -= a[static_cast<size_t>(i) * n + k] *
             a[static_cast<size_t>(j) * n + k];
      }
      a[static_cast<size_t>(i) * n + j] = v / diag;
    }
  }

  // Forward substitution: L z = b.
  for (int i = 0; i < n; ++i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      v -= a[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = v / a[static_cast<size_t>(i) * n + i];
  }
  // Back substitution: L^T x = z.
  for (int i = n - 1; i >= 0; --i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      v -= a[static_cast<size_t>(k) * n + i] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = v / a[static_cast<size_t>(i) * n + i];
  }
  return b;
}

StatusOr<std::vector<double>> RidgeFit(const std::vector<double>& x, int rows,
                                       int cols, const std::vector<double>& y,
                                       double ridge) {
  if (static_cast<int>(x.size()) != rows * cols ||
      static_cast<int>(y.size()) != rows) {
    return Status::InvalidArgument("RidgeFit: dimension mismatch");
  }
  std::vector<double> xtx(static_cast<size_t>(cols) * cols, 0.0);
  std::vector<double> xty(static_cast<size_t>(cols), 0.0);
  for (int r = 0; r < rows; ++r) {
    const double* row = &x[static_cast<size_t>(r) * cols];
    for (int i = 0; i < cols; ++i) {
      xty[static_cast<size_t>(i)] += row[i] * y[static_cast<size_t>(r)];
      for (int j = i; j < cols; ++j) {
        xtx[static_cast<size_t>(i) * cols + j] += row[i] * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (int i = 0; i < cols; ++i) {
    for (int j = 0; j < i; ++j) {
      xtx[static_cast<size_t>(i) * cols + j] =
          xtx[static_cast<size_t>(j) * cols + i];
    }
  }
  return CholeskySolve(std::move(xtx), cols, std::move(xty), ridge);
}

}  // namespace mrvd
