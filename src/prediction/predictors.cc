// HA, LR, DeepST-surrogate and Oracle predictors plus the shared evaluator.
// GBRT lives in gbrt.cc.
#include <algorithm>
#include <cmath>

#include "prediction/linalg.h"
#include "prediction/predictor.h"
#include "stats/metrics.h"

namespace mrvd {

namespace {

double LagOrZero(const DemandHistory& h, int step, int region, int back) {
  int s = step - back;
  if (s < 0) return 0.0;
  return h.at_step(s, region);
}

/// Historical Average: mean of the previous `lags` slots (Appendix A).
class HistoricalAveragePredictor final : public DemandPredictor {
 public:
  explicit HistoricalAveragePredictor(int lags) : lags_(lags) {}

  std::string name() const override { return "HA"; }

  Status Train(const DemandHistory& /*history*/,
               const Grid& /*grid*/) override {
    return Status::OK();  // nothing to fit
  }

  double PredictStep(const DemandHistory& observed, int step,
                     int region) const override {
    double sum = 0.0;
    for (int k = 1; k <= lags_; ++k) sum += LagOrZero(observed, step, region, k);
    return sum / lags_;
  }

 private:
  int lags_;
};

/// Linear Regression over the previous `lags` slots, weights shared across
/// regions, fitted by ridge-regularized normal equations.
class LinearRegressionPredictor final : public DemandPredictor {
 public:
  LinearRegressionPredictor(int lags, double ridge)
      : lags_(lags), ridge_(ridge) {}

  std::string name() const override { return "LR"; }

  Status Train(const DemandHistory& history,
               const Grid& /*grid*/) override {
    const int cols = lags_ + 1;  // + intercept
    std::vector<double> x, y;
    for (int step = lags_; step < history.num_steps(); ++step) {
      for (int r = 0; r < history.num_regions(); ++r) {
        for (int k = 1; k <= lags_; ++k) {
          x.push_back(LagOrZero(history, step, r, k));
        }
        x.push_back(1.0);
        y.push_back(history.at_step(step, r));
      }
    }
    int rows = static_cast<int>(y.size());
    if (rows < cols) {
      return Status::FailedPrecondition("LR: not enough training rows");
    }
    auto w = RidgeFit(x, rows, cols, y, ridge_);
    MRVD_RETURN_NOT_OK(w.status());
    weights_ = std::move(w).value();
    return Status::OK();
  }

  double PredictStep(const DemandHistory& observed, int step,
                     int region) const override {
    if (weights_.empty()) return 0.0;
    double v = weights_.back();  // intercept
    for (int k = 1; k <= lags_; ++k) {
      v += weights_[static_cast<size_t>(k - 1)] *
           LagOrZero(observed, step, region, k);
    }
    return std::max(0.0, v);
  }

 private:
  int lags_;
  double ridge_;
  std::vector<double> weights_;
};

/// Linearised DeepST: ridge regression over the DeepST feature groups —
/// closeness (recent slots), period (same slot previous days), trend (same
/// slot previous weeks), metadata (time-of-day harmonics, weekend flag) and
/// a spatial 8-neighbour aggregate of the last slot (the conv-layer
/// surrogate). See DESIGN.md §2 for the substitution rationale.
class DeepStSurrogatePredictor final : public DemandPredictor {
 public:
  explicit DeepStSurrogatePredictor(const DeepStOptions& options)
      : opt_(options) {}

  std::string name() const override { return "DeepST"; }

  Status Train(const DemandHistory& history, const Grid& grid) override {
    grid_cols_ = grid.cols();
    grid_rows_ = grid.rows();
    slots_per_day_ = history.slots_per_day();
    int min_step = MinStep();
    std::vector<double> x, y;
    std::vector<double> feat;
    for (int step = min_step; step < history.num_steps(); ++step) {
      for (int r = 0; r < history.num_regions(); ++r) {
        BuildFeatures(history, step, r, &feat);
        x.insert(x.end(), feat.begin(), feat.end());
        y.push_back(history.at_step(step, r));
      }
    }
    int cols = static_cast<int>(feat.size());
    int rows = static_cast<int>(y.size());
    if (rows < cols) {
      return Status::FailedPrecondition("DeepST: not enough training rows");
    }
    auto w = RidgeFit(x, rows, cols, y, opt_.ridge);
    MRVD_RETURN_NOT_OK(w.status());
    weights_ = std::move(w).value();
    return Status::OK();
  }

  double PredictStep(const DemandHistory& observed, int step,
                     int region) const override {
    if (weights_.empty()) return 0.0;
    std::vector<double> feat;
    BuildFeatures(observed, step, region, &feat);
    double v = 0.0;
    for (size_t i = 0; i < feat.size(); ++i) v += feat[i] * weights_[i];
    return std::max(0.0, v);
  }

 private:
  int MinStep() const {
    return std::max({opt_.closeness_lags,
                     opt_.period_days * slots_per_day_,
                     opt_.trend_weeks * 7 * slots_per_day_});
  }

  void BuildFeatures(const DemandHistory& h, int step, int region,
                     std::vector<double>* out) const {
    out->clear();
    // Closeness.
    for (int k = 1; k <= opt_.closeness_lags; ++k) {
      out->push_back(LagOrZero(h, step, region, k));
    }
    // Period: same slot, previous days.
    for (int d = 1; d <= opt_.period_days; ++d) {
      out->push_back(LagOrZero(h, step, region, d * slots_per_day_));
    }
    // Trend: same slot, previous weeks.
    for (int wk = 1; wk <= opt_.trend_weeks; ++wk) {
      out->push_back(LagOrZero(h, step, region, wk * 7 * slots_per_day_));
    }
    // Spatial aggregate: mean last-slot count over the 8 neighbours.
    int row = region / grid_cols_, col = region % grid_cols_;
    double nsum = 0.0;
    int ncount = 0;
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        int rr = row + dr, cc = col + dc;
        if (rr < 0 || rr >= grid_rows_ || cc < 0 || cc >= grid_cols_) continue;
        nsum += LagOrZero(h, step, rr * grid_cols_ + cc, 1);
        ++ncount;
      }
    }
    out->push_back(ncount > 0 ? nsum / ncount : 0.0);
    // Metadata: time-of-day harmonics + weekend flag.
    int slot = step % slots_per_day_;
    int day = step / slots_per_day_;
    double phase = 2.0 * M_PI * slot / slots_per_day_;
    out->push_back(std::sin(phase));
    out->push_back(std::cos(phase));
    out->push_back(std::sin(2.0 * phase));
    out->push_back(std::cos(2.0 * phase));
    out->push_back(day % 7 >= 5 ? 1.0 : 0.0);
    out->push_back(1.0);  // intercept
  }

  DeepStOptions opt_;
  int grid_rows_ = 0, grid_cols_ = 0, slots_per_day_ = 48;
  std::vector<double> weights_;
};

/// Ground-truth oracle: returns the realized count ("Real").
class OraclePredictor final : public DemandPredictor {
 public:
  std::string name() const override { return "Real"; }
  Status Train(const DemandHistory&, const Grid&) override {
    return Status::OK();
  }
  double PredictStep(const DemandHistory& observed, int step,
                     int region) const override {
    return observed.at_step(step, region);
  }
};

}  // namespace

std::unique_ptr<DemandPredictor> MakeHistoricalAveragePredictor(int lags) {
  return std::make_unique<HistoricalAveragePredictor>(lags);
}

std::unique_ptr<DemandPredictor> MakeLinearRegressionPredictor(int lags,
                                                               double ridge) {
  return std::make_unique<LinearRegressionPredictor>(lags, ridge);
}

std::unique_ptr<DemandPredictor> MakeDeepStSurrogatePredictor(
    const DeepStOptions& options) {
  return std::make_unique<DeepStSurrogatePredictor>(options);
}

std::unique_ptr<DemandPredictor> MakeOraclePredictor() {
  return std::make_unique<OraclePredictor>();
}

PredictorEvaluation EvaluatePredictor(const DemandPredictor& predictor,
                                      const DemandHistory& observed,
                                      int eval_start_step) {
  ErrorStats err;
  for (int step = eval_start_step; step < observed.num_steps(); ++step) {
    for (int r = 0; r < observed.num_regions(); ++r) {
      double pred = predictor.PredictStep(observed, step, r);
      err.Add(pred, observed.at_step(step, r));
    }
  }
  PredictorEvaluation eval;
  eval.name = predictor.name();
  eval.rel_rmse_pct = err.RelativeRmsePct();
  eval.real_rmse = err.RealRmse();
  eval.mae = err.Mae();
  eval.num_predictions = err.count();
  return eval;
}

}  // namespace mrvd
