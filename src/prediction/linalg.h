// Small dense linear algebra for the regression predictors: symmetric
// positive-definite solves via Cholesky (normal equations / ridge).
#pragma once

#include <vector>

#include "util/status.h"

namespace mrvd {

/// Row-major dense matrix view helpers operate on std::vector<double>.

/// Solves (A + ridge*I) x = b for symmetric positive semi-definite A
/// (n x n, row-major) in place via Cholesky. Returns the solution.
StatusOr<std::vector<double>> CholeskySolve(std::vector<double> a, int n,
                                            std::vector<double> b,
                                            double ridge = 0.0);

/// Fits ridge regression y ~ X w (X: rows x cols row-major, intercept must
/// be included as a constant column by the caller if desired).
StatusOr<std::vector<double>> RidgeFit(const std::vector<double>& x, int rows,
                                       int cols, const std::vector<double>& y,
                                       double ridge);

}  // namespace mrvd
