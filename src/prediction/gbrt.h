// Gradient-Boosted Regression Trees (Friedman 2002) on generic dense
// feature rows — the paper's GBRT demand baseline (Appendix A). Histogram
// split finding with quantile bins; squared loss.
//
// Exposed separately from the DemandPredictor wrapper so tests and other
// modules can fit boosted trees on arbitrary regression problems.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace mrvd {

struct GbrtRegressorOptions {
  int num_trees = 80;
  int max_depth = 3;
  double learning_rate = 0.1;
  int max_bins = 32;
  int min_samples_leaf = 20;
  /// Row subsample fraction per tree (stochastic gradient boosting).
  double subsample = 0.8;
  uint64_t seed = 17;
};

/// A fitted GBRT ensemble.
class GbrtRegressor {
 public:
  /// Fits on `rows` x `cols` row-major features and targets y.
  static StatusOr<GbrtRegressor> Fit(const std::vector<double>& x, int rows,
                                     int cols, const std::vector<double>& y,
                                     const GbrtRegressorOptions& options = {});

  /// Predicts one feature row (length cols).
  double Predict(const double* row) const;
  double Predict(const std::vector<double>& row) const {
    return Predict(row.data());
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  struct Node {
    int feature = -1;       ///< -1 = leaf
    double threshold = 0.0; ///< go left if x[feature] <= threshold
    int left = -1, right = -1;
    double value = 0.0;     ///< leaf output
  };
  using Tree = std::vector<Node>;

  GbrtRegressor() = default;

  double base_ = 0.0;
  double learning_rate_ = 0.1;
  std::vector<Tree> trees_;
  int cols_ = 0;

  friend class GbrtTrainer;
};

}  // namespace mrvd
