// Demand-prediction substrate (§3.1.1, Appendix A).
//
// A DemandPredictor is trained offline on a multi-day DemandHistory and then
// asked, for any global step (day*slots_per_day + slot) of a tensor that
// also contains the evaluation days, to predict the order count of a region
// in that step *using only counts from earlier steps*. The oracle ("Real")
// predictor deliberately breaks that rule — it reproduces the paper's
// IRG-R/LS-R variants that consume ground-truth demand.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "util/status.h"
#include "workload/demand_history.h"

namespace mrvd {

/// Number of lag slots used by HA/LR/GBRT (the paper's Appendix A uses the
/// previous 15 time slots).
inline constexpr int kDefaultLags = 15;

class DemandPredictor {
 public:
  virtual ~DemandPredictor() = default;

  /// Short name for tables ("HA", "LR", "GBRT", "DeepST", "Real").
  virtual std::string name() const = 0;

  /// Fits the model on the training tensor. `grid` supplies the spatial
  /// adjacency some models use.
  virtual Status Train(const DemandHistory& history, const Grid& grid) = 0;

  /// Predicts the count for `region` at global step `step` of `observed`
  /// (which may include evaluation days). Implementations only read steps
  /// `< step`. `step` must leave enough lag room (callers start evaluation
  /// after the first day).
  virtual double PredictStep(const DemandHistory& observed, int step,
                             int region) const = 0;
};

/// Factory helpers (defaults match the paper's configurations).
std::unique_ptr<DemandPredictor> MakeHistoricalAveragePredictor(
    int lags = kDefaultLags);
std::unique_ptr<DemandPredictor> MakeLinearRegressionPredictor(
    int lags = kDefaultLags, double ridge = 1e-3);

struct GbrtOptions {
  int lags = kDefaultLags;
  int num_trees = 80;
  int max_depth = 3;
  double learning_rate = 0.1;
  int max_bins = 32;
  /// Random subsample cap on training rows (0 = use all rows).
  int64_t max_train_rows = 120000;
  uint64_t seed = 17;
};
std::unique_ptr<DemandPredictor> MakeGbrtPredictor(const GbrtOptions& options = {});

struct DeepStOptions {
  int closeness_lags = 6;  ///< previous N slots
  int period_days = 3;     ///< same slot, previous N days
  int trend_weeks = 2;     ///< same slot, previous N weeks
  double ridge = 1.0;
};
std::unique_ptr<DemandPredictor> MakeDeepStSurrogatePredictor(
    const DeepStOptions& options = {});

/// Ground-truth oracle ("Real" columns in Tables 4/6).
std::unique_ptr<DemandPredictor> MakeOraclePredictor();

/// Result row of an accuracy evaluation (Table 6 format).
struct PredictorEvaluation {
  std::string name;
  double rel_rmse_pct = 0.0;  ///< RMSE / mean actual * 100
  double real_rmse = 0.0;     ///< RMSE in order counts
  double mae = 0.0;
  int64_t num_predictions = 0;
};

/// Evaluates a trained predictor on steps [eval_start_step, end of tensor),
/// over all regions.
PredictorEvaluation EvaluatePredictor(const DemandPredictor& predictor,
                                      const DemandHistory& observed,
                                      int eval_start_step);

}  // namespace mrvd
