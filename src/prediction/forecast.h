// Bridges offline predictors to the online dispatcher: per-region expected
// order counts over an arbitrary [t, t + t_c) window of the evaluation day.
//
// The forecast is materialised per slot once (predictions depend only on the
// slot, not the batch timestamp) and windows spanning slot boundaries sum
// fractional slot contributions.
#pragma once

#include <memory>
#include <vector>

#include "prediction/predictor.h"

namespace mrvd {

/// Per-slot predicted counts for one evaluation day.
class DemandForecast {
 public:
  /// Builds the forecast for day `eval_day` of `observed` (a tensor whose
  /// trailing day(s) are the evaluation data; predictors only look at
  /// earlier steps, the oracle reads the day itself).
  static StatusOr<DemandForecast> Build(const DemandPredictor& predictor,
                                        const DemandHistory& observed,
                                        int eval_day);

  int slots_per_day() const { return slots_per_day_; }
  int num_regions() const { return num_regions_; }

  /// Predicted count for region in slot (0..slots_per_day-1).
  double SlotCount(int slot, int region) const {
    return predicted_[static_cast<size_t>(slot) * num_regions_ + region];
  }

  /// Expected number of orders in `region` arriving during
  /// [t_seconds, t_seconds + window_seconds) of the evaluation day
  /// (piecewise-constant per slot; windows past midnight are truncated).
  double WindowCount(double t_seconds, double window_seconds,
                     int region) const;

 private:
  DemandForecast(int slots_per_day, int num_regions)
      : slots_per_day_(slots_per_day), num_regions_(num_regions) {}

  int slots_per_day_;
  int num_regions_;
  std::vector<double> predicted_;  ///< [slot][region]
};

}  // namespace mrvd
