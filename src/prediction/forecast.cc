#include "prediction/forecast.h"

#include <algorithm>
#include <cmath>

#include "workload/types.h"

namespace mrvd {

StatusOr<DemandForecast> DemandForecast::Build(
    const DemandPredictor& predictor, const DemandHistory& observed,
    int eval_day) {
  if (eval_day < 0 || eval_day >= observed.num_days()) {
    return Status::OutOfRange("eval_day outside observed tensor");
  }
  DemandForecast fc(observed.slots_per_day(), observed.num_regions());
  fc.predicted_.resize(
      static_cast<size_t>(fc.slots_per_day_) * fc.num_regions_);
  for (int slot = 0; slot < fc.slots_per_day_; ++slot) {
    int step = eval_day * fc.slots_per_day_ + slot;
    for (int r = 0; r < fc.num_regions_; ++r) {
      fc.predicted_[static_cast<size_t>(slot) * fc.num_regions_ + r] =
          std::max(0.0, predictor.PredictStep(observed, step, r));
    }
  }
  return fc;
}

double DemandForecast::WindowCount(double t_seconds, double window_seconds,
                                   int region) const {
  const double slot_secs = kSecondsPerDay / slots_per_day_;
  double t0 = std::max(0.0, t_seconds);
  double t1 = std::min(kSecondsPerDay, t_seconds + window_seconds);
  double total = 0.0;
  int first_slot = static_cast<int>(t0 / slot_secs);
  int last_slot = static_cast<int>((t1 - 1e-9) / slot_secs);
  for (int s = first_slot; s <= last_slot && s < slots_per_day_; ++s) {
    double lo = std::max(t0, s * slot_secs);
    double hi = std::min(t1, (s + 1) * slot_secs);
    if (hi <= lo) continue;
    total += SlotCount(s, region) * (hi - lo) / slot_secs;
  }
  return total;
}

}  // namespace mrvd
