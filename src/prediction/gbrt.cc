#include "prediction/gbrt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace mrvd {

namespace {

/// Per-feature quantile bin edges. Values <= edges[i] fall in bin i;
/// the last bin is open.
struct BinningScheme {
  int max_bins;
  std::vector<std::vector<double>> edges;  // per feature, sorted

  int BinOf(int feature, double v) const {
    const auto& e = edges[static_cast<size_t>(feature)];
    return static_cast<int>(std::lower_bound(e.begin(), e.end(), v) -
                            e.begin());
  }
  int NumBins(int feature) const {
    return static_cast<int>(edges[static_cast<size_t>(feature)].size()) + 1;
  }
};

BinningScheme BuildBins(const std::vector<double>& x, int rows, int cols,
                        int max_bins, Rng& rng) {
  BinningScheme scheme;
  scheme.max_bins = max_bins;
  scheme.edges.resize(static_cast<size_t>(cols));
  // Sample up to 20k rows for the quantile sketch.
  int sample = std::min(rows, 20000);
  std::vector<int> idx(static_cast<size_t>(rows));
  std::iota(idx.begin(), idx.end(), 0);
  if (rows > sample) rng.Shuffle(idx);

  std::vector<double> vals;
  for (int f = 0; f < cols; ++f) {
    vals.clear();
    for (int i = 0; i < sample; ++i) {
      vals.push_back(x[static_cast<size_t>(idx[static_cast<size_t>(i)]) *
                           cols +
                       f]);
    }
    std::sort(vals.begin(), vals.end());
    auto& edges = scheme.edges[static_cast<size_t>(f)];
    for (int b = 1; b < max_bins; ++b) {
      double q = static_cast<double>(b) / max_bins;
      double v = vals[static_cast<size_t>(q * (vals.size() - 1))];
      if (edges.empty() || v > edges.back()) edges.push_back(v);
    }
  }
  return scheme;
}

}  // namespace

/// Trainer with access to GbrtRegressor internals.
class GbrtTrainer {
 public:
  static StatusOr<GbrtRegressor> Fit(const std::vector<double>& x, int rows,
                                     int cols, const std::vector<double>& y,
                                     const GbrtRegressorOptions& opt) {
    if (rows <= 0 || cols <= 0 ||
        static_cast<int>(x.size()) != rows * cols ||
        static_cast<int>(y.size()) != rows) {
      return Status::InvalidArgument("GBRT: dimension mismatch");
    }
    GbrtRegressor model;
    model.cols_ = cols;
    model.learning_rate_ = opt.learning_rate;
    model.base_ =
        std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(rows);

    Rng rng(opt.seed);
    BinningScheme bins = BuildBins(x, rows, cols, opt.max_bins, rng);

    // Pre-bin the whole matrix once.
    std::vector<uint8_t> binned(static_cast<size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r) {
      for (int f = 0; f < cols; ++f) {
        binned[static_cast<size_t>(r) * cols + f] = static_cast<uint8_t>(
            bins.BinOf(f, x[static_cast<size_t>(r) * cols + f]));
      }
    }

    std::vector<double> residual(y);
    for (int r = 0; r < rows; ++r) residual[static_cast<size_t>(r)] -= model.base_;

    std::vector<int> all_rows(static_cast<size_t>(rows));
    std::iota(all_rows.begin(), all_rows.end(), 0);

    for (int t = 0; t < opt.num_trees; ++t) {
      // Stochastic subsample.
      std::vector<int> tree_rows;
      if (opt.subsample < 1.0) {
        tree_rows.reserve(static_cast<size_t>(rows * opt.subsample));
        for (int r = 0; r < rows; ++r) {
          if (rng.Bernoulli(opt.subsample)) tree_rows.push_back(r);
        }
        if (tree_rows.empty()) tree_rows = all_rows;
      } else {
        tree_rows = all_rows;
      }

      GbrtRegressor::Tree tree;
      BuildNode(binned, cols, bins, residual, tree_rows, 0, opt, &tree);
      // Update residuals with the shrunken tree predictions over ALL rows.
      for (int r = 0; r < rows; ++r) {
        double pred = PredictTreeBinned(tree, &binned[static_cast<size_t>(r) * cols]);
        residual[static_cast<size_t>(r)] -= opt.learning_rate * pred;
      }
      // Convert bin thresholds to raw-value thresholds for inference.
      for (auto& node : tree) {
        if (node.feature >= 0) {
          const auto& edges = bins.edges[static_cast<size_t>(node.feature)];
          int b = static_cast<int>(node.threshold);
          // Split "bin <= b" -> raw "value <= edges[b]" (edges[b] is the
          // upper boundary of bin b). b is always < edges.size() by
          // construction of candidate splits.
          node.threshold = edges[static_cast<size_t>(b)];
        }
      }
      model.trees_.push_back(std::move(tree));
    }
    return model;
  }

 private:
  /// Recursively grows one node; returns its index in `tree`.
  static int BuildNode(const std::vector<uint8_t>& binned, int cols,
                       const BinningScheme& bins,
                       const std::vector<double>& residual,
                       const std::vector<int>& node_rows, int depth,
                       const GbrtRegressorOptions& opt,
                       GbrtRegressor::Tree* tree) {
    double sum = 0.0;
    for (int r : node_rows) sum += residual[static_cast<size_t>(r)];
    double mean = node_rows.empty()
                      ? 0.0
                      : sum / static_cast<double>(node_rows.size());

    int node_index = static_cast<int>(tree->size());
    tree->push_back({});
    (*tree)[static_cast<size_t>(node_index)].value = mean;

    if (depth >= opt.max_depth ||
        static_cast<int>(node_rows.size()) < 2 * opt.min_samples_leaf) {
      return node_index;
    }

    // Histogram split search: for each feature, accumulate per-bin count and
    // residual sum, then scan split points left to right.
    double best_gain = 1e-12;
    int best_feature = -1, best_bin = -1;
    const auto n = static_cast<double>(node_rows.size());
    std::vector<double> bin_sum;
    std::vector<int> bin_cnt;
    for (int f = 0; f < cols; ++f) {
      int nb = bins.NumBins(f);
      if (nb < 2) continue;
      bin_sum.assign(static_cast<size_t>(nb), 0.0);
      bin_cnt.assign(static_cast<size_t>(nb), 0);
      for (int r : node_rows) {
        uint8_t b = binned[static_cast<size_t>(r) * cols + f];
        bin_sum[b] += residual[static_cast<size_t>(r)];
        ++bin_cnt[b];
      }
      double left_sum = 0.0;
      int left_cnt = 0;
      for (int b = 0; b < nb - 1; ++b) {
        left_sum += bin_sum[static_cast<size_t>(b)];
        left_cnt += bin_cnt[static_cast<size_t>(b)];
        int right_cnt = static_cast<int>(node_rows.size()) - left_cnt;
        if (left_cnt < opt.min_samples_leaf || right_cnt < opt.min_samples_leaf)
          continue;
        double right_sum = sum - left_sum;
        // Variance-reduction gain (up to constants):
        // left_sum^2/left_cnt + right_sum^2/right_cnt - sum^2/n.
        double gain = left_sum * left_sum / left_cnt +
                      right_sum * right_sum / right_cnt - sum * sum / n;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_bin = b;
        }
      }
    }
    if (best_feature < 0) return node_index;

    std::vector<int> left_rows, right_rows;
    for (int r : node_rows) {
      if (binned[static_cast<size_t>(r) * cols + best_feature] <=
          static_cast<uint8_t>(best_bin)) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    (*tree)[static_cast<size_t>(node_index)].feature = best_feature;
    (*tree)[static_cast<size_t>(node_index)].threshold =
        static_cast<double>(best_bin);  // converted to raw value post-build
    int left = BuildNode(binned, cols, bins, residual, left_rows, depth + 1,
                         opt, tree);
    int right = BuildNode(binned, cols, bins, residual, right_rows, depth + 1,
                          opt, tree);
    (*tree)[static_cast<size_t>(node_index)].left = left;
    (*tree)[static_cast<size_t>(node_index)].right = right;
    return node_index;
  }

  /// Tree traversal on binned rows (thresholds still in bin space).
  static double PredictTreeBinned(const GbrtRegressor::Tree& tree,
                                  const uint8_t* row) {
    int idx = 0;
    while (tree[static_cast<size_t>(idx)].feature >= 0) {
      const auto& node = tree[static_cast<size_t>(idx)];
      idx = row[node.feature] <= static_cast<uint8_t>(node.threshold)
                ? node.left
                : node.right;
    }
    return tree[static_cast<size_t>(idx)].value;
  }
};

StatusOr<GbrtRegressor> GbrtRegressor::Fit(const std::vector<double>& x,
                                           int rows, int cols,
                                           const std::vector<double>& y,
                                           const GbrtRegressorOptions& options) {
  return GbrtTrainer::Fit(x, rows, cols, y, options);
}

double GbrtRegressor::Predict(const double* row) const {
  double v = base_;
  for (const auto& tree : trees_) {
    int idx = 0;
    while (tree[static_cast<size_t>(idx)].feature >= 0) {
      const auto& node = tree[static_cast<size_t>(idx)];
      idx = row[node.feature] <= node.threshold ? node.left : node.right;
    }
    v += learning_rate_ * tree[static_cast<size_t>(idx)].value;
  }
  return v;
}

}  // namespace mrvd
