// DemandPredictor wrapper around GbrtRegressor (Appendix A baseline).
#include <algorithm>
#include <cmath>

#include "prediction/gbrt.h"
#include "prediction/predictor.h"
#include "util/rng.h"

namespace mrvd {

namespace {

class GbrtPredictor final : public DemandPredictor {
 public:
  explicit GbrtPredictor(const GbrtOptions& options) : opt_(options) {}

  std::string name() const override { return "GBRT"; }

  Status Train(const DemandHistory& history,
               const Grid& /*grid*/) override {
    slots_per_day_ = history.slots_per_day();
    std::vector<double> x, y, feat;
    Rng rng(opt_.seed);
    // Reservoir-free subsampling: decide a keep probability from the total
    // row count so memory stays bounded on big histories.
    int64_t total_rows =
        static_cast<int64_t>(history.num_steps() - opt_.lags) *
        history.num_regions();
    double keep = opt_.max_train_rows > 0 && total_rows > opt_.max_train_rows
                      ? static_cast<double>(opt_.max_train_rows) /
                            static_cast<double>(total_rows)
                      : 1.0;
    for (int step = opt_.lags; step < history.num_steps(); ++step) {
      for (int r = 0; r < history.num_regions(); ++r) {
        if (keep < 1.0 && !rng.Bernoulli(keep)) continue;
        BuildFeatures(history, step, r, &feat);
        x.insert(x.end(), feat.begin(), feat.end());
        y.push_back(history.at_step(step, r));
      }
    }
    if (y.size() < 100) {
      return Status::FailedPrecondition("GBRT: not enough training rows");
    }
    GbrtRegressorOptions ropt;
    ropt.num_trees = opt_.num_trees;
    ropt.max_depth = opt_.max_depth;
    ropt.learning_rate = opt_.learning_rate;
    ropt.max_bins = opt_.max_bins;
    ropt.seed = opt_.seed;
    auto model = GbrtRegressor::Fit(x, static_cast<int>(y.size()),
                                    static_cast<int>(feat.size()), y, ropt);
    MRVD_RETURN_NOT_OK(model.status());
    model_ = std::make_unique<GbrtRegressor>(std::move(model).value());
    return Status::OK();
  }

  double PredictStep(const DemandHistory& observed, int step,
                     int region) const override {
    if (model_ == nullptr) return 0.0;
    std::vector<double> feat;
    BuildFeatures(observed, step, region, &feat);
    return std::max(0.0, model_->Predict(feat));
  }

 private:
  void BuildFeatures(const DemandHistory& h, int step, int region,
                     std::vector<double>* out) const {
    out->clear();
    for (int k = 1; k <= opt_.lags; ++k) {
      int s = step - k;
      out->push_back(s >= 0 ? h.at_step(s, region) : 0.0);
    }
    int slot = step % slots_per_day_;
    double phase = 2.0 * M_PI * slot / slots_per_day_;
    out->push_back(std::sin(phase));
    out->push_back(std::cos(phase));
    out->push_back((step / slots_per_day_) % 7 >= 5 ? 1.0 : 0.0);
  }

  GbrtOptions opt_;
  int slots_per_day_ = 48;
  std::unique_ptr<GbrtRegressor> model_;
};

}  // namespace

std::unique_ptr<DemandPredictor> MakeGbrtPredictor(const GbrtOptions& options) {
  return std::make_unique<GbrtPredictor>(options);
}

}  // namespace mrvd
