// Minimal JSON parser — the read side of util/json_writer, added for the
// campaign subsystem's resumable artifact store: per-run RunResult JSON and
// campaign manifests are parsed back so CampaignRunner::Resume() can skip
// completed runs. Accepts any RFC-8259 document (it must read artifacts
// from older writers, not just what the current JsonWriter emits), with one
// deliberate extension: bare `null` is what JsonWriter emits for non-finite
// doubles, and it parses back as kNull.
//
// Numbers keep their raw token alongside the parsed double, so int64/uint64
// values (e.g. replication seeds above 2^53) round-trip at full fidelity
// and doubles printed with shortest-round-trip formatting parse back
// bit-exact — the property the resume path's byte-identical manifests
// depend on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// One parsed JSON value. Objects preserve member order (arrays obviously
/// do); lookups are linear — artifact documents are small.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Requires is_bool().
  bool bool_value() const { return bool_; }
  /// Requires is_number(): the value as a double (shortest-round-trip
  /// tokens parse back to the exact double the writer formatted).
  double number() const { return number_; }
  /// Requires is_number(): re-parses the raw token as int64/uint64, so
  /// integers beyond 2^53 are not squeezed through the double.
  StatusOr<int64_t> Int64() const;
  StatusOr<uint64_t> Uint64() const;
  /// Requires is_string(): the unescaped text.
  const std::string& string_value() const { return string_; }

  /// Requires is_array().
  const std::vector<JsonValue>& array() const { return array_; }
  /// Requires is_object(): members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Object member lookup (first match); null if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // ---- Typed member accessors for flat artifact records: Get<T> fails
  // with InvalidArgument naming the key when it is missing or mistyped.
  StatusOr<double> GetDouble(std::string_view key) const;
  StatusOr<int64_t> GetInt64(std::string_view key) const;
  StatusOr<uint64_t> GetUint64(std::string_view key) const;
  StatusOr<std::string> GetString(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string raw_number_;  ///< verbatim token for exact integer reads
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Errors carry the byte offset.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Reads and parses `path`; open/read failures carry errno context.
StatusOr<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace mrvd
