#include "util/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mrvd {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty string is not a double");
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty string is not an int");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  // strtoll clamps to LLONG_MIN/MAX on overflow; that is a parse failure
  // here, not a value.
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace mrvd
