#include "util/strings.h"

#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mrvd {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty string is not a double");
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty string is not an int");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  // strtoll clamps to LLONG_MIN/MAX on overflow; that is a parse failure
  // here, not a value.
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc() ? std::string(buf, ptr) : std::to_string(value);
}

Status ParseKeyValueList(
    std::string_view list, const std::string& context,
    std::vector<std::pair<std::string, std::string>>* out) {
  for (std::string_view part : SplitString(list, ',')) {
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "malformed parameter (expected key=value) in " + context);
    }
    std::string key(StripAsciiWhitespace(part.substr(0, eq)));
    std::string value(StripAsciiWhitespace(part.substr(eq + 1)));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument(
          "malformed parameter (expected key=value) in " + context);
    }
    for (const auto& [seen, unused] : *out) {
      if (seen == key) {
        return Status::InvalidArgument("duplicate parameter '" + key +
                                       "' in " + context);
      }
    }
    out->emplace_back(std::move(key), std::move(value));
  }
  return Status::OK();
}

}  // namespace mrvd
