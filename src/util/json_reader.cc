#include "util/json_reader.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mrvd {

namespace {

Status NumberError(const std::string& raw, const char* want) {
  return Status::InvalidArgument("JSON number '" + raw +
                                 "' does not fit in " + want);
}

}  // namespace

StatusOr<int64_t> JsonValue::Int64() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  int64_t out = 0;
  const char* begin = raw_number_.data();
  const char* end = begin + raw_number_.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return NumberError(raw_number_, "int64");
  return out;
}

StatusOr<uint64_t> JsonValue::Uint64() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  uint64_t out = 0;
  const char* begin = raw_number_.data();
  const char* end = begin + raw_number_.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) {
    return NumberError(raw_number_, "uint64");
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

StatusOr<double> JsonValue::GetDouble(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-numeric JSON member '" +
                                   std::string(key) + "'");
  }
  return v->number();
}

StatusOr<int64_t> JsonValue::GetInt64(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-numeric JSON member '" +
                                   std::string(key) + "'");
  }
  return v->Int64();
}

StatusOr<uint64_t> JsonValue::GetUint64(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-numeric JSON member '" +
                                   std::string(key) + "'");
  }
  return v->Uint64();
}

StatusOr<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing or non-string JSON member '" +
                                   std::string(key) + "'");
  }
  return v->string_value();
}

/// Recursive-descent parser over the input view. Depth is bounded to keep a
/// hostile (or corrupted) artifact from overflowing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue root;
    MRVD_RETURN_NOT_OK(ParseValue(&root, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        MRVD_RETURN_NOT_OK(ConsumeLiteral("true"));
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        MRVD_RETURN_NOT_OK(ConsumeLiteral("false"));
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        MRVD_RETURN_NOT_OK(ConsumeLiteral("null"));
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      MRVD_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      MRVD_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      MRVD_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // combined (the writer never emits them — it only escapes
          // control bytes); lone surrogates round-trip as-is.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                     value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      pos_ = start;
      return Error("malformed number '" + std::string(token) + "'");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    out->raw_number_.assign(token);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

StatusOr<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return IoErrorFromErrno("could not open '" + path + "' for reading");
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return IoErrorFromErrno("could not read '" + path + "'");
  }
  return ParseJson(content.str());
}

}  // namespace mrvd
