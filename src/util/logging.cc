#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mrvd {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("MRVD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kInfo;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseLevelFromEnv();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return MutableLevel(); }
void SetLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace mrvd
