// Minimal CSV reading/writing used by the TLC trip-record parser and the
// bench harnesses' result dumps. Handles quoted fields with embedded commas
// and doubled quotes; does not handle embedded newlines (TLC data has none).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// Parses one CSV record into fields (RFC-4180 quoting, no embedded newlines).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Streams a CSV file row by row. `row_fn` receives the parsed fields for
/// each data row; returning false stops iteration early (still OK status).
/// If `has_header` is true the first row is passed to `header_fn` (may be
/// nullptr to skip it).
Status ReadCsvFile(
    const std::string& path, bool has_header,
    const std::function<void(const std::vector<std::string>&)>& header_fn,
    const std::function<bool(const std::vector<std::string>&)>& row_fn);

/// Buffered CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Writes one row, quoting fields that contain commas or quotes.
  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace mrvd
