#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace mrvd {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (splitmix cannot produce four zeros from any
  // seed in practice, but be defensive).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::Fork(uint64_t tag) const {
  uint64_t mix = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 47);
  uint64_t sm = mix ^ (tag * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  return Rng(SplitMix64(sm));
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Debiased modulo (Lemire-style rejection is overkill for sim workloads,
  // but reject the biased tail to keep distributions exact).
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  // -log(1-U) avoids log(0) since NextDouble() < 1.
  return -std::log1p(-NextDouble()) / lambda;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double threshold = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double x = Normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int64_t>(x + 0.5);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

int64_t Rng::Zipf(int64_t n, double s) {
  ZipfTable table(n, s);
  return table.Sample(*this);
}

ZipfTable::ZipfTable(int64_t n, double s) {
  assert(n > 0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[static_cast<size_t>(i)] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

int64_t ZipfTable::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace mrvd
