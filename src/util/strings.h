// Small string helpers shared by the CSV reader and bench harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Strict numeric parsing (whole string must parse).
StatusOr<double> ParseDouble(std::string_view s);
StatusOr<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace mrvd
