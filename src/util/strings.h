// Small string helpers shared by the CSV reader and bench harnesses.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Strict numeric parsing (whole string must parse).
StatusOr<double> ParseDouble(std::string_view s);
StatusOr<int64_t> ParseInt64(std::string_view s);

/// Shortest round-trip formatting (std::to_chars): FormatDouble(x) parses
/// back to exactly x. THE formatter for every canonical spec form the
/// campaign content keys hash — one implementation, so numeric spelling
/// can never drift between the dispatcher/catalog/config-delta
/// canonicalizers and fork keys.
std::string FormatDouble(double value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a "key=value,key=value" list into whitespace-trimmed pairs.
/// Rejects entries without '=', empty keys/values, and duplicate keys.
/// `context` names the enclosing spec in error messages (e.g. "spec 'LS:…'").
/// The one spec-string grammar shared by dispatcher specs, catalog specs
/// and campaign config deltas — one parser, so their behaviour (and the
/// content keys hashed from the canonical forms) can never drift apart.
Status ParseKeyValueList(
    std::string_view list, const std::string& context,
    std::vector<std::pair<std::string, std::string>>* out);

}  // namespace mrvd
