#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace mrvd {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets) {
  assert(hi > lo && buckets > 0);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<size_t>((value - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

void Histogram::Merge(const Histogram& other) {
  assert(other.counts_.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double acc = static_cast<double>(underflow_);
  if (acc >= target) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double c = static_cast<double>(counts_[i]);
    if (acc + c >= target && c > 0) {
      double frac = (target - acc) / c;
      return lo_ + width_ * (static_cast<double>(i) + frac);
    }
    acc += c;
  }
  return hi_;
}

std::string Histogram::ToAscii(int bar_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(
        std::llround(static_cast<double>(counts_[i]) * bar_width / peak));
    out += StrFormat("[%10.3f, %10.3f) %8lld |", bucket_lo(static_cast<int>(i)),
                     bucket_lo(static_cast<int>(i)) + width_,
                     static_cast<long long>(counts_[i]));
    out.append(static_cast<size_t>(bar), '#');
    out.push_back('\n');
  }
  if (underflow_ > 0)
    out += StrFormat("underflow: %lld\n", static_cast<long long>(underflow_));
  if (overflow_ > 0)
    out += StrFormat("overflow: %lld\n", static_cast<long long>(overflow_));
  return out;
}

}  // namespace mrvd
