#include "util/csv.h"

#include <cstdio>

namespace mrvd {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r' || c == '\n') {
      break;
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Status ReadCsvFile(
    const std::string& path, bool has_header,
    const std::function<void(const std::vector<std::string>&)>& header_fn,
    const std::function<bool(const std::vector<std::string>&)>& row_fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);

  std::string line;
  char buf[1 << 16];
  bool first = true;
  auto flush_line = [&](bool eof) -> bool {
    if (line.empty() && eof) return true;
    auto fields = ParseCsvLine(line);
    line.clear();
    if (first && has_header) {
      first = false;
      if (header_fn) header_fn(fields);
      return true;
    }
    first = false;
    return row_fn(fields);
  };

  bool keep_going = true;
  while (keep_going && std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.append(buf);
    if (!line.empty() && line.back() == '\n') {
      keep_going = flush_line(/*eof=*/false);
    }
  }
  if (keep_going && !line.empty()) flush_line(/*eof=*/true);
  std::fclose(f);
  return Status::OK();
}

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    bool needs_quote =
        f.find(',') != std::string::npos || f.find('"') != std::string::npos;
    if (needs_quote) {
      std::fputc('"', file_);
      for (char c : f) {
        if (c == '"') std::fputc('"', file_);
        std::fputc(c, file_);
      }
      std::fputc('"', file_);
    } else {
      std::fwrite(f.data(), 1, f.size(), file_);
    }
    std::fputc(i + 1 == fields.size() ? '\n' : ',', file_);
  }
}

}  // namespace mrvd
