// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). Annotating which mutex guards which member turns the locking
// discipline into a compile-time check: the CI static-analysis job builds
// the library with clang's `-Wthread-safety -Werror`, so an unlocked access
// to annotated state fails the build instead of waiting for TSan to catch
// it at runtime.
//
// Usage (see util/mutex.h for the annotated Mutex/MutexLock/CondVar types):
//
//   Mutex mu_;
//   std::deque<Task> queue_ MRVD_GUARDED_BY(mu_);
//
//   void Drain() MRVD_REQUIRES(mu_);   // caller must hold mu_
//
// Names follow the standard clang spelling with an MRVD_ prefix; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MRVD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MRVD_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability (e.g. a mutex wrapper).
#define MRVD_CAPABILITY(name) MRVD_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define MRVD_SCOPED_CAPABILITY MRVD_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding `mu`.
#define MRVD_GUARDED_BY(mu) MRVD_THREAD_ANNOTATION(guarded_by(mu))

/// Pointee may only be accessed while holding `mu`.
#define MRVD_PT_GUARDED_BY(mu) MRVD_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function requires the caller to hold the given capabilities.
#define MRVD_REQUIRES(...) \
  MRVD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the given capabilities (held on return).
#define MRVD_ACQUIRE(...) \
  MRVD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the given capabilities (must be held on entry).
#define MRVD_RELEASE(...) \
  MRVD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define MRVD_TRY_ACQUIRE(result, ...) \
  MRVD_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the given capabilities (deadlock prevention).
#define MRVD_EXCLUDES(...) MRVD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables analysis for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define MRVD_NO_THREAD_SAFETY_ANALYSIS \
  MRVD_THREAD_ANNOTATION(no_thread_safety_analysis)
