#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace mrvd {

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << "{";
  scopes_.push_back(Scope::kObject);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  scopes_.pop_back();
  if (!first_in_scope_) {
    os_ << "\n";
    Indent();
  }
  os_ << "}";
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << "[";
  scopes_.push_back(Scope::kArray);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  scopes_.pop_back();
  if (!first_in_scope_) {
    os_ << "\n";
    Indent();
  }
  os_ << "]";
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  os_ << '"';
  WriteEscaped(key);
  os_ << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  os_ << '"';
  WriteEscaped(value);
  os_ << '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  // Shortest round-trip formatting: artifacts compare bit-exact across
  // runs/machines instead of being rounded to the stream's (caller-set)
  // precision. JSON has no inf/nan spelling — to_chars would emit "inf",
  // which no parser (including util/json_reader) accepts — so non-finite
  // values become null.
  if (!std::isfinite(value)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc()) {
    os_.write(buf, ptr - buf);
  } else {
    os_ << value;  // unreachable for finite doubles; keep a fallback
  }
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    // The key already emitted the separator; the value goes inline.
    after_key_ = false;
    return;
  }
  if (scopes_.empty()) return;  // top-level value
  if (!first_in_scope_) os_ << ",";
  os_ << "\n";
  Indent();
  first_in_scope_ = false;
}

void JsonWriter::Indent() {
  for (size_t i = 0; i < scopes_.size(); ++i) os_ << "  ";
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\t':
        os_ << "\\t";
        break;
      case '\r':
        os_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
}

}  // namespace mrvd
