// Wall-clock stopwatch for batch-latency measurements (Figures 7b-10b).
#pragma once

#include <chrono>
#include <cstdint>

namespace mrvd {

/// Monotonic stopwatch; Elapsed* can be read repeatedly without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mrvd
