// Wall-clock stopwatch for batch-latency measurements (Figures 7b-10b).
#pragma once

#include <chrono>
#include <cstdint>

namespace mrvd {

/// Monotonic stopwatch; Elapsed* can be read repeatedly without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Monotonic nanoseconds since an arbitrary (per-process) epoch — the one
  /// sanctioned raw-clock read outside Stopwatch itself (see the
  /// banned-wallclock lint rule). Telemetry trace spans stamp their
  /// start/duration with this so every span of a process shares one
  /// timebase.
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mrvd
