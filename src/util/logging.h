// Leveled stderr logging. Controlled by MRVD_LOG_LEVEL (error|warn|info|debug,
// default info). Kept intentionally tiny: simulation hot paths never log.
#pragma once

#include <sstream>

namespace mrvd {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide log threshold (read once from the environment).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MRVD_LOG(level)                                              \
  if (::mrvd::LogLevel::k##level <= ::mrvd::GetLogLevel())           \
  ::mrvd::internal::LogMessage(::mrvd::LogLevel::k##level, __FILE__, \
                               __LINE__)

}  // namespace mrvd
