// Reusable fixed-size worker pool for the batch-dispatch pipeline.
//
// The pool is created once (per Simulator::Run or per bench) and reused
// across every batch: submitting work never spawns threads. With
// `num_threads <= 1` no workers are started and every task runs inline on
// the caller's thread, so the serial path has zero threading overhead and
// the parallel code can be written against one interface.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mrvd {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; <= 1 means inline (no threads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count the pool schedules onto (>= 1; 1 means inline execution).
  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

  /// True when the calling thread is a pool worker (of any pool). Nested
  /// Submit/ParallelFor from a worker run inline instead of re-entering the
  /// queue — blocking a worker on work that sits behind it in its own queue
  /// would deadlock the pool.
  static bool OnWorkerThread();

  /// The calling worker's index within its pool ([0, num_threads)), or -1
  /// when the caller is not a pool worker. Stable for the thread's
  /// lifetime; telemetry uses it to give trace threads human-readable
  /// names ("worker-3") without the pool depending on the telemetry layer.
  static int CurrentWorkerIndex();

  /// Enqueues `fn` (FIFO). The future rethrows any exception `fn` threw.
  /// Inline pools run `fn` before returning.
  std::future<void> Submit(std::function<void()> fn) MRVD_EXCLUDES(mu_);

  /// Runs fn(0..n-1), blocking until all complete. Iterations are spread
  /// over the workers; the first exception thrown (lowest index wins) is
  /// rethrown on the caller after every iteration has finished.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int worker_index) MRVD_EXCLUDES(mu_);

  const int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ MRVD_GUARDED_BY(mu_);
  bool stopping_ MRVD_GUARDED_BY(mu_) = false;
};

}  // namespace mrvd
