#include "util/status.h"

#include <cerrno>
#include <cstring>

namespace mrvd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status IoErrorFromErrno(const std::string& context) {
  const int err = errno;
  if (err == 0) return Status::IoError(context);
  return Status::IoError(context + ": " + std::strerror(err) + " (errno " +
                         std::to_string(err) + ")");
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mrvd
