#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace mrvd {

namespace {
thread_local bool t_on_worker_thread = false;
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  if (num_threads_ <= 1) return;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::HardwareThreads() {
  // mrvd-lint: allow(hardware-concurrency) — this wrapper IS the one
  // sanctioned read; everything else resolves shards through SimConfig
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty() || t_on_worker_thread) {
    task();  // inline (or nested) execution; the future carries exceptions
    return future;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || t_on_worker_thread) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic self-scheduling: workers (and this thread) pull the next index,
  // so uneven shard costs balance out. Exceptions are collected per index
  // and the lowest-index one rethrown for determinism.
  auto next = std::make_shared<std::atomic<int>>(0);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
  auto run_indices = [&errors, next, n, &fn] {
    for (int i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<size_t>(i)] = std::current_exception();
      }
    }
  };
  int helpers = std::min(n, num_threads_) - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(helpers));
  for (int h = 0; h < helpers; ++h) futures.push_back(Submit(run_indices));
  run_indices();
  for (auto& f : futures) f.get();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_on_worker_thread = true;
  t_worker_index = worker_index;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      // Manual wait loop instead of the predicate overload: the analysis
      // cannot follow guarded reads into a predicate lambda (see mutex.h).
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace mrvd
