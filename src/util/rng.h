// Deterministic, fast pseudo-random number generation for simulation.
//
// Experiments in the paper are averaged over 10 generated problem instances;
// every instance here is reproducible from a 64-bit seed. The generator is
// xoshiro256** seeded via splitmix64 (the reference seeding procedure), which
// is far faster than std::mt19937_64 and has no measurable bias for our use.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace mrvd {

/// splitmix64 step; used to seed xoshiro and to hash seeds for sub-streams.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256** generator with helpers for the distributions the simulator
/// needs (uniform, exponential inter-arrival, Poisson counts, normal noise,
/// Zipf hotspot skew).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns an independent generator for a named sub-stream; two Forks with
  /// different tags never produce correlated sequences.
  Rng Fork(uint64_t tag) const;

  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Exponential with rate `lambda` (mean 1/lambda). Requires lambda > 0.
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a normal approximation with continuity correction for
  /// mean > 64 (counts there are in the hundreds; the approximation error is
  /// far below sampling noise).
  int64_t Poisson(double mean);

  /// Standard normal via Box–Muller (cached spare deviate).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-like rank sampler over {0, .., n-1} with exponent s (s=0 uniform).
  /// Used for hotspot region popularity. O(1) amortised after O(n) setup is
  /// not needed here; this uses inverse-CDF over precomputable weights, so
  /// prefer ZipfTable for hot loops.
  int64_t Zipf(int64_t n, double s);

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Precomputed inverse-CDF table for repeated Zipf sampling over a fixed n/s.
class ZipfTable {
 public:
  ZipfTable(int64_t n, double s);
  /// Samples a rank in [0, n).
  int64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mrvd
