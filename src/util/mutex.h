// Annotated mutex vocabulary for clang thread-safety analysis.
//
// std::mutex / std::lock_guard carry no capability attributes, so clang's
// `-Wthread-safety` cannot see them acquire anything and every
// MRVD_GUARDED_BY member would warn even in correctly locked code. These
// thin wrappers add the attributes (zero-cost off clang, zero-overhead
// forwarding everywhere) and are what MRVD code uses wherever state is
// mutex-protected:
//
//   Mutex mu_;
//   CondVar cv_;
//   std::deque<Task> queue_ MRVD_GUARDED_BY(mu_);
//
//   {
//     MutexLock lock(mu_);
//     while (queue_.empty()) cv_.wait(lock);   // wait keeps mu_ held on exit
//     ...
//   }
//
// Note the manual while-loop instead of the predicate-lambda overload of
// wait(): the analysis treats a lambda body as a separate unannotated
// function, so guarded reads inside a predicate would warn spuriously.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace mrvd {

/// A std::mutex declared as a thread-safety-analysis capability.
class MRVD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MRVD_ACQUIRE() { mu_.lock(); }
  void unlock() MRVD_RELEASE() { mu_.unlock(); }
  bool try_lock() MRVD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex, visible to the analysis (scoped capability).
/// Also satisfies BasicLockable so CondVar::wait can release and reacquire
/// it around the sleep — a wait is capability-neutral: the mutex is held
/// both when wait() is entered and when it returns.
class MRVD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MRVD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MRVD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// BasicLockable surface for CondVar::wait only. The analysis does not
  /// look inside wait(), so the unlock/relock pair it performs through
  /// these is invisible — which is exactly the net-zero effect a wait has.
  void lock() MRVD_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() MRVD_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex/MutexLock (any BasicLockable).
using CondVar = std::condition_variable_any;

}  // namespace mrvd
