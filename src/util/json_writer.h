// Minimal streaming JSON writer shared by the bench harnesses and the
// experiment API's RunResult serialisation. Emits pretty-printed JSON with
// two-space indentation; commas and newlines are managed by the scope
// stack, so callers only state structure:
//
//   JsonWriter w(os);
//   w.BeginObject();
//   w.Key("bench").String("micro_pipeline");
//   w.Key("results").BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();
//
// Only the subset of JSON this project emits is supported (no unicode
// escaping beyond control characters and quotes/backslashes).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace mrvd {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by exactly one value (or scope).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  /// Finite doubles use shortest round-trip formatting; non-finite values
  /// (inf/nan have no JSON spelling) are emitted as `null`, which
  /// util/json_reader parses back as kNull.
  JsonWriter& Number(double value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(int value) { return Number(static_cast<int64_t>(value)); }
  JsonWriter& Number(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

 private:
  /// Emits the comma/newline/indent that precedes a new value or key.
  void BeforeValue();
  void Indent();
  void WriteEscaped(std::string_view s);

  enum class Scope { kObject, kArray };
  std::ostream& os_;
  std::vector<Scope> scopes_;
  bool first_in_scope_ = true;   ///< no comma before the next element
  bool after_key_ = false;       ///< next value follows a "key": inline
};

}  // namespace mrvd
