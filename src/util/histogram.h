// Fixed-bucket histogram used for the order/driver distribution figures
// (Figs. 5, 11, 12) and for batch-latency summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mrvd {

/// Histogram over [lo, hi) with `buckets` equal-width bins plus underflow /
/// overflow counters. Also tracks count/mean/min/max for quick summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double value);
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }

  /// Lower edge of bucket i.
  double bucket_lo(int i) const { return lo_ + width_ * i; }

  /// Value below which `q` (0..1) of the mass lies, interpolated within the
  /// containing bucket. Underflow mass counts at lo, overflow at hi.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  std::string ToAscii(int bar_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0, overflow_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace mrvd
