// Lightweight Status / StatusOr error-handling vocabulary, in the style of
// Arrow / Abseil. Library code returns Status (or StatusOr<T>) instead of
// throwing; callers branch on ok().
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mrvd {

/// Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the OK case (no allocation).
/// [[nodiscard]]: silently dropping a Status hides failures (a campaign
/// artifact that never landed, a stream that died mid-run), so the compiler
/// flags every ignored return; discard deliberately with `(void)` plus a
/// comment saying why the failure cannot matter.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// IoError carrying the calling thread's current errno as strerror text:
/// "<context>: <strerror(errno)> (errno <n>)". Call immediately after the
/// failing operation, before anything else can clobber errno; with errno 0
/// (streams don't always preserve it) the suffix is dropped.
Status IoErrorFromErrno(const std::string& context);

/// Either a value of type T or an error Status. Mirrors arrow::Result /
/// absl::StatusOr with the subset of API this project needs.
/// [[nodiscard]] for the same reason as Status: an ignored StatusOr is an
/// ignored failure.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok(), otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define MRVD_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::mrvd::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace mrvd
