#include "campaign/campaign_spec.h"

#include <algorithm>
#include <utility>

#include "api/dispatcher_registry.h"
#include "campaign/workload_catalog.h"
#include "util/strings.h"

namespace mrvd {

namespace {

/// One known SimConfig override key.
struct DeltaField {
  const char* name;
  bool is_int;
  double SimConfig::* dfield;
  int SimConfig::* ifield;
};

constexpr DeltaField kDeltaFields[] = {
    {"batch_interval", false, &SimConfig::batch_interval, nullptr},
    {"window_seconds", false, &SimConfig::window_seconds, nullptr},
    {"horizon_seconds", false, &SimConfig::horizon_seconds, nullptr},
    {"alpha", false, &SimConfig::alpha, nullptr},
    {"reneging_beta", false, &SimConfig::reneging_beta, nullptr},
    {"num_threads", true, nullptr, &SimConfig::num_threads},
    {"num_shards", true, nullptr, &SimConfig::num_shards},
};

std::string KnownDeltaKeys() {
  std::string out;
  for (const DeltaField& f : kDeltaFields) {
    if (!out.empty()) out += ", ";
    out += f.name;
  }
  return out;
}

const DeltaField* FindDeltaField(std::string_view key) {
  for (const DeltaField& f : kDeltaFields) {
    if (key == f.name) return &f;
  }
  return nullptr;
}

/// Splits "key=value,..." into trimmed pairs via the shared spec-grammar
/// parser; empty input -> empty list.
StatusOr<std::vector<std::pair<std::string, std::string>>> SplitDelta(
    const std::string& delta) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::string_view rest = StripAsciiWhitespace(delta);
  if (rest.empty()) return pairs;
  MRVD_RETURN_NOT_OK(
      ParseKeyValueList(rest, "config delta '" + delta + "'", &pairs));
  return pairs;
}

}  // namespace

Status ApplyConfigDelta(const std::string& delta, SimConfig* config) {
  StatusOr<std::vector<std::pair<std::string, std::string>>> pairs =
      SplitDelta(delta);
  if (!pairs.ok()) return pairs.status();
  for (const auto& [key, value] : *pairs) {
    const DeltaField* field = FindDeltaField(key);
    if (field == nullptr) {
      return Status::InvalidArgument("unknown config-delta key '" + key +
                                     "'; known keys: " + KnownDeltaKeys());
    }
    if (field->is_int) {
      StatusOr<int64_t> v = ParseInt64(value);
      if (!v.ok()) {
        return Status::InvalidArgument("config-delta key '" + key +
                                       "': not an int: '" + value + "'");
      }
      config->*(field->ifield) = static_cast<int>(*v);
    } else {
      StatusOr<double> v = ParseDouble(value);
      if (!v.ok()) {
        return Status::InvalidArgument("config-delta key '" + key +
                                       "': not a number: '" + value + "'");
      }
      config->*(field->dfield) = *v;
    }
  }
  return Status::OK();
}

StatusOr<std::string> CanonicalizeConfigDelta(const std::string& delta) {
  StatusOr<std::vector<std::pair<std::string, std::string>>> pairs =
      SplitDelta(delta);
  if (!pairs.ok()) return pairs.status();

  std::vector<std::pair<std::string, std::string>> canonical;
  canonical.reserve(pairs->size());
  for (const auto& [key, value] : *pairs) {
    const DeltaField* field = FindDeltaField(key);
    if (field == nullptr) {
      return Status::InvalidArgument("unknown config-delta key '" + key +
                                     "'; known keys: " + KnownDeltaKeys());
    }
    if (field->is_int) {
      StatusOr<int64_t> v = ParseInt64(value);
      if (!v.ok()) {
        return Status::InvalidArgument("config-delta key '" + key +
                                       "': not an int: '" + value + "'");
      }
      canonical.emplace_back(key, std::to_string(*v));
    } else {
      StatusOr<double> v = ParseDouble(value);
      if (!v.ok()) {
        return Status::InvalidArgument("config-delta key '" + key +
                                       "': not a number: '" + value + "'");
      }
      canonical.emplace_back(key, FormatDouble(*v));
    }
  }
  std::sort(canonical.begin(), canonical.end());

  std::string out;
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) out += ',';
    out += canonical[i].first;
    out += '=';
    out += canonical[i].second;
  }
  return out;
}

std::string CampaignCellKey(const std::string& workload,
                            const std::string& scenario,
                            const std::string& dispatcher,
                            const std::string& config_delta, uint64_t seed) {
  // FNV-1a 64 over the canonical tuple, fields separated by a unit
  // separator so no concatenation of different tuples can collide by
  // shifting bytes across a boundary. FNV is stable across platforms —
  // never replace it with std::hash (implementation-defined, would orphan
  // every existing artifact).
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1f;  // field separator
    h *= 1099511628211ull;
  };
  mix(workload);
  mix(scenario);
  mix(dispatcher);
  mix(config_delta);
  mix(std::to_string(seed));

  static const char* kHex = "0123456789abcdef";
  std::string key(16, '0');
  for (int i = 15; i >= 0; --i) {
    key[static_cast<size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return key;
}

namespace {

Status CheckAxisUnique(const char* axis,
                       const std::vector<std::string>& canonical) {
  for (size_t i = 0; i < canonical.size(); ++i) {
    for (size_t j = i + 1; j < canonical.size(); ++j) {
      if (canonical[i] == canonical[j]) {
        return Status::InvalidArgument(
            std::string("duplicate ") + axis + " axis entry '" +
            canonical[i] + "' (identical after canonicalisation)");
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<CampaignCell>> ExpandGrid(const CampaignSpec& spec) {
  if (spec.workloads.empty()) {
    return Status::InvalidArgument("campaign '" + spec.name +
                                   "' has no workloads");
  }
  if (spec.dispatchers.empty()) {
    return Status::InvalidArgument("campaign '" + spec.name +
                                   "' has no dispatchers");
  }

  std::vector<std::string> workloads;
  for (const std::string& w : spec.workloads) {
    StatusOr<std::string> canonical = WorkloadCatalog::Global().Canonicalize(w);
    if (!canonical.ok()) return canonical.status();
    workloads.push_back(std::move(canonical).value());
  }
  std::vector<std::string> scenarios;
  for (const std::string& s :
       spec.scenarios.empty() ? std::vector<std::string>{"none"}
                              : spec.scenarios) {
    StatusOr<std::string> canonical = ScenarioCatalog::Global().Canonicalize(s);
    if (!canonical.ok()) return canonical.status();
    scenarios.push_back(std::move(canonical).value());
  }
  std::vector<std::string> dispatchers;
  for (const std::string& d : spec.dispatchers) {
    // Full resolved canonical form ("RAND" -> "RAND:seed=1"): the content
    // key hashes what the dispatcher actually runs with, so numerically
    // identical spellings — and defaults spelled out — share artifacts.
    StatusOr<std::string> canonical =
        DispatcherRegistry::Global().CanonicalizeSpec(d);
    if (!canonical.ok()) return canonical.status();
    dispatchers.push_back(std::move(canonical).value());
  }
  std::vector<std::string> deltas;
  for (const std::string& d : spec.config_deltas.empty()
                                  ? std::vector<std::string>{""}
                                  : spec.config_deltas) {
    StatusOr<std::string> canonical = CanonicalizeConfigDelta(d);
    if (!canonical.ok()) return canonical.status();
    deltas.push_back(std::move(canonical).value());
  }
  const std::vector<uint64_t>& seeds =
      spec.seeds.empty() ? std::vector<uint64_t>{0} : spec.seeds;

  MRVD_RETURN_NOT_OK(CheckAxisUnique("workload", workloads));
  MRVD_RETURN_NOT_OK(CheckAxisUnique("scenario", scenarios));
  MRVD_RETURN_NOT_OK(CheckAxisUnique("dispatcher", dispatchers));
  MRVD_RETURN_NOT_OK(CheckAxisUnique("config-delta", deltas));
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) {
        return Status::InvalidArgument("duplicate seed " +
                                       std::to_string(seeds[i]) +
                                       " on the seed axis");
      }
    }
  }

  std::vector<CampaignCell> cells;
  cells.reserve(workloads.size() * scenarios.size() * dispatchers.size() *
                deltas.size() * seeds.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    for (size_t sc = 0; sc < scenarios.size(); ++sc) {
      for (size_t d = 0; d < dispatchers.size(); ++d) {
        for (size_t cd = 0; cd < deltas.size(); ++cd) {
          for (size_t s = 0; s < seeds.size(); ++s) {
            CampaignCell cell;
            cell.workload = workloads[w];
            cell.scenario = scenarios[sc];
            cell.dispatcher = dispatchers[d];
            cell.config_delta = deltas[cd];
            cell.seed = seeds[s];
            cell.workload_index = static_cast<int>(w);
            cell.scenario_index = static_cast<int>(sc);
            cell.dispatcher_index = static_cast<int>(d);
            cell.delta_index = static_cast<int>(cd);
            cell.seed_index = static_cast<int>(s);
            cell.key = CampaignCellKey(cell.workload, cell.scenario,
                                       cell.dispatcher, cell.config_delta,
                                       cell.seed);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace mrvd
