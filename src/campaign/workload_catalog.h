// Named workload and scenario factories — the campaign layer's analogue of
// DispatcherRegistry. A campaign grid names its axes by catalog spec
// strings instead of wiring builders by hand:
//
//   "nyc:orders=20000,drivers=250"   synthetic NYC-like day at a scale
//   "tlc:path=/data/trips.csv"       a parsed TLC CSV day
//   "rush-hour:multiplier=1.8"       a BuildScenarioDay surge variant
//
// Both catalogs are self-registering (the built-in roster installs itself
// when the global catalog is first touched; out-of-tree workloads register
// with a static WorkloadRegistrar / ScenarioRegistrar from their own
// translation unit), and factories are *lazily* invoked: a catalog spec is
// just a name until CampaignRunner needs the cell, so expanding a thousand
// grid cells costs nothing until runs execute.
//
// Spec syntax is shared with dispatcher specs ("NAME:key=value,..."), and
// parameters are typed (int64 / double / string). Canonicalize() validates
// a spec and normalises it (sorted keys, numerics reformatted with full
// fidelity), which is what makes campaign run keys stable under cosmetic
// spelling differences ("nyc: drivers = 60" == "nyc:drivers=60").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/simulation_builder.h"
#include "scenario/script.h"
#include "util/status.h"
#include "workload/types.h"

namespace mrvd {

/// One typed parameter a catalog entry accepts in its spec string.
struct CatalogParam {
  enum class Type { kInt64, kDouble, kString };

  CatalogParam() = default;
  CatalogParam(std::string param_name, Type param_type,
               std::string default_text, std::string help_text)
      : name(std::move(param_name)),
        type(param_type),
        default_value(std::move(default_text)),
        help(std::move(help_text)) {}

  std::string name;
  Type type = Type::kInt64;
  /// Textual default; must parse as `type` (checked at registration).
  std::string default_value;
  std::string help;
};

/// Resolved parameter values handed to a factory: every declared parameter
/// is present (spec overrides on top of the declared defaults).
class CatalogParams {
 public:
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

 private:
  template <typename FactoryT>
  friend class Catalog;
  struct Value {
    int64_t i = 0;
    double d = 0.0;
    std::string s;
  };
  std::map<std::string, Value> values_;
};

/// Shared catalog machinery: a name -> (param declarations, factory) map
/// with spec parsing, type checking and canonicalisation. FactoryT is the
/// entry's build signature.
template <typename FactoryT>
class Catalog {
 public:
  explicit Catalog(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `factory` under `name`. Duplicate names fail with
  /// FailedPrecondition (first registration wins); a default that does not
  /// parse as its declared type fails with InvalidArgument.
  Status Register(std::string name, std::vector<CatalogParam> params,
                  FactoryT factory);

  bool Known(const std::string& name) const {
    return entries_.count(name) != 0;
  }
  /// Registered names, sorted.
  std::vector<std::string> Names() const;
  /// "nyc, tlc" for error messages.
  std::string RosterString() const;

  /// Validates `spec` (known name, declared keys, values parse as their
  /// types, no duplicate keys) and returns the canonical form: explicit
  /// parameters only, sorted by key, numerics reformatted ("007" -> "7").
  StatusOr<std::string> Canonicalize(const std::string& spec) const;

 protected:
  struct Entry {
    std::vector<CatalogParam> params;
    FactoryT factory;
  };

  /// Parses + type-checks `spec` and returns the entry with its resolved
  /// parameter values (defaults filled in).
  StatusOr<std::pair<const Entry*, CatalogParams>> Resolve(
      const std::string& spec) const;

  std::string kind_;  ///< "workload" / "scenario", for error messages
  std::map<std::string, Entry> entries_;
};

/// Builds a ready-to-run Simulation (workload + grid + travel model +
/// forecast + engine-config defaults) from the entry's parameters.
using WorkloadFactory =
    std::function<StatusOr<Simulation>(const CatalogParams&)>;

class WorkloadCatalog : public Catalog<WorkloadFactory> {
 public:
  /// The process-wide catalog, with the built-in roster (nyc, tlc)
  /// pre-registered.
  static WorkloadCatalog& Global();

  /// Builds the named workload's Simulation. This is the expensive call
  /// (generator or CSV parse); CampaignRunner invokes it once per workload
  /// and shares the Simulation read-only across the workload's grid cells.
  StatusOr<Simulation> Build(const std::string& spec) const;

 private:
  WorkloadCatalog() : Catalog("workload") {}
};

/// Builds a ScenarioScript over a base workload from the entry's
/// parameters (the BuildScenarioDay variants, or an empty script).
using ScenarioFactory = std::function<StatusOr<ScenarioScript>(
    const Workload&, const CatalogParams&)>;

class ScenarioCatalog : public Catalog<ScenarioFactory> {
 public:
  /// The process-wide catalog, with the built-in roster (none, two-shift,
  /// cancel-hazard, rush-hour) pre-registered.
  static ScenarioCatalog& Global();

  /// Builds the named scenario's script over `workload`.
  StatusOr<ScenarioScript> Build(const std::string& spec,
                                 const Workload& workload) const;

 private:
  ScenarioCatalog() : Catalog("scenario") {}
};

/// Self-registration handles: a static registrar in the factory's
/// translation unit adds it to the global roster before main() runs. A
/// duplicate name logs and keeps the first registration.
class WorkloadRegistrar {
 public:
  WorkloadRegistrar(std::string name, std::vector<CatalogParam> params,
                    WorkloadFactory factory);
};

class ScenarioRegistrar {
 public:
  ScenarioRegistrar(std::string name, std::vector<CatalogParam> params,
                    ScenarioFactory factory);
};

}  // namespace mrvd
