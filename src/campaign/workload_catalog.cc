#include "campaign/workload_catalog.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "geo/grid.h"
#include "scenario/generator.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/generator.h"
#include "workload/order_stream.h"
#include "workload/tlc_parser.h"

namespace mrvd {

namespace {

/// "NAME" / "NAME:key=value,..." split — dispatcher spec syntax, parsed by
/// the same shared ParseKeyValueList (values therefore cannot contain ',' —
/// true of every catalog parameter, including sensible artifact paths).
struct ParsedCatalogSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
};

StatusOr<ParsedCatalogSpec> ParseCatalogSpec(const std::string& kind,
                                             const std::string& spec) {
  ParsedCatalogSpec out;
  std::string_view rest = StripAsciiWhitespace(spec);
  size_t colon = rest.find(':');
  out.name = std::string(StripAsciiWhitespace(rest.substr(0, colon)));
  if (out.name.empty()) {
    return Status::InvalidArgument("empty " + kind + " name in spec '" + spec +
                                   "'");
  }
  if (colon == std::string_view::npos) return out;
  MRVD_RETURN_NOT_OK(ParseKeyValueList(rest.substr(colon + 1),
                                       kind + " spec '" + spec + "'",
                                       &out.params));
  return out;
}

std::string DeclaredParamList(const std::vector<CatalogParam>& params) {
  std::string out;
  for (const auto& p : params) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

/// Canonical text for a validated raw value: numerics are re-formatted
/// ("007" -> "7", "1e1" -> "10") so spelling differences cannot fork run
/// keys; strings stay verbatim (already whitespace-trimmed).
StatusOr<std::string> CanonicalValue(const CatalogParam& decl,
                                     const std::string& raw) {
  switch (decl.type) {
    case CatalogParam::Type::kInt64: {
      StatusOr<int64_t> v = ParseInt64(raw);
      if (!v.ok()) {
        return Status::InvalidArgument("parameter '" + decl.name +
                                       "': not an int64: '" + raw + "'");
      }
      return std::to_string(*v);
    }
    case CatalogParam::Type::kDouble: {
      StatusOr<double> v = ParseDouble(raw);
      if (!v.ok()) {
        return Status::InvalidArgument("parameter '" + decl.name +
                                       "': not a number: '" + raw + "'");
      }
      return FormatDouble(*v);
    }
    case CatalogParam::Type::kString:
      return raw;
  }
  return Status::Internal("unhandled catalog parameter type");
}

}  // namespace

int64_t CatalogParams::GetInt(const std::string& name) const {
  return values_.at(name).i;
}

double CatalogParams::GetDouble(const std::string& name) const {
  return values_.at(name).d;
}

const std::string& CatalogParams::GetString(const std::string& name) const {
  return values_.at(name).s;
}

// ---------------------------------------------------------------------
// Catalog<FactoryT>

template <typename FactoryT>
Status Catalog<FactoryT>::Register(std::string name,
                                   std::vector<CatalogParam> params,
                                   FactoryT factory) {
  if (name.empty()) {
    return Status::InvalidArgument(kind_ + " name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument(kind_ + " '" + name +
                                   "' registered without a factory");
  }
  for (const CatalogParam& p : params) {
    StatusOr<std::string> canonical = CanonicalValue(p, p.default_value);
    if (!canonical.ok()) {
      return Status::InvalidArgument(kind_ + " '" + name +
                                     "': bad default: " +
                                     canonical.status().message());
    }
  }
  auto [it, inserted] = entries_.try_emplace(
      std::move(name), Entry{std::move(params), std::move(factory)});
  if (!inserted) {
    return Status::FailedPrecondition(kind_ + " '" + it->first +
                                      "' is already registered");
  }
  return Status::OK();
}

template <typename FactoryT>
std::vector<std::string> Catalog<FactoryT>::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, unused] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

template <typename FactoryT>
std::string Catalog<FactoryT>::RosterString() const {
  std::string out;
  for (const auto& [name, unused] : entries_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

template <typename FactoryT>
StatusOr<std::pair<const typename Catalog<FactoryT>::Entry*, CatalogParams>>
Catalog<FactoryT>::Resolve(const std::string& spec) const {
  StatusOr<ParsedCatalogSpec> parsed = ParseCatalogSpec(kind_, spec);
  if (!parsed.ok()) return parsed.status();
  auto it = entries_.find(parsed->name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown " + kind_ + " '" + parsed->name +
                            "'; known " + kind_ + "s: " + RosterString());
  }
  const Entry& entry = it->second;

  CatalogParams params;
  for (const CatalogParam& p : entry.params) {
    CatalogParams::Value value;
    switch (p.type) {
      case CatalogParam::Type::kInt64:
        value.i = *ParseInt64(p.default_value);  // validated at Register()
        value.d = static_cast<double>(value.i);
        break;
      case CatalogParam::Type::kDouble:
        value.d = *ParseDouble(p.default_value);
        break;
      case CatalogParam::Type::kString:
        value.s = p.default_value;
        break;
    }
    params.values_[p.name] = std::move(value);
  }
  for (const auto& [key, raw] : parsed->params) {
    const CatalogParam* decl = nullptr;
    for (const CatalogParam& p : entry.params) {
      if (p.name == key) {
        decl = &p;
        break;
      }
    }
    if (decl == nullptr) {
      return Status::InvalidArgument(
          kind_ + " '" + parsed->name + "' has no parameter '" + key + "'" +
          (entry.params.empty()
               ? "; it takes no parameters"
               : "; declared parameters: " + DeclaredParamList(entry.params)));
    }
    CatalogParams::Value value;
    switch (decl->type) {
      case CatalogParam::Type::kInt64: {
        StatusOr<int64_t> v = ParseInt64(raw);
        if (!v.ok()) {
          return Status::InvalidArgument(kind_ + " '" + parsed->name +
                                         "' parameter '" + key +
                                         "': not an int64: '" + raw + "'");
        }
        value.i = *v;
        value.d = static_cast<double>(*v);
        break;
      }
      case CatalogParam::Type::kDouble: {
        StatusOr<double> v = ParseDouble(raw);
        if (!v.ok()) {
          return Status::InvalidArgument(kind_ + " '" + parsed->name +
                                         "' parameter '" + key +
                                         "': not a number: '" + raw + "'");
        }
        value.d = *v;
        break;
      }
      case CatalogParam::Type::kString:
        value.s = raw;
        break;
    }
    params.values_[key] = std::move(value);
  }
  return std::make_pair(&entry, std::move(params));
}

template <typename FactoryT>
StatusOr<std::string> Catalog<FactoryT>::Canonicalize(
    const std::string& spec) const {
  StatusOr<ParsedCatalogSpec> parsed = ParseCatalogSpec(kind_, spec);
  if (!parsed.ok()) return parsed.status();
  auto it = entries_.find(parsed->name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown " + kind_ + " '" + parsed->name +
                            "'; known " + kind_ + "s: " + RosterString());
  }
  const Entry& entry = it->second;

  // Full resolved parameter list — declared defaults with the spec's
  // overrides applied, every value re-formatted at its declared type. The
  // canonical form is therefore a pure function of what the factory will
  // actually build ("nyc" == "nyc:day=1" while 1 is the default), which is
  // what the campaign layer's content keys hash.
  std::vector<std::pair<std::string, std::string>> canonical;
  canonical.reserve(entry.params.size());
  for (const CatalogParam& decl : entry.params) {
    const std::string* raw = nullptr;
    for (const auto& [key, value] : parsed->params) {
      if (key == decl.name) {
        raw = &value;
        break;
      }
    }
    StatusOr<std::string> value =
        CanonicalValue(decl, raw != nullptr ? *raw : decl.default_value);
    if (!value.ok()) {
      return Status::InvalidArgument(kind_ + " '" + parsed->name + "' " +
                                     value.status().message());
    }
    // Empty string values (e.g. tlc's default path) cannot round-trip
    // through spec syntax; omit them — absent and empty are the same.
    if (value->empty()) continue;
    canonical.emplace_back(decl.name, std::move(value).value());
  }
  for (const auto& [key, unused] : parsed->params) {
    bool declared = false;
    for (const CatalogParam& decl : entry.params) {
      if (decl.name == key) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Status::InvalidArgument(
          kind_ + " '" + parsed->name + "' has no parameter '" + key + "'" +
          (entry.params.empty()
               ? "; it takes no parameters"
               : "; declared parameters: " + DeclaredParamList(entry.params)));
    }
  }
  std::sort(canonical.begin(), canonical.end());

  std::string out = parsed->name;
  for (size_t i = 0; i < canonical.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += canonical[i].first;
    out += '=';
    out += canonical[i].second;
  }
  return out;
}

template class Catalog<WorkloadFactory>;
template class Catalog<ScenarioFactory>;

// ---------------------------------------------------------------------
// Built-in workloads

namespace {

void RegisterBuiltinWorkloads(WorkloadCatalog* c) {
  auto must = [](Status st) {
    if (!st.ok()) {
      MRVD_LOG(Error) << "built-in workload registration failed: " << st;
    }
  };
  using T = CatalogParam::Type;
  must(c->Register(
      "nyc",
      {
          {"day", T::kInt64, "1", "day index (day-of-week = day % 7)"},
          {"drivers", T::kInt64, "40", "fleet size"},
          {"orders", T::kInt64, "3000", "orders per day"},
          {"grid_rows", T::kInt64, "8", "grid rows"},
          {"grid_cols", T::kInt64, "8", "grid columns"},
          {"seed", T::kInt64, "20190417", "generator master seed"},
          {"oracle", T::kInt64, "1",
           "1 = derive the realized-counts oracle forecast"},
          {"speed_mps", T::kDouble, "11", "straight-line travel speed"},
          {"detour", T::kDouble, "1.3", "straight-line detour factor"},
          {"batch_interval", T::kDouble, "30", "default batch interval (s)"},
          {"horizon_hours", T::kDouble, "4", "default horizon (hours)"},
      },
      [](const CatalogParams& p) -> StatusOr<Simulation> {
        GeneratorConfig gcfg;
        gcfg.grid_rows = static_cast<int>(p.GetInt("grid_rows"));
        gcfg.grid_cols = static_cast<int>(p.GetInt("grid_cols"));
        gcfg.orders_per_day = static_cast<double>(p.GetInt("orders"));
        gcfg.seed = static_cast<uint64_t>(p.GetInt("seed"));
        SimulationBuilder builder;
        builder
            .GenerateNycDay(static_cast<int>(p.GetInt("day")),
                            static_cast<int>(p.GetInt("drivers")), gcfg)
            .WithStraightLineTravel(p.GetDouble("speed_mps"),
                                    p.GetDouble("detour"))
            .BatchInterval(p.GetDouble("batch_interval"))
            .HorizonSeconds(p.GetDouble("horizon_hours") * 3600.0);
        if (p.GetInt("oracle") != 0) builder.WithOracleForecast();
        return builder.Build();
      }));
  must(c->Register(
      "nyc-skew",
      {
          {"day", T::kInt64, "1", "day index (day-of-week = day % 7)"},
          {"drivers", T::kInt64, "40", "fleet size"},
          {"orders", T::kInt64, "3000", "orders per day"},
          {"grid_rows", T::kInt64, "16", "grid rows"},
          {"grid_cols", T::kInt64, "16", "grid columns"},
          {"seed", T::kInt64, "20190417", "generator master seed"},
          {"oracle", T::kInt64, "1",
           "1 = derive the realized-counts oracle forecast"},
          {"speed_mps", T::kDouble, "11", "straight-line travel speed"},
          {"detour", T::kDouble, "1.3", "straight-line detour factor"},
          {"batch_interval", T::kDouble, "30", "default batch interval (s)"},
          {"horizon_hours", T::kDouble, "4", "default horizon (hours)"},
          {"surge_start_hour", T::kDouble, "0.5", "skew window start (hours)"},
          {"surge_end_hour", T::kDouble, "2.5", "skew window end (hours)"},
          {"share", T::kDouble, "0.7",
           "share of window arrivals relocated into the hot rows"},
          {"row_lo", T::kInt64, "0", "first hot grid row"},
          {"row_hi", T::kInt64, "2", "last hot grid row"},
          {"multiplier", T::kDouble, "2",
           "surge demand multiplier over the hot rows"},
      },
      [](const CatalogParams& p) -> StatusOr<Simulation> {
        // The nyc day with a rush hour funnelling `share` of the window's
        // arrivals into rows [row_lo, row_hi], plus a row-band surge window
        // over the same rows so the forecast layer sees the concentration
        // too — the skewed-demand stress case for adaptive sharding.
        GeneratorConfig gcfg;
        gcfg.grid_rows = static_cast<int>(p.GetInt("grid_rows"));
        gcfg.grid_cols = static_cast<int>(p.GetInt("grid_cols"));
        gcfg.orders_per_day = static_cast<double>(p.GetInt("orders"));
        gcfg.seed = static_cast<uint64_t>(p.GetInt("seed"));
        NycLikeGenerator generator(gcfg);
        Workload day = generator.GenerateDay(
            static_cast<int>(p.GetInt("day")),
            static_cast<int>(p.GetInt("drivers")));
        const double start = p.GetDouble("surge_start_hour") * 3600.0;
        const double end = p.GetDouble("surge_end_hour") * 3600.0;
        const int row_lo = static_cast<int>(p.GetInt("row_lo"));
        const int row_hi = static_cast<int>(p.GetInt("row_hi"));
        Workload skewed = SkewWorkloadRows(day, generator.grid(), start, end,
                                           p.GetDouble("share"), row_lo,
                                           row_hi, gcfg.seed ^ 0x5EEDULL);
        ScenarioDayConfig scfg;
        scfg.surges.push_back(RowBandSurge(generator.grid(), row_lo, row_hi,
                                           start, end,
                                           p.GetDouble("multiplier")));
        ScenarioScript script = BuildScenarioDay(skewed, scfg);
        SimulationBuilder builder;
        builder.WithWorkload(std::move(skewed), generator.grid())
            .WithScenario(std::move(script))
            .WithStraightLineTravel(p.GetDouble("speed_mps"),
                                    p.GetDouble("detour"))
            .BatchInterval(p.GetDouble("batch_interval"))
            .HorizonSeconds(p.GetDouble("horizon_hours") * 3600.0);
        if (p.GetInt("oracle") != 0) builder.WithOracleForecast();
        return builder.Build();
      }));
  must(c->Register(
      "tlc",
      {
          {"path", T::kString, "",
           "trip CSV path (empty = $MRVD_TLC_CSV)"},
          {"drivers", T::kInt64, "3000", "fleet size"},
          {"day", T::kInt64, "-1", "day filter (-1 = keep all)"},
          {"max_orders", T::kInt64, "0", "order cap (0 = unlimited)"},
          {"seed", T::kInt64, "20190417", "deadline-noise seed"},
          {"speed_mps", T::kDouble, "11", "straight-line travel speed"},
          {"detour", T::kDouble, "1.3", "straight-line detour factor"},
          {"batch_interval", T::kDouble, "3", "default batch interval (s)"},
          {"horizon_hours", T::kDouble, "24", "default horizon (hours)"},
      },
      [](const CatalogParams& p) -> StatusOr<Simulation> {
        std::string path = p.GetString("path");
        if (path.empty()) {
          const char* env = std::getenv("MRVD_TLC_CSV");
          if (env != nullptr) path = env;
        }
        if (path.empty()) {
          return Status::InvalidArgument(
              "workload 'tlc' needs a CSV: pass path=... or set "
              "MRVD_TLC_CSV");
        }
        TlcParseOptions options;
        options.day_filter = static_cast<int>(p.GetInt("day"));
        options.max_orders = p.GetInt("max_orders");
        options.seed = static_cast<uint64_t>(p.GetInt("seed"));
        StatusOr<Workload> workload = ParseTlcCsv(
            path, static_cast<int>(p.GetInt("drivers")), options);
        if (!workload.ok()) return workload.status();
        SimulationBuilder builder;
        builder
            .WithWorkload(std::move(workload).value(), MakeNycGrid16x16())
            .WithStraightLineTravel(p.GetDouble("speed_mps"),
                                    p.GetDouble("detour"))
            .BatchInterval(p.GetDouble("batch_interval"))
            .HorizonSeconds(p.GetDouble("horizon_hours") * 3600.0);
        return builder.Build();
      }));
  must(c->Register(
      "trace",
      {
          {"path", T::kString, "",
           "binary order-trace path (empty = $MRVD_TRACE_BIN)"},
          {"max_orders", T::kInt64, "0", "order cap (0 = the whole trace)"},
          {"speed_mps", T::kDouble, "11", "straight-line travel speed"},
          {"detour", T::kDouble, "1.3", "straight-line detour factor"},
          {"batch_interval", T::kDouble, "3", "default batch interval (s)"},
          {"horizon_hours", T::kDouble, "0",
           "horizon (hours); 0 = the trace header's horizon"},
      },
      [](const CatalogParams& p) -> StatusOr<Simulation> {
        // The streamed city-scale workload: orders pull straight from the
        // binary trace with O(batch) memory. MRVD_TRACE_MATERIALIZE=1
        // switches the factory to loading the whole trace up front — an
        // env toggle, NOT a spec parameter, so the canonical spec (and
        // therefore every campaign cell key and manifest) is identical
        // either way; CI exploits that to byte-compare the two manifests.
        std::string path = p.GetString("path");
        if (path.empty()) {
          const char* env = std::getenv("MRVD_TRACE_BIN");
          if (env != nullptr) path = env;
        }
        if (path.empty()) {
          return Status::InvalidArgument(
              "workload 'trace' needs a binary order trace: pass path=... "
              "or set MRVD_TRACE_BIN (convert CSVs with `campaign "
              "convert`)");
        }
        StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(path);
        if (!info.ok()) return info.status();
        const double horizon_hours = p.GetDouble("horizon_hours");
        const double horizon = horizon_hours > 0.0
                                   ? horizon_hours * 3600.0
                                   : info->horizon_seconds;
        const char* materialize = std::getenv("MRVD_TRACE_MATERIALIZE");
        SimulationBuilder builder;
        if (materialize != nullptr && materialize[0] != '\0' &&
            std::string(materialize) != "0") {
          StatusOr<Workload> workload =
              ReadOrderTrace(path, p.GetInt("max_orders"));
          if (!workload.ok()) return workload.status();
          builder.WithWorkload(std::move(workload).value(),
                               MakeNycGrid16x16());
        } else {
          builder.StreamTrace(path, MakeNycGrid16x16(),
                              p.GetInt("max_orders"));
        }
        builder
            .WithStraightLineTravel(p.GetDouble("speed_mps"),
                                    p.GetDouble("detour"))
            .BatchInterval(p.GetDouble("batch_interval"))
            .HorizonSeconds(horizon);
        return builder.Build();
      }));
}

// ---------------------------------------------------------------------
// Built-in scenarios (the BuildScenarioDay variants)

void RegisterBuiltinScenarios(ScenarioCatalog* c) {
  auto must = [](Status st) {
    if (!st.ok()) {
      MRVD_LOG(Error) << "built-in scenario registration failed: " << st;
    }
  };
  using T = CatalogParam::Type;
  must(c->Register("none", {},
                   [](const Workload&,
                      const CatalogParams&) -> StatusOr<ScenarioScript> {
                     return ScenarioScript();
                   }));
  must(c->Register(
      "two-shift",
      {
          {"shift_hour", T::kDouble, "12", "shift-change time (hours)"},
          {"overlap_minutes", T::kDouble, "30", "shift overlap (minutes)"},
      },
      [](const Workload& workload,
         const CatalogParams& p) -> StatusOr<ScenarioScript> {
        ScenarioDayConfig cfg;
        cfg.two_shift_fleet = true;
        cfg.shift_change_seconds = p.GetDouble("shift_hour") * 3600.0;
        cfg.shift_overlap_seconds = p.GetDouble("overlap_minutes") * 60.0;
        return BuildScenarioDay(workload, cfg);
      }));
  must(c->Register(
      "cancel-hazard",
      {
          {"probability", T::kDouble, "0.05", "per-order cancel probability"},
          {"fraction_lo", T::kDouble, "0.2",
           "earliest cancel point (fraction of patience window)"},
          {"fraction_hi", T::kDouble, "0.9", "latest cancel point"},
          {"seed", T::kInt64, "20190417", "cancellation-draw seed"},
      },
      [](const Workload& workload,
         const CatalogParams& p) -> StatusOr<ScenarioScript> {
        ScenarioDayConfig cfg;
        cfg.cancel_probability = p.GetDouble("probability");
        cfg.cancel_fraction_lo = p.GetDouble("fraction_lo");
        cfg.cancel_fraction_hi = p.GetDouble("fraction_hi");
        cfg.seed = static_cast<uint64_t>(p.GetInt("seed"));
        return BuildScenarioDay(workload, cfg);
      }));
  must(c->Register(
      "rush-hour",
      {
          {"start_hour", T::kDouble, "7", "surge start (hours)"},
          {"end_hour", T::kDouble, "9", "surge end (hours)"},
          {"multiplier", T::kDouble, "1.5", "demand multiplier"},
      },
      [](const Workload& workload,
         const CatalogParams& p) -> StatusOr<ScenarioScript> {
        ScenarioDayConfig cfg;
        cfg.surges.push_back(RushHourSurge(p.GetDouble("start_hour") * 3600.0,
                                           p.GetDouble("end_hour") * 3600.0,
                                           p.GetDouble("multiplier")));
        return BuildScenarioDay(workload, cfg);
      }));
}

}  // namespace

WorkloadCatalog& WorkloadCatalog::Global() {
  static WorkloadCatalog* catalog = [] {
    // mrvd-lint: allow(naked-new) — deliberately leaked singleton; avoids
    // static-destruction order hazards for late registry lookups
    auto* c = new WorkloadCatalog();
    RegisterBuiltinWorkloads(c);
    return c;
  }();
  return *catalog;
}

StatusOr<Simulation> WorkloadCatalog::Build(const std::string& spec) const {
  auto resolved = Resolve(spec);
  if (!resolved.ok()) return resolved.status();
  return resolved->first->factory(resolved->second);
}

ScenarioCatalog& ScenarioCatalog::Global() {
  static ScenarioCatalog* catalog = [] {
    // mrvd-lint: allow(naked-new) — deliberately leaked singleton; avoids
    // static-destruction order hazards for late registry lookups
    auto* c = new ScenarioCatalog();
    RegisterBuiltinScenarios(c);
    return c;
  }();
  return *catalog;
}

StatusOr<ScenarioScript> ScenarioCatalog::Build(
    const std::string& spec, const Workload& workload) const {
  auto resolved = Resolve(spec);
  if (!resolved.ok()) return resolved.status();
  return resolved->first->factory(workload, resolved->second);
}

WorkloadRegistrar::WorkloadRegistrar(std::string name,
                                     std::vector<CatalogParam> params,
                                     WorkloadFactory factory) {
  Status st = WorkloadCatalog::Global().Register(
      std::move(name), std::move(params), std::move(factory));
  if (!st.ok()) {
    MRVD_LOG(Warn) << "workload self-registration ignored: " << st;
  }
}

ScenarioRegistrar::ScenarioRegistrar(std::string name,
                                     std::vector<CatalogParam> params,
                                     ScenarioFactory factory) {
  Status st = ScenarioCatalog::Global().Register(
      std::move(name), std::move(params), std::move(factory));
  if (!st.ok()) {
    MRVD_LOG(Warn) << "scenario self-registration ignored: " << st;
  }
}

}  // namespace mrvd
