#include "campaign/artifact_store.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "util/json_reader.h"
#include "util/json_writer.h"

namespace mrvd {

namespace fs = std::filesystem;

RunArtifact MakeRunArtifact(const RunResult& result) {
  RunArtifact a;
  a.dispatcher_name = result.dispatcher;
  a.wall_seconds = result.wall_seconds;
  a.revenue = result.result.total_revenue;
  a.served = result.result.served_orders;
  a.reneged = result.result.reneged_orders;
  a.cancelled = result.result.cancelled_orders;
  a.total_orders = result.result.total_orders;
  a.num_batches = result.result.num_batches;
  a.service_rate = result.result.ServiceRate();
  a.wait_mean_s = result.result.served_wait_seconds.mean();
  a.idle_mean_s = result.result.driver_idle_seconds.mean();
  a.dispatch_ms_mean = result.result.batch_seconds.mean() * 1e3;
  a.build_ms_mean = result.result.batch_build_seconds.mean() * 1e3;
  a.dispatch_ms_p50 = result.result.dispatch_latency_p50 * 1e3;
  a.dispatch_ms_p95 = result.result.dispatch_latency_p95 * 1e3;
  a.dispatch_ms_p99 = result.result.dispatch_latency_p99 * 1e3;
  return a;
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactStore::RunPath(const std::string& key) const {
  return (fs::path(dir_) / ("run-" + key + ".json")).string();
}

std::string ArtifactStore::TelemetryPath(const std::string& key) const {
  return (fs::path(dir_) / ("telemetry-" + key + ".json")).string();
}

std::string ArtifactStore::ManifestPath() const {
  return (fs::path(dir_) / "manifest.json").string();
}

std::string ArtifactStore::SpecPath() const {
  return (fs::path(dir_) / "campaign.json").string();
}

Status ArtifactStore::Init() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("could not create campaign directory '" + dir_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

bool ArtifactStore::HasRun(const std::string& key) const {
  std::error_code ec;
  return fs::exists(RunPath(key), ec);
}

Status ArtifactStore::WriteFileAtomic(const std::string& path,
                                      const std::string& content) {
  // Temp-then-rename: readers (and resumed campaigns) never observe a
  // partially written file under the final name. The temp name is unique
  // per target, and concurrent writers only ever target distinct cells.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return IoErrorFromErrno("could not open '" + tmp + "' for writing");
    }
    file << content;
    file.flush();
    if (!file) {
      Status st = IoErrorFromErrno("could not write '" + tmp + "'");
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = IoErrorFromErrno("could not rename '" + tmp + "' to '" + path +
                                 "'");
    std::remove(tmp.c_str());
    return st;
  }
  return Status::OK();
}

Status ArtifactStore::SaveRun(const CampaignCell& cell,
                              const RunArtifact& artifact) const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("key").String(cell.key);
  w.Key("workload").String(cell.workload);
  w.Key("scenario").String(cell.scenario);
  w.Key("dispatcher_spec").String(cell.dispatcher);
  w.Key("config_delta").String(cell.config_delta);
  w.Key("seed").Number(cell.seed);
  w.Key("dispatcher").String(artifact.dispatcher_name);
  w.Key("wall_seconds").Number(artifact.wall_seconds);
  w.Key("revenue").Number(artifact.revenue);
  w.Key("served").Number(artifact.served);
  w.Key("reneged").Number(artifact.reneged);
  w.Key("cancelled").Number(artifact.cancelled);
  w.Key("total_orders").Number(artifact.total_orders);
  w.Key("num_batches").Number(artifact.num_batches);
  w.Key("service_rate").Number(artifact.service_rate);
  w.Key("wait_mean_s").Number(artifact.wait_mean_s);
  w.Key("idle_mean_s").Number(artifact.idle_mean_s);
  w.Key("dispatch_ms_mean").Number(artifact.dispatch_ms_mean);
  w.Key("build_ms_mean").Number(artifact.build_ms_mean);
  w.Key("dispatch_ms_p50").Number(artifact.dispatch_ms_p50);
  w.Key("dispatch_ms_p95").Number(artifact.dispatch_ms_p95);
  w.Key("dispatch_ms_p99").Number(artifact.dispatch_ms_p99);
  w.Key("hourly").BeginArray();
  for (size_t h = 0; h < artifact.hourly.size(); ++h) {
    const HourlyRow& row = artifact.hourly[h];
    w.BeginObject();
    w.Key("hour").Number(static_cast<int64_t>(h));
    w.Key("served").Number(row.served);
    w.Key("reneged").Number(row.reneged);
    w.Key("cancelled").Number(row.cancelled);
    w.Key("revenue").Number(row.revenue);
    w.Key("wait_seconds_sum").Number(row.wait_seconds_sum);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
  return WriteFileAtomic(RunPath(cell.key), os.str());
}

Status ArtifactStore::SaveTelemetry(const CampaignCell& cell,
                                    const std::string& json) const {
  return WriteFileAtomic(TelemetryPath(cell.key), json);
}

StatusOr<RunArtifact> ArtifactStore::LoadRun(const CampaignCell& cell) const {
  StatusOr<JsonValue> doc = ReadJsonFile(RunPath(cell.key));
  if (!doc.ok()) return doc.status();

  // The key embeds every axis value, so checking it alone would suffice —
  // but a hand-edited artifact could lie. Verify the axes too; any
  // mismatch means "this is not the run you are looking for".
  StatusOr<std::string> key = doc->GetString("key");
  if (!key.ok()) return key.status();
  StatusOr<std::string> workload = doc->GetString("workload");
  if (!workload.ok()) return workload.status();
  StatusOr<std::string> scenario = doc->GetString("scenario");
  if (!scenario.ok()) return scenario.status();
  StatusOr<std::string> dispatcher_spec = doc->GetString("dispatcher_spec");
  if (!dispatcher_spec.ok()) return dispatcher_spec.status();
  StatusOr<std::string> delta = doc->GetString("config_delta");
  if (!delta.ok()) return delta.status();
  StatusOr<uint64_t> seed = doc->GetUint64("seed");
  if (!seed.ok()) return seed.status();
  if (*key != cell.key || *workload != cell.workload ||
      *scenario != cell.scenario || *dispatcher_spec != cell.dispatcher ||
      *delta != cell.config_delta || *seed != cell.seed) {
    return Status::FailedPrecondition(
        "artifact '" + RunPath(cell.key) +
        "' does not match its cell (stale or foreign artifact)");
  }

  RunArtifact a;
  StatusOr<std::string> name = doc->GetString("dispatcher");
  if (!name.ok()) return name.status();
  a.dispatcher_name = std::move(name).value();

  struct DoubleField {
    const char* key;
    double RunArtifact::* field;
  };
  for (const DoubleField& f : {
           DoubleField{"wall_seconds", &RunArtifact::wall_seconds},
           DoubleField{"revenue", &RunArtifact::revenue},
           DoubleField{"service_rate", &RunArtifact::service_rate},
           DoubleField{"wait_mean_s", &RunArtifact::wait_mean_s},
           DoubleField{"idle_mean_s", &RunArtifact::idle_mean_s},
           DoubleField{"dispatch_ms_mean", &RunArtifact::dispatch_ms_mean},
           DoubleField{"build_ms_mean", &RunArtifact::build_ms_mean},
           DoubleField{"dispatch_ms_p50", &RunArtifact::dispatch_ms_p50},
           DoubleField{"dispatch_ms_p95", &RunArtifact::dispatch_ms_p95},
           DoubleField{"dispatch_ms_p99", &RunArtifact::dispatch_ms_p99},
       }) {
    StatusOr<double> v = doc->GetDouble(f.key);
    if (!v.ok()) return v.status();
    a.*(f.field) = *v;
  }
  struct IntField {
    const char* key;
    int64_t RunArtifact::* field;
  };
  for (const IntField& f : {
           IntField{"served", &RunArtifact::served},
           IntField{"reneged", &RunArtifact::reneged},
           IntField{"cancelled", &RunArtifact::cancelled},
           IntField{"total_orders", &RunArtifact::total_orders},
           IntField{"num_batches", &RunArtifact::num_batches},
       }) {
    StatusOr<int64_t> v = doc->GetInt64(f.key);
    if (!v.ok()) return v.status();
    a.*(f.field) = *v;
  }
  const JsonValue* hourly = doc->Find("hourly");
  if (hourly != nullptr) {
    if (!hourly->is_array()) {
      return Status::InvalidArgument("artifact '" + RunPath(cell.key) +
                                     "': 'hourly' is not an array");
    }
    a.hourly.reserve(hourly->array().size());
    for (const JsonValue& entry : hourly->array()) {
      HourlyRow row;
      StatusOr<int64_t> served = entry.GetInt64("served");
      if (!served.ok()) return served.status();
      row.served = *served;
      StatusOr<int64_t> reneged = entry.GetInt64("reneged");
      if (!reneged.ok()) return reneged.status();
      row.reneged = *reneged;
      StatusOr<int64_t> cancelled = entry.GetInt64("cancelled");
      if (!cancelled.ok()) return cancelled.status();
      row.cancelled = *cancelled;
      StatusOr<double> revenue = entry.GetDouble("revenue");
      if (!revenue.ok()) return revenue.status();
      row.revenue = *revenue;
      StatusOr<double> wait = entry.GetDouble("wait_seconds_sum");
      if (!wait.ok()) return wait.status();
      row.wait_seconds_sum = *wait;
      a.hourly.push_back(row);
    }
  }
  return a;
}

Status ArtifactStore::SaveSpec(const CampaignSpec& spec) const {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("name").String(spec.name);
  auto write_axis = [&w](const char* key,
                         const std::vector<std::string>& values) {
    w.Key(key).BeginArray();
    for (const std::string& v : values) w.String(v);
    w.EndArray();
  };
  write_axis("workloads", spec.workloads);
  write_axis("scenarios", spec.scenarios);
  write_axis("dispatchers", spec.dispatchers);
  w.Key("seeds").BeginArray();
  for (uint64_t s : spec.seeds) w.Number(s);
  w.EndArray();
  write_axis("config_deltas", spec.config_deltas);
  w.EndObject();
  os << "\n";
  return WriteFileAtomic(SpecPath(), os.str());
}

StatusOr<CampaignSpec> ArtifactStore::LoadSpec() const {
  StatusOr<JsonValue> doc = ReadJsonFile(SpecPath());
  if (!doc.ok()) return doc.status();
  StatusOr<std::string> name = doc->GetString("name");
  if (!name.ok()) return name.status();

  CampaignSpec spec;
  spec.name = std::move(name).value();
  auto read_axis = [&doc](const char* key,
                          std::vector<std::string>* out) -> Status {
    const JsonValue* axis = doc->Find(key);
    if (axis == nullptr || !axis->is_array()) {
      return Status::InvalidArgument(std::string("campaign spec: missing "
                                                 "axis array '") +
                                     key + "'");
    }
    for (const JsonValue& v : axis->array()) {
      if (!v.is_string()) {
        return Status::InvalidArgument(std::string("campaign spec: "
                                                   "non-string entry in '") +
                                       key + "'");
      }
      out->push_back(v.string_value());
    }
    return Status::OK();
  };
  MRVD_RETURN_NOT_OK(read_axis("workloads", &spec.workloads));
  MRVD_RETURN_NOT_OK(read_axis("scenarios", &spec.scenarios));
  MRVD_RETURN_NOT_OK(read_axis("dispatchers", &spec.dispatchers));
  MRVD_RETURN_NOT_OK(read_axis("config_deltas", &spec.config_deltas));
  const JsonValue* seeds = doc->Find("seeds");
  if (seeds == nullptr || !seeds->is_array()) {
    return Status::InvalidArgument(
        "campaign spec: missing axis array 'seeds'");
  }
  for (const JsonValue& v : seeds->array()) {
    StatusOr<uint64_t> seed = v.Uint64();
    if (!seed.ok()) return seed.status();
    spec.seeds.push_back(*seed);
  }
  return spec;
}

}  // namespace mrvd
