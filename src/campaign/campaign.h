// Umbrella header for the campaign subsystem — multi-workload experiment
// grids above the experiment API:
//
//   * WorkloadCatalog / ScenarioCatalog — named, lazily-built factories
//   * CampaignSpec / ExpandGrid         — declarative grids, stable keys
//   * ArtifactStore                     — content-addressed run artifacts
//   * CampaignRunner                    — parallel execution, resume,
//                                         per-group summaries
//
// Start with examples/campaign.cpp (the run/resume/summarize CLI);
// ARCHITECTURE.md ("Campaign subsystem") explains how the layer sits above
// the experiment API.
#pragma once

#include "campaign/artifact_store.h"    // IWYU pragma: export
#include "campaign/campaign_runner.h"   // IWYU pragma: export
#include "campaign/campaign_spec.h"     // IWYU pragma: export
#include "campaign/workload_catalog.h"  // IWYU pragma: export
