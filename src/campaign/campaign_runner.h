// CampaignRunner: executes an expanded campaign grid shard-parallel on the
// existing ThreadPool, with content-addressed resume.
//
// Execution contract:
//   * each workload's Simulation is built ONCE (catalog factories are the
//     expensive part — generator days, CSV parses, forecast derivation) and
//     shared read-only across all grid cells of that workload; scenario
//     scripts attach per (workload, scenario) pair via
//     Simulation::WithScenario;
//   * every cell runs through ExperimentRunner::RunOne — the exact
//     single-run path RunAll's workers take — so a campaign's results are
//     bit-identical to a per-simulation ExperimentRunner::RunAll over the
//     same cells at any thread count (tests/campaign_test.cc enforces
//     threads {1, 4});
//   * Resume() loads each cell's artifact and re-executes only cells whose
//     artifact is missing or fails to load/validate — killing a campaign
//     mid-flight and resuming produces a manifest byte-identical to a
//     from-scratch run (doubles round-trip exactly through the artifacts).
//
// An aggregation pass follows execution: per (workload, scenario,
// dispatcher, config-delta) group, mean/stddev/95%-CI summaries across the
// seed axis via src/stats.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/experiment_runner.h"
#include "campaign/artifact_store.h"
#include "campaign/campaign_spec.h"
#include "stats/metrics.h"
#include "util/status.h"

namespace mrvd {

struct CampaignOptions {
  /// Concurrent cell executions (0 = hardware concurrency, 1 = serial).
  int num_threads = 1;

  /// Attach a synchronous, tracing-off TelemetrySession to every executed
  /// cell and persist its metrics registry as telemetry-<key>.json next to
  /// the run artifact. Observational only: results, artifacts, and the
  /// manifest are bit-identical with it on or off, and resume never reads
  /// the telemetry documents back.
  bool telemetry = false;
};

/// What happened to one grid cell.
struct CellOutcome {
  enum class Source {
    kExecuted,  ///< ran in this invocation; artifact written, `live` set
    kLoaded,    ///< artifact loaded from the store (resume/summarize)
    kFailed,    ///< run or artifact I/O failed; see `error`
  };

  CampaignCell cell;
  Source source = Source::kFailed;
  RunArtifact artifact;  ///< valid unless kFailed
  std::string error;     ///< non-empty only for kFailed
  /// The full in-memory result for kExecuted cells (equivalence checks,
  /// custom aggregation); never persisted.
  std::optional<RunResult> live;
};

/// Replication statistics for one (workload, scenario, dispatcher,
/// config-delta) group across the seed axis.
struct GroupSummary {
  std::string workload;
  std::string scenario;
  std::string dispatcher;
  std::string config_delta;
  int64_t replications = 0;  ///< ok cells aggregated (failed cells skipped)

  RunningStats revenue;
  RunningStats served;
  RunningStats service_rate;
  RunningStats wait_mean_s;
  RunningStats idle_mean_s;
};

struct CampaignReport {
  std::vector<CellOutcome> cells;       ///< grid order
  std::vector<GroupSummary> summaries;  ///< grid order of the group axes
  int64_t executed = 0;
  int64_t loaded = 0;
  int64_t failed = 0;
  std::string manifest_json;  ///< the manifest document (deterministic)
};

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, std::string artifact_dir);

  const CampaignSpec& spec() const { return spec_; }
  const ArtifactStore& store() const { return store_; }

  /// Executes every grid cell (existing artifacts are overwritten) and
  /// writes campaign.json + manifest.json.
  StatusOr<CampaignReport> Run(const CampaignOptions& options = {});

  /// Executes only cells without a valid artifact; completed runs are
  /// loaded, not re-run. Writes the same manifest a from-scratch Run()
  /// would, byte for byte (when every cell succeeds).
  StatusOr<CampaignReport> Resume(const CampaignOptions& options = {});

  /// Pure read: loads every artifact, aggregates, and returns the report
  /// without executing anything or writing any file. Cells without a valid
  /// artifact come back kFailed.
  StatusOr<CampaignReport> Summarize() const;

 private:
  enum class Mode { kRun, kResume, kSummarize };
  StatusOr<CampaignReport> Execute(Mode mode,
                                   const CampaignOptions& options) const;

  CampaignSpec spec_;
  ArtifactStore store_;
};

/// The deterministic manifest document: campaign name, canonical axes, one
/// record per cell (key, axes, headline aggregates — no wall-clock), and
/// the per-group summaries. Identical for a fresh run and a resumed one.
std::string ManifestToJson(const CampaignSpec& spec,
                           const std::vector<CellOutcome>& cells,
                           const std::vector<GroupSummary>& summaries);

}  // namespace mrvd
