// ArtifactStore: a directory of per-run RunResult JSON artifacts addressed
// by campaign cell key, plus the campaign spec and manifest documents —
// what makes campaigns resumable. Killing a campaign mid-flight and
// rerunning is safe: artifacts are written to a temp file and renamed into
// place (a crash never leaves a half-written run-*.json under its final
// name), and LoadRun() validates the stored key, so a stale or corrupted
// artifact reads as "missing" and the cell simply re-executes.
//
// Layout of a campaign directory:
//   campaign.json          the CampaignSpec (written at start; `campaign
//                          resume` re-reads it so a killed run needs no
//                          flags)
//   run-<key>.json         one artifact per completed cell
//                          (content-addressed)
//   telemetry-<key>.json   the cell's metrics registry (only with
//                          CampaignOptions::telemetry; never load-bearing —
//                          resume ignores it)
//   manifest.json          deterministic cell/summary table (written at end)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_runner.h"
#include "campaign/campaign_spec.h"
#include "sim/hourly_stats.h"
#include "util/status.h"

namespace mrvd {

/// The headline numbers persisted per run — everything the manifest,
/// summaries and resume equivalence need. Doubles are written with
/// shortest-round-trip formatting and parsed back bit-exact, so a loaded
/// artifact is indistinguishable from the live run that produced it.
struct RunArtifact {
  std::string dispatcher_name;  ///< resolved display name
  double wall_seconds = 0.0;    ///< never compared or aggregated (varies)

  double revenue = 0.0;
  int64_t served = 0;
  int64_t reneged = 0;
  int64_t cancelled = 0;
  int64_t total_orders = 0;
  int64_t num_batches = 0;
  double service_rate = 0.0;
  double wait_mean_s = 0.0;
  double idle_mean_s = 0.0;
  double dispatch_ms_mean = 0.0;
  double build_ms_mean = 0.0;
  /// Per-batch dispatch latency percentiles (ms). Wall-clock execution
  /// metadata, like wall_seconds: persisted for observability, never
  /// compared or aggregated.
  double dispatch_ms_p50 = 0.0;
  double dispatch_ms_p95 = 0.0;
  double dispatch_ms_p99 = 0.0;
  /// Per-hour event breakdown (deterministic; see sim/hourly_stats.h).
  /// Filled by CampaignRunner from the cell's HourlyBreakdown observer;
  /// empty for artifacts written before the rows existed.
  std::vector<HourlyRow> hourly;
};

/// Projects a RunResult onto the persisted headline numbers.
RunArtifact MakeRunArtifact(const RunResult& result);

class ArtifactStore {
 public:
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string RunPath(const std::string& key) const;
  std::string TelemetryPath(const std::string& key) const;
  std::string ManifestPath() const;
  std::string SpecPath() const;

  /// Creates the campaign directory (and parents). Idempotent.
  Status Init() const;

  /// True if an artifact file exists for `key` (it may still fail to load).
  bool HasRun(const std::string& key) const;

  /// Writes the cell's artifact atomically (temp file + rename). Safe to
  /// call concurrently for distinct cells. I/O failures carry errno.
  Status SaveRun(const CampaignCell& cell, const RunArtifact& artifact) const;

  /// Loads and validates the cell's artifact. Any failure — missing file,
  /// parse error, key/axis mismatch (the file belongs to a different run) —
  /// returns a non-OK Status; CampaignRunner treats that as "re-execute".
  StatusOr<RunArtifact> LoadRun(const CampaignCell& cell) const;

  /// Writes the cell's telemetry document (a MetricsRegistry JSON dump)
  /// atomically next to its run artifact.
  Status SaveTelemetry(const CampaignCell& cell,
                       const std::string& json) const;

  /// Persists / restores the campaign spec (campaign.json).
  Status SaveSpec(const CampaignSpec& spec) const;
  StatusOr<CampaignSpec> LoadSpec() const;

  /// Writes `content` to `path` atomically with errno-carrying failures.
  static Status WriteFileAtomic(const std::string& path,
                                const std::string& content);

 private:
  std::string dir_;
};

}  // namespace mrvd
