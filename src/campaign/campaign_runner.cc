#include "campaign/campaign_runner.h"

#include <cmath>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "campaign/workload_catalog.h"
#include "sim/hourly_stats.h"
#include "telemetry/session.h"
#include "util/json_writer.h"
#include "util/thread_pool.h"

namespace mrvd {

CampaignRunner::CampaignRunner(CampaignSpec spec, std::string artifact_dir)
    : spec_(std::move(spec)), store_(std::move(artifact_dir)) {}

StatusOr<CampaignReport> CampaignRunner::Run(const CampaignOptions& options) {
  return Execute(Mode::kRun, options);
}

StatusOr<CampaignReport> CampaignRunner::Resume(
    const CampaignOptions& options) {
  return Execute(Mode::kResume, options);
}

StatusOr<CampaignReport> CampaignRunner::Summarize() const {
  return Execute(Mode::kSummarize, CampaignOptions{});
}

StatusOr<CampaignReport> CampaignRunner::Execute(
    Mode mode, const CampaignOptions& options) const {
  StatusOr<std::vector<CampaignCell>> cells = ExpandGrid(spec_);
  if (!cells.ok()) return cells.status();

  if (mode != Mode::kSummarize) {
    MRVD_RETURN_NOT_OK(store_.Init());
    // The spec lands before any run so a killed campaign can be resumed
    // from the directory alone (`campaign resume <dir>` re-reads it).
    MRVD_RETURN_NOT_OK(store_.SaveSpec(spec_));
  }

  CampaignReport report;
  report.cells.resize(cells->size());

  // Probe pass: decide per cell whether the store already answers it.
  // Serial — it is pure small-file I/O, and it must finish before we know
  // which Simulations are worth building at all.
  std::vector<size_t> pending;
  for (size_t i = 0; i < cells->size(); ++i) {
    CellOutcome& outcome = report.cells[i];
    outcome.cell = (*cells)[i];
    if (mode == Mode::kRun) {
      pending.push_back(i);
      continue;
    }
    StatusOr<RunArtifact> artifact = store_.LoadRun(outcome.cell);
    if (artifact.ok()) {
      outcome.source = CellOutcome::Source::kLoaded;
      outcome.artifact = std::move(artifact).value();
    } else if (mode == Mode::kResume) {
      pending.push_back(i);  // missing or invalid -> re-execute
    } else {
      outcome.source = CellOutcome::Source::kFailed;
      outcome.error = artifact.status().ToString();
    }
  }

  // Build each pending workload's Simulation once, then attach each
  // pending scenario's script — (workload, scenario) groups share one
  // read-only Simulation across all their cells. Serial: factories are
  // the expensive, non-thread-safe part (generators, CSV parses), and a
  // resume that skips a whole workload never pays for it.
  std::map<int, Simulation> workload_sims;
  std::map<std::pair<int, int>, Simulation> group_sims;
  for (size_t i : pending) {
    const CampaignCell& cell = report.cells[i].cell;
    auto workload_it = workload_sims.find(cell.workload_index);
    if (workload_it == workload_sims.end()) {
      StatusOr<Simulation> sim =
          WorkloadCatalog::Global().Build(cell.workload);
      if (!sim.ok()) return sim.status();
      workload_it = workload_sims
                        .emplace(cell.workload_index, std::move(sim).value())
                        .first;
    }
    std::pair<int, int> group{cell.workload_index, cell.scenario_index};
    if (group_sims.count(group) != 0) continue;
    if (cell.scenario == "none") {
      // The empty scenario runs unscripted — the engine's empty-script
      // bit-identity makes attaching an empty script equivalent, but not
      // attaching one skips the EventStream entirely.
      group_sims.emplace(group, workload_it->second);
    } else {
      StatusOr<ScenarioScript> script = ScenarioCatalog::Global().Build(
          cell.scenario, workload_it->second.workload());
      if (!script.ok()) return script.status();
      group_sims.emplace(
          group, workload_it->second.WithScenario(std::move(script).value()));
    }
  }

  // Execute pending cells shard-parallel. Each cell resolves and runs
  // through ExperimentRunner::RunOne — the identical single-run path a
  // RunAll worker takes — into its own pre-sized outcome slot, so the
  // pool's schedule cannot affect any result.
  if (!pending.empty()) {
    const int num_threads = options.num_threads == 0
                                ? ThreadPool::HardwareThreads()
                                : options.num_threads;
    ThreadPool pool(num_threads);
    pool.ParallelFor(static_cast<int>(pending.size()), [&](int p) {
      CellOutcome& outcome = report.cells[pending[static_cast<size_t>(p)]];
      const CampaignCell& cell = outcome.cell;
      const Simulation& sim =
          group_sims.at({cell.workload_index, cell.scenario_index});

      RunSpec spec(cell.dispatcher, cell.key);
      SimConfig config = sim.config();
      Status delta_status = ApplyConfigDelta(cell.config_delta, &config);
      if (!delta_status.ok()) {
        outcome.source = CellOutcome::Source::kFailed;
        outcome.error = delta_status.ToString();
        return;
      }

      // Per-cell telemetry: a synchronous session with tracing off (no
      // drainer thread, metrics only) — each cell runs on exactly one
      // worker, so the registry's coordinator-thread contract holds.
      std::optional<telemetry::TelemetrySession> session;
      if (options.telemetry) {
        telemetry::TelemetryConfig tele_config;
        tele_config.tracing = false;
        tele_config.async_drain = false;
        session.emplace(tele_config);
        config.telemetry = &*session;
      } else {
        // Never inherit a session from the Simulation's base config: one
        // session shared across concurrently executing cells would break
        // its single-run contract.
        config.telemetry = nullptr;
      }
      spec.config = config;
      spec.replication_seed = cell.seed;

      // The per-hour breakdown rides along on every executed cell — it is
      // deterministic (event-stream driven), cheap, and lands in the run
      // artifact.
      HourlyBreakdown hourly(config.horizon_seconds);
      spec.observer = &hourly;

      StatusOr<RunResult> result = ExperimentRunner::RunOne(sim, spec);
      if (!result.ok()) {
        outcome.source = CellOutcome::Source::kFailed;
        outcome.error = result.status().ToString();
        return;
      }
      outcome.artifact = MakeRunArtifact(*result);
      outcome.artifact.hourly = hourly.rows();
      Status saved = store_.SaveRun(cell, outcome.artifact);
      if (!saved.ok()) {
        // The run succeeded but the store did not take it: report the cell
        // failed so the caller knows a resume will re-execute it.
        outcome.source = CellOutcome::Source::kFailed;
        outcome.error = saved.ToString();
        return;
      }
      if (session) {
        session->Finish();
        Status tele_saved = store_.SaveTelemetry(cell, session->MetricsJson());
        if (!tele_saved.ok()) {
          outcome.source = CellOutcome::Source::kFailed;
          outcome.error = tele_saved.ToString();
          return;
        }
      }
      outcome.source = CellOutcome::Source::kExecuted;
      outcome.live = std::move(result).value();
    });
  }

  // Aggregation pass: per (workload, scenario, dispatcher, delta) group
  // across the seed axis, in grid order — deterministic regardless of the
  // execution schedule.
  std::map<std::tuple<int, int, int, int>, size_t> group_index;
  for (const CellOutcome& outcome : report.cells) {
    switch (outcome.source) {
      case CellOutcome::Source::kExecuted: ++report.executed; break;
      case CellOutcome::Source::kLoaded: ++report.loaded; break;
      case CellOutcome::Source::kFailed: ++report.failed; break;
    }
    const CampaignCell& cell = outcome.cell;
    std::tuple<int, int, int, int> group{cell.workload_index,
                                         cell.scenario_index,
                                         cell.dispatcher_index,
                                         cell.delta_index};
    auto it = group_index.find(group);
    if (it == group_index.end()) {
      it = group_index.emplace(group, report.summaries.size()).first;
      GroupSummary summary;
      summary.workload = cell.workload;
      summary.scenario = cell.scenario;
      summary.dispatcher = cell.dispatcher;
      summary.config_delta = cell.config_delta;
      report.summaries.push_back(std::move(summary));
    }
    if (outcome.source == CellOutcome::Source::kFailed) continue;
    GroupSummary& summary = report.summaries[it->second];
    ++summary.replications;
    summary.revenue.Add(outcome.artifact.revenue);
    summary.served.Add(static_cast<double>(outcome.artifact.served));
    summary.service_rate.Add(outcome.artifact.service_rate);
    summary.wait_mean_s.Add(outcome.artifact.wait_mean_s);
    summary.idle_mean_s.Add(outcome.artifact.idle_mean_s);
  }

  report.manifest_json = ManifestToJson(spec_, report.cells, report.summaries);
  if (mode != Mode::kSummarize) {
    MRVD_RETURN_NOT_OK(ArtifactStore::WriteFileAtomic(store_.ManifestPath(),
                                                      report.manifest_json));
  }
  return report;
}

namespace {

void WriteSummaryStats(JsonWriter& w, const char* key,
                       const RunningStats& stats) {
  w.Key(key).BeginObject();
  w.Key("mean").Number(stats.mean());
  // Sample stddev (n-1), matching the ci95 half-width next to it: the
  // seeds are a sample of the replication distribution, and mixing the
  // population estimator in would understate the spread at small n.
  w.Key("stddev").Number(std::sqrt(stats.sample_variance()));
  w.Key("ci95").Number(MeanCiHalfWidth(stats));
  w.EndObject();
}

}  // namespace

std::string ManifestToJson(const CampaignSpec& spec,
                           const std::vector<CellOutcome>& cells,
                           const std::vector<GroupSummary>& summaries) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("campaign").String(spec.name);

  // Canonical axes, reconstructed from the cells (index -> canonical
  // string) so the manifest never depends on the raw spelling the spec
  // arrived with.
  auto write_axis = [&w, &cells](const char* key, int CampaignCell::* index,
                                 std::string CampaignCell::* value) {
    std::map<int, std::string> axis;
    for (const CellOutcome& outcome : cells) {
      axis[outcome.cell.*index] = outcome.cell.*value;
    }
    w.Key(key).BeginArray();
    for (const auto& [unused, v] : axis) w.String(v);
    w.EndArray();
  };
  w.Key("axes").BeginObject();
  write_axis("workloads", &CampaignCell::workload_index,
             &CampaignCell::workload);
  write_axis("scenarios", &CampaignCell::scenario_index,
             &CampaignCell::scenario);
  write_axis("dispatchers", &CampaignCell::dispatcher_index,
             &CampaignCell::dispatcher);
  {
    std::map<int, uint64_t> seeds;
    for (const CellOutcome& outcome : cells) {
      seeds[outcome.cell.seed_index] = outcome.cell.seed;
    }
    w.Key("seeds").BeginArray();
    for (const auto& [unused, s] : seeds) w.Number(s);
    w.EndArray();
  }
  write_axis("config_deltas", &CampaignCell::delta_index,
             &CampaignCell::config_delta);
  w.EndObject();

  // Per-cell records. No wall-clock and no executed-vs-loaded provenance:
  // the manifest of a resumed campaign must be byte-identical to a
  // from-scratch run's.
  w.Key("cells").BeginArray();
  for (const CellOutcome& outcome : cells) {
    const CampaignCell& cell = outcome.cell;
    w.BeginObject();
    w.Key("key").String(cell.key);
    w.Key("workload").String(cell.workload);
    w.Key("scenario").String(cell.scenario);
    w.Key("dispatcher_spec").String(cell.dispatcher);
    w.Key("config_delta").String(cell.config_delta);
    w.Key("seed").Number(cell.seed);
    if (outcome.source == CellOutcome::Source::kFailed) {
      w.Key("ok").Bool(false);
      w.Key("error").String(outcome.error);
    } else {
      const RunArtifact& a = outcome.artifact;
      w.Key("ok").Bool(true);
      w.Key("dispatcher").String(a.dispatcher_name);
      w.Key("revenue").Number(a.revenue);
      w.Key("served").Number(a.served);
      w.Key("reneged").Number(a.reneged);
      w.Key("cancelled").Number(a.cancelled);
      w.Key("total_orders").Number(a.total_orders);
      w.Key("num_batches").Number(a.num_batches);
      w.Key("service_rate").Number(a.service_rate);
      w.Key("wait_mean_s").Number(a.wait_mean_s);
      w.Key("idle_mean_s").Number(a.idle_mean_s);
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("summaries").BeginArray();
  for (const GroupSummary& s : summaries) {
    w.BeginObject();
    w.Key("workload").String(s.workload);
    w.Key("scenario").String(s.scenario);
    w.Key("dispatcher_spec").String(s.dispatcher);
    w.Key("config_delta").String(s.config_delta);
    w.Key("replications").Number(s.replications);
    WriteSummaryStats(w, "revenue", s.revenue);
    WriteSummaryStats(w, "served", s.served);
    WriteSummaryStats(w, "service_rate", s.service_rate);
    WriteSummaryStats(w, "wait_mean_s", s.wait_mean_s);
    WriteSummaryStats(w, "idle_mean_s", s.idle_mean_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
  return os.str();
}

}  // namespace mrvd
