// CampaignSpec: a declarative cross-product of {workloads x scenarios x
// dispatcher specs x seeds x config overrides}, and its expansion into
// deterministic, stably-keyed grid cells.
//
// Every axis entry is a spec string resolved against the matching registry
// (WorkloadCatalog, ScenarioCatalog, DispatcherRegistry) and canonicalised
// before hashing, so a cell's key is a pure function of *what* it runs —
// not of spelling, axis order, or which campaign it appears in. The key is
// what makes the artifact store content-addressed: rerunning a campaign (or
// a different campaign sharing cells) finds the same artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/status.h"

namespace mrvd {

/// The declarative grid. Empty optional axes get singleton defaults at
/// expansion: scenarios -> {"none"}, seeds -> {0}, config_deltas -> {""}.
/// Workloads and dispatchers must be non-empty.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> workloads;      ///< WorkloadCatalog specs
  std::vector<std::string> scenarios;      ///< ScenarioCatalog specs
  std::vector<std::string> dispatchers;    ///< DispatcherRegistry specs
  std::vector<uint64_t> seeds;             ///< replication seeds (0 = spec default)
  std::vector<std::string> config_deltas;  ///< "key=value,..." SimConfig overrides
};

/// One expanded grid cell: canonical axis values plus the content key.
struct CampaignCell {
  std::string key;  ///< 16 hex chars, FNV-1a over the canonical tuple

  std::string workload;      ///< canonical WorkloadCatalog spec
  std::string scenario;      ///< canonical ScenarioCatalog spec
  std::string dispatcher;    ///< canonical dispatcher spec
  std::string config_delta;  ///< canonical config override ("" = none)
  uint64_t seed = 0;

  /// Position on each axis of the expanding CampaignSpec.
  int workload_index = 0;
  int scenario_index = 0;
  int dispatcher_index = 0;
  int delta_index = 0;
  int seed_index = 0;
};

/// Applies a "key=value,..." override string onto `config`. Known keys:
/// batch_interval, window_seconds, horizon_seconds, alpha, reneging_beta
/// (doubles) and num_threads, num_shards (ints). Unknown keys fail listing
/// the known set; the merged config is NOT validated here (the run path
/// calls SimConfig::Validate()).
Status ApplyConfigDelta(const std::string& delta, SimConfig* config);

/// Validates a delta's syntax/keys and returns its canonical form (sorted
/// keys, numerics reformatted). "" canonicalises to "".
StatusOr<std::string> CanonicalizeConfigDelta(const std::string& delta);

/// The content key for one cell: FNV-1a 64 over the canonical
/// (workload, scenario, dispatcher, config_delta, seed) tuple, as 16 hex
/// chars. Inputs must already be canonical.
std::string CampaignCellKey(const std::string& workload,
                            const std::string& scenario,
                            const std::string& dispatcher,
                            const std::string& config_delta, uint64_t seed);

/// Expands the cross-product in deterministic order — workload-major
/// (scenario, dispatcher, delta, seed innermost), so cells sharing a
/// workload are contiguous and CampaignRunner builds each Simulation once.
/// Every axis entry is validated and canonicalised; duplicate entries on an
/// axis (after canonicalisation) fail, since they would collide keys.
StatusOr<std::vector<CampaignCell>> ExpandGrid(const CampaignSpec& spec);

}  // namespace mrvd
