#include "matching/bipartite.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace mrvd {

BipartiteGraph::BipartiteGraph(int num_left, int num_right)
    : num_left_(num_left), num_right_(num_right) {
  assert(num_left >= 0 && num_right >= 0);
  adj_.resize(static_cast<size_t>(num_left));
}

void BipartiteGraph::AddEdge(int left, int right) {
  assert(left >= 0 && left < num_left_ && right >= 0 && right < num_right_);
  adj_[static_cast<size_t>(left)].push_back(right);
}

namespace {

constexpr int kInfDist = std::numeric_limits<int>::max();

struct HkState {
  const BipartiteGraph& g;
  std::vector<int>& left_match;
  std::vector<int>& right_match;
  std::vector<int> dist;

  bool Bfs() {
    std::queue<int> q;
    dist.assign(static_cast<size_t>(g.num_left()), kInfDist);
    for (int u = 0; u < g.num_left(); ++u) {
      if (left_match[static_cast<size_t>(u)] == -1) {
        dist[static_cast<size_t>(u)] = 0;
        q.push(u);
      }
    }
    bool found_augmenting = false;
    while (!q.empty()) {
      int u = q.front();
      q.pop();
      for (int v : g.Adjacency(u)) {
        int w = right_match[static_cast<size_t>(v)];
        if (w == -1) {
          found_augmenting = true;
        } else if (dist[static_cast<size_t>(w)] == kInfDist) {
          dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(u)] + 1;
          q.push(w);
        }
      }
    }
    return found_augmenting;
  }

  bool Dfs(int u) {
    for (int v : g.Adjacency(u)) {
      int w = right_match[static_cast<size_t>(v)];
      if (w == -1 || (dist[static_cast<size_t>(w)] ==
                          dist[static_cast<size_t>(u)] + 1 &&
                      Dfs(w))) {
        left_match[static_cast<size_t>(u)] = v;
        right_match[static_cast<size_t>(v)] = u;
        return true;
      }
    }
    dist[static_cast<size_t>(u)] = kInfDist;
    return false;
  }
};

}  // namespace

MatchingResult MaxCardinalityMatching(const BipartiteGraph& graph) {
  MatchingResult result;
  result.left_match.assign(static_cast<size_t>(graph.num_left()), -1);
  result.right_match.assign(static_cast<size_t>(graph.num_right()), -1);
  HkState state{graph, result.left_match, result.right_match, {}};
  while (state.Bfs()) {
    for (int u = 0; u < graph.num_left(); ++u) {
      if (result.left_match[static_cast<size_t>(u)] == -1 && state.Dfs(u)) {
        ++result.size;
      }
    }
  }
  return result;
}

std::vector<size_t> GreedyMatch(std::vector<WeightedPair> pairs) {
  if (pairs.empty()) return {};
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pairs[a].score < pairs[b].score;
  });

  int max_left = -1, max_right = -1;
  for (const auto& p : pairs) {
    max_left = std::max(max_left, p.left);
    max_right = std::max(max_right, p.right);
  }
  std::vector<char> left_used(static_cast<size_t>(max_left) + 1, false);
  std::vector<char> right_used(static_cast<size_t>(max_right) + 1, false);

  std::vector<size_t> selected;
  for (size_t idx : order) {
    const auto& p = pairs[idx];
    if (left_used[static_cast<size_t>(p.left)] ||
        right_used[static_cast<size_t>(p.right)])
      continue;
    left_used[static_cast<size_t>(p.left)] = true;
    right_used[static_cast<size_t>(p.right)] = true;
    selected.push_back(idx);
  }
  return selected;
}

}  // namespace mrvd
