// Dense assignment solver (Hungarian / Jonker–Volgenant potentials, O(n^3)).
// Used by POLAR's offline blueprint to match predicted per-region supply to
// predicted demand at minimum expected cost.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// Result of an assignment solve.
struct AssignmentResult {
  /// col assigned to each row (-1 = unassigned; only possible when
  /// rows > cols).
  std::vector<int> row_to_col;
  std::vector<int> col_to_row;  ///< inverse mapping (-1 = free column)
  double total_cost = 0.0;
};

/// Infinite cost marker: the pair is forbidden.
inline constexpr double kForbiddenCost = std::numeric_limits<double>::max();

/// Solves min-cost perfect-on-the-smaller-side assignment for a dense
/// rows x cols cost matrix (row-major). Costs must be finite or
/// kForbiddenCost. If the smaller side cannot be perfectly matched through
/// allowed pairs, forbidden pairs are left unassigned in the output rather
/// than matched (they are internally priced just below overflow and then
/// stripped).
StatusOr<AssignmentResult> SolveMinCostAssignment(
    const std::vector<double>& cost, int rows, int cols);

/// Convenience: maximize total weight instead (weights >= 0;
/// kForbiddenCost still means forbidden).
StatusOr<AssignmentResult> SolveMaxWeightAssignment(
    const std::vector<double>& weight, int rows, int cols);

}  // namespace mrvd
