// Sparse bipartite matching: Hopcroft–Karp maximum-cardinality matching and
// a weighted greedy matcher (the building block of the paper's batch
// dispatchers: sort candidate pairs by priority, pick greedily subject to
// one-rider-one-driver).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace mrvd {

/// Bipartite graph with `num_left` and `num_right` vertices; edges are added
/// left -> right.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_left, int num_right);

  void AddEdge(int left, int right);

  int num_left() const { return num_left_; }
  int num_right() const { return num_right_; }
  const std::vector<int>& Adjacency(int left) const {
    return adj_[static_cast<size_t>(left)];
  }

 private:
  int num_left_, num_right_;
  std::vector<std::vector<int>> adj_;
};

/// Maximum-cardinality matching (Hopcroft–Karp, O(E sqrt(V))).
struct MatchingResult {
  int size = 0;
  std::vector<int> left_match;   ///< right vertex for each left (-1 = free)
  std::vector<int> right_match;  ///< left vertex for each right (-1 = free)
};
MatchingResult MaxCardinalityMatching(const BipartiteGraph& graph);

/// One weighted candidate pair for greedy matching.
struct WeightedPair {
  int left = -1;
  int right = -1;
  double score = 0.0;  ///< smaller is better (e.g. idle ratio)
};

/// Greedily selects pairs in ascending score order, skipping pairs whose
/// endpoint is already matched. Stable for equal scores (original order).
/// Returns selected indices into `pairs`.
std::vector<size_t> GreedyMatch(std::vector<WeightedPair> pairs);

}  // namespace mrvd
