#include "matching/hungarian.h"

#include <algorithm>
#include <cmath>

namespace mrvd {

namespace {

/// Internal sentinel standing in for forbidden pairs during the solve; large
/// enough to never be preferred, small enough to leave arithmetic headroom.
constexpr double kBigCost = 1e15;

/// Classic potentials algorithm (e-maxx formulation), requires n <= m.
/// a is 1-indexed (n+1) x (m+1) internally.
AssignmentResult SolveTransposedIfNeeded(const std::vector<double>& cost,
                                         int rows, int cols) {
  bool transposed = rows > cols;
  int n = transposed ? cols : rows;
  int m = transposed ? rows : cols;
  auto at = [&](int i, int j) -> double {
    double c = transposed ? cost[static_cast<size_t>(j) * cols + i]
                          : cost[static_cast<size_t>(i) * cols + j];
    return c == kForbiddenCost ? kBigCost : c;
  };

  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int> p(static_cast<size_t>(m) + 1, 0);    // row matched to col j
  std::vector<int> way(static_cast<size_t>(m) + 1, 0);  // augmenting trail

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(m) + 1, kBigCost * 2);
    std::vector<char> used(static_cast<size_t>(m) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      int i0 = p[static_cast<size_t>(j0)];
      double delta = kBigCost * 2;
      int j1 = 0;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = at(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                     v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    do {
      int j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(static_cast<size_t>(rows), -1);
  result.col_to_row.assign(static_cast<size_t>(cols), -1);
  for (int j = 1; j <= m; ++j) {
    int i = p[static_cast<size_t>(j)];
    if (i == 0) continue;
    // Strip assignments that used a forbidden pair.
    if (at(i - 1, j - 1) >= kBigCost / 2) continue;
    int row = transposed ? j - 1 : i - 1;
    int col = transposed ? i - 1 : j - 1;
    result.row_to_col[static_cast<size_t>(row)] = col;
    result.col_to_row[static_cast<size_t>(col)] = row;
    result.total_cost += cost[static_cast<size_t>(row) * cols + col];
  }
  return result;
}

}  // namespace

StatusOr<AssignmentResult> SolveMinCostAssignment(
    const std::vector<double>& cost, int rows, int cols) {
  if (rows <= 0 || cols <= 0 ||
      static_cast<int64_t>(cost.size()) !=
          static_cast<int64_t>(rows) * cols) {
    return Status::InvalidArgument("assignment: dimension mismatch");
  }
  for (double c : cost) {
    if (c != kForbiddenCost && (!std::isfinite(c) || std::fabs(c) >= kBigCost)) {
      return Status::InvalidArgument(
          "assignment: costs must be finite and |c| < 1e15, or kForbiddenCost");
    }
  }
  return SolveTransposedIfNeeded(cost, rows, cols);
}

StatusOr<AssignmentResult> SolveMaxWeightAssignment(
    const std::vector<double>& weight, int rows, int cols) {
  if (rows <= 0 || cols <= 0 ||
      static_cast<int64_t>(weight.size()) !=
          static_cast<int64_t>(rows) * cols) {
    return Status::InvalidArgument("assignment: dimension mismatch");
  }
  double max_w = 0.0;
  for (double w : weight) {
    if (w == kForbiddenCost) continue;
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "max-weight assignment: weights must be finite and >= 0");
    }
    max_w = std::max(max_w, w);
  }
  std::vector<double> cost(weight.size());
  for (size_t i = 0; i < weight.size(); ++i) {
    cost[i] = weight[i] == kForbiddenCost ? kForbiddenCost : max_w - weight[i];
  }
  auto result = SolveMinCostAssignment(cost, rows, cols);
  MRVD_RETURN_NOT_OK(result.status());
  // Recompute the total in weight space.
  double total = 0.0;
  for (int r = 0; r < rows; ++r) {
    int c = result->row_to_col[static_cast<size_t>(r)];
    if (c >= 0) total += weight[static_cast<size_t>(r) * cols + c];
  }
  result->total_cost = total;
  return result;
}

}  // namespace mrvd
