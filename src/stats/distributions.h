// Probability distributions and special functions needed by the queueing
// analysis and the chi-square goodness-of-fit test (Appendix B).
#pragma once

#include <cstdint>
#include <vector>

namespace mrvd {

/// ln Gamma(x) for x > 0 (Lanczos approximation, |err| < 2e-10).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Series expansion for x < a+1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// Poisson pmf P[X = k] with mean `mean` (computed in log space).
double PoissonPmf(double mean, int64_t k);

/// Poisson cdf P[X <= k].
double PoissonCdf(double mean, int64_t k);

/// Chi-square cdf with `dof` degrees of freedom.
double ChiSquareCdf(double x, int dof);

/// Upper quantile: the critical value c with P[X > c] = alpha for a
/// chi-square with `dof` degrees of freedom (e.g. dof=6, alpha=0.05 -> 12.592
/// as quoted in Table 7). Solved by bisection on the cdf.
double ChiSquareCriticalValue(int dof, double alpha);

/// Maximum-likelihood Poisson mean for integer count samples (= sample mean).
double FitPoissonMean(const std::vector<int64_t>& samples);

}  // namespace mrvd
