// Error metrics used across the evaluation: MAE, RMSE, relative RMSE
// (Tables 3 and 6), plus streaming mean/variance accumulators.
#pragma once

#include <cstdint>
#include <vector>

namespace mrvd {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (n in the denominator); 0 for n < 1.
  double variance() const;
  /// Sample variance (n-1); 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Accumulates paired (estimate, actual) observations and reports the three
/// error measures the paper uses in Tables 3/6:
///   MAE        = mean |est - act|                     (seconds)
///   RealRmse   = sqrt(mean (est - act)^2)             (seconds)
///   RelRmsePct = RealRmse / mean(act) * 100           (%)
class ErrorStats {
 public:
  void Add(double estimate, double actual);

  int64_t count() const { return n_; }
  double Mae() const;
  double RealRmse() const;
  /// Relative RMSE in percent of the mean actual value; 0 if mean actual is 0.
  double RelativeRmsePct() const;
  double MeanActual() const;

 private:
  int64_t n_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double actual_sum_ = 0.0;
};

/// RMSE between two equal-length vectors (convenience for predictor tests).
double Rmse(const std::vector<double>& estimate,
            const std::vector<double>& actual);

/// Half-width of the normal-approximation confidence interval for the mean
/// of `stats` (z * s / sqrt(n) with the sample stddev; z = 1.96 for 95%).
/// 0 for fewer than two observations — the campaign summaries report it
/// alongside mean/stddev for replicated grid cells.
double MeanCiHalfWidth(const RunningStats& stats, double z = 1.96);

}  // namespace mrvd
