#include "stats/distributions.h"

#include <cassert>
#include <cmath>

namespace mrvd {

double LogGamma(double x) {
  // Lanczos, g=7, n=9 coefficients.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  assert(x > 0.0);
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  const double lg = LogGamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a(a+1)...(a+n)).
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 1000; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
  }
  // Continued fraction for Q(a,x) (Lentz's algorithm).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  double q = std::exp(-x + a * std::log(x) - lg) * h;
  return 1.0 - q;
}

double PoissonPmf(double mean, int64_t k) {
  assert(mean >= 0.0 && k >= 0);
  if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
  double lk = static_cast<double>(k);
  return std::exp(lk * std::log(mean) - mean - LogGamma(lk + 1.0));
}

double PoissonCdf(double mean, int64_t k) {
  if (k < 0) return 0.0;
  if (mean == 0.0) return 1.0;
  // P[X <= k] = Q(k+1, mean) = 1 - P(k+1, mean).
  return 1.0 - RegularizedGammaP(static_cast<double>(k) + 1.0, mean);
}

double ChiSquareCdf(double x, int dof) {
  assert(dof > 0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * dof, 0.5 * x);
}

double ChiSquareCriticalValue(int dof, double alpha) {
  assert(dof > 0 && alpha > 0.0 && alpha < 1.0);
  double target = 1.0 - alpha;
  double lo = 0.0;
  double hi = std::fmax(10.0, dof + 10.0 * std::sqrt(2.0 * dof));
  while (ChiSquareCdf(hi, dof) < target) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (ChiSquareCdf(mid, dof) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double FitPoissonMean(const std::vector<int64_t>& samples) {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (int64_t v : samples) s += static_cast<double>(v);
  return s / static_cast<double>(samples.size());
}

}  // namespace mrvd
