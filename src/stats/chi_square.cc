#include "stats/chi_square.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/distributions.h"
#include "util/strings.h"

namespace mrvd {

std::string ChiSquareResult::ToString() const {
  return StrFormat(
      "r=%d  k=%.4f  chi2_{r-1}(%.2f)=%.3f  mean=%.2f  -> %s", num_intervals,
      statistic, alpha, critical_value, fitted_mean,
      reject ? "REJECT Poisson" : "cannot reject Poisson");
}

StatusOr<ChiSquareResult> ChiSquarePoissonTest(
    const std::vector<int64_t>& samples, const ChiSquareOptions& options) {
  if (samples.size() < 20) {
    return Status::InvalidArgument(
        "chi-square test needs at least 20 samples");
  }
  for (int64_t s : samples) {
    if (s < 0) return Status::InvalidArgument("negative count sample");
  }

  const auto n = static_cast<double>(samples.size());
  const double mean = FitPoissonMean(samples);
  if (mean <= 0.0) {
    return Status::InvalidArgument("all-zero samples: Poisson mean is 0");
  }

  int64_t max_sample = *std::max_element(samples.begin(), samples.end());
  int64_t min_sample = *std::min_element(samples.begin(), samples.end());

  // Initial equal-width buckets covering [min_sample, max_sample], then the
  // open tails on both sides.
  int64_t width = options.bucket_width;
  if (width <= 0) {
    double sd = std::sqrt(mean);
    width = std::max<int64_t>(1, static_cast<int64_t>(std::llround(sd / 2.0)));
  }

  struct RawBucket {
    int64_t lo, hi;  // [lo, hi)
    int64_t observed = 0;
    double expected = 0.0;
  };
  std::vector<RawBucket> raw;
  // Left open tail [0, min_sample) if non-empty.
  if (min_sample > 0) raw.push_back({0, min_sample, 0, 0.0});
  for (int64_t lo = min_sample; lo <= max_sample; lo += width) {
    raw.push_back({lo, lo + width, 0, 0.0});
  }
  // Right open tail.
  raw.push_back({raw.back().hi, std::numeric_limits<int64_t>::max(), 0, 0.0});

  for (int64_t s : samples) {
    for (auto& b : raw) {
      if (s >= b.lo && s < b.hi) {
        ++b.observed;
        break;
      }
    }
  }
  for (auto& b : raw) {
    double p;
    if (b.hi == std::numeric_limits<int64_t>::max()) {
      p = 1.0 - PoissonCdf(mean, b.lo - 1);
    } else {
      p = PoissonCdf(mean, b.hi - 1) - PoissonCdf(mean, b.lo - 1);
    }
    b.expected = n * std::max(0.0, p);
  }

  // Merge adjacent buckets until every expected count >= min_expected.
  std::vector<RawBucket> merged;
  for (const auto& b : raw) {
    if (!merged.empty() && merged.back().expected < options.min_expected) {
      merged.back().hi = b.hi;
      merged.back().observed += b.observed;
      merged.back().expected += b.expected;
    } else {
      merged.push_back(b);
    }
  }
  // The final bucket may still be undersized; fold it backwards.
  while (merged.size() > 1 && merged.back().expected < options.min_expected) {
    auto last = merged.back();
    merged.pop_back();
    merged.back().hi = last.hi;
    merged.back().observed += last.observed;
    merged.back().expected += last.expected;
  }

  if (merged.size() < 2) {
    return Status::FailedPrecondition(
        "fewer than 2 buckets after merging; samples too concentrated");
  }

  ChiSquareResult result;
  result.fitted_mean = mean;
  result.alpha = options.alpha;
  result.num_intervals = static_cast<int>(merged.size());
  result.dof = result.num_intervals - 1;  // paper's convention (Appendix B)
  double k = 0.0;
  for (const auto& b : merged) {
    double diff = static_cast<double>(b.observed) - b.expected;
    k += diff * diff / b.expected;
    result.buckets.push_back({b.lo, b.hi, b.observed, b.expected});
  }
  result.statistic = k;
  result.critical_value = ChiSquareCriticalValue(result.dof, options.alpha);
  result.reject = k > result.critical_value;
  return result;
}

}  // namespace mrvd
