// Chi-square goodness-of-fit test for the Poisson-arrival hypothesis
// (Appendix B, Tables 7/8, Figures 11/12).
//
// Following the paper: per-minute count samples X_1..X_n are bucketed into r
// intervals; the statistic k = sum (nu_i - n p_i)^2 / (n p_i) is compared to
// the chi-square critical value with r-1 degrees of freedom at alpha = 0.05.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// One bucket of the goodness-of-fit comparison (drives Figs. 11/12).
struct ChiSquareBucket {
  int64_t lo = 0;           ///< inclusive lower count bound
  int64_t hi = 0;           ///< exclusive upper count bound (INT64_MAX = open)
  int64_t observed = 0;     ///< nu_i
  double expected = 0.0;    ///< n * p_i under the fitted Poisson
};

/// Full result of the test.
struct ChiSquareResult {
  double fitted_mean = 0.0;     ///< Poisson MLE from the samples
  int num_intervals = 0;        ///< r
  double statistic = 0.0;       ///< k
  int dof = 0;                  ///< r - 1 (paper's convention)
  double critical_value = 0.0;  ///< chi^2_{r-1}(alpha)
  double alpha = 0.05;
  bool reject = false;          ///< k > critical_value
  std::vector<ChiSquareBucket> buckets;

  /// Table-7-style one-line summary.
  std::string ToString() const;
};

/// Options for bucketing.
struct ChiSquareOptions {
  double alpha = 0.05;
  /// Buckets are merged greedily so each expected count >= this (classical
  /// validity rule for the chi-square approximation).
  double min_expected = 5.0;
  /// Optional fixed bucket width in counts (0 = automatic, ~sqrt spread).
  int64_t bucket_width = 0;
};

/// Tests H: samples ~ Poisson(mean MLE). Requires >= 20 samples.
StatusOr<ChiSquareResult> ChiSquarePoissonTest(
    const std::vector<int64_t>& samples, const ChiSquareOptions& options = {});

}  // namespace mrvd
