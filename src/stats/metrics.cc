#include "stats/metrics.h"

#include <cassert>
#include <cmath>

namespace mrvd {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void ErrorStats::Add(double estimate, double actual) {
  ++n_;
  double e = estimate - actual;
  abs_sum_ += std::fabs(e);
  sq_sum_ += e * e;
  actual_sum_ += actual;
}

double ErrorStats::Mae() const {
  return n_ == 0 ? 0.0 : abs_sum_ / static_cast<double>(n_);
}

double ErrorStats::RealRmse() const {
  return n_ == 0 ? 0.0 : std::sqrt(sq_sum_ / static_cast<double>(n_));
}

double ErrorStats::MeanActual() const {
  return n_ == 0 ? 0.0 : actual_sum_ / static_cast<double>(n_);
}

double ErrorStats::RelativeRmsePct() const {
  double mean_act = MeanActual();
  if (mean_act == 0.0) return 0.0;
  return RealRmse() / mean_act * 100.0;
}

double MeanCiHalfWidth(const RunningStats& stats, double z) {
  if (stats.count() < 2) return 0.0;
  return z * std::sqrt(stats.sample_variance() /
                       static_cast<double>(stats.count()));
}

double Rmse(const std::vector<double>& estimate,
            const std::vector<double>& actual) {
  assert(estimate.size() == actual.size());
  if (estimate.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    double e = estimate[i] - actual[i];
    s += e * e;
  }
  return std::sqrt(s / static_cast<double>(estimate.size()));
}

}  // namespace mrvd
