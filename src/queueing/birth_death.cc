#include "queueing/birth_death.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mrvd {

double RenegingFunction::operator()(int64_t n) const {
  assert(n >= 1);
  // e^{beta*n} / mu, as suggested in [25]. Guard the exponent so pathological
  // beta*n cannot overflow to inf (the chain has negligible mass there
  // anyway).
  double ex = std::min(beta_ * static_cast<double>(n), 700.0);
  return std::exp(ex) / mu_;
}

StatusOr<BirthDeathChain> BirthDeathChain::Solve(const QueueParams& params) {
  if (!(params.lambda > 0.0) || !std::isfinite(params.lambda)) {
    return Status::InvalidArgument("lambda must be positive and finite");
  }
  if (!(params.mu > 0.0) || !std::isfinite(params.mu)) {
    return Status::InvalidArgument("mu must be positive and finite");
  }
  if (params.max_drivers < 0) {
    return Status::InvalidArgument("max_drivers (K) must be >= 0");
  }
  if (params.beta < 0.0) {
    return Status::InvalidArgument("beta must be >= 0");
  }
  BirthDeathChain chain;
  chain.params_ = params;
  chain.SolveInternal();
  return chain;
}

void BirthDeathChain::SolveInternal() {
  const double lambda = params_.lambda;
  const double mu = params_.mu;
  const int64_t K = params_.max_drivers;
  const RenegingFunction pi(params_.beta, mu);

  // Positive tail: products Π_{i=1}^{n} λ/(μ+π(i))  (Eq. 6). π grows
  // exponentially (β > 0) or is constant 1/μ (β = 0); in the latter case the
  // ratio λ/(μ + 1/μ) < 1 is not guaranteed, so cap the tail at a hard
  // iteration limit with a diminishing-term stop.
  pos_products_.clear();
  pos_sum_ = 0.0;
  {
    double term = 1.0;
    for (int64_t n = 1; n <= 200000; ++n) {
      term *= lambda / (mu + pi(n));
      if (!(term > 0.0) || !std::isfinite(term)) break;
      pos_products_.push_back(term);
      pos_sum_ += term;
      if (term < pos_sum_ * 1e-14 && n > 4) break;
    }
  }

  const double theta = mu / lambda;

  if (theta < 1.0) {
    // λ > μ (§4.2.1): unbounded negative tail, geometric with ratio θ < 1.
    neg_sum_ = theta / (1.0 - theta);  // Σ_{i>=1} θ^i  (Eq. 7 rearranged)
    p0_ = 1.0 / (1.0 + neg_sum_ + pos_sum_);
    // Eq. 10: ET = λ p0 / (λ - μ)^2.
    expected_idle_ = lambda * p0_ / ((lambda - mu) * (lambda - mu));
    return;
  }

  // λ <= μ (§4.2.2 / §4.2.3): negative states bounded by K. Work with sums
  // scaled by θ^{-K} so θ^K never overflows:
  //   B  = θ^{-K} (1 + pos_sum) + Σ_{j=1}^{K} θ^{j-K}
  //   A  = Σ_{j=0}^{K} (j+1) θ^{j-K}
  //   p0 = θ^{-K} / B,   ET = A / (λ B).
  // For θ = 1 this reduces exactly to Eqs. 15/16; for θ > 1 it equals
  // Eqs. 12/13 evaluated stably.
  const double log_theta = std::log(theta);
  auto scaled_pow = [&](int64_t j) {
    // θ^{j-K}; exponent <= 0, so this is always in (0, 1].
    return std::exp(static_cast<double>(j - K) * log_theta);
  };
  double b_sum = scaled_pow(0) * (1.0 + pos_sum_);
  double a_sum = scaled_pow(0);  // (0+1) θ^{0-K}
  for (int64_t j = 1; j <= K; ++j) {
    double pw = scaled_pow(j);
    b_sum += pw;
    a_sum += static_cast<double>(j + 1) * pw;
  }
  neg_sum_ = 0.0;  // not used in this regime (kept for λ>μ diagnostics)
  scaled_norm_b_ = b_sum;
  p0_ = scaled_pow(0) / b_sum;
  expected_idle_ = a_sum / (lambda * b_sum);
}

double BirthDeathChain::StateProbability(int64_t n) const {
  const double theta = params_.mu / params_.lambda;
  if (n == 0) return p0_;
  if (n > 0) {
    auto idx = static_cast<size_t>(n - 1);
    if (idx >= pos_products_.size()) return 0.0;
    return p0_ * pos_products_[idx];
  }
  int64_t j = -n;
  if (theta < 1.0) {
    return p0_ * std::pow(theta, static_cast<double>(j));
  }
  if (j > params_.max_drivers) return 0.0;
  // Overflow-safe: p_{-j} = p0 θ^j = θ^{j-K} / B (p0 itself may underflow
  // while states near -K still carry almost all the mass).
  const double log_theta = std::log(theta);
  double scaled = std::exp(static_cast<double>(j - params_.max_drivers) *
                           log_theta);
  return scaled / scaled_norm_b_;
}

double BirthDeathChain::ProbabilityRidersWaiting() const {
  return p0_ * pos_sum_;
}

double BirthDeathChain::ProbabilityDriversWaiting() const {
  return std::max(0.0, 1.0 - p0_ * (1.0 + pos_sum_));
}

double EstimateIdleTimeSeconds(double lambda, double mu, int64_t max_drivers,
                               double beta, double max_idle_seconds,
                               double rate_floor) {
  lambda = std::max(lambda, rate_floor);
  mu = std::max(mu, rate_floor);
  max_drivers = std::max<int64_t>(max_drivers, 0);
  auto chain = BirthDeathChain::Solve(
      {lambda, mu, std::max(beta, 0.0), max_drivers});
  if (!chain.ok()) return max_idle_seconds;
  return std::min(chain->ExpectedIdleSeconds(), max_idle_seconds);
}

}  // namespace mrvd
