#include "queueing/queue_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace mrvd {

double QueueSimResult::EmpiricalStateProb(int64_t state) const {
  int64_t idx = state + state_offset;
  if (idx < 0 || idx >= static_cast<int64_t>(state_time_share.size()))
    return 0.0;
  return state_time_share[static_cast<size_t>(idx)];
}

QueueSimResult SimulateDoubleSidedQueue(const QueueParams& params,
                                        double horizon_seconds, Rng& rng,
                                        double warmup_seconds) {
  assert(params.lambda > 0.0 && params.mu > 0.0);
  const RenegingFunction pi(params.beta, params.mu);
  const int64_t K = params.max_drivers;

  QueueSimResult result;
  result.state_offset = K;
  result.state_time_share.assign(static_cast<size_t>(K) + 64, 0.0);

  auto slot = [&](int64_t state) -> double& {
    int64_t idx = state + K;
    if (idx >= static_cast<int64_t>(result.state_time_share.size())) {
      result.state_time_share.resize(static_cast<size_t>(idx) + 32, 0.0);
    }
    return result.state_time_share[static_cast<size_t>(idx)];
  };

  int64_t n = 0;  // current state
  double now = 0.0;
  std::deque<double> idle_driver_arrivals;  // FIFO of queued-driver times
  double idle_sum = 0.0;

  while (now < horizon_seconds) {
    double renege_rate = n > 0 ? pi(n) : 0.0;
    double total_rate = params.lambda + params.mu + renege_rate;
    double dt = rng.Exponential(total_rate);
    double t_next = now + dt;

    // Attribute the dwell time (post-warmup part only) to the current state.
    double lo = std::max(now, warmup_seconds);
    double hi = std::min(t_next, horizon_seconds);
    if (hi > lo) slot(n) += hi - lo;

    now = t_next;
    if (now >= horizon_seconds) break;
    const bool counting = now >= warmup_seconds;

    double u = rng.NextDouble() * total_rate;
    if (u < params.lambda) {
      // Rider arrival.
      if (counting) ++result.riders_arrived;
      if (n < 0) {
        // Matched with the longest-waiting driver immediately.
        assert(!idle_driver_arrivals.empty());
        double arrived = idle_driver_arrivals.front();
        idle_driver_arrivals.pop_front();
        if (counting) {
          idle_sum += now - arrived;
          ++result.drivers_matched;
          ++result.riders_served;
        }
      }
      ++n;
    } else if (u < params.lambda + params.mu) {
      // Driver arrival.
      if (n > 0) {
        // Serves the head rider with zero idle time.
        if (counting) {
          ++result.drivers_matched;
          ++result.riders_served;
        }
        --n;
      } else if (n > -K) {
        idle_driver_arrivals.push_back(now);
        --n;
      }
      // else: at the -K bound the extra driver balks (state unchanged).
    } else {
      // Renege (only possible when n > 0).
      if (counting) ++result.riders_reneged;
      --n;
    }
  }

  double measured = horizon_seconds - warmup_seconds;
  result.total_time = measured;
  if (measured > 0) {
    for (auto& s : result.state_time_share) s /= measured;
  }
  result.mean_driver_idle =
      result.drivers_matched > 0
          ? idle_sum / static_cast<double>(result.drivers_matched)
          : 0.0;
  return result;
}

}  // namespace mrvd
