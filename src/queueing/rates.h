// Arrival-rate estimation for the current scheduling window (Eqs. 18/19).
//
// λ(k) and μ(k) fold the *backlog* of the batch into the rates: if waiting
// riders outnumber available drivers, the surplus riders are treated as
// extra arrivals (they will still be in the queue), and symmetrically for
// surplus drivers.
#pragma once

#include <cstdint>

namespace mrvd {

/// Inputs for one region a_k at batch time t̄.
struct RegionSnapshot {
  int64_t waiting_riders = 0;     ///< |R_k|  (unserved, in-deadline)
  int64_t available_drivers = 0;  ///< |D_k|
  double predicted_riders = 0.0;  ///< |R̂_k| over [t̄, t̄+t_c]
  double predicted_drivers = 0.0; ///< |D̂_k| over [t̄, t̄+t_c] (rejoining)
};

/// Estimated Poisson rates for the window (per second).
struct RegionRates {
  double lambda = 0.0;  ///< rider arrival rate λ(k)
  double mu = 0.0;      ///< rejoined-driver arrival rate μ(k)
};

/// Eq. 18 / Eq. 19. `window_seconds` is t_c. Rates are >= 0; callers clamp
/// to a positive floor before solving the chain (EstimateIdleTimeSeconds
/// does this internally).
inline RegionRates EstimateRegionRates(const RegionSnapshot& snap,
                                       double window_seconds) {
  RegionRates rates;
  const double tc = window_seconds;
  const auto riders = static_cast<double>(snap.waiting_riders);
  const auto drivers = static_cast<double>(snap.available_drivers);
  if (snap.waiting_riders <= snap.available_drivers) {
    rates.lambda = snap.predicted_riders / tc;
    rates.mu = (snap.predicted_drivers + drivers - riders) / tc;
  } else {
    rates.lambda = (snap.predicted_riders + riders - drivers) / tc;
    rates.mu = snap.predicted_drivers / tc;
  }
  if (rates.lambda < 0.0) rates.lambda = 0.0;
  if (rates.mu < 0.0) rates.mu = 0.0;
  return rates;
}

}  // namespace mrvd
