// Discrete-event (CTMC) simulator of the double-sided region queue. Used by
// property tests and the ablation bench to validate the closed forms of
// birth_death.h against an independent implementation of the same dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/birth_death.h"
#include "util/rng.h"

namespace mrvd {

/// Aggregate outcome of a long CTMC run.
struct QueueSimResult {
  double total_time = 0.0;
  /// Empirical steady-state probability of each state, indexed by
  /// state + max_drivers (so index 0 is state -K).
  std::vector<double> state_time_share;
  int64_t state_offset = 0;  ///< index of state 0 in state_time_share

  /// Mean observed idle time of drivers (arrival -> matched with a rider).
  double mean_driver_idle = 0.0;
  int64_t drivers_matched = 0;

  int64_t riders_arrived = 0;
  int64_t riders_served = 0;
  int64_t riders_reneged = 0;

  double EmpiricalStateProb(int64_t state) const;
};

/// Simulates the birth-death chain with rider arrivals ~ Poisson(λ), driver
/// arrivals ~ Poisson(μ), state-dependent reneging π(n) = e^{βn}/μ, and the
/// negative side truncated at -K (extra drivers balk, matching the model's
/// assumption that at most K drivers congest in a window).
///
/// Driver idle times are measured exactly as §4.2 defines them: a driver
/// arriving when riders wait (n > 0) departs immediately (idle 0); otherwise
/// he queues FIFO and his idle time is the wait until |n|+1 rider arrivals.
QueueSimResult SimulateDoubleSidedQueue(const QueueParams& params,
                                        double horizon_seconds, Rng& rng,
                                        double warmup_seconds = 0.0);

}  // namespace mrvd
