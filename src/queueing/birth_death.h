// Double-sided queueing model of a single region (§4).
//
// State n > 0: n riders waiting for drivers. State n < 0: |n| drivers
// congested waiting for riders. Birth (rider-arrival) rate is λ for every
// state; death (service) rate is μ for n <= 0 and μ + π(n) for n > 0, where
// π(n) = e^{βn}/μ models impatient-rider reneging (Eq. 4, following
// Shortle et al.). Negative states are bounded by K, the number of drivers
// that can congest during the scheduling window (§4.2.2).
//
// The closed forms implemented here are Eqs. 6-16 of the paper; the
// discrete-event simulator in queue_sim.h validates them empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace mrvd {

/// Reneging-rate function π(n) = e^{βn} / μ (suggested practice in [25]).
/// β is calibrated from historical reneging records of the region; β = 0
/// gives the constant rate 1/μ, larger β makes long queues shed riders
/// aggressively.
class RenegingFunction {
 public:
  RenegingFunction(double beta, double mu) : beta_(beta), mu_(mu) {}

  /// π(n) for state n >= 1.
  double operator()(int64_t n) const;

  double beta() const { return beta_; }

 private:
  double beta_;
  double mu_;
};

/// Parameters of one region's queue during the current scheduling window.
struct QueueParams {
  double lambda = 0.0;  ///< rider arrival rate (1/s)
  double mu = 0.0;      ///< rejoined-driver arrival rate (1/s)
  double beta = 0.0;    ///< reneging exponent (0 disables growth)
  int64_t max_drivers = 1;  ///< K: cap on congested drivers (§4.2.2)
};

/// Solved steady-state model: p0, the state distribution, and the expected
/// idle time ET(λ, μ) of a driver that rejoins this region's queue.
class BirthDeathChain {
 public:
  /// Validates and solves the chain. λ and μ must be positive and finite; K
  /// must be >= 0. (Degenerate rates are the caller's job to clamp; see
  /// EstimateIdleTimeSeconds for a forgiving wrapper.)
  static StatusOr<BirthDeathChain> Solve(const QueueParams& params);

  const QueueParams& params() const { return params_; }

  /// P[state = 0].
  double p0() const { return p0_; }

  /// P[state = n]. n may be negative (congested drivers); states below -K
  /// have probability 0. Positive states use the cached product chain.
  double StateProbability(int64_t n) const;

  /// Expected idle time (seconds) of an arriving driver: Eq. 10 for λ > μ,
  /// Eq. 13 for λ < μ, Eq. 16 for λ = μ (the regime is chosen by exact
  /// comparison after a relative-epsilon equality check).
  double ExpectedIdleSeconds() const { return expected_idle_; }

  /// Sum over all positive-state probabilities (share of time the region has
  /// waiting riders); diagnostic for tests.
  double ProbabilityRidersWaiting() const;

  /// Sum over negative states (share of time drivers congest).
  double ProbabilityDriversWaiting() const;

  /// Index of the last positive state with non-negligible probability.
  int64_t positive_tail_length() const {
    return static_cast<int64_t>(pos_products_.size());
  }

 private:
  BirthDeathChain() = default;
  void SolveInternal();

  QueueParams params_;
  double p0_ = 0.0;
  double expected_idle_ = 0.0;
  /// pos_products_[i] = Π_{j=1}^{i+1} λ/(μ+π(j)), i.e. p_{i+1}/p0 (Eq. 6).
  std::vector<double> pos_products_;
  double pos_sum_ = 0.0;  ///< Σ_n>=1 p_n / p0
  double neg_sum_ = 0.0;  ///< Σ_n<0  p_n / p0 (λ>μ regime only)
  /// θ>=1 regime: normalizer B with p_{-j} = θ^{j-K}/B (overflow-safe form).
  double scaled_norm_b_ = 0.0;
};

/// Forgiving one-shot helper used by the dispatchers: clamps λ and μ to a
/// small positive floor (an empty region still has *some* chance of an
/// arrival) and caps the returned idle time at `max_idle_seconds` (a driver
/// will not wait forever; the platform would reposition him, and unbounded
/// ET would drown every travel cost in Eq. 17).
double EstimateIdleTimeSeconds(double lambda, double mu, int64_t max_drivers,
                               double beta,
                               double max_idle_seconds = 3600.0,
                               double rate_floor = 1e-6);

}  // namespace mrvd
