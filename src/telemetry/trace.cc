#include "telemetry/trace.h"

#include <utility>

#include "telemetry/session.h"
#include "util/stopwatch.h"

namespace mrvd {
namespace telemetry {

ThreadTraceBuffer::ThreadTraceBuffer(TelemetrySession* session, int tid,
                                     size_t chunk_events)
    : session_(session), tid_(tid), chunk_events_(chunk_events) {
  events_.reserve(chunk_events_);
}

void ThreadTraceBuffer::Flush() {
  if (events_.empty()) return;
  TraceChunk chunk;
  chunk.tid = tid_;
  chunk.events = std::move(events_);
  events_ = {};
  events_.reserve(chunk_events_);
  session_->EnqueueChunk(std::move(chunk));
}

TraceSpan::TraceSpan(TelemetrySession* session, const char* name,
                     const char* category) {
  if (session == nullptr || !session->tracing()) return;
  buffer_ = session->BufferForCurrentThread();
  if (buffer_ == nullptr) return;
  name_ = name;
  category_ = category;
  start_ns_ = Stopwatch::NowNanos();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.dur_ns = Stopwatch::NowNanos() - start_ns_;
  buffer_->Record(event);
}

}  // namespace telemetry
}  // namespace mrvd
