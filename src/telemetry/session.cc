#include "telemetry/session.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {
namespace telemetry {

namespace {

/// Process-unique session ids key the thread-local buffer cache below, so
/// a new session at a recycled address can never alias a stale cache entry.
std::atomic<uint64_t> g_next_session_id{1};

thread_local uint64_t t_cached_session_id = 0;
thread_local ThreadTraceBuffer* t_cached_buffer = nullptr;

}  // namespace

TelemetrySession::TelemetrySession(const TelemetryConfig& config)
    : id_(g_next_session_id.fetch_add(1)), config_(config) {
  if (config_.tracing && config_.async_drain) {
    drainer_ = std::thread([this] { DrainLoop(); });
  }
}

TelemetrySession::~TelemetrySession() { Finish(); }

ThreadTraceBuffer* TelemetrySession::BufferForCurrentThread() {
  if (finished_) return nullptr;
  if (t_cached_session_id == id_) return t_cached_buffer;
  MutexLock lock(mu_);
  const int tid = static_cast<int>(buffers_.size()) + 1;
  auto buffer =
      std::make_unique<ThreadTraceBuffer>(this, tid, config_.chunk_events);
  const int worker = ThreadPool::CurrentWorkerIndex();
  thread_names_.emplace_back(
      tid, worker >= 0 ? "worker-" + std::to_string(worker) : "main");
  t_cached_buffer = buffer.get();
  t_cached_session_id = id_;
  buffers_.push_back(std::move(buffer));
  return t_cached_buffer;
}

void TelemetrySession::EnqueueChunk(TraceChunk chunk) {
  if (chunk.events.empty()) return;
  bool notify = false;
  {
    MutexLock lock(mu_);
    if (config_.async_drain && !stop_) {
      queue_.push_back(std::move(chunk));
      notify = true;
    } else {
      // Synchronous deterministic mode (and the post-drainer tail): the
      // hand-off itself is the drain.
      drained_events_ += static_cast<int64_t>(chunk.events.size());
      drained_.push_back(std::move(chunk));
    }
  }
  if (notify) cv_.notify_one();
}

void TelemetrySession::DrainLoop() {
  MutexLock lock(mu_);
  for (;;) {
    // Manual wait loop instead of the predicate overload: the analysis
    // cannot follow guarded reads into a predicate lambda (see mutex.h).
    while (queue_.empty() && !stop_) cv_.wait(lock);
    if (queue_.empty() && stop_) return;
    for (TraceChunk& chunk : queue_) {
      drained_events_ += static_cast<int64_t>(chunk.events.size());
      drained_.push_back(std::move(chunk));
    }
    queue_.clear();
  }
}

void TelemetrySession::Finish() {
  if (finished_) return;
  // Flush every thread's partial chunk. The caller guarantees no
  // instrumented work is in flight (the engine joins its pool's work
  // before Run returns), so touching other threads' buffers is safe.
  // Flush -> EnqueueChunk takes mu_, so collect the pointers first.
  std::vector<ThreadTraceBuffer*> to_flush;
  {
    MutexLock lock(mu_);
    to_flush.reserve(buffers_.size());
    for (const auto& buffer : buffers_) to_flush.push_back(buffer.get());
  }
  for (ThreadTraceBuffer* buffer : to_flush) buffer->Flush();
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  // The buffers stay alive (thread-local caches may still point at them);
  // finished_ gates tracing() so no further span can record into them.
  finished_ = true;
}

int64_t TelemetrySession::drained_events() const {
  MutexLock lock(mu_);
  return drained_events_;
}

Status TelemetrySession::WriteChromeTrace(const std::string& path) const {
  if (!finished_) {
    return Status::FailedPrecondition(
        "WriteChromeTrace requires a finished session (call Finish())");
  }
  std::vector<std::pair<int, std::string>> names;
  std::vector<std::pair<int, TraceEvent>> events;  ///< (tid, event)
  {
    MutexLock lock(mu_);
    names = thread_names_;
    size_t total = 0;
    for (const TraceChunk& chunk : drained_) total += chunk.events.size();
    events.reserve(total);
    for (const TraceChunk& chunk : drained_) {
      for (const TraceEvent& e : chunk.events) events.emplace_back(chunk.tid, e);
    }
  }
  // Parents before children on every trace thread: ascending start, and at
  // equal starts the longer (enclosing) span first.
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     if (a.second.start_ns != b.second.start_ns) {
                       return a.second.start_ns < b.second.start_ns;
                     }
                     return a.second.dur_ns > b.second.dur_ns;
                   });
  // A common timebase origin keeps Perfetto's timeline near zero.
  int64_t origin_ns = events.empty() ? 0 : events.front().second.start_ns;
  for (const auto& [tid, e] : events) origin_ns = std::min(origin_ns, e.start_ns);

  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const auto& [tid, name] : names) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Number(1);
    w.Key("tid").Number(tid);
    w.Key("args").BeginObject();
    w.Key("name").String(name);
    w.EndObject();
    w.EndObject();
  }
  for (const auto& [tid, e] : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String(e.category);
    w.Key("ph").String("X");
    w.Key("ts").Number(static_cast<double>(e.start_ns - origin_ns) / 1e3);
    w.Key("dur").Number(static_cast<double>(e.dur_ns) / 1e3);
    w.Key("pid").Number(1);
    w.Key("tid").Number(tid);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return IoErrorFromErrno("could not open '" + path + "' for writing");
  }
  file << os.str();
  file.flush();
  if (!file) return IoErrorFromErrno("could not write '" + path + "'");
  return Status::OK();
}

}  // namespace telemetry
}  // namespace mrvd
