// Trace spans: scoped RAII wall-time measurements recorded into per-thread
// append-only buffers, exported by the TelemetrySession as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Hot-path cost model:
//   * telemetry off (null session / tracing disabled): a TraceSpan is two
//     pointer checks — no clock read, no allocation, no lock;
//   * telemetry on: two monotonic clock reads (Stopwatch::NowNanos) and one
//     push_back into a buffer owned exclusively by the recording thread.
//     Locks are touched only when a chunk fills (every chunk_events spans)
//     to hand the full chunk to the session's drain queue.
//
// Span names/categories must be string literals (static storage): events
// store the pointers, never copies, so recording a span moves 32 bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrvd {
namespace telemetry {

class TelemetrySession;

/// One completed span, recorded at destruction time.
struct TraceEvent {
  const char* name = nullptr;      ///< static-storage string literal
  const char* category = nullptr;  ///< static-storage string literal
  int64_t start_ns = 0;            ///< Stopwatch::NowNanos at construction
  int64_t dur_ns = 0;
};

/// A batch of events handed from a recording thread to the drain side.
struct TraceChunk {
  int tid = 0;  ///< session-assigned trace thread id (>= 1)
  std::vector<TraceEvent> events;
};

/// Append-only event buffer owned by exactly one recording thread. The
/// owning thread is the only writer; when the current chunk reaches
/// chunk_events the buffer hands it to the session (one short lock) and
/// starts a fresh one. The session flushes the final partial chunk at
/// Finish(), when no instrumented work is in flight.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(TelemetrySession* session, int tid, size_t chunk_events);

  ThreadTraceBuffer(const ThreadTraceBuffer&) = delete;
  ThreadTraceBuffer& operator=(const ThreadTraceBuffer&) = delete;

  int tid() const { return tid_; }

  void Record(const TraceEvent& event) {
    events_.push_back(event);
    if (events_.size() >= chunk_events_) Flush();
  }

  /// Hands the current chunk to the session's drain queue. Called by the
  /// owning thread on overflow and by the session at Finish().
  void Flush();

 private:
  TelemetrySession* session_;
  int tid_;
  size_t chunk_events_;
  std::vector<TraceEvent> events_;
};

/// RAII span: stamps the start on construction, records the completed
/// event into the calling thread's buffer on destruction. Null/disabled
/// sessions make both ends no-ops.
class TraceSpan {
 public:
  TraceSpan(TelemetrySession* session, const char* name,
            const char* category = "mrvd");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  ThreadTraceBuffer* buffer_ = nullptr;  ///< null = disabled span
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace telemetry
}  // namespace mrvd
