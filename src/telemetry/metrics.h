// Deterministic metrics vocabulary of the telemetry layer: named Counters,
// Gauges and log-bucketed histograms collected in a MetricsRegistry.
//
// The determinism contract mirrors the engine's bit-identity guarantee and
// is expressed per metric through MetricScope:
//
//   * kDeterministic — the metric's *value* (counters) or *sample count*
//     (histograms) is a pure function of the simulated inputs: identical
//     across thread counts, shard maps and execution schedules. These are
//     what tests/telemetry_test.cc compares across threads {1, 4} via
//     MetricsRegistry::DeterministicSignature().
//   * kExecution — diagnostics about HOW the run executed (wall times,
//     per-shard loads, parallel-phase splits). Legitimately varies with
//     thread count and hardware; excluded from the signature and from any
//     content-addressed key.
//
// Histogram *values* are wall-clock measurements and therefore always
// execution metadata — only the counts participate in the contract.
//
// Thread model: the registry and its metrics are written by one thread at a
// time (the engine's batch loop). Cross-thread telemetry (per-shard wall
// times) reaches the registry through DispatchCounters on the coordinating
// thread, never from pool workers, so no metric needs atomics or locks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace mrvd {

class JsonWriter;

namespace telemetry {

enum class MetricScope {
  kDeterministic,  ///< value/count invariant across execution schedules
  kExecution,      ///< timing/load diagnostics; varies run to run
};

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-write-wins scalar (queue depths, ratios, config echoes).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram over positive samples: every octave (power of
/// two) is split into kSubBuckets geometric sub-buckets, so the relative
/// width of any bucket is 2^(1/kSubBuckets) - 1 (~2.2%), uniformly across
/// the full double range — nanosecond spans and multi-second batches get
/// the same relative resolution without configuring bounds up front.
///
/// Quantile() interpolates geometrically inside the selected bucket and
/// clamps to the observed [min, max], which makes the degenerate cases
/// exact: an empty histogram reports 0, a single sample reports itself at
/// every quantile, and no quantile can leave the observed range.
///
/// Non-positive samples (a zero-duration span) land in a dedicated zero
/// bucket that sorts below every log bucket.
class LogHistogram {
 public:
  static constexpr int kSubBuckets = 32;

  void Add(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// The q-quantile (q in [0, 1]) of the recorded samples, exact to bucket
  /// resolution and clamped to [min(), max()]. 0 when empty.
  double Quantile(double q) const;

  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// Samples that were <= 0 (kept out of the log buckets).
  int64_t zero_count() const { return zero_count_; }

  /// Log-bucket occupancy, ordered by bucket index (ascending value).
  const std::map<int, int64_t>& buckets() const { return buckets_; }

  /// Inclusive-lower / exclusive-upper value bounds of log bucket `index`.
  static double BucketLo(int index);
  static double BucketHi(int index) { return BucketLo(index + 1); }

 private:
  static int BucketIndex(double value);

  std::map<int, int64_t> buckets_;  ///< log-bucket index -> sample count
  int64_t zero_count_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, created on first use and iterated in name order — the
/// registry's JSON export and DeterministicSignature are byte-stable for a
/// given set of recorded events. Lookups return stable pointers (hot paths
/// resolve a metric once and keep the pointer).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name,
                   MetricScope scope = MetricScope::kDeterministic);
  Gauge* gauge(const std::string& name,
               MetricScope scope = MetricScope::kExecution);
  LogHistogram* histogram(const std::string& name,
                          MetricScope scope = MetricScope::kExecution);

  /// The deterministic projection, one line per metric in name order:
  /// kDeterministic counter values and kDeterministic histogram counts.
  /// Two runs of the same inputs must produce identical signatures at any
  /// thread count (tests/telemetry_test.cc enforces threads {1, 4}).
  std::string DeterministicSignature() const;

  /// Full registry as a JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count,min,max,mean,p50,p95,p99,scope}}}.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson() const;

  /// Lookup without creation (tests, exporters); null when absent.
  const Counter* FindCounter(const std::string& name) const;
  const LogHistogram* FindHistogram(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    MetricScope scope = MetricScope::kExecution;
  };

  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<LogHistogram>> histograms_;
};

}  // namespace telemetry
}  // namespace mrvd
