// TelemetrySession: the unit of telemetry collection — one MetricsRegistry
// plus the trace-span machinery (per-thread buffers, drain, Chrome-trace
// export) for one logical run (a Simulator::Run, a campaign cell, a bench
// rep). Attach it via SimConfig::telemetry / SimulationBuilder::
// WithTelemetry; a null session everywhere means telemetry is off and every
// instrumentation site degrades to a pointer check.
//
// Drain model (the ingest/worker decoupling shape): recording threads only
// ever append to a thread-local ThreadTraceBuffer; full chunks are handed
// to the session under a short lock. With async_drain a dedicated drainer
// thread (the session's only thread) moves queued chunks into the drained
// store while the run is still executing — the hot path never pays for
// accumulation beyond the hand-off. With async_drain off the hand-off
// itself stores the chunk (synchronous deterministic mode: no extra thread,
// replay-friendly, used by campaign cells and tests).
//
// Lifecycle: record -> Finish() -> read. Finish() must be called when no
// instrumented work is in flight (after Simulator::Run returns this always
// holds: the engine joins its pool's work before returning); it flushes
// every thread's partial chunk, stops and joins the drainer, and freezes
// the session. WriteChromeTrace/drained_events require a finished session.
// Metric counts are deterministic; trace timing values are execution
// metadata (see telemetry/metrics.h for the contract).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mrvd {
namespace telemetry {

struct TelemetryConfig {
  /// Record trace spans (metrics are always collected). Off: TraceSpan is
  /// a no-op and the session never starts a drainer.
  bool tracing = true;

  /// Drain full chunks on a background thread (off the hot path). False =
  /// synchronous deterministic mode: chunks are stored at hand-off time on
  /// the recording thread, no extra thread exists.
  bool async_drain = true;

  /// Spans per chunk before a buffer hands off to the drain queue.
  size_t chunk_events = 4096;
};

class TelemetrySession {
 public:
  explicit TelemetrySession(const TelemetryConfig& config = {});
  ~TelemetrySession();  ///< calls Finish() if the caller has not

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  const TelemetryConfig& config() const { return config_; }
  bool tracing() const { return config_.tracing && !finished_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The calling thread's trace buffer, created and registered on first
  /// use (tids are assigned in registration order, starting at 1) and
  /// cached thread-locally per session. Null once the session finished.
  ThreadTraceBuffer* BufferForCurrentThread();

  /// Hands a full chunk to the drain side (called by ThreadTraceBuffer).
  void EnqueueChunk(TraceChunk chunk);

  /// Flushes all partial buffers, stops and joins the drainer, freezes the
  /// session. Idempotent. Must not race instrumented work (see file
  /// comment).
  void Finish();

  bool finished() const { return finished_; }

  /// Total spans drained over the session's lifetime (finished sessions).
  int64_t drained_events() const;

  /// Writes the drained spans as Chrome trace-event JSON ({"traceEvents":
  /// [...]}, ph:"X" complete events plus thread_name metadata), sorted by
  /// (tid, start, -duration) so nested spans follow their parents.
  /// Requires Finish(); loadable in Perfetto / chrome://tracing.
  Status WriteChromeTrace(const std::string& path) const;

  /// The metrics registry as a standalone JSON document.
  std::string MetricsJson() const { return metrics_.ToJson(); }

 private:
  void DrainLoop();

  const uint64_t id_;  ///< process-unique; keys the thread-local cache
  const TelemetryConfig config_;
  MetricsRegistry metrics_;

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers_
      MRVD_GUARDED_BY(mu_);
  std::vector<std::pair<int, std::string>> thread_names_ MRVD_GUARDED_BY(mu_);
  std::vector<TraceChunk> queue_ MRVD_GUARDED_BY(mu_);     ///< awaiting drain
  std::vector<TraceChunk> drained_ MRVD_GUARDED_BY(mu_);   ///< final store
  int64_t drained_events_ MRVD_GUARDED_BY(mu_) = 0;
  bool stop_ MRVD_GUARDED_BY(mu_) = false;

  std::thread drainer_;  ///< joinable only in async_drain mode
  bool finished_ = false;
};

}  // namespace telemetry
}  // namespace mrvd
