#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_writer.h"

namespace mrvd {
namespace telemetry {

// ----------------------------------------------------------- LogHistogram

int LogHistogram::BucketIndex(double value) {
  // value = m * 2^exp with m in [0.5, 1): the octave is (exp - 1) and the
  // sub-bucket is the geometric position of m within it. frexp is exact
  // (pure bit manipulation), so two equal samples always share a bucket.
  int exp = 0;
  const double m = std::frexp(value, &exp);
  int sub = static_cast<int>((std::log2(m) + 1.0) *
                             static_cast<double>(kSubBuckets));
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (exp - 1) * kSubBuckets + sub;
}

double LogHistogram::BucketLo(int index) {
  return std::exp2(static_cast<double>(index) /
                   static_cast<double>(kSubBuckets));
}

void LogHistogram::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value > 0.0 && std::isfinite(value)) {
    ++buckets_[BucketIndex(value)];
  } else {
    ++zero_count_;  // zero/negative/non-finite: below every log bucket
  }
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();

  // 0-indexed target rank within the sorted samples; walk the buckets in
  // ascending value order until the cumulative count covers it.
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = static_cast<double>(zero_count_);
  if (rank < cumulative) return std::clamp(0.0, min(), max());
  for (const auto& [index, bucket_count] : buckets_) {
    const double next = cumulative + static_cast<double>(bucket_count);
    if (rank < next) {
      // Geometric interpolation inside the bucket: rank at the bucket's
      // first sample maps to its lower bound, at the last to its upper.
      const double frac =
          (rank - cumulative) / static_cast<double>(bucket_count);
      const double lo = BucketLo(index);
      const double hi = BucketHi(index);
      return std::clamp(lo * std::pow(hi / lo, frac), min(), max());
    }
    cumulative = next;
  }
  return max();
}

// -------------------------------------------------------- MetricsRegistry

Counter* MetricsRegistry::counter(const std::string& name, MetricScope scope) {
  Entry<Counter>& e = counters_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<Counter>();
    e.scope = scope;
  }
  return e.metric.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, MetricScope scope) {
  Entry<Gauge>& e = gauges_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<Gauge>();
    e.scope = scope;
  }
  return e.metric.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name,
                                         MetricScope scope) {
  Entry<LogHistogram>& e = histograms_[name];
  if (e.metric == nullptr) {
    e.metric = std::make_unique<LogHistogram>();
    e.scope = scope;
  }
  return e.metric.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.metric.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.metric.get();
}

const LogHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.metric.get();
}

std::string MetricsRegistry::DeterministicSignature() const {
  // Name-ordered (std::map iteration) so equal registries always agree
  // byte for byte. Histogram VALUES are wall-clock metadata and never
  // appear — only how many samples each deterministic histogram received.
  std::ostringstream os;
  for (const auto& [name, entry] : counters_) {
    if (entry.scope != MetricScope::kDeterministic) continue;
    os << "counter " << name << "=" << entry.metric->value() << "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    if (entry.scope != MetricScope::kDeterministic) continue;
    os << "histogram " << name << "#" << entry.metric->count() << "\n";
  }
  return os.str();
}

namespace {

const char* ScopeName(MetricScope scope) {
  return scope == MetricScope::kDeterministic ? "deterministic" : "execution";
}

}  // namespace

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, entry] : counters_) {
    w.Key(name).BeginObject();
    w.Key("value").Number(entry.metric->value());
    w.Key("scope").String(ScopeName(entry.scope));
    w.EndObject();
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, entry] : gauges_) {
    w.Key(name).BeginObject();
    w.Key("value").Number(entry.metric->value());
    w.Key("scope").String(ScopeName(entry.scope));
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, entry] : histograms_) {
    const LogHistogram& h = *entry.metric;
    w.Key(name).BeginObject();
    w.Key("count").Number(h.count());
    w.Key("min").Number(h.min());
    w.Key("max").Number(h.max());
    w.Key("mean").Number(h.mean());
    w.Key("p50").Number(h.P50());
    w.Key("p95").Number(h.P95());
    w.Key("p99").Number(h.P99());
    w.Key("scope").String(ScopeName(entry.scope));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJson(w);
  os << "\n";
  return os.str();
}

}  // namespace telemetry
}  // namespace mrvd
