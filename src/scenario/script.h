// ScenarioScript: a builder for time-ordered scenario event streams, and
// EventStream, the cursor Simulator::Run drains as batch time advances.
// Scripts are data, not behaviour — the engine owns all semantics — so the
// same script can replay against any dispatcher or thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "scenario/events.h"

namespace mrvd {

/// Accumulates scenario events in any order; EventStream time-orders them.
/// Builder calls return *this so scripts can be written fluently:
///
///   ScenarioScript script;
///   script.SignOff(9 * 3600.0, 42).Cancel(9.5 * 3600.0, 1007)
///         .Surge({8 * 3600.0, 10 * 3600.0, 1.8, {}});
class ScenarioScript {
 public:
  ScenarioScript& SignOn(double time, DriverId driver_id);
  ScenarioScript& SignOff(double time, DriverId driver_id);
  ScenarioScript& Cancel(double time, OrderId order_id);

  /// Registers a surge window and its begin/end events. Windows with
  /// end <= start or multiplier <= 0 are ignored.
  ScenarioScript& Surge(SurgeWindow window);

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// The raw events, in insertion order (see EventStream for time order).
  const std::vector<ScenarioEvent>& events() const { return events_; }

  /// Registered surge windows; ScenarioEvent::surge_index addresses this.
  const std::vector<SurgeWindow>& surges() const { return surges_; }

 private:
  std::vector<ScenarioEvent> events_;
  std::vector<SurgeWindow> surges_;
};

/// Time-ordered cursor over a script's events (stable: insertion order
/// breaks ties), merged by the engine with the arrival/completion timeline.
class EventStream {
 public:
  EventStream() = default;  ///< empty stream (no script)
  explicit EventStream(const ScenarioScript& script);

  bool Exhausted() const { return next_ >= events_.size(); }

  /// The next event with time <= now, or null if none is due.
  const ScenarioEvent* PeekDue(double now) const {
    if (Exhausted() || events_[next_].time > now) return nullptr;
    return &events_[next_];
  }

  /// Consumes the event PeekDue returned.
  void Pop() { ++next_; }

 private:
  std::vector<ScenarioEvent> events_;  ///< stable-sorted by time
  size_t next_ = 0;
};

}  // namespace mrvd
