#include "scenario/generator.h"

#include <algorithm>

#include "util/rng.h"

namespace mrvd {

SurgeWindow RushHourSurge(double start_seconds, double end_seconds,
                          double multiplier) {
  SurgeWindow w;
  w.start_seconds = start_seconds;
  w.end_seconds = end_seconds;
  w.multiplier = multiplier;
  return w;  // regions left empty: city-wide
}

SurgeWindow RowBandSurge(const Grid& grid, int row_lo, int row_hi,
                         double start_seconds, double end_seconds,
                         double multiplier) {
  SurgeWindow w = RushHourSurge(start_seconds, end_seconds, multiplier);
  row_lo = std::clamp(row_lo, 0, grid.rows() - 1);
  row_hi = std::clamp(row_hi, row_lo, grid.rows() - 1);
  for (int r = row_lo; r <= row_hi; ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      w.regions.push_back(grid.RegionAt(r, c));
    }
  }
  return w;
}

Workload SkewWorkloadRows(const Workload& workload, const Grid& grid,
                          double start_seconds, double end_seconds,
                          double share, int row_lo, int row_hi,
                          uint64_t seed) {
  Workload out = workload;
  row_lo = std::clamp(row_lo, 0, grid.rows() - 1);
  row_hi = std::clamp(row_hi, row_lo, grid.rows() - 1);
  Rng rng(seed);
  auto random_point_in_band = [&] {
    const int row = static_cast<int>(rng.UniformInt(row_lo, row_hi));
    const int col = static_cast<int>(rng.UniformInt(0, grid.cols() - 1));
    const BoundingBox cell = grid.CellBox(grid.RegionAt(row, col));
    return LatLon{rng.Uniform(cell.lat_min, cell.lat_max),
                  rng.Uniform(cell.lon_min, cell.lon_max)};
  };
  for (Order& o : out.orders) {
    if (o.request_time < start_seconds || o.request_time >= end_seconds) {
      continue;
    }
    // Draw the relocation points unconditionally so each order's coin flip
    // is independent of every other order's (same idiom as the cancel
    // hazard above).
    const LatLon pickup = random_point_in_band();
    const LatLon dropoff = random_point_in_band();
    if (!rng.Bernoulli(share)) continue;
    o.pickup = pickup;
    o.dropoff = dropoff;
  }
  return out;
}

ScenarioScript BuildScenarioDay(const Workload& workload,
                                const ScenarioDayConfig& config) {
  ScenarioScript script;

  if (config.two_shift_fleet && workload.drivers.size() >= 2) {
    // Second half of the fleet is the evening shift: off duty from the
    // start of the day, on duty at the shift change; the morning shift
    // signs off once the overlap ends.
    const size_t split = workload.drivers.size() / 2;
    const double change = config.shift_change_seconds;
    const double off = change + config.shift_overlap_seconds;
    for (size_t j = 0; j < workload.drivers.size(); ++j) {
      const DriverId id = workload.drivers[j].id;
      if (j < split) {
        script.SignOff(off, id);
      } else {
        script.SignOff(0.0, id).SignOn(change, id);
      }
    }
  }

  if (config.cancel_probability > 0.0) {
    Rng rng(config.seed);
    for (const Order& o : workload.orders) {
      // Draw the fraction unconditionally so each order's cancellation
      // moment is independent of every other order's coin flip.
      const double frac =
          rng.Uniform(config.cancel_fraction_lo, config.cancel_fraction_hi);
      if (!rng.Bernoulli(config.cancel_probability)) continue;
      const double patience = o.pickup_deadline - o.request_time;
      if (patience <= 0.0) continue;
      script.Cancel(o.request_time + frac * patience, o.id);
    }
  }

  for (const SurgeWindow& w : config.surges) script.Surge(w);
  return script;
}

}  // namespace mrvd
