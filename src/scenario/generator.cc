#include "scenario/generator.h"

#include "util/rng.h"

namespace mrvd {

SurgeWindow RushHourSurge(double start_seconds, double end_seconds,
                          double multiplier) {
  SurgeWindow w;
  w.start_seconds = start_seconds;
  w.end_seconds = end_seconds;
  w.multiplier = multiplier;
  return w;  // regions left empty: city-wide
}

ScenarioScript BuildScenarioDay(const Workload& workload,
                                const ScenarioDayConfig& config) {
  ScenarioScript script;

  if (config.two_shift_fleet && workload.drivers.size() >= 2) {
    // Second half of the fleet is the evening shift: off duty from the
    // start of the day, on duty at the shift change; the morning shift
    // signs off once the overlap ends.
    const size_t split = workload.drivers.size() / 2;
    const double change = config.shift_change_seconds;
    const double off = change + config.shift_overlap_seconds;
    for (size_t j = 0; j < workload.drivers.size(); ++j) {
      const DriverId id = workload.drivers[j].id;
      if (j < split) {
        script.SignOff(off, id);
      } else {
        script.SignOff(0.0, id).SignOn(change, id);
      }
    }
  }

  if (config.cancel_probability > 0.0) {
    Rng rng(config.seed);
    for (const Order& o : workload.orders) {
      // Draw the fraction unconditionally so each order's cancellation
      // moment is independent of every other order's coin flip.
      const double frac =
          rng.Uniform(config.cancel_fraction_lo, config.cancel_fraction_hi);
      if (!rng.Bernoulli(config.cancel_probability)) continue;
      const double patience = o.pickup_deadline - o.request_time;
      if (patience <= 0.0) continue;
      script.Cancel(o.request_time + frac * patience, o.id);
    }
  }

  for (const SurgeWindow& w : config.surges) script.Surge(w);
  return script;
}

}  // namespace mrvd
