// Scenario events layered over a base Workload. The paper's Algorithm 1
// assumes a fixed fleet and a pre-materialised order stream; production
// traffic does not: drivers work shifts, riders cancel before their
// deadline, and demand surges mid-day. A ScenarioScript (script.h) carries
// a time-ordered stream of these events, which Simulator::Run merges with
// the arrival/completion timeline — every event is applied to the engine
// stages *incrementally* (counter deltas, never rescans), so an empty
// script leaves the engine bit-identical to the scripted-free run.
#pragma once

#include <vector>

#include "geo/grid.h"
#include "workload/types.h"

namespace mrvd {

/// A demand-surge interval: while active, the predicted rider demand
/// (RegionSnapshot::predicted_riders) of the affected regions is scaled by
/// `multiplier`, re-pricing every idle-time estimate the dispatchers see.
/// An empty `regions` list means city-wide.
struct SurgeWindow {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double multiplier = 1.0;
  std::vector<RegionId> regions;  ///< empty = every region
};

enum class ScenarioEventType {
  kDriverSignOn,   ///< driver (re)enters the supply at its current location
  kDriverSignOff,  ///< driver leaves the supply (after its trip, if busy)
  kRiderCancel,    ///< waiting rider withdraws the order (≠ deadline renege)
  kSurgeBegin,     ///< a SurgeWindow's multiplier becomes active
  kSurgeEnd,       ///< ... and stops being active
};

/// One timestamped scenario event. Which payload field is meaningful
/// depends on `type`; `surge_index` addresses ScenarioScript::surges().
struct ScenarioEvent {
  double time = 0.0;
  ScenarioEventType type = ScenarioEventType::kDriverSignOn;
  DriverId driver_id = -1;  ///< kDriverSignOn / kDriverSignOff
  OrderId order_id = -1;    ///< kRiderCancel
  int surge_index = -1;     ///< kSurgeBegin / kSurgeEnd
};

}  // namespace mrvd
