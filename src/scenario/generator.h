// Derives scripted scenario days from a base Workload: a two-shift fleet
// (half the drivers work the morning, half the evening), a per-order
// cancellation hazard (riders withdraw before their deadline), and
// rush-hour demand surges. Deterministic: the same (workload, config)
// always produces the same script.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "scenario/script.h"
#include "workload/types.h"

namespace mrvd {

struct ScenarioDayConfig {
  /// Two-shift fleet: the second half of the fleet (by driver index) is off
  /// duty until `shift_change_seconds`; the first half signs off
  /// `shift_overlap_seconds` later, so both shifts overlap briefly.
  bool two_shift_fleet = false;
  double shift_change_seconds = 0.5 * kSecondsPerDay;
  double shift_overlap_seconds = 1800.0;

  /// Cancellation hazard: each order independently cancels with this
  /// probability, at a uniform fraction of its patience window
  /// (request -> deadline) drawn from [fraction_lo, fraction_hi]. Riders
  /// served before the cancellation moment simply keep their ride.
  double cancel_probability = 0.0;
  double cancel_fraction_lo = 0.2;
  double cancel_fraction_hi = 0.9;

  /// Demand surges (e.g. RushHourSurge below), applied verbatim.
  std::vector<SurgeWindow> surges;

  uint64_t seed = 20190417;  ///< cancellation-draw seed
};

/// City-wide surge window helper.
SurgeWindow RushHourSurge(double start_seconds, double end_seconds,
                          double multiplier);

/// Surge window covering every region of grid rows [row_lo, row_hi]
/// (inclusive; clamped to the grid) — the spatially concentrated analogue
/// of RushHourSurge, and the demand signal that makes uniform row-band
/// sharding collapse into one hot shard.
SurgeWindow RowBandSurge(const Grid& grid, int row_lo, int row_hi,
                         double start_seconds, double end_seconds,
                         double multiplier);

/// Returns a copy of `workload` where each order requesting inside
/// [start_seconds, end_seconds) is, with probability `share`, relocated
/// (pickup and dropoff) into a uniformly random cell of grid rows
/// [row_lo, row_hi] — a rush hour funneling that share of arrivals into a
/// few rows. Request times, deadlines, ids and order sequence are
/// preserved; drivers are untouched. Deterministic in `seed`.
Workload SkewWorkloadRows(const Workload& workload, const Grid& grid,
                          double start_seconds, double end_seconds,
                          double share, int row_lo, int row_hi,
                          uint64_t seed);

/// Builds the scripted day. Driver ids come from workload.drivers; cancel
/// order ids from workload.orders.
ScenarioScript BuildScenarioDay(const Workload& workload,
                                const ScenarioDayConfig& config);

}  // namespace mrvd
