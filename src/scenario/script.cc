#include "scenario/script.h"

#include <algorithm>

namespace mrvd {

ScenarioScript& ScenarioScript::SignOn(double time, DriverId driver_id) {
  ScenarioEvent e;
  e.time = time;
  e.type = ScenarioEventType::kDriverSignOn;
  e.driver_id = driver_id;
  events_.push_back(e);
  return *this;
}

ScenarioScript& ScenarioScript::SignOff(double time, DriverId driver_id) {
  ScenarioEvent e;
  e.time = time;
  e.type = ScenarioEventType::kDriverSignOff;
  e.driver_id = driver_id;
  events_.push_back(e);
  return *this;
}

ScenarioScript& ScenarioScript::Cancel(double time, OrderId order_id) {
  ScenarioEvent e;
  e.time = time;
  e.type = ScenarioEventType::kRiderCancel;
  e.order_id = order_id;
  events_.push_back(e);
  return *this;
}

ScenarioScript& ScenarioScript::Surge(SurgeWindow window) {
  if (window.end_seconds <= window.start_seconds || window.multiplier <= 0.0) {
    return *this;
  }
  const int index = static_cast<int>(surges_.size());
  ScenarioEvent begin;
  begin.time = window.start_seconds;
  begin.type = ScenarioEventType::kSurgeBegin;
  begin.surge_index = index;
  events_.push_back(begin);
  ScenarioEvent end;
  end.time = window.end_seconds;
  end.type = ScenarioEventType::kSurgeEnd;
  end.surge_index = index;
  events_.push_back(end);
  surges_.push_back(std::move(window));
  return *this;
}

EventStream::EventStream(const ScenarioScript& script)
    : events_(script.events()) {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const ScenarioEvent& a, const ScenarioEvent& b) {
        return a.time < b.time;
      });
}

}  // namespace mrvd
