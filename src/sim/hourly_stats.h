// HourlyBreakdown: a SimObserver that slices the engine's event stream
// into per-hour rows (served / reneged / cancelled counts, revenue, wait
// time) — the time-of-day profile of a run. Purely event-driven, so the
// rows are deterministic: bit-identical at any engine or campaign thread
// count. The campaign layer attaches one per cell and persists the rows in
// the cell's run artifact.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observer.h"

namespace mrvd {

/// One simulated hour's slice of the run.
struct HourlyRow {
  int64_t served = 0;
  int64_t reneged = 0;  ///< deadline reneges only (no horizon remainder)
  int64_t cancelled = 0;
  double revenue = 0.0;
  double wait_seconds_sum = 0.0;  ///< over served orders (mean = sum/served)
};

class HourlyBreakdown final : public SimObserver {
 public:
  /// Rows cover [0, horizon_seconds) in 3600 s buckets; events past the
  /// horizon (applications landing on the final batch edge) clamp into the
  /// last row rather than being dropped.
  explicit HourlyBreakdown(double horizon_seconds);

  void OnAssignmentApplied(double now, const AssignmentEvent& e) override;
  void OnRiderReneged(double now, const Order& order) override;
  void OnRiderCancelled(double now, const Order& order) override;

  const std::vector<HourlyRow>& rows() const { return rows_; }

 private:
  HourlyRow& RowAt(double now);

  std::vector<HourlyRow> rows_;
};

}  // namespace mrvd
