#include "sim/fleet_state.h"

namespace mrvd {

FleetState::FleetState(const std::vector<DriverSpec>& drivers,
                       const Grid& grid) {
  drivers_.resize(drivers.size());
  available_by_region_.assign(static_cast<size_t>(grid.num_regions()), 0);
  rejoining_in_window_.assign(static_cast<size_t>(grid.num_regions()), 0);
  fresh_drivers_.reserve(drivers_.size());
  for (size_t j = 0; j < drivers_.size(); ++j) {
    DriverState& d = drivers_[j];
    d.id = drivers[j].id;
    d.location = drivers[j].origin;
    d.region = grid.RegionOf(d.location);
    d.available_since = drivers[j].join_time;
    d.busy = false;
    fresh_drivers_.push_back(static_cast<int>(j));
    ++available_by_region_[static_cast<size_t>(d.region)];
  }
  available_count_ = static_cast<int64_t>(drivers_.size());
}

void FleetState::ReleaseFinished(double now) {
  while (!busy_heap_.empty() && busy_heap_.top().first <= now) {
    int j = busy_heap_.top().second;
    busy_heap_.pop();
    DriverState& d = drivers_[static_cast<size_t>(j)];
    if (d.counted_in_window) {
      // The completion event leaves the window the moment it realizes.
      --rejoining_in_window_[static_cast<size_t>(d.busy_dest_region)];
      d.counted_in_window = false;
    }
    d.busy = false;
    d.location = d.busy_dest;
    d.region = d.busy_dest_region;
    d.available_since = d.busy_until;
    if (d.sign_off_pending) {
      // The driver worked the trip out and now leaves the platform: never
      // re-enters the supply counters or the fresh-driver queue.
      d.sign_off_pending = false;
      d.signed_off = true;
      continue;
    }
    ++available_by_region_[static_cast<size_t>(d.region)];
    ++available_count_;
    fresh_drivers_.push_back(j);
  }
}

void FleetState::AdvanceRejoinWindow(double now, double window_seconds) {
  const double window_end = now + window_seconds;
  while (!window_heap_.empty() && window_heap_.top().first <= window_end) {
    auto [completes_at, j] = window_heap_.top();
    window_heap_.pop();
    // Events already realized (completes_at <= now) were handled by
    // ReleaseFinished and never enter the count — exactly the monolithic
    // engine's strict `now < busy_until <= now + t_c` recount condition.
    if (completes_at > now) {
      DriverState& d = drivers_[static_cast<size_t>(j)];
      // Guards for scenario churn: a sign-off/sign-on cycle can leave a
      // stale or duplicate heap entry behind, and a pending sign-off must
      // not count toward predicted supply (the driver will not rejoin).
      if (d.busy && d.busy_until == completes_at && !d.counted_in_window &&
          !d.sign_off_pending) {
        ++rejoining_in_window_[static_cast<size_t>(d.busy_dest_region)];
        d.counted_in_window = true;
      }
    }
  }
}

bool FleetState::SignOff(int j) {
  DriverState& d = drivers_[static_cast<size_t>(j)];
  if (d.signed_off || d.sign_off_pending) return false;
  if (d.busy) {
    d.sign_off_pending = true;
    if (d.counted_in_window) {
      --rejoining_in_window_[static_cast<size_t>(d.busy_dest_region)];
      d.counted_in_window = false;
    }
  } else {
    d.signed_off = true;
    --available_by_region_[static_cast<size_t>(d.region)];
    --available_count_;
  }
  return true;
}

bool FleetState::SignOn(int j, double now) {
  DriverState& d = drivers_[static_cast<size_t>(j)];
  if (d.sign_off_pending) {
    // Mid-trip reversal: stay on duty. The completion event re-enters the
    // window schedule; AdvanceRejoinWindow's guards absorb the duplicate
    // heap entry if the original is still queued.
    d.sign_off_pending = false;
    window_heap_.push({d.busy_until, j});
    return true;
  }
  if (!d.signed_off) return false;
  d.signed_off = false;
  d.available_since = now;
  ++available_by_region_[static_cast<size_t>(d.region)];
  ++available_count_;
  fresh_drivers_.push_back(j);
  return true;
}

void FleetState::MarkBusy(int j, double busy_until, const LatLon& dest,
                          RegionId dest_region) {
  DriverState& d = drivers_[static_cast<size_t>(j)];
  --available_by_region_[static_cast<size_t>(d.region)];
  --available_count_;
  d.busy = true;
  d.busy_until = busy_until;
  d.busy_dest = dest;
  d.busy_dest_region = dest_region;
  busy_heap_.push({busy_until, j});
  window_heap_.push({busy_until, j});
}

void FleetState::CaptureIdleEstimates(const BatchContext* ctx) {
  if (ctx != nullptr) {
    for (int j : fresh_drivers_) {
      DriverState& d = drivers_[static_cast<size_t>(j)];
      if (!d.Dispatchable()) continue;
      d.pending_estimate = ctx->ExpectedIdleSeconds(d.region);
    }
  }
  fresh_drivers_.clear();
}

}  // namespace mrvd
