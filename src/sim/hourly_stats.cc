#include "sim/hourly_stats.h"

#include <cmath>

namespace mrvd {

HourlyBreakdown::HourlyBreakdown(double horizon_seconds) {
  const double hours = std::ceil(horizon_seconds / 3600.0);
  const auto n = static_cast<size_t>(hours < 1.0 ? 1.0 : hours);
  rows_.resize(n);
}

HourlyRow& HourlyBreakdown::RowAt(double now) {
  auto index = static_cast<size_t>(now >= 0.0 ? now / 3600.0 : 0.0);
  if (index >= rows_.size()) index = rows_.size() - 1;
  return rows_[index];
}

void HourlyBreakdown::OnAssignmentApplied(double now,
                                          const AssignmentEvent& e) {
  HourlyRow& row = RowAt(now);
  ++row.served;
  row.revenue += e.revenue;
  row.wait_seconds_sum += e.wait_seconds;
}

void HourlyBreakdown::OnRiderReneged(double now, const Order& /*order*/) {
  ++RowAt(now).reneged;
}

void HourlyBreakdown::OnRiderCancelled(double now, const Order& /*order*/) {
  ++RowAt(now).cancelled;
}

}  // namespace mrvd
