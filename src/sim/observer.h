// Observation hooks for the staged simulation engine. The engine core
// (fleet lifecycle, order book, batch construction, assignment application)
// emits events through a SimObserver instead of interleaving metrics
// bookkeeping with simulation logic; SimResult itself is produced by the
// MetricsCollector observer below, and callers can attach their own
// observer to Simulator::Run for custom studies (per-hour breakdowns,
// traces, streaming-scenario triggers) without touching the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "scenario/events.h"
#include "sim/metrics.h"
#include "telemetry/metrics.h"
#include "workload/types.h"

namespace mrvd {

class BatchContext;
struct Assignment;
struct DispatchCounters;

namespace telemetry {
class TelemetrySession;
}  // namespace telemetry

/// Wall-time split of one batch across the engine's stages, in stage order
/// (where a batch's milliseconds went). Execution metadata: the values
/// vary run to run; only the event count is deterministic.
struct BatchTimings {
  double release_seconds = 0.0;   ///< FleetState::ReleaseFinished
  double inject_seconds = 0.0;    ///< OrderBook::InjectArrivals
  double scenario_seconds = 0.0;  ///< ScenarioState::ApplyDueEvents
  double expire_seconds = 0.0;    ///< OrderBook::RemoveExpired
  double build_seconds = 0.0;     ///< BatchBuilder::Build
  double dispatch_seconds = 0.0;  ///< Dispatcher::Dispatch
  double apply_seconds = 0.0;     ///< AssignmentApplier::Apply

  double TotalSeconds() const {
    return release_seconds + inject_seconds + scenario_seconds +
           expire_seconds + build_seconds + dispatch_seconds + apply_seconds;
  }
};

/// One accepted rider-driver assignment, fully resolved by the
/// AssignmentApplier (indices refer to the batch's BatchContext).
struct AssignmentEvent {
  int rider_index = -1;
  int driver_index = -1;
  OrderId order_id = -1;
  /// Workload DriverSpec::id — the same id space OnDriverShiftChange and
  /// ScenarioScript sign-on/sign-off events use (NOT the context index).
  DriverId driver_id = -1;
  RegionId driver_region = kInvalidRegion;  ///< region the driver idled in
  double pickup_seconds = 0.0;   ///< travel to the pickup (0 in UPPER mode)
  double wait_seconds = 0.0;     ///< request -> assignment wait
  double real_idle_seconds = 0.0;
  double idle_estimate = -1.0;   ///< ET captured at (re)join; < 0: none
  double revenue = 0.0;
  double busy_until = 0.0;       ///< when the driver rejoins the platform
};

/// Engine lifecycle hooks. All hooks default to no-ops; implement what you
/// need. Per batch the engine fires, in order: OnBatchBuilt (context fully
/// materialised, before dispatch), OnDispatchDone (assignments selected,
/// not yet applied), OnAssignmentApplied (once per accepted pair, in
/// application order), OnBatchEnd. OnRiderReneged fires as riders expire,
/// before the batch is built; OnRunEnd fires once after the horizon.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// The batch context is complete (riders, drivers, snapshots, sharding).
  /// `build_seconds` is the wall time of the incremental construction.
  virtual void OnBatchBuilt(double now, double build_seconds,
                            const BatchContext& ctx) {
    (void)now, (void)build_seconds, (void)ctx;
  }

  /// The dispatcher returned; assignments have not been applied yet.
  virtual void OnDispatchDone(double now, double dispatch_seconds,
                              const std::vector<Assignment>& assignments) {
    (void)now, (void)dispatch_seconds, (void)assignments;
  }

  /// The dispatcher's work counters for the batch (sweeps, swaps,
  /// speculation stats — sim/batch.h). Fires right after OnDispatchDone,
  /// and only for dispatchers that track counters.
  virtual void OnDispatchCounters(double now, const DispatchCounters& c) {
    (void)now, (void)c;
  }

  /// One accepted assignment was applied to the fleet and order book.
  virtual void OnAssignmentApplied(double now, const AssignmentEvent& e) {
    (void)now, (void)e;
  }

  /// A waiting rider's pickup deadline passed before any assignment.
  /// Orders still unserved when the horizon ends do NOT fire this hook —
  /// they are reported in bulk via OnRunEnd's `never_dispatched` (so
  /// per-hook renege tallies plus that remainder equal
  /// SimResult::reneged_orders).
  virtual void OnRiderReneged(double now, const Order& order) {
    (void)now, (void)order;
  }

  /// A scenario shift change took effect: `signed_on` = true means the
  /// driver (re)entered the supply, false that it left (a busy driver
  /// leaves once its current trip completes; the hook fires when the
  /// sign-off is scheduled). Fires only for events that changed state —
  /// redundant script entries (double sign-off etc.) are silent.
  virtual void OnDriverShiftChange(double now, DriverId driver_id,
                                   bool signed_on) {
    (void)now, (void)driver_id, (void)signed_on;
  }

  /// A waiting rider explicitly cancelled (scenario event) — counted
  /// separately from deadline reneging.
  virtual void OnRiderCancelled(double now, const Order& order) {
    (void)now, (void)order;
  }

  /// A surge window began (`active` = true) or ended (false).
  virtual void OnSurgeChange(double now, const SurgeWindow& window,
                             bool active) {
    (void)now, (void)window, (void)active;
  }

  /// Adaptive sharding rebuilt the shard map between batches (fires before
  /// the batch at `now` is built). `imbalance_before`/`imbalance_after` are
  /// the tracked demand's max-shard/mean-shard load factor under the old
  /// and new partition.
  virtual void OnRepartition(double now, int num_shards,
                             double imbalance_before,
                             double imbalance_after) {
    (void)now, (void)num_shards;
    (void)imbalance_before, (void)imbalance_after;
  }

  /// The batch's per-stage wall-time split. Fires after every stage of the
  /// batch completed, right before OnBatchEnd.
  virtual void OnBatchTimings(double now, const BatchTimings& timings) {
    (void)now, (void)timings;
  }

  /// All assignments of the batch are applied and served riders compacted.
  virtual void OnBatchEnd(double now) { (void)now; }

  /// The run's telemetry session, right before OnRunEnd — a late hook for
  /// observers that export or post-process the metrics registry. Fires
  /// only when the run had a session attached (SimConfig::telemetry); the
  /// session is still live (the engine never calls Finish — the attaching
  /// caller owns the session's lifecycle).
  virtual void OnRunTelemetry(double end_time,
                              const telemetry::TelemetrySession& session) {
    (void)end_time, (void)session;
  }

  /// The run is over. `never_dispatched` counts orders still waiting at the
  /// horizon plus orders whose request time was never reached.
  virtual void OnRunEnd(double end_time, int64_t never_dispatched) {
    (void)end_time, (void)never_dispatched;
  }
};

/// Fans every hook out to a list of observers, in registration order.
/// Borrows its links; the owning variant is ObserverChain
/// (api/observer_chain.h), which extends this class.
class ObserverList : public SimObserver {
 public:
  void Add(SimObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void OnBatchBuilt(double now, double build_seconds,
                    const BatchContext& ctx) override {
    for (SimObserver* o : observers_) o->OnBatchBuilt(now, build_seconds, ctx);
  }
  void OnDispatchDone(double now, double dispatch_seconds,
                      const std::vector<Assignment>& assignments) override {
    for (SimObserver* o : observers_) {
      o->OnDispatchDone(now, dispatch_seconds, assignments);
    }
  }
  void OnDispatchCounters(double now, const DispatchCounters& c) override {
    for (SimObserver* o : observers_) o->OnDispatchCounters(now, c);
  }
  void OnAssignmentApplied(double now, const AssignmentEvent& e) override {
    for (SimObserver* o : observers_) o->OnAssignmentApplied(now, e);
  }
  void OnRiderReneged(double now, const Order& order) override {
    for (SimObserver* o : observers_) o->OnRiderReneged(now, order);
  }
  void OnDriverShiftChange(double now, DriverId driver_id,
                           bool signed_on) override {
    for (SimObserver* o : observers_) {
      o->OnDriverShiftChange(now, driver_id, signed_on);
    }
  }
  void OnRiderCancelled(double now, const Order& order) override {
    for (SimObserver* o : observers_) o->OnRiderCancelled(now, order);
  }
  void OnSurgeChange(double now, const SurgeWindow& window,
                     bool active) override {
    for (SimObserver* o : observers_) o->OnSurgeChange(now, window, active);
  }
  void OnRepartition(double now, int num_shards, double imbalance_before,
                     double imbalance_after) override {
    for (SimObserver* o : observers_) {
      o->OnRepartition(now, num_shards, imbalance_before, imbalance_after);
    }
  }
  void OnBatchTimings(double now, const BatchTimings& timings) override {
    for (SimObserver* o : observers_) o->OnBatchTimings(now, timings);
  }
  void OnBatchEnd(double now) override {
    for (SimObserver* o : observers_) o->OnBatchEnd(now);
  }
  void OnRunTelemetry(double end_time,
                      const telemetry::TelemetrySession& session) override {
    for (SimObserver* o : observers_) o->OnRunTelemetry(end_time, session);
  }
  void OnRunEnd(double end_time, int64_t never_dispatched) override {
    for (SimObserver* o : observers_) o->OnRunEnd(end_time, never_dispatched);
  }

 private:
  std::vector<SimObserver*> observers_;
};

/// Accumulates the SimResult aggregates from the engine's event stream.
/// The accumulation order matches the event order, so the streaming
/// statistics (Welford accumulators) are bit-identical to the former
/// inline bookkeeping of the monolithic engine loop.
class MetricsCollector final : public SimObserver {
 public:
  MetricsCollector(const std::string& dispatcher_name, int64_t total_orders,
                   int num_regions, bool record_idle_samples);

  void OnBatchBuilt(double now, double build_seconds,
                    const BatchContext& ctx) override;
  void OnDispatchDone(double now, double dispatch_seconds,
                      const std::vector<Assignment>& assignments) override;
  void OnDispatchCounters(double now, const DispatchCounters& c) override;
  void OnAssignmentApplied(double now, const AssignmentEvent& e) override;
  void OnRiderReneged(double now, const Order& order) override;
  void OnDriverShiftChange(double now, DriverId driver_id,
                           bool signed_on) override;
  void OnRiderCancelled(double now, const Order& order) override;
  void OnSurgeChange(double now, const SurgeWindow& window,
                     bool active) override;
  void OnRepartition(double now, int num_shards, double imbalance_before,
                     double imbalance_after) override;
  void OnRunEnd(double end_time, int64_t never_dispatched) override;

  /// Moves the finished result out (the collector is spent afterwards).
  SimResult TakeResult() { return std::move(result_); }

 private:
  SimResult result_;
  bool record_idle_samples_;
  /// Per-batch dispatch wall times; OnRunEnd projects p50/p95/p99 into the
  /// result. Always maintained (one Add per batch — noise next to a
  /// dispatch), so SimResult reports latency percentiles with or without a
  /// TelemetrySession attached.
  telemetry::LogHistogram dispatch_latency_;
};

}  // namespace mrvd
