// Event-driven car-hailing platform simulator implementing the batch-based
// framework of Algorithm 1: every Δ seconds the waiting riders and available
// drivers are snapshotted, the dispatcher selects rider-driver pairs, and
// assigned drivers drive to the pickup and then the dropoff, rejoining the
// platform at the destination region.
//
// The engine is staged: FleetState (driver lifecycle + incremental supply
// counters), OrderBook (arrivals, reneging, served-rider compaction +
// incremental demand counters), BatchBuilder (shard-parallel context
// materialisation off the incremental counters), and AssignmentApplier,
// with SimObserver hooks carrying every measurable event. Simulator::Run
// wires the stages together; SimResult is produced by the MetricsCollector
// observer.
#pragma once

#include <memory>
#include <vector>

#include "geo/grid.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "scenario/script.h"
#include "sim/batch.h"
#include "sim/metrics.h"
#include "sim/observer.h"
#include "util/status.h"
#include "workload/types.h"

namespace mrvd {

struct SimConfig {
  double batch_interval = 3.0;     ///< Δ seconds (Table 2 default)
  double window_seconds = 1200.0;  ///< t_c = 20 minutes (Table 2 default)
  double alpha = 1.0;              ///< travel fee rate (§6.3 sets α = 1)
  double reneging_beta = 0.02;     ///< β of π(n) = e^{βn}/μ
  double horizon_seconds = kSecondsPerDay;

  /// Candidate-pair generation. Ring expansion admits every Def.-3-valid
  /// pair and is the default; kRegionLocal reproduces Algorithm 2's strict
  /// per-region retrieval (ablation).
  CandidateMode candidate_mode = CandidateMode::kRingExpand;

  /// UPPER mode: pickup travel is free and pair validity is waived — the
  /// engine then realises the paper's per-batch upper bound (§6.3).
  bool zero_pickup_travel = false;

  /// Record (estimated, real) idle-time samples (Table 3 / Fig. 6 study).
  bool record_idle_samples = true;

  /// Dispatch parallelism: worker threads for the region-sharded batch
  /// pipeline. 1 = serial (default); 0 = hardware concurrency. Any value
  /// produces bit-identical results — sharding only moves the expensive
  /// candidate generation and idle-time solves onto the pool.
  int num_threads = 1;

  /// Region shards for the pipeline; 0 derives 2x the worker count
  /// (clamped to the grid's row count by the partitioner).
  int num_shards = 0;

  /// Rejects configs the engine cannot run: non-positive batch_interval /
  /// window_seconds / horizon_seconds, negative num_threads / num_shards,
  /// negative reneging_beta or non-positive alpha. Called by
  /// SimulationBuilder::Build() (returning the Status to the caller) and by
  /// Simulator's constructor (which aborts on an invalid config — reaching
  /// the engine with one is a programming error).
  Status Validate() const;
};

/// Simulates one day of a Workload under a dispatcher.
class Simulator {
 public:
  /// `forecast` may be null (prediction-free baselines: RAND/NEAR/LTG see
  /// zero predicted demand). All referenced objects must outlive Run().
  Simulator(const SimConfig& config, const Workload& workload,
            const Grid& grid, const TravelCostModel& cost_model,
            const DemandForecast* forecast);

  /// Runs the full horizon with `dispatcher` and returns the aggregates.
  /// Can be called repeatedly (state resets each time). `observer` (may be
  /// null) receives every engine event alongside the built-in metrics
  /// collection — per-hour breakdowns, traces, custom studies.
  SimResult Run(Dispatcher& dispatcher, SimObserver* observer = nullptr);

  /// Scenario-scripted run: `script`'s time-ordered event stream (driver
  /// shifts, rider cancellations, surge windows) is merged with the
  /// arrival/completion timeline — due events are applied to the stages
  /// incrementally at the top of each batch. An empty script makes this
  /// bit-identical to the overload above (enforced by
  /// tests/engine_equivalence_test.cc).
  SimResult Run(Dispatcher& dispatcher, const ScenarioScript& script,
                SimObserver* observer = nullptr);

 private:
  SimResult RunImpl(Dispatcher& dispatcher, const ScenarioScript* script,
                    SimObserver* observer);

  const SimConfig config_;
  const Workload& workload_;
  const Grid& grid_;
  const TravelCostModel& cost_model_;
  const DemandForecast* forecast_;
};

}  // namespace mrvd
