// Event-driven car-hailing platform simulator implementing the batch-based
// framework of Algorithm 1: every Δ seconds the waiting riders and available
// drivers are snapshotted, the dispatcher selects rider-driver pairs, and
// assigned drivers drive to the pickup and then the dropoff, rejoining the
// platform at the destination region.
//
// The engine is staged: FleetState (driver lifecycle + incremental supply
// counters), OrderBook (arrivals, reneging, served-rider compaction +
// incremental demand counters), BatchBuilder (shard-parallel context
// materialisation off the incremental counters), and AssignmentApplier,
// with SimObserver hooks carrying every measurable event. Simulator::Run
// wires the stages together; SimResult is produced by the MetricsCollector
// observer.
#pragma once

#include <memory>
#include <vector>

#include "geo/grid.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "scenario/script.h"
#include "sim/batch.h"
#include "sim/metrics.h"
#include "sim/observer.h"
#include "util/status.h"
#include "workload/order_source.h"
#include "workload/types.h"

namespace mrvd {

namespace telemetry {
class TelemetrySession;
}  // namespace telemetry

struct SimConfig {
  double batch_interval = 3.0;     ///< Δ seconds (Table 2 default)
  double window_seconds = 1200.0;  ///< t_c = 20 minutes (Table 2 default)
  double alpha = 1.0;              ///< travel fee rate (§6.3 sets α = 1)
  double reneging_beta = 0.02;     ///< β of π(n) = e^{βn}/μ
  double horizon_seconds = kSecondsPerDay;

  /// Candidate-pair generation. Ring expansion admits every Def.-3-valid
  /// pair and is the default; kRegionLocal reproduces Algorithm 2's strict
  /// per-region retrieval (ablation).
  CandidateMode candidate_mode = CandidateMode::kRingExpand;

  /// UPPER mode: pickup travel is free and pair validity is waived — the
  /// engine then realises the paper's per-batch upper bound (§6.3).
  bool zero_pickup_travel = false;

  /// Record (estimated, real) idle-time samples (Table 3 / Fig. 6 study).
  bool record_idle_samples = true;

  /// Dispatch parallelism: worker threads for the region-sharded batch
  /// pipeline. 1 = serial (default); 0 = hardware concurrency. Any value
  /// produces bit-identical results — sharding only moves the expensive
  /// candidate generation and idle-time solves onto the pool.
  int num_threads = 1;

  /// Region shards for the pipeline; 0 derives 2x the worker count
  /// (clamped to the grid's row count by the partitioner).
  int num_shards = 0;

  /// Load-aware adaptive sharding: the engine tracks per-region demand (an
  /// EWMA of each batch's observed waiting riders blended with the
  /// surge-scaled forecast of the scheduling window) and rebuilds the
  /// row-band partition weight-balanced between batches whenever the
  /// tracked load's imbalance over the current shard map (max-shard weight
  /// over mean-shard weight) exceeds rebalance_threshold. Results are
  /// bit-identical either way — sharding is exact for any partition — so
  /// this is purely a parallel-throughput knob. No effect on serial runs.
  bool adaptive_sharding = false;

  /// Hysteresis trigger for adaptive_sharding, >= 1: a repartition is
  /// considered only when measured imbalance exceeds this factor, and only
  /// installed when the rebuilt bands actually move a region.
  double rebalance_threshold = 1.25;

  /// EWMA weight of the newest batch's observed rider counts, in (0, 1].
  double load_ewma_alpha = 0.3;

  /// Weight of forecast demand (already surge-scaled by the BatchBuilder)
  /// blended on top of the observed EWMA, >= 0.
  double forecast_blend = 1.0;

  /// Borrowed telemetry session (SimulationBuilder::WithTelemetry). Null =
  /// telemetry off: every instrumentation site degrades to a pointer
  /// check. When set, the engine records stage trace spans and feeds the
  /// session's MetricsRegistry; the attached session must outlive the run
  /// and be used by at most one concurrently executing run. Not part of
  /// the simulated configuration: ignored by Validate(), excluded from
  /// campaign cell keys, and it never affects results (bit-identity with
  /// and without a session is enforced by tests/telemetry_test.cc).
  telemetry::TelemetrySession* telemetry = nullptr;

  /// Shard count the engine's pipeline uses with `threads` workers:
  /// num_shards when set, else 2x the workers (the partitioner clamps to
  /// the grid's row count). Benches and tests route their shard choice
  /// through this so they measure the configuration the engine runs.
  int ResolveShards(int threads) const {
    return num_shards > 0 ? num_shards : 2 * threads;
  }

  /// Rejects configs the engine cannot run: non-positive batch_interval /
  /// window_seconds / horizon_seconds, negative num_threads / num_shards,
  /// out-of-range adaptive-sharding knobs, negative reneging_beta or
  /// non-positive alpha. Called by
  /// SimulationBuilder::Build() (returning the Status to the caller) and by
  /// Simulator's constructor (which aborts on an invalid config — reaching
  /// the engine with one is a programming error).
  Status Validate() const;
};

/// Simulates one day of a Workload under a dispatcher.
class Simulator {
 public:
  /// `forecast` may be null (prediction-free baselines: RAND/NEAR/LTG see
  /// zero predicted demand). All referenced objects must outlive Run().
  Simulator(const SimConfig& config, const Workload& workload,
            const Grid& grid, const TravelCostModel& cost_model,
            const DemandForecast* forecast);

  /// Streaming variant: arrivals are pulled from `source` (rewound at the
  /// top of every Run, so repeated runs see the full stream) and the fleet
  /// comes from `drivers` — nothing order-sided is ever materialised, so a
  /// run's peak memory is O(stream buffer + waiting pool). Identical
  /// inputs produce bit-identical results to the Workload overload. After
  /// Run(), callers should check source.status(): a stream that fails
  /// mid-run stops delivering and the remainder counts as unserved.
  Simulator(const SimConfig& config, OrderSource& source,
            const std::vector<DriverSpec>& drivers, const Grid& grid,
            const TravelCostModel& cost_model,
            const DemandForecast* forecast);

  /// Runs the full horizon with `dispatcher` and returns the aggregates.
  /// Can be called repeatedly (state resets each time). `observer` (may be
  /// null) receives every engine event alongside the built-in metrics
  /// collection — per-hour breakdowns, traces, custom studies.
  SimResult Run(Dispatcher& dispatcher, SimObserver* observer = nullptr);

  /// Scenario-scripted run: `script`'s time-ordered event stream (driver
  /// shifts, rider cancellations, surge windows) is merged with the
  /// arrival/completion timeline — due events are applied to the stages
  /// incrementally at the top of each batch. An empty script makes this
  /// bit-identical to the overload above (enforced by
  /// tests/engine_equivalence_test.cc).
  SimResult Run(Dispatcher& dispatcher, const ScenarioScript& script,
                SimObserver* observer = nullptr);

 private:
  SimResult RunImpl(Dispatcher& dispatcher, const ScenarioScript* script,
                    SimObserver* observer);

  const SimConfig config_;
  const Workload* workload_ = nullptr;  ///< null on the streaming path
  OrderSource* source_ = nullptr;       ///< null on the materialised path
  const std::vector<DriverSpec>& drivers_;
  const Grid& grid_;
  const TravelCostModel& cost_model_;
  const DemandForecast* forecast_;
};

}  // namespace mrvd
