#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <queue>

#include "geo/region_partitioner.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

Simulator::Simulator(const SimConfig& config, const Workload& workload,
                     const Grid& grid, const TravelCostModel& cost_model,
                     const DemandForecast* forecast)
    : config_(config),
      workload_(workload),
      grid_(grid),
      cost_model_(cost_model),
      forecast_(forecast) {}

SimResult Simulator::Run(Dispatcher& dispatcher) {
  SimResult result;
  result.dispatcher = dispatcher.name();
  result.total_orders = static_cast<int64_t>(workload_.orders.size());
  result.region_idle.assign(static_cast<size_t>(grid_.num_regions()), {});

  // --- Driver state ---------------------------------------------------
  std::vector<DriverState> drivers(workload_.drivers.size());
  for (size_t j = 0; j < drivers.size(); ++j) {
    drivers[j].location = workload_.drivers[j].origin;
    drivers[j].region = grid_.RegionOf(drivers[j].location);
    drivers[j].available_since = workload_.drivers[j].join_time;
    drivers[j].busy = false;
  }
  // Min-heap of (busy_until, driver index) for busy completions.
  using BusyEntry = std::pair<double, int>;
  std::priority_queue<BusyEntry, std::vector<BusyEntry>, std::greater<>>
      busy_heap;

  // --- Rider state ----------------------------------------------------
  std::deque<PendingRider> waiting;
  size_t next_order = 0;

  // Drivers that (re)joined since the previous batch and need an idle-time
  // estimate captured once the batch context (rates) exists.
  std::vector<int> fresh_drivers;
  fresh_drivers.reserve(drivers.size());
  for (size_t j = 0; j < drivers.size(); ++j) {
    fresh_drivers.push_back(static_cast<int>(j));
  }

  const double delta = config_.batch_interval;
  const double horizon = config_.horizon_seconds;

  // Parallel dispatch plumbing, created once and reused by every batch.
  int threads = config_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                         : config_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<RegionPartitioner> partitioner;
  BatchExecution execution;
  if (threads > 1) {
    int shards =
        config_.num_shards > 0 ? config_.num_shards : 2 * threads;
    pool = std::make_unique<ThreadPool>(threads);
    partitioner = std::make_unique<RegionPartitioner>(
        RegionPartitioner::RowBands(grid_, shards));
    execution.pool = pool.get();
    execution.partitioner = partitioner.get();
  }

  for (double now = 0.0; now < horizon; now += delta) {
    // 1. Busy drivers finishing by `now` rejoin at their destination.
    while (!busy_heap.empty() && busy_heap.top().first <= now) {
      int j = busy_heap.top().second;
      busy_heap.pop();
      DriverState& d = drivers[static_cast<size_t>(j)];
      d.busy = false;
      d.location = d.busy_dest;
      d.region = d.busy_dest_region;
      d.available_since = d.busy_until;
      fresh_drivers.push_back(j);
    }

    // 2. Inject riders that posted since the last batch.
    while (next_order < workload_.orders.size() &&
           workload_.orders[next_order].request_time <= now) {
      const Order& o = workload_.orders[next_order];
      PendingRider pr;
      pr.order = &o;
      pr.trip_seconds = cost_model_.TravelSeconds(o.pickup, o.dropoff);
      pr.revenue = config_.alpha * pr.trip_seconds;
      pr.pickup_region = grid_.RegionOf(o.pickup);
      pr.dropoff_region = grid_.RegionOf(o.dropoff);
      waiting.push_back(pr);
      ++next_order;
    }

    // 3. Expired riders renege.
    std::erase_if(waiting, [&](const PendingRider& pr) {
      if (pr.order->pickup_deadline < now) {
        ++result.reneged_orders;
        return true;
      }
      return false;
    });

    if (waiting.empty() && fresh_drivers.empty() && busy_heap.empty() &&
        next_order >= workload_.orders.size()) {
      break;  // nothing left to do
    }

    // 4. Build the batch context.
    BatchContext ctx(now, config_.window_seconds, config_.reneging_beta,
                     grid_, cost_model_, config_.candidate_mode);
    if (pool != nullptr) ctx.SetExecution(&execution);
    std::vector<int> rider_backing;  // waiting index per ctx rider
    rider_backing.reserve(waiting.size());
    for (size_t i = 0; i < waiting.size(); ++i) {
      const PendingRider& pr = waiting[i];
      WaitingRider wr;
      wr.order_id = pr.order->id;
      wr.pickup = pr.order->pickup;
      wr.dropoff = pr.order->dropoff;
      wr.request_time = pr.order->request_time;
      wr.pickup_deadline = pr.order->pickup_deadline;
      wr.revenue = pr.revenue;
      wr.trip_seconds = pr.trip_seconds;
      wr.pickup_region = pr.pickup_region;
      wr.dropoff_region = pr.dropoff_region;
      ctx.AddRider(wr);
      rider_backing.push_back(static_cast<int>(i));
    }
    std::vector<int> driver_backing;  // driver index per ctx driver
    for (size_t j = 0; j < drivers.size(); ++j) {
      const DriverState& d = drivers[j];
      if (d.busy) continue;
      AvailableDriver ad;
      ad.driver_id = static_cast<DriverId>(j);
      ad.location = d.location;
      ad.region = d.region;
      ad.available_since = d.available_since;
      ctx.AddDriver(ad);
      driver_backing.push_back(static_cast<int>(j));
    }

    std::vector<RegionSnapshot> snaps(
        static_cast<size_t>(grid_.num_regions()));
    for (const auto& r : ctx.riders()) {
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    }
    for (const auto& d : ctx.drivers()) {
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    }
    if (forecast_ != nullptr) {
      for (int k = 0; k < grid_.num_regions(); ++k) {
        snaps[static_cast<size_t>(k)].predicted_riders =
            forecast_->WindowCount(now, config_.window_seconds, k);
      }
    }
    {
      // Rejoined-driver schedule over [now, now + t_c]: exact from the
      // busy-driver completion times (§3.1.2: supply is known from the
      // schedules of active drivers).
      for (const auto& d : drivers) {
        if (d.busy && d.busy_until > now &&
            d.busy_until <= now + config_.window_seconds) {
          snaps[static_cast<size_t>(d.busy_dest_region)].predicted_drivers +=
              1.0;
        }
      }
    }
    ctx.SetSnapshots(std::move(snaps));

    // 5. Capture idle-time estimates for freshly (re)joined drivers.
    if (config_.record_idle_samples) {
      for (int j : fresh_drivers) {
        DriverState& d = drivers[static_cast<size_t>(j)];
        if (d.busy) continue;
        d.pending_estimate = ctx.ExpectedIdleSeconds(d.region);
      }
    }
    fresh_drivers.clear();

    // 6. Dispatch.
    std::vector<Assignment> assignments;
    Stopwatch watch;
    dispatcher.Dispatch(ctx, &assignments);
    result.batch_seconds.Add(watch.ElapsedSeconds());
    ++result.num_batches;

    // 7. Apply assignments.
    std::vector<char> rider_taken(ctx.riders().size(), false);
    std::vector<char> driver_taken(ctx.drivers().size(), false);
    std::vector<int> served_waiting_indices;
    for (const Assignment& a : assignments) {
      if (a.rider_index < 0 ||
          a.rider_index >= static_cast<int>(ctx.riders().size()) ||
          a.driver_index < 0 ||
          a.driver_index >= static_cast<int>(ctx.drivers().size())) {
        MRVD_LOG(Warn) << dispatcher.name() << ": assignment out of range";
        continue;
      }
      if (rider_taken[static_cast<size_t>(a.rider_index)] ||
          driver_taken[static_cast<size_t>(a.driver_index)]) {
        MRVD_LOG(Warn) << dispatcher.name() << ": duplicate assignment";
        continue;
      }
      const WaitingRider& r = ctx.riders()[static_cast<size_t>(a.rider_index)];
      const AvailableDriver& ad =
          ctx.drivers()[static_cast<size_t>(a.driver_index)];
      double pickup_tt = config_.zero_pickup_travel
                             ? 0.0
                             : ctx.PickupSeconds(ad, r);
      if (!config_.zero_pickup_travel &&
          now + pickup_tt > r.pickup_deadline) {
        // Invalid pair (violates Def. 3); dispatchers must not emit these.
        MRVD_LOG(Warn) << dispatcher.name() << ": invalid pair emitted";
        continue;
      }
      rider_taken[static_cast<size_t>(a.rider_index)] = true;
      driver_taken[static_cast<size_t>(a.driver_index)] = true;

      int j = driver_backing[static_cast<size_t>(a.driver_index)];
      DriverState& d = drivers[static_cast<size_t>(j)];
      // Idle-time sample: estimate captured at rejoin vs. realized idle.
      double real_idle = now - d.available_since;
      if (config_.record_idle_samples && d.pending_estimate >= 0.0) {
        result.idle_error.Add(d.pending_estimate, real_idle);
        auto& reg = result.region_idle[static_cast<size_t>(d.region)];
        reg.predicted_sum += d.pending_estimate;
        reg.real_sum += real_idle;
        ++reg.count;
      }
      result.driver_idle_seconds.Add(real_idle);
      d.pending_estimate = -1.0;

      d.busy = true;
      d.busy_until = now + pickup_tt + r.trip_seconds;
      d.busy_dest = r.dropoff;
      d.busy_dest_region = r.dropoff_region;
      busy_heap.push({d.busy_until, j});

      result.total_revenue += r.revenue;
      ++result.served_orders;
      result.served_wait_seconds.Add(now - r.request_time);
      served_waiting_indices.push_back(
          rider_backing[static_cast<size_t>(a.rider_index)]);
    }

    // Remove served riders from the waiting pool (descending order keeps
    // the remaining indices valid).
    std::sort(served_waiting_indices.begin(), served_waiting_indices.end(),
              std::greater<>());
    for (int w : served_waiting_indices) {
      waiting.erase(waiting.begin() + w);
    }
  }

  // Anything left waiting at the horizon never got served.
  result.reneged_orders += static_cast<int64_t>(waiting.size());
  result.reneged_orders += static_cast<int64_t>(workload_.orders.size() -
                                                next_order);
  return result;
}

}  // namespace mrvd
