#include "sim/engine.h"

#include <memory>

#include "geo/region_partitioner.h"
#include "sim/assignment_applier.h"
#include "sim/batch_builder.h"
#include "sim/fleet_state.h"
#include "sim/order_book.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

Simulator::Simulator(const SimConfig& config, const Workload& workload,
                     const Grid& grid, const TravelCostModel& cost_model,
                     const DemandForecast* forecast)
    : config_(config),
      workload_(workload),
      grid_(grid),
      cost_model_(cost_model),
      forecast_(forecast) {}

SimResult Simulator::Run(Dispatcher& dispatcher, SimObserver* extra) {
  MetricsCollector metrics(dispatcher.name(),
                           static_cast<int64_t>(workload_.orders.size()),
                           grid_.num_regions(), config_.record_idle_samples);
  ObserverList observers;
  observers.Add(&metrics);
  observers.Add(extra);

  FleetState fleet(workload_, grid_);
  OrderBook orders(workload_, grid_, cost_model_, config_.alpha);

  // Parallel dispatch plumbing, created once and reused by every batch.
  int threads = config_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                         : config_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<RegionPartitioner> partitioner;
  BatchExecution execution;
  if (threads > 1) {
    int shards = config_.num_shards > 0 ? config_.num_shards : 2 * threads;
    pool = std::make_unique<ThreadPool>(threads);
    partitioner = std::make_unique<RegionPartitioner>(
        RegionPartitioner::RowBands(grid_, shards));
    execution.pool = pool.get();
    execution.partitioner = partitioner.get();
  }
  BatchBuilder builder(grid_, cost_model_, forecast_, config_.window_seconds,
                       config_.reneging_beta, config_.candidate_mode,
                       pool != nullptr ? &execution : nullptr);
  AssignmentApplier applier(dispatcher.name(), config_.zero_pickup_travel);

  const double delta = config_.batch_interval;
  const double horizon = config_.horizon_seconds;
  double now = 0.0;
  for (; now < horizon; now += delta) {
    // 1. Busy drivers finishing by `now` rejoin at their destination.
    fleet.ReleaseFinished(now);

    // 2. Riders that posted since the last batch enter the book; expired
    //    riders renege.
    orders.InjectArrivals(now);
    orders.RemoveExpired(now, &observers);

    if (orders.waiting().empty() && !fleet.HasFreshDrivers() &&
        !fleet.HasBusyDrivers() && orders.Exhausted()) {
      break;  // nothing left to do
    }

    // 3. Build the batch context off the incremental counters.
    fleet.AdvanceRejoinWindow(now, config_.window_seconds);
    Stopwatch build_watch;
    std::unique_ptr<BatchContext> ctx = builder.Build(now, orders, fleet);
    observers.OnBatchBuilt(now, build_watch.ElapsedSeconds(), *ctx);

    // 4. Capture idle-time estimates for freshly (re)joined drivers.
    fleet.CaptureIdleEstimates(config_.record_idle_samples ? ctx.get()
                                                           : nullptr);

    // 5. Dispatch.
    std::vector<Assignment> assignments;
    Stopwatch dispatch_watch;
    dispatcher.Dispatch(*ctx, &assignments);
    observers.OnDispatchDone(now, dispatch_watch.ElapsedSeconds(),
                             assignments);

    // 6. Apply assignments and compact the served riders out of the book.
    applier.Apply(now, *ctx, assignments, &fleet, &orders, &observers);
    observers.OnBatchEnd(now);
  }

  // Anything left waiting (or never injected) at the horizon never got
  // served.
  observers.OnRunEnd(now, orders.UnservedRemainder());
  return metrics.TakeResult();
}

}  // namespace mrvd
