#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/region_partitioner.h"
#include "sim/assignment_applier.h"
#include "sim/batch_builder.h"
#include "sim/fleet_state.h"
#include "sim/order_book.h"
#include "sim/shard_load_tracker.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mrvd {

namespace {

/// Mutable scenario state of one run: the event cursor plus the active
/// surge windows' per-region demand-multiplier product. Everything here is
/// dormant (and allocation-free) when the script is null or empty, which
/// keeps the unscripted path bit-identical.
class ScenarioState {
 public:
  ScenarioState(const ScenarioScript* script,
                const std::vector<DriverSpec>& drivers, const Grid& grid)
      : script_(script), grid_(grid) {
    if (script_ == nullptr || script_->empty()) return;
    events_ = EventStream(*script_);
    surge_active_.assign(script_->surges().size(), false);
    driver_index_.reserve(drivers.size());
    for (size_t j = 0; j < drivers.size(); ++j) {
      driver_index_.emplace(drivers[j].id, static_cast<int>(j));
    }
  }

  bool Exhausted() const { return events_.Exhausted(); }

  /// Applies every event due at `now` to the stages, firing observer hooks
  /// for the ones that changed state. Cancellations are batched into one
  /// stable OrderBook pass.
  void ApplyDueEvents(double now, FleetState* fleet, OrderBook* orders,
                      SimObserver* observers) {
    while (const ScenarioEvent* e = events_.PeekDue(now)) {
      switch (e->type) {
        case ScenarioEventType::kDriverSignOn:
        case ScenarioEventType::kDriverSignOff: {
          const bool on = e->type == ScenarioEventType::kDriverSignOn;
          auto it = driver_index_.find(e->driver_id);
          if (it != driver_index_.end() &&
              (on ? fleet->SignOn(it->second, now)
                  : fleet->SignOff(it->second))) {
            observers->OnDriverShiftChange(now, e->driver_id, on);
          }
          break;
        }
        case ScenarioEventType::kRiderCancel:
          due_cancels_.push_back(e->order_id);
          break;
        case ScenarioEventType::kSurgeBegin:
        case ScenarioEventType::kSurgeEnd: {
          const bool begin = e->type == ScenarioEventType::kSurgeBegin;
          auto& active = surge_active_[static_cast<size_t>(e->surge_index)];
          if (active != static_cast<char>(begin)) {
            active = static_cast<char>(begin);
            RecomputeMultipliers();
            observers->OnSurgeChange(
                now, script_->surges()[static_cast<size_t>(e->surge_index)],
                begin);
          }
          break;
        }
      }
      events_.Pop();
    }
    if (!due_cancels_.empty()) {
      orders->CancelRiders(due_cancels_, now, observers);
      due_cancels_.clear();
    }
  }

  /// Per-region predicted-demand multipliers, or null when no surge is
  /// active (the dormant fast path).
  const std::vector<double>* demand_multipliers() const {
    return demand_multipliers_.empty() ? nullptr : &demand_multipliers_;
  }

 private:
  void RecomputeMultipliers() {
    // With no active surge the vector empties, restoring the dormant
    // (null-multiplier) build path for the rest of the run.
    if (std::find(surge_active_.begin(), surge_active_.end(),
                  static_cast<char>(true)) == surge_active_.end()) {
      demand_multipliers_.clear();
      return;
    }
    demand_multipliers_.assign(static_cast<size_t>(grid_.num_regions()),
                               1.0);
    for (size_t s = 0; s < surge_active_.size(); ++s) {
      if (!surge_active_[s]) continue;
      const SurgeWindow& w = script_->surges()[s];
      if (w.regions.empty()) {
        for (double& m : demand_multipliers_) m *= w.multiplier;
      } else {
        for (RegionId k : w.regions) {
          if (k >= 0 && k < grid_.num_regions()) {
            demand_multipliers_[static_cast<size_t>(k)] *= w.multiplier;
          }
        }
      }
    }
  }

  const ScenarioScript* script_;
  const Grid& grid_;
  EventStream events_;
  std::vector<char> surge_active_;  ///< by ScenarioScript surge index
  std::vector<double> demand_multipliers_;  ///< empty unless a surge is active
  std::unordered_map<DriverId, int> driver_index_;  ///< id -> fleet index
  std::vector<OrderId> due_cancels_;  ///< reused per-batch buffer
};

}  // namespace

Status SimConfig::Validate() const {
  // "Positive" means positive AND finite: ParseDouble accepts "inf", and an
  // infinite horizon (or a batch interval of inf with a finite horizon)
  // would hang the batch loop forever — exactly what Validate() exists to
  // reject before the engine runs.
  if (!(batch_interval > 0.0) || !std::isfinite(batch_interval)) {
    return Status::InvalidArgument(
        "batch_interval (Δ) must be positive and finite, got " +
        std::to_string(batch_interval));
  }
  if (!(window_seconds > 0.0) || !std::isfinite(window_seconds)) {
    return Status::InvalidArgument(
        "window_seconds (t_c) must be positive and finite, got " +
        std::to_string(window_seconds));
  }
  if (!(horizon_seconds > 0.0) || !std::isfinite(horizon_seconds)) {
    return Status::InvalidArgument(
        "horizon_seconds must be positive and finite, got " +
        std::to_string(horizon_seconds));
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency), got " +
        std::to_string(num_threads));
  }
  if (num_shards < 0) {
    return Status::InvalidArgument(
        "num_shards must be >= 0 (0 = derive from threads), got " +
        std::to_string(num_shards));
  }
  if (!(rebalance_threshold >= 1.0) || !std::isfinite(rebalance_threshold)) {
    return Status::InvalidArgument(
        "rebalance_threshold must be >= 1 and finite, got " +
        std::to_string(rebalance_threshold));
  }
  if (!(load_ewma_alpha > 0.0) || load_ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "load_ewma_alpha must be in (0, 1], got " +
        std::to_string(load_ewma_alpha));
  }
  if (!(forecast_blend >= 0.0) || !std::isfinite(forecast_blend)) {
    return Status::InvalidArgument(
        "forecast_blend must be >= 0 and finite, got " +
        std::to_string(forecast_blend));
  }
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha (fee rate) must be positive and "
                                   "finite, got " + std::to_string(alpha));
  }
  if (!(reneging_beta >= 0.0) || !std::isfinite(reneging_beta)) {
    return Status::InvalidArgument("reneging_beta must be >= 0 and finite, "
                                   "got " + std::to_string(reneging_beta));
  }
  return Status::OK();
}

Simulator::Simulator(const SimConfig& config, const Workload& workload,
                     const Grid& grid, const TravelCostModel& cost_model,
                     const DemandForecast* forecast)
    : config_(config),
      workload_(&workload),
      drivers_(workload.drivers),
      grid_(grid),
      cost_model_(cost_model),
      forecast_(forecast) {
  // An invalid config this deep is a programming error (SimulationBuilder
  // reports it as a Status before the engine is ever constructed).
  if (Status st = config_.Validate(); !st.ok()) {
    MRVD_LOG(Error) << "invalid SimConfig: " << st;
    std::abort();
  }
}

Simulator::Simulator(const SimConfig& config, OrderSource& source,
                     const std::vector<DriverSpec>& drivers, const Grid& grid,
                     const TravelCostModel& cost_model,
                     const DemandForecast* forecast)
    : config_(config),
      source_(&source),
      drivers_(drivers),
      grid_(grid),
      cost_model_(cost_model),
      forecast_(forecast) {
  if (Status st = config_.Validate(); !st.ok()) {
    MRVD_LOG(Error) << "invalid SimConfig: " << st;
    std::abort();
  }
}

SimResult Simulator::Run(Dispatcher& dispatcher, SimObserver* extra) {
  return RunImpl(dispatcher, nullptr, extra);
}

SimResult Simulator::Run(Dispatcher& dispatcher, const ScenarioScript& script,
                         SimObserver* extra) {
  return RunImpl(dispatcher, &script, extra);
}

SimResult Simulator::RunImpl(Dispatcher& dispatcher,
                             const ScenarioScript* script,
                             SimObserver* extra) {
  // Materialised runs wrap the workload's vector in a per-run source, so
  // both paths drive the identical OrderBook injection loop; streamed
  // sources are rewound so every Run sees the stream from the top.
  std::optional<MaterializedOrderSource> local_source;
  OrderSource* source = source_;
  if (source == nullptr) {
    local_source.emplace(workload_->orders);
    source = &*local_source;
  } else if (Status st = source->Rewind(); !st.ok()) {
    // A source that cannot reach its first record has no meaningful run;
    // this is an environment failure on par with an invalid config.
    MRVD_LOG(Error) << "order source rewind failed: " << st;
    std::abort();
  }

  MetricsCollector metrics(dispatcher.name(), source->total_orders(),
                           grid_.num_regions(), config_.record_idle_samples);
  ObserverList observers;
  observers.Add(&metrics);
  observers.Add(extra);

  FleetState fleet(drivers_, grid_);
  OrderBook orders(*source, grid_, cost_model_, config_.alpha);
  ScenarioState scenario(script, drivers_, grid_);

  // Parallel dispatch plumbing, created once and reused by every batch.
  int threads = config_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                         : config_.num_threads;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<RegionPartitioner> partitioner;
  std::unique_ptr<ShardLoadTracker> load_tracker;
  BatchExecution execution;
  int shards = 0;
  if (threads > 1) {
    shards = config_.ResolveShards(threads);
    pool = std::make_unique<ThreadPool>(threads);
    partitioner = std::make_unique<RegionPartitioner>(
        RegionPartitioner::RowBands(grid_, shards));
    execution.pool = pool.get();
    execution.partitioner = partitioner.get();
    if (config_.adaptive_sharding) {
      load_tracker = std::make_unique<ShardLoadTracker>(
          grid_.num_regions(), config_.load_ewma_alpha,
          config_.forecast_blend);
    }
  }
  BatchBuilder builder(grid_, cost_model_, forecast_, config_.window_seconds,
                       config_.reneging_beta, config_.candidate_mode,
                       pool != nullptr ? &execution : nullptr);
  AssignmentApplier applier(dispatcher.name(), config_.zero_pickup_travel);

  // Telemetry (null session = off: every site below degrades to a pointer
  // check). Metrics are resolved once; the registry is written only from
  // this thread (see telemetry/metrics.h for the thread model). Counter
  // values and the two per-batch histogram COUNTS are deterministic —
  // invariant across thread counts — while every recorded duration and the
  // per-shard histogram are execution metadata.
  telemetry::TelemetrySession* const tele = config_.telemetry;
  telemetry::Counter* tele_batches = nullptr;
  telemetry::Counter* tele_assignments = nullptr;
  telemetry::Counter* tele_repartitions = nullptr;
  telemetry::LogHistogram* tele_dispatch_hist = nullptr;
  telemetry::LogHistogram* tele_build_hist = nullptr;
  telemetry::LogHistogram* tele_shard_hist = nullptr;
  if (tele != nullptr) {
    telemetry::MetricsRegistry& reg = tele->metrics();
    tele_batches = reg.counter("engine.batches");
    tele_assignments = reg.counter("engine.assignments");
    tele_repartitions =
        reg.counter("engine.repartitions", telemetry::MetricScope::kExecution);
    tele_dispatch_hist = reg.histogram(
        "engine.dispatch_seconds", telemetry::MetricScope::kDeterministic);
    tele_build_hist = reg.histogram("engine.batch_build_seconds",
                                    telemetry::MetricScope::kDeterministic);
    tele_shard_hist = reg.histogram("pipeline.shard_seconds");
  }
  int64_t stage_start_ns = 0;
  auto stage_begin = [&stage_start_ns] {
    stage_start_ns = Stopwatch::NowNanos();
  };
  auto stage_seconds = [&stage_start_ns] {
    return static_cast<double>(Stopwatch::NowNanos() - stage_start_ns) * 1e-9;
  };

  const double delta = config_.batch_interval;
  const double horizon = config_.horizon_seconds;
  double now = 0.0;
  for (; now < horizon; now += delta) {
    telemetry::TraceSpan batch_span(tele, "batch");
    BatchTimings timings;

    // 1. Busy drivers finishing by `now` rejoin at their destination.
    stage_begin();
    {
      telemetry::TraceSpan span(tele, "release_finished");
      fleet.ReleaseFinished(now);
    }
    timings.release_seconds = stage_seconds();

    // 2. Riders that posted since the last batch enter the book; scenario
    //    events due by `now` apply (shifts, cancels, surge transitions);
    //    expired riders renege. Cancellation is processed before reneging,
    //    so a rider whose cancel and deadline land in the same batch counts
    //    as cancelled, not reneged.
    stage_begin();
    {
      telemetry::TraceSpan span(tele, "inject_arrivals");
      orders.InjectArrivals(now);
    }
    timings.inject_seconds = stage_seconds();
    stage_begin();
    {
      telemetry::TraceSpan span(tele, "scenario_events");
      scenario.ApplyDueEvents(now, &fleet, &orders, &observers);
    }
    timings.scenario_seconds = stage_seconds();
    stage_begin();
    {
      telemetry::TraceSpan span(tele, "remove_expired");
      orders.RemoveExpired(now, &observers);
    }
    timings.expire_seconds = stage_seconds();

    if (orders.waiting().empty() && !fleet.HasFreshDrivers() &&
        !fleet.HasBusyDrivers() && orders.Exhausted() &&
        scenario.Exhausted()) {
      break;  // nothing left to do
    }

    // 3. Load-aware repartition: when the tracked demand's imbalance over
    //    the current shard map crosses the hysteresis threshold, rebuild
    //    the row bands weight-balanced and install them before this batch's
    //    context (and its cached shard index) is materialised. Results are
    //    partition-invariant, so this only moves work between workers.
    if (load_tracker != nullptr && load_tracker->has_signal()) {
      const double imbalance =
          ShardLoadTracker::Imbalance(*partitioner, load_tracker->weights());
      if (imbalance > config_.rebalance_threshold) {
        auto rebalanced =
            std::make_unique<RegionPartitioner>(RegionPartitioner::RowBands(
                grid_, shards, load_tracker->weights()));
        if (!rebalanced->SamePartition(*partitioner)) {
          const double after = ShardLoadTracker::Imbalance(
              *rebalanced, load_tracker->weights());
          partitioner = std::move(rebalanced);
          execution.partitioner = partitioner.get();
          if (tele_repartitions != nullptr) tele_repartitions->Add();
          observers.OnRepartition(now, partitioner->num_shards(), imbalance,
                                  after);
        }
      }
    }

    // 4. Build the batch context off the incremental counters.
    fleet.AdvanceRejoinWindow(now, config_.window_seconds);
    Stopwatch build_watch;
    std::unique_ptr<BatchContext> ctx;
    {
      telemetry::TraceSpan span(tele, "batch_build");
      ctx = builder.Build(now, orders, fleet, scenario.demand_multipliers());
    }
    const double build_seconds = build_watch.ElapsedSeconds();
    timings.build_seconds = build_seconds;
    ctx->SetTelemetry(tele);
    observers.OnBatchBuilt(now, build_seconds, *ctx);
    if (load_tracker != nullptr) load_tracker->Observe(ctx->snapshots());

    // 5. Capture idle-time estimates for freshly (re)joined drivers.
    fleet.CaptureIdleEstimates(config_.record_idle_samples ? ctx.get()
                                                           : nullptr);

    // 6. Dispatch.
    std::vector<Assignment> assignments;
    Stopwatch dispatch_watch;
    {
      telemetry::TraceSpan span(tele, "dispatch");
      dispatcher.Dispatch(*ctx, &assignments);
    }
    const double dispatch_seconds = dispatch_watch.ElapsedSeconds();
    timings.dispatch_seconds = dispatch_seconds;
    observers.OnDispatchDone(now, dispatch_seconds, assignments);
    if (const DispatchCounters* counters = dispatcher.counters()) {
      observers.OnDispatchCounters(now, *counters);
      if (tele_shard_hist != nullptr) {
        // Per-shard parallel-phase wall times reach the registry here, on
        // the coordinating thread — workers never touch the registry.
        for (const ShardLoadStat& s : counters->shards) {
          tele_shard_hist->Add(s.seconds);
        }
      }
    }

    // 7. Apply assignments and compact the served riders out of the book.
    stage_begin();
    {
      telemetry::TraceSpan span(tele, "assignment_apply");
      applier.Apply(now, *ctx, assignments, &fleet, &orders, &observers);
    }
    timings.apply_seconds = stage_seconds();

    if (tele_batches != nullptr) {
      tele_batches->Add();
      tele_assignments->Add(static_cast<int64_t>(assignments.size()));
      tele_dispatch_hist->Add(dispatch_seconds);
      tele_build_hist->Add(build_seconds);
    }
    observers.OnBatchTimings(now, timings);
    observers.OnBatchEnd(now);
  }

  // Anything left waiting (or never injected) at the horizon never got
  // served.
  if (tele != nullptr) observers.OnRunTelemetry(now, *tele);
  observers.OnRunEnd(now, orders.UnservedRemainder());
  return metrics.TakeResult();
}

}  // namespace mrvd
