#include "sim/observer.h"

#include <algorithm>

#include "sim/batch.h"

namespace mrvd {

MetricsCollector::MetricsCollector(const std::string& dispatcher_name,
                                   int64_t total_orders, int num_regions,
                                   bool record_idle_samples)
    : record_idle_samples_(record_idle_samples) {
  result_.dispatcher = dispatcher_name;
  result_.total_orders = total_orders;
  result_.region_idle.assign(static_cast<size_t>(num_regions), {});
}

void MetricsCollector::OnBatchBuilt(double /*now*/, double build_seconds,
                                    const BatchContext& /*ctx*/) {
  result_.batch_build_seconds.Add(build_seconds);
}

void MetricsCollector::OnDispatchDone(
    double /*now*/, double dispatch_seconds,
    const std::vector<Assignment>& /*assignments*/) {
  result_.batch_seconds.Add(dispatch_seconds);
  dispatch_latency_.Add(dispatch_seconds);
  ++result_.num_batches;
}

void MetricsCollector::OnDispatchCounters(double /*now*/,
                                          const DispatchCounters& c) {
  result_.dispatch_sweeps += c.sweeps;
  result_.dispatch_swaps_applied += c.swaps_applied;
  result_.dispatch_proposals += c.proposals;
  result_.dispatch_proposals_recomputed += c.proposals_recomputed;
  if (!c.shards.empty()) {
    int64_t max_riders = 0;
    int64_t total_riders = 0;
    double max_seconds = 0.0;
    double total_seconds = 0.0;
    for (const ShardLoadStat& s : c.shards) {
      max_riders = std::max(max_riders, s.riders);
      total_riders += s.riders;
      max_seconds = std::max(max_seconds, s.seconds);
      total_seconds += s.seconds;
    }
    const auto n = static_cast<double>(c.shards.size());
    if (total_riders > 0) {
      result_.shard_size_imbalance.Add(static_cast<double>(max_riders) * n /
                                       static_cast<double>(total_riders));
    }
    if (total_seconds > 0.0) {
      result_.shard_time_imbalance.Add(max_seconds * n / total_seconds);
    }
  }
}

void MetricsCollector::OnAssignmentApplied(double /*now*/,
                                           const AssignmentEvent& e) {
  if (record_idle_samples_ && e.idle_estimate >= 0.0) {
    result_.idle_error.Add(e.idle_estimate, e.real_idle_seconds);
    auto& reg = result_.region_idle[static_cast<size_t>(e.driver_region)];
    reg.predicted_sum += e.idle_estimate;
    reg.real_sum += e.real_idle_seconds;
    ++reg.count;
  }
  result_.driver_idle_seconds.Add(e.real_idle_seconds);
  result_.total_revenue += e.revenue;
  ++result_.served_orders;
  result_.served_wait_seconds.Add(e.wait_seconds);
}

void MetricsCollector::OnRiderReneged(double /*now*/, const Order& /*order*/) {
  ++result_.reneged_orders;
}

void MetricsCollector::OnDriverShiftChange(double /*now*/,
                                           DriverId /*driver_id*/,
                                           bool signed_on) {
  if (signed_on) {
    ++result_.driver_sign_ons;
  } else {
    ++result_.driver_sign_offs;
  }
}

void MetricsCollector::OnRiderCancelled(double /*now*/,
                                        const Order& /*order*/) {
  ++result_.cancelled_orders;
}

void MetricsCollector::OnSurgeChange(double /*now*/,
                                     const SurgeWindow& /*window*/,
                                     bool /*active*/) {
  ++result_.surge_changes;
}

void MetricsCollector::OnRepartition(double /*now*/, int /*num_shards*/,
                                     double /*imbalance_before*/,
                                     double /*imbalance_after*/) {
  ++result_.repartitions;
}

void MetricsCollector::OnRunEnd(double /*end_time*/,
                                int64_t never_dispatched) {
  result_.reneged_orders += never_dispatched;
  result_.dispatch_latency_p50 = dispatch_latency_.P50();
  result_.dispatch_latency_p95 = dispatch_latency_.P95();
  result_.dispatch_latency_p99 = dispatch_latency_.P99();
}

}  // namespace mrvd
