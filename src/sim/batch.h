// Batch-processing interface between the simulator and the dispatching
// algorithms (Algorithm 1, line 7). The engine snapshots the platform state
// every Δ seconds and hands the dispatcher a BatchContext; the dispatcher
// returns rider-driver assignments.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "geo/travel.h"
#include "queueing/rates.h"
#include "workload/types.h"

namespace mrvd {

class ThreadPool;
class RegionPartitioner;

namespace telemetry {
class TelemetrySession;
}  // namespace telemetry

/// Parallel-execution context for one batch: a reusable worker pool plus
/// the region sharding. When a BatchContext carries one (see
/// BatchContext::SetExecution), dispatchers shard candidate generation,
/// idle-time evaluation and speculative greedy selection across the pool;
/// without one every dispatcher runs the serial path. Both owned objects
/// must outlive the batch.
struct BatchExecution {
  ThreadPool* pool = nullptr;
  const RegionPartitioner* partitioner = nullptr;

  /// True if this execution can actually fan out work.
  bool Parallel() const;
};

/// A rider waiting in the current batch.
struct WaitingRider {
  OrderId order_id = -1;
  LatLon pickup;
  LatLon dropoff;
  double request_time = 0.0;
  double pickup_deadline = 0.0;
  double revenue = 0.0;        ///< α * cost(s_i, e_i), precomputed
  double trip_seconds = 0.0;   ///< cost(s_i, e_i)
  RegionId pickup_region = kInvalidRegion;
  RegionId dropoff_region = kInvalidRegion;
};

/// An available driver in the current batch.
struct AvailableDriver {
  DriverId driver_id = -1;
  LatLon location;
  RegionId region = kInvalidRegion;
  double available_since = 0.0;
};

/// One selected rider-and-driver dispatching pair; indices refer to the
/// BatchContext's riders()/drivers() arrays.
struct Assignment {
  int rider_index = -1;
  int driver_index = -1;
};

/// How candidate rider-driver pairs are generated.
enum class CandidateMode {
  /// Pairs only within the rider's pickup region (Algorithm 2 lines 3-4:
  /// valid pairs are retrieved from R_k and D_k of the same region a_k).
  /// This keeps the region queue model exact: a rejoining driver competes
  /// only with his region's riders, as §4 assumes.
  kRegionLocal,
  /// Ring-expanding cross-region search bounded by the pickup deadline —
  /// a generalization that admits any Def.-3-valid pair.
  kRingExpand,
};

/// Read-mostly snapshot of one batch. The idle-time estimates are cached
/// per (region, extra-driver count) because IRG/LS/SHORT re-query them as
/// their tentative selections shift future driver supply (§5.1, line 11).
class BatchContext {
 public:
  BatchContext(double now, double window_seconds, double reneging_beta,
               const Grid& grid, const TravelCostModel& cost_model,
               CandidateMode candidate_mode = CandidateMode::kRingExpand);

  CandidateMode candidate_mode() const { return candidate_mode_; }

  double now() const { return now_; }
  double window_seconds() const { return window_seconds_; }
  const Grid& grid() const { return grid_; }
  const TravelCostModel& cost_model() const { return cost_model_; }

  const std::vector<WaitingRider>& riders() const { return riders_; }
  const std::vector<AvailableDriver>& drivers() const { return drivers_; }
  /// Indices of available drivers bucketed by current region.
  const std::vector<std::vector<int>>& drivers_by_region() const {
    return drivers_by_region_;
  }

  /// Region demand/supply snapshots (inputs of Eqs. 18/19).
  const std::vector<RegionSnapshot>& snapshots() const { return snapshots_; }

  /// λ(k), μ(k) for the scheduling window (Eqs. 18/19), with
  /// `extra_drivers` added to the rejoining-driver count of the region —
  /// used by the dispatchers to price tentative selections.
  RegionRates RatesFor(RegionId region, int extra_drivers = 0) const;

  /// Expected idle time ET(λ(k), μ(k)) in seconds for a driver rejoining
  /// `region`, given `extra_drivers` additional rejoiners (cached).
  /// NOT thread-safe (the memo table is shared); shard workers go through
  /// ShardedBatchContext::ExpectedIdleSeconds instead.
  double ExpectedIdleSeconds(RegionId region, int extra_drivers = 0) const;

  /// Same value as ExpectedIdleSeconds but bypassing the memo table: a pure
  /// function of the immutable snapshots, safe to call concurrently.
  double ComputeIdleSeconds(RegionId region, int extra_drivers = 0) const;

  /// Inserts a precomputed ET value into the memo table (first write wins).
  /// Called sequentially when merging shard-local caches; warming never
  /// changes results because the cached value is the pure ComputeIdleSeconds
  /// of the same immutable snapshot.
  void WarmIdleCache(RegionId region, int extra_drivers, double et) const;

  /// Bulk variant of WarmIdleCache: merges a shard-local memo table (keys
  /// from IdleCacheKey) into this context's table, first write wins.
  void MergeIdleCache(std::unordered_map<int64_t, double>&& cache) const;

  /// Memo key for (region, extra_drivers); extra_drivers < 2^20.
  static int64_t IdleCacheKey(RegionId region, int extra_drivers) {
    return (static_cast<int64_t>(region) << 20) | extra_drivers;
  }

  /// Optional parallel execution (null = serial). The pointed-to object is
  /// not owned and must outlive the batch.
  void SetExecution(const BatchExecution* execution) {
    execution_ = execution;
  }
  const BatchExecution* execution() const { return execution_; }

  /// Optional telemetry session (null = telemetry off), set by the engine
  /// so dispatchers can emit trace spans and phase histograms without any
  /// extra plumbing. Borrowed; must outlive the batch.
  void SetTelemetry(telemetry::TelemetrySession* telemetry) {
    telemetry_ = telemetry;
  }
  telemetry::TelemetrySession* telemetry() const { return telemetry_; }

  /// Travel seconds from a driver's location to a rider's pickup.
  double PickupSeconds(const AvailableDriver& d, const WaitingRider& r) const {
    return cost_model_.TravelSeconds(d.location, r.pickup);
  }

  /// True if driver `d` can reach rider `r`'s pickup before the deadline
  /// (Def. 3, valid rider-and-driver dispatching pair).
  bool IsValidPair(const AvailableDriver& d, const WaitingRider& r) const {
    return now_ + PickupSeconds(d, r) <= r.pickup_deadline;
  }

  /// Mutable setup API (used by the engine when building the batch).
  void AddRider(const WaitingRider& r);
  void AddDriver(const AvailableDriver& d);
  void SetSnapshots(std::vector<RegionSnapshot> snapshots);

  /// Bulk setup API (the staged engine's BatchBuilder materialises the
  /// vectors — possibly shard-parallel — and moves them in; the per-region
  /// driver buckets are rebuilt in one pass, in the same ascending
  /// context-index order AddDriver produces).
  void SetRiders(std::vector<WaitingRider> riders);
  void SetDrivers(std::vector<AvailableDriver> drivers);

  /// Per-shard context-index lists, shared by every ShardedBatchContext of
  /// the batch. Built in ONE pass over riders + drivers — the former
  /// per-shard membership scans cost O(S·(R+D)) per batch.
  struct ShardIndex {
    const RegionPartitioner* partitioner = nullptr;
    std::vector<std::vector<int>> riders;   ///< by pickup-region shard
    std::vector<std::vector<int>> drivers;  ///< by current-region shard
  };

  /// Installs a prebuilt shard index (engine path; `index.partitioner`
  /// must be the execution's partitioner).
  void SetShardIndex(ShardIndex index);

  /// Returns the shard index for execution()->partitioner, building it in
  /// one pass if absent. Serial and not thread-safe: call from the
  /// coordinating thread before fanning out shard work. Null when the
  /// context has no parallel execution attached.
  const ShardIndex* EnsureShardIndex() const;

  /// The shard index if one has been built/installed, else null (never
  /// builds; see EnsureShardIndex).
  const ShardIndex* shard_index() const {
    return shard_index_.partitioner == nullptr ? nullptr : &shard_index_;
  }

  /// Cap on congested drivers K for region ET queries: available drivers in
  /// the region now plus predicted rejoiners (at least 1).
  int64_t MaxDriversFor(RegionId region, int extra_drivers) const;

 private:
  double now_;
  double window_seconds_;
  double reneging_beta_;
  const Grid& grid_;
  const TravelCostModel& cost_model_;
  CandidateMode candidate_mode_;

  std::vector<WaitingRider> riders_;
  std::vector<AvailableDriver> drivers_;
  std::vector<std::vector<int>> drivers_by_region_;
  std::vector<RegionSnapshot> snapshots_;
  const BatchExecution* execution_ = nullptr;
  telemetry::TelemetrySession* telemetry_ = nullptr;  ///< borrowed; may be null
  mutable ShardIndex shard_index_;  ///< lazily built; see EnsureShardIndex

  /// (region << 20 | extra) -> ET cache.
  mutable std::unordered_map<int64_t, double> idle_cache_;
};

/// Per-shard read view of one BatchContext used by the parallel pipeline.
/// It exposes the shard's riders/drivers and an idle-time memo table private
/// to the shard's worker, so concurrent shards never touch the parent's
/// shared cache. After the parallel phase the local tables are merged back
/// into the parent (BatchContext::WarmIdleCache), which cannot change any
/// value — ET is a pure function of the immutable snapshots — so the
/// sequential reconciliation pass sees exactly the serial path's numbers.
///
/// The shard's rider/driver index lists come from the parent's shared
/// ShardIndex when one is present for `partitioner` (the pipeline and the
/// engine always prebuild it); only contexts assembled by hand fall back to
/// a membership scan. The view *borrows* the parent's index: mutating the
/// parent (AddRider/AddDriver/SetRiders/SetDrivers, or an EnsureShardIndex
/// rebuild after such a mutation) invalidates every outstanding view, like
/// iterator invalidation on the underlying containers.
class ShardedBatchContext {
 public:
  ShardedBatchContext(const BatchContext& parent,
                      const RegionPartitioner& partitioner, int shard);

  const BatchContext& parent() const { return parent_; }
  int shard() const { return shard_; }

  bool OwnsRegion(RegionId region) const;

  /// Context rider indices whose pickup region belongs to this shard.
  const std::vector<int>& rider_indices() const { return *rider_indices_; }
  /// Context driver indices currently located in this shard.
  const std::vector<int>& driver_indices() const { return *driver_indices_; }

  /// ET(region, extra) memoised in the shard-local table.
  double ExpectedIdleSeconds(RegionId region, int extra_drivers = 0) const;

  /// The shard-local memo table, for merging into the parent.
  const std::unordered_map<int64_t, double>& idle_cache() const {
    return idle_cache_;
  }

  /// Moves the memo table out (the view is spent afterwards); lets the
  /// merge avoid copying every shard's table.
  std::unordered_map<int64_t, double> ReleaseIdleCache() {
    return std::move(idle_cache_);
  }

 private:
  const BatchContext& parent_;
  const RegionPartitioner& partitioner_;
  int shard_;
  const std::vector<int>* rider_indices_ = nullptr;
  const std::vector<int>* driver_indices_ = nullptr;
  std::vector<int> local_riders_;   ///< fallback storage (no shared index)
  std::vector<int> local_drivers_;
  mutable std::unordered_map<int64_t, double> idle_cache_;
};

/// Per-shard pipeline telemetry for one Dispatch: the shard's batch sizes
/// and the wall time its parallel-phase work took. max/mean over `seconds`
/// is the load-imbalance factor adaptive sharding exists to close.
struct ShardLoadStat {
  int64_t riders = 0;    ///< context riders whose pickup is in the shard
  int64_t drivers = 0;   ///< context drivers located in the shard
  double seconds = 0.0;  ///< shard's parallel-phase wall time
};

/// Per-Dispatch work counters for iterative dispatchers (currently LS):
/// convergence and speculation behaviour observable without a profiler.
/// Sweep-less dispatchers leave everything zero.
struct DispatchCounters {
  int64_t sweeps = 0;          ///< refinement sweeps actually run
  int64_t swaps_applied = 0;   ///< improving swaps committed
  int64_t proposals = 0;       ///< best-swap evaluations proposed
  /// Speculative proposals invalidated by an earlier commit and recomputed
  /// serially (always 0 on the serial path) — proposals_recomputed /
  /// proposals is the conflict rate of the parallel decomposition.
  int64_t proposals_recomputed = 0;
  /// One entry per pipeline shard (empty on the serial path), filled by
  /// PrepareShardedBatch for every dispatcher that runs through it.
  std::vector<ShardLoadStat> shards;
};

/// A batch dispatching algorithm (§5, §6.3).
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Display name ("IRG", "LS", "POLAR", ...).
  virtual std::string name() const = 0;

  /// Selects the batch's rider-and-driver pairs. Each rider and each driver
  /// may appear in at most one assignment, and every returned pair must be
  /// valid per BatchContext::IsValidPair (UPPER is exempt: the engine runs
  /// it with zero pickup travel).
  virtual void Dispatch(const BatchContext& ctx,
                        std::vector<Assignment>* out) = 0;

  /// Work counters for the most recent Dispatch, or null if the dispatcher
  /// does not track any. Valid until the next Dispatch on this object.
  virtual const DispatchCounters* counters() const { return nullptr; }
};

}  // namespace mrvd
