// Assignment-application stage of the staged engine: validates the
// dispatcher's selected pairs (index ranges, one-assignment-per-entity,
// Def.-3 validity unless the run waives pickup travel) and applies the
// accepted ones — the driver goes busy until pickup + trip completes, the
// rider is marked served — emitting one AssignmentEvent per accepted pair
// so observers (metrics, traces) stay out of the simulation logic. Served
// riders are removed from the order book with a single compaction pass at
// the end of the batch.
#pragma once

#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/fleet_state.h"
#include "sim/observer.h"
#include "sim/order_book.h"

namespace mrvd {

class AssignmentApplier {
 public:
  /// `dispatcher_name` labels validation warnings. `zero_pickup_travel`
  /// waives pickup cost and pair validity (UPPER mode).
  AssignmentApplier(std::string dispatcher_name, bool zero_pickup_travel);

  /// Applies `assignments` against the batch in emission order; `observer`
  /// may be null. The context's rider indices must address `orders`'
  /// waiting pool directly (the BatchBuilder guarantees this).
  void Apply(double now, const BatchContext& ctx,
             const std::vector<Assignment>& assignments, FleetState* fleet,
             OrderBook* orders, SimObserver* observer) const;

 private:
  const std::string dispatcher_name_;
  const bool zero_pickup_travel_;
};

}  // namespace mrvd
