// Order-book stage of the staged engine: owns the waiting-rider pool and
// the demand-side region counters. Riders are injected as their request
// times pass, renege when their pickup deadline expires, and leave the pool
// when served. Serving uses mark-and-compact — assignments only flip a
// flag, and one stable compaction pass per batch removes all served riders
// — so a batch with A assignments costs O(W + A) instead of the former
// O(A · W) per-assignment deque erases. The pool's relative order (arrival
// order) is preserved by the stable compaction, which keeps the batch's
// canonical rider order — and therefore every dispatcher's output —
// bit-identical to the monolithic engine.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "geo/grid.h"
#include "geo/travel.h"
#include "sim/observer.h"
#include "workload/order_source.h"
#include "workload/types.h"

namespace mrvd {

/// A rider waiting to be dispatched, with the derived per-order quantities
/// (trip cost, revenue, regions) computed once at injection. Owns its
/// Order record: with a streamed source the day is never materialised, so
/// there is nothing stable to point into — the pool (plus the stream
/// buffer) IS the order-side working set, which is what makes peak memory
/// O(batch) instead of O(day).
struct PendingRider {
  Order order;
  double trip_seconds = 0.0;
  double revenue = 0.0;
  RegionId pickup_region = kInvalidRegion;
  RegionId dropoff_region = kInvalidRegion;
  bool served = false;  ///< marked by the applier, removed by CompactServed
};

class OrderBook {
 public:
  /// `alpha` is the travel-fee rate (revenue = alpha * trip_seconds). All
  /// referenced objects must outlive the book. `source` supplies arrivals
  /// in request-time order (materialised or streamed).
  OrderBook(OrderSource& source, const Grid& grid,
            const TravelCostModel& cost_model, double alpha);

  /// Convenience for materialised workloads: wraps `workload.orders` in an
  /// internally owned MaterializedOrderSource.
  OrderBook(const Workload& workload, const Grid& grid,
            const TravelCostModel& cost_model, double alpha);

  /// Injects every order with request_time <= now (orders are sorted).
  void InjectArrivals(double now);

  /// Removes riders whose pickup deadline passed, notifying `observer`
  /// (may be null) per renege in pool order.
  void RemoveExpired(double now, SimObserver* observer);

  /// Scenario cancellation, explicitly distinct from deadline reneging:
  /// removes every waiting rider whose order id is in `order_ids` in one
  /// stable pass, notifying `observer` (may be null) per cancel in pool
  /// order via OnRiderCancelled. Ids that match no waiting rider (already
  /// served, already reneged, or not yet injected) are silently skipped.
  /// Returns the number of riders actually cancelled.
  int64_t CancelRiders(const std::vector<OrderId>& order_ids, double now,
                       SimObserver* observer);

  /// Flags the rider at `waiting_index` as served and updates the demand
  /// counter; the rider stays in place until CompactServed().
  void MarkServed(int waiting_index);

  /// Removes all served riders in one stable pass; call once per batch
  /// after the assignments are applied.
  void CompactServed();

  /// Waiting riders in arrival order. Indices into this deque are the batch
  /// context's rider indices (the builder materialises all of them, in
  /// order), so Assignment::rider_index addresses this pool directly.
  const std::deque<PendingRider>& waiting() const { return waiting_; }

  /// |R_k|: unserved in-deadline riders per pickup region.
  const std::vector<int64_t>& demand_by_region() const {
    return demand_by_region_;
  }

  /// True once every order of the source has been injected. (A failed
  /// stream keeps remaining() > 0, so the engine's early-exit never
  /// mistakes an I/O error for a completed day.)
  bool Exhausted() const { return source_->remaining() == 0; }

  /// Orders that will never be dispatched if the run stops now: the
  /// still-waiting pool plus orders whose request time was never reached.
  int64_t UnservedRemainder() const {
    return static_cast<int64_t>(waiting_.size()) + source_->remaining();
  }

 private:
  std::unique_ptr<MaterializedOrderSource> owned_source_;  ///< may be null
  OrderSource* source_;
  const Grid& grid_;
  const TravelCostModel& cost_model_;
  const double alpha_;

  std::deque<PendingRider> waiting_;
  std::vector<int64_t> demand_by_region_;
};

}  // namespace mrvd
