// Driver-lifecycle stage of the staged engine: owns every driver's state,
// the busy-completion heap, and the *incremental* supply-side region
// counters the BatchBuilder reads instead of rescanning the fleet each
// batch:
//
//   * available_by_region() — |D_k| per region, updated on assignment and
//     rejoin;
//   * rejoining_in_window() — the rejoined-driver schedule |D̂_k| over
//     (now, now + t_c] (§3.1.2: supply is known from the schedules of
//     active drivers), maintained by a window-entry heap plus a per-driver
//     "counted" flag so each completion event is counted while — and only
//     while — it lies inside the sliding window.
//
// Both counters are integer deltas of the quantities the monolithic engine
// recounted per batch, so every snapshot they feed is bit-identical.
#pragma once

#include <queue>
#include <vector>

#include "geo/grid.h"
#include "sim/batch.h"
#include "workload/types.h"

namespace mrvd {

/// Mutable state of one driver across the day.
struct DriverState {
  DriverId id = -1;  ///< workload DriverSpec::id (scenario scripts' space)
  LatLon location;
  RegionId region = kInvalidRegion;
  double available_since = 0.0;
  bool busy = false;
  double busy_until = 0.0;
  LatLon busy_dest;
  RegionId busy_dest_region = kInvalidRegion;
  /// Idle-time estimate captured when the driver (re)joined a queue.
  double pending_estimate = -1.0;  ///< < 0: none
  /// True while this driver's completion is counted in rejoining_in_window_.
  bool counted_in_window = false;
  /// Off duty (scenario shift change): out of every supply counter and
  /// never materialised into a batch. Mutually exclusive with `busy`.
  bool signed_off = false;
  /// Busy driver that will sign off when the current trip completes.
  bool sign_off_pending = false;

  /// True if the driver can receive assignments in the next batch.
  bool Dispatchable() const { return !busy && !signed_off; }
};

class FleetState {
 public:
  FleetState(const std::vector<DriverSpec>& drivers, const Grid& grid);
  FleetState(const Workload& workload, const Grid& grid)
      : FleetState(workload.drivers, grid) {}

  int size() const { return static_cast<int>(drivers_.size()); }
  const DriverState& driver(int j) const {
    return drivers_[static_cast<size_t>(j)];
  }
  const std::vector<DriverState>& drivers() const { return drivers_; }

  /// Algorithm 1 step: busy drivers whose trip completes by `now` rejoin
  /// the platform at their dropoff (location, region, available_since all
  /// advance) and are queued for a fresh idle-time estimate.
  void ReleaseFinished(double now);

  /// Slides the rejoined-driver window to (now, now + window_seconds]:
  /// completion events entering the window start counting toward their
  /// dropoff region's predicted supply. Call once per batch, after
  /// ReleaseFinished and before the snapshot build.
  void AdvanceRejoinWindow(double now, double window_seconds);

  /// Marks driver `j` busy until `busy_until`, bound for `dest`; the
  /// completion event is scheduled into the rejoin window.
  void MarkBusy(int j, double busy_until, const LatLon& dest,
                RegionId dest_region);

  /// Scenario shift change: the driver leaves the supply. An idle driver
  /// leaves the available counters immediately; a busy driver finishes the
  /// current trip first (sign-off pending) and its completion event leaves
  /// the rejoin-window schedule at once — the region's predicted supply
  /// must not count a driver that will not rejoin. Returns false (no-op)
  /// if the driver is already off duty or pending sign-off.
  bool SignOff(int j);

  /// Scenario shift change: the driver re-enters the supply at its current
  /// location, incrementally (counter deltas plus the fresh-driver queue —
  /// never a rescan). Cancels a pending sign-off (the driver simply stays
  /// on duty and rejoins normally). Returns false if the driver is already
  /// on duty.
  bool SignOn(int j, double now);

  /// Captures ET estimates for drivers that (re)joined since the last call
  /// (skipped when `ctx` is null, but the fresh list is always consumed).
  void CaptureIdleEstimates(const BatchContext* ctx);

  /// Clears a driver's captured estimate once it has been consumed.
  void ClearIdleEstimate(int j) {
    drivers_[static_cast<size_t>(j)].pending_estimate = -1.0;
  }

  /// |D_k|: available (non-busy) drivers currently in each region.
  const std::vector<int64_t>& available_by_region() const {
    return available_by_region_;
  }

  /// |D̂_k|: busy drivers rejoining region k within the current window.
  const std::vector<int32_t>& rejoining_in_window() const {
    return rejoining_in_window_;
  }

  int64_t available_count() const { return available_count_; }
  bool HasBusyDrivers() const { return !busy_heap_.empty(); }
  bool HasFreshDrivers() const { return !fresh_drivers_.empty(); }

 private:
  using TimedDriver = std::pair<double, int>;  ///< (time, driver index)
  using MinHeap = std::priority_queue<TimedDriver, std::vector<TimedDriver>,
                                      std::greater<>>;

  std::vector<DriverState> drivers_;
  MinHeap busy_heap_;    ///< (busy_until, j): pending trip completions
  MinHeap window_heap_;  ///< (busy_until, j): not yet inside the window
  std::vector<int> fresh_drivers_;  ///< (re)joined since the last capture
  std::vector<int64_t> available_by_region_;
  std::vector<int32_t> rejoining_in_window_;
  int64_t available_count_ = 0;
};

}  // namespace mrvd
