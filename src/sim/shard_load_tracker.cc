#include "sim/shard_load_tracker.h"

#include <algorithm>

#include "geo/region_partitioner.h"

namespace mrvd {

ShardLoadTracker::ShardLoadTracker(int num_regions, double ewma_alpha,
                                   double forecast_blend)
    : ewma_alpha_(ewma_alpha),
      forecast_blend_(forecast_blend),
      ewma_(static_cast<size_t>(num_regions), 0.0),
      weights_(static_cast<size_t>(num_regions), 0.0) {}

void ShardLoadTracker::Observe(const std::vector<RegionSnapshot>& snapshots) {
  if (snapshots.size() != ewma_.size()) return;
  double total = 0.0;
  for (size_t k = 0; k < snapshots.size(); ++k) {
    const double observed = static_cast<double>(snapshots[k].waiting_riders);
    // First observation seeds the EWMA directly so early batches are not
    // dragged toward the zero initial state.
    ewma_[k] = has_signal_ ? ewma_alpha_ * observed +
                                 (1.0 - ewma_alpha_) * ewma_[k]
                           : observed;
    weights_[k] = ewma_[k] + forecast_blend_ * snapshots[k].predicted_riders;
    total += weights_[k];
  }
  if (total > 0.0) has_signal_ = true;
}

double ShardLoadTracker::Imbalance(const RegionPartitioner& parts,
                                   const std::vector<double>& weights) {
  if (static_cast<int>(weights.size()) != parts.num_regions() ||
      parts.num_shards() == 0) {
    return 1.0;
  }
  double max_shard = 0.0;
  double total = 0.0;
  for (const auto& regions : parts.shard_regions()) {
    double w = 0.0;
    for (RegionId r : regions) w += weights[static_cast<size_t>(r)];
    max_shard = std::max(max_shard, w);
    total += w;
  }
  if (total <= 0.0) return 1.0;
  return max_shard * static_cast<double>(parts.num_shards()) / total;
}

}  // namespace mrvd
