// Aggregated outcome of one simulated day (the quantities reported in the
// paper's evaluation: total revenue, served orders, batch running time,
// idle-time estimation accuracy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/metrics.h"

namespace mrvd {

/// Per-region idle-time aggregates (Figure 6).
struct RegionIdleStats {
  double predicted_sum = 0.0;
  double real_sum = 0.0;
  int64_t count = 0;

  double MeanPredicted() const {
    return count == 0 ? 0.0 : predicted_sum / static_cast<double>(count);
  }
  double MeanReal() const {
    return count == 0 ? 0.0 : real_sum / static_cast<double>(count);
  }
};

struct SimResult {
  std::string dispatcher;

  // Revenue & service (Figures 7-10, 13).
  double total_revenue = 0.0;
  int64_t served_orders = 0;
  int64_t reneged_orders = 0;
  int64_t total_orders = 0;

  // Scenario events (driver shifts, cancellations, surges). All zero when
  // the run had no (or an empty) ScenarioScript. Explicit cancellations
  // are NOT counted as reneges: served + reneged + cancelled = total for a
  // run-to-exhaustion day.
  int64_t cancelled_orders = 0;
  int64_t driver_sign_ons = 0;
  int64_t driver_sign_offs = 0;
  int64_t surge_changes = 0;  ///< surge-window begin/end transitions

  // Batch processing (Figures 7b-10b).
  int64_t num_batches = 0;
  RunningStats batch_seconds;        ///< dispatcher time per batch
  RunningStats batch_build_seconds;  ///< batch-construction time per batch

  // Per-batch dispatch-latency percentiles from MetricsCollector's
  // log-bucketed histogram (seconds; 0 when no batch ran). Wall-clock
  // execution metadata like batch_seconds: never part of bit-identity
  // comparisons or content-addressed keys.
  double dispatch_latency_p50 = 0.0;
  double dispatch_latency_p95 = 0.0;
  double dispatch_latency_p99 = 0.0;

  // Idle-time estimation study (Table 3, Figure 6).
  ErrorStats idle_error;                    ///< (estimated, real) pairs
  std::vector<RegionIdleStats> region_idle; ///< indexed by region

  // Extra diagnostics.
  RunningStats served_wait_seconds;  ///< request -> assignment wait
  RunningStats driver_idle_seconds;  ///< realized idle gaps

  // Dispatcher work counters summed over the run (Dispatcher::counters);
  // all zero for dispatchers that don't track them. For LS,
  // dispatch_proposals_recomputed / dispatch_proposals is the conflict rate
  // of the parallel sweep decomposition (0 on the serial path).
  int64_t dispatch_sweeps = 0;
  int64_t dispatch_swaps_applied = 0;
  int64_t dispatch_proposals = 0;
  int64_t dispatch_proposals_recomputed = 0;

  // Shard-load telemetry of the parallel pipeline (empty/zero on serial
  // runs — this is diagnostics about HOW the run executed, not about its
  // outcome, which is partition-invariant). Per batch, imbalance = max
  // shard over mean shard of the pipeline's per-shard rider counts
  // (shard_size_imbalance) and parallel-phase wall times
  // (shard_time_imbalance); repartitions counts the adaptive-sharding
  // rebuilds (SimConfig::adaptive_sharding).
  RunningStats shard_size_imbalance;
  RunningStats shard_time_imbalance;
  int64_t repartitions = 0;

  double ServiceRate() const {
    return total_orders == 0
               ? 0.0
               : static_cast<double>(served_orders) /
                     static_cast<double>(total_orders);
  }
};

}  // namespace mrvd
