#include "sim/order_book.h"

#include <algorithm>
#include <unordered_set>

namespace mrvd {

OrderBook::OrderBook(OrderSource& source, const Grid& grid,
                     const TravelCostModel& cost_model, double alpha)
    : source_(&source), grid_(grid), cost_model_(cost_model), alpha_(alpha) {
  demand_by_region_.assign(static_cast<size_t>(grid.num_regions()), 0);
}

OrderBook::OrderBook(const Workload& workload, const Grid& grid,
                     const TravelCostModel& cost_model, double alpha)
    : owned_source_(std::make_unique<MaterializedOrderSource>(workload.orders)),
      source_(owned_source_.get()),
      grid_(grid),
      cost_model_(cost_model),
      alpha_(alpha) {
  demand_by_region_.assign(static_cast<size_t>(grid.num_regions()), 0);
}

void OrderBook::InjectArrivals(double now) {
  while (const Order* o = source_->Peek()) {
    if (o->request_time > now) break;
    PendingRider pr;
    pr.order = *o;
    pr.trip_seconds = cost_model_.TravelSeconds(o->pickup, o->dropoff);
    pr.revenue = alpha_ * pr.trip_seconds;
    pr.pickup_region = grid_.RegionOf(o->pickup);
    pr.dropoff_region = grid_.RegionOf(o->dropoff);
    waiting_.push_back(pr);
    ++demand_by_region_[static_cast<size_t>(pr.pickup_region)];
    source_->Pop();
  }
}

void OrderBook::RemoveExpired(double now, SimObserver* observer) {
  std::erase_if(waiting_, [&](const PendingRider& pr) {
    if (pr.order.pickup_deadline < now) {
      --demand_by_region_[static_cast<size_t>(pr.pickup_region)];
      if (observer != nullptr) observer->OnRiderReneged(now, pr.order);
      return true;
    }
    return false;
  });
}

int64_t OrderBook::CancelRiders(const std::vector<OrderId>& order_ids,
                                double now, SimObserver* observer) {
  if (order_ids.empty()) return 0;
  const std::unordered_set<OrderId> ids(order_ids.begin(), order_ids.end());
  int64_t cancelled = 0;
  std::erase_if(waiting_, [&](const PendingRider& pr) {
    if (pr.served || !ids.contains(pr.order.id)) return false;
    --demand_by_region_[static_cast<size_t>(pr.pickup_region)];
    ++cancelled;
    if (observer != nullptr) observer->OnRiderCancelled(now, pr.order);
    return true;
  });
  return cancelled;
}

void OrderBook::MarkServed(int waiting_index) {
  PendingRider& pr = waiting_[static_cast<size_t>(waiting_index)];
  pr.served = true;
  --demand_by_region_[static_cast<size_t>(pr.pickup_region)];
}

void OrderBook::CompactServed() {
  std::erase_if(waiting_, [](const PendingRider& pr) { return pr.served; });
}

}  // namespace mrvd
