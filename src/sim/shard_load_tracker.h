// Per-region demand tracking for load-aware adaptive sharding.
//
// The row-band shard map assumes demand is spatially uniform; a rush-hour
// surge concentrates a whole batch into one shard and the parallel pipeline
// degrades to serial. The tracker maintains an EWMA of every region's
// observed waiting-rider count (fed one batch at a time from the built
// BatchContext's RegionSnapshots) blended with the forecast demand of the
// scheduling window — which the BatchBuilder has already scaled by the
// active surge multipliers — producing the per-region weights the weighted
// RegionPartitioner::RowBands overload balances.
//
// The engine queries Imbalance() (max-shard weight over mean-shard weight)
// against SimConfig::rebalance_threshold between batches and rebuilds the
// partition only when it crosses; because shard output is bit-identical to
// serial for ANY partition, repartitioning is a pure perf decision.
#pragma once

#include <vector>

#include "queueing/rates.h"

namespace mrvd {

class RegionPartitioner;

class ShardLoadTracker {
 public:
  /// `ewma_alpha` in (0, 1] weighs the newest batch; `forecast_blend` >= 0
  /// scales the predicted-rider term added on top of the EWMA.
  ShardLoadTracker(int num_regions, double ewma_alpha, double forecast_blend);

  /// Folds one built batch's region snapshots into the tracked weights.
  /// `snapshots.size()` must equal the constructor's num_regions.
  void Observe(const std::vector<RegionSnapshot>& snapshots);

  /// False until the first Observe() with any positive weight — with no
  /// signal the uniform row bands are already the right partition.
  bool has_signal() const { return has_signal_; }

  /// Blended per-region weights (EWMA observed + forecast_blend * forecast),
  /// sized num_regions. Zero everywhere before the first Observe().
  const std::vector<double>& weights() const { return weights_; }

  /// Load-imbalance factor of `weights` under `parts`: max-shard total
  /// weight over mean-shard total weight, >= 1. Returns 1 (perfectly
  /// balanced) for zero/degenerate total weight or a mismatched region
  /// count.
  static double Imbalance(const RegionPartitioner& parts,
                          const std::vector<double>& weights);

 private:
  double ewma_alpha_;
  double forecast_blend_;
  bool has_signal_ = false;
  std::vector<double> ewma_;     ///< per-region observed-rider EWMA
  std::vector<double> weights_;  ///< ewma + forecast_blend * forecast
};

}  // namespace mrvd
