// Batch-construction stage of the staged engine. Assembles the immutable
// BatchContext the dispatchers consume from the OrderBook and FleetState:
//
//   * riders/drivers are *materialised* — copied into the context's dense
//     arrays in the canonical order (riders in arrival order, drivers by
//     ascending id) — shard-parallel on the attached BatchExecution's
//     ThreadPool: each worker fills a disjoint chunk of pre-sized slots
//     and collects per-chunk shard partials, so there are no locks and the
//     concatenated output is bit-identical to the serial fill;
//   * region demand/supply snapshots are read straight off the stages'
//     incremental counters (OrderBook::demand_by_region, FleetState::
//     available_by_region / rejoining_in_window) instead of the former
//     per-batch recount over every rider, driver, and busy schedule;
//   * the per-shard rider/driver index lists (BatchContext::ShardIndex)
//     are produced in the same pass, replacing the former O(S·(R+D))
//     per-shard membership scans of ShardedBatchContext.
#pragma once

#include <memory>
#include <vector>

#include "geo/grid.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "sim/batch.h"
#include "sim/fleet_state.h"
#include "sim/order_book.h"

namespace mrvd {

class BatchBuilder {
 public:
  /// `forecast` and `execution` may be null (no prediction / serial build).
  /// All referenced objects must outlive the builder.
  BatchBuilder(const Grid& grid, const TravelCostModel& cost_model,
               const DemandForecast* forecast, double window_seconds,
               double reneging_beta, CandidateMode candidate_mode,
               const BatchExecution* execution);

  /// Builds the batch at time `now`. Context rider index i is waiting()
  /// index i (every waiting rider is materialised, in order); context
  /// driver entries carry their FleetState index as driver_id. Signed-off
  /// (scenario shift) drivers are never materialised. `demand_multipliers`
  /// (may be null = all 1.0) scales each region's predicted rider demand —
  /// the engine passes the active surge windows' per-region product.
  std::unique_ptr<BatchContext> Build(
      double now, const OrderBook& orders, const FleetState& fleet,
      const std::vector<double>* demand_multipliers = nullptr) const;

 private:
  void MaterialiseRiders(BatchContext* ctx, const OrderBook& orders,
                         BatchContext::ShardIndex* index) const;
  void MaterialiseDrivers(BatchContext* ctx, const FleetState& fleet,
                          BatchContext::ShardIndex* index) const;
  void BuildSnapshots(BatchContext* ctx, double now, const OrderBook& orders,
                      const FleetState& fleet,
                      const std::vector<double>* demand_multipliers) const;

  const Grid& grid_;
  const TravelCostModel& cost_model_;
  const DemandForecast* forecast_;
  const double window_seconds_;
  const double reneging_beta_;
  const CandidateMode candidate_mode_;
  const BatchExecution* execution_;
};

}  // namespace mrvd
