#include "sim/batch.h"

#include <algorithm>
#include <cassert>

#include "geo/region_partitioner.h"
#include "queueing/birth_death.h"
#include "util/thread_pool.h"

namespace mrvd {

bool BatchExecution::Parallel() const {
  return pool != nullptr && pool->num_threads() > 1 && partitioner != nullptr &&
         partitioner->num_shards() > 1;
}

BatchContext::BatchContext(double now, double window_seconds,
                           double reneging_beta, const Grid& grid,
                           const TravelCostModel& cost_model,
                           CandidateMode candidate_mode)
    : now_(now),
      window_seconds_(window_seconds),
      reneging_beta_(reneging_beta),
      grid_(grid),
      cost_model_(cost_model),
      candidate_mode_(candidate_mode) {
  drivers_by_region_.resize(static_cast<size_t>(grid.num_regions()));
  snapshots_.resize(static_cast<size_t>(grid.num_regions()));
}

void BatchContext::AddRider(const WaitingRider& r) {
  assert(r.pickup_region != kInvalidRegion &&
         r.dropoff_region != kInvalidRegion);
  riders_.push_back(r);
  shard_index_.partitioner = nullptr;  // invalidate any cached index
}

void BatchContext::AddDriver(const AvailableDriver& d) {
  assert(d.region != kInvalidRegion);
  drivers_by_region_[static_cast<size_t>(d.region)].push_back(
      static_cast<int>(drivers_.size()));
  drivers_.push_back(d);
  shard_index_.partitioner = nullptr;  // invalidate any cached index
}

void BatchContext::SetSnapshots(std::vector<RegionSnapshot> snapshots) {
  assert(static_cast<int>(snapshots.size()) == grid_.num_regions());
  snapshots_ = std::move(snapshots);
  idle_cache_.clear();
}

void BatchContext::SetRiders(std::vector<WaitingRider> riders) {
  riders_ = std::move(riders);
  shard_index_.partitioner = nullptr;  // invalidate any cached index
}

void BatchContext::SetDrivers(std::vector<AvailableDriver> drivers) {
  drivers_ = std::move(drivers);
  shard_index_.partitioner = nullptr;  // invalidate any cached index
  for (auto& bucket : drivers_by_region_) bucket.clear();
  for (size_t j = 0; j < drivers_.size(); ++j) {
    assert(drivers_[j].region != kInvalidRegion);
    drivers_by_region_[static_cast<size_t>(drivers_[j].region)].push_back(
        static_cast<int>(j));
  }
}

void BatchContext::SetShardIndex(ShardIndex index) {
  assert(index.partitioner != nullptr);
  shard_index_ = std::move(index);
}

const BatchContext::ShardIndex* BatchContext::EnsureShardIndex() const {
  if (execution_ == nullptr || execution_->partitioner == nullptr) {
    return nullptr;
  }
  const RegionPartitioner* parts = execution_->partitioner;
  if (shard_index_.partitioner == parts) return &shard_index_;
  assert(parts->num_regions() == grid_.num_regions());
  const size_t num_shards = static_cast<size_t>(parts->num_shards());
  shard_index_.partitioner = parts;
  shard_index_.riders.assign(num_shards, {});
  shard_index_.drivers.assign(num_shards, {});
  for (int i = 0; i < static_cast<int>(riders_.size()); ++i) {
    int s = parts->shard_of(riders_[static_cast<size_t>(i)].pickup_region);
    shard_index_.riders[static_cast<size_t>(s)].push_back(i);
  }
  for (int j = 0; j < static_cast<int>(drivers_.size()); ++j) {
    int s = parts->shard_of(drivers_[static_cast<size_t>(j)].region);
    shard_index_.drivers[static_cast<size_t>(s)].push_back(j);
  }
  return &shard_index_;
}

RegionRates BatchContext::RatesFor(RegionId region, int extra_drivers) const {
  RegionSnapshot snap = snapshots_[static_cast<size_t>(region)];
  if (candidate_mode_ == CandidateMode::kRingExpand) {
    // Under cross-region matching a driver rejoining region k competes in
    // (and is served from) the 3x3 service neighbourhood, so the queue that
    // determines his idle time aggregates those regions' demand and supply.
    // Under strict per-region matching (Algorithm 2) the region's own
    // snapshot is the exact queue.
    for (RegionId nb : grid_.Neighbors(region)) {
      const RegionSnapshot& s = snapshots_[static_cast<size_t>(nb)];
      snap.waiting_riders += s.waiting_riders;
      snap.available_drivers += s.available_drivers;
      snap.predicted_riders += s.predicted_riders;
      snap.predicted_drivers += s.predicted_drivers;
    }
  }
  snap.predicted_drivers += static_cast<double>(extra_drivers);
  return EstimateRegionRates(snap, window_seconds_);
}

int64_t BatchContext::MaxDriversFor(RegionId region, int extra_drivers) const {
  RegionSnapshot snap = snapshots_[static_cast<size_t>(region)];
  if (candidate_mode_ == CandidateMode::kRingExpand) {
    for (RegionId nb : grid_.Neighbors(region)) {
      const RegionSnapshot& s = snapshots_[static_cast<size_t>(nb)];
      snap.available_drivers += s.available_drivers;
      snap.predicted_drivers += s.predicted_drivers;
    }
  }
  int64_t k = snap.available_drivers +
              static_cast<int64_t>(snap.predicted_drivers) + extra_drivers;
  return std::max<int64_t>(k, 1);
}

double BatchContext::ComputeIdleSeconds(RegionId region,
                                        int extra_drivers) const {
  RegionRates rates = RatesFor(region, extra_drivers);
  // Solve the chain in per-minute units: the reneging practice
  // π(n) = e^{βn}/μ from [25] is calibrated for arrival rates on the order
  // of "customers per minute" (§4.1 states rates in number per minute);
  // feeding per-second rates would make 1/μ a huge reneging rate.
  double et_minutes = EstimateIdleTimeSeconds(
      rates.lambda * 60.0, rates.mu * 60.0,
      MaxDriversFor(region, extra_drivers), reneging_beta_,
      /*max_idle_seconds=*/60.0);  // cap: 60 min
  return et_minutes * 60.0;
}

double BatchContext::ExpectedIdleSeconds(RegionId region,
                                         int extra_drivers) const {
  int64_t key = IdleCacheKey(region, extra_drivers);
  auto it = idle_cache_.find(key);
  if (it != idle_cache_.end()) return it->second;
  double et = ComputeIdleSeconds(region, extra_drivers);
  idle_cache_.emplace(key, et);
  return et;
}

void BatchContext::WarmIdleCache(RegionId region, int extra_drivers,
                                 double et) const {
  idle_cache_.emplace(IdleCacheKey(region, extra_drivers), et);
}

void BatchContext::MergeIdleCache(
    std::unordered_map<int64_t, double>&& cache) const {
  if (idle_cache_.empty()) {
    idle_cache_ = std::move(cache);
    return;
  }
  idle_cache_.merge(cache);
}

// ------------------------------------------------------- ShardedBatchContext

ShardedBatchContext::ShardedBatchContext(const BatchContext& parent,
                                         const RegionPartitioner& partitioner,
                                         int shard)
    : parent_(parent), partitioner_(partitioner), shard_(shard) {
  const BatchContext::ShardIndex* index = parent.shard_index();
  if (index != nullptr && index->partitioner == &partitioner) {
    rider_indices_ = &index->riders[static_cast<size_t>(shard)];
    driver_indices_ = &index->drivers[static_cast<size_t>(shard)];
    return;
  }
  // Hand-assembled context without a shared index: membership scan.
  for (int i = 0; i < static_cast<int>(parent.riders().size()); ++i) {
    if (partitioner.shard_of(
            parent.riders()[static_cast<size_t>(i)].pickup_region) == shard) {
      local_riders_.push_back(i);
    }
  }
  for (int j = 0; j < static_cast<int>(parent.drivers().size()); ++j) {
    if (partitioner.shard_of(
            parent.drivers()[static_cast<size_t>(j)].region) == shard) {
      local_drivers_.push_back(j);
    }
  }
  rider_indices_ = &local_riders_;
  driver_indices_ = &local_drivers_;
}

bool ShardedBatchContext::OwnsRegion(RegionId region) const {
  return partitioner_.shard_of(region) == shard_;
}

double ShardedBatchContext::ExpectedIdleSeconds(RegionId region,
                                                int extra_drivers) const {
  int64_t key = BatchContext::IdleCacheKey(region, extra_drivers);
  auto it = idle_cache_.find(key);
  if (it != idle_cache_.end()) return it->second;
  double et = parent_.ComputeIdleSeconds(region, extra_drivers);
  idle_cache_.emplace(key, et);
  return et;
}

}  // namespace mrvd
