#include "sim/batch_builder.h"

#include <algorithm>
#include <cassert>

#include "geo/region_partitioner.h"
#include "util/thread_pool.h"

namespace mrvd {

namespace {

/// Below this many entities a chunked ParallelFor costs more than it saves;
/// the serial fill produces the identical arrays either way.
constexpr int kParallelGrain = 256;

WaitingRider Materialise(const PendingRider& pr) {
  WaitingRider wr;
  wr.order_id = pr.order.id;
  wr.pickup = pr.order.pickup;
  wr.dropoff = pr.order.dropoff;
  wr.request_time = pr.order.request_time;
  wr.pickup_deadline = pr.order.pickup_deadline;
  wr.revenue = pr.revenue;
  wr.trip_seconds = pr.trip_seconds;
  wr.pickup_region = pr.pickup_region;
  wr.dropoff_region = pr.dropoff_region;
  return wr;
}

/// Splits [0, n) into `chunks` near-equal ranges; returns chunk c's bounds.
std::pair<int, int> ChunkRange(int n, int chunks, int c) {
  int base = n / chunks, rem = n % chunks;
  int begin = c * base + std::min(c, rem);
  return {begin, begin + base + (c < rem ? 1 : 0)};
}

/// Concatenates per-chunk shard partials in chunk order, giving the same
/// ascending index lists a serial one-pass build would produce.
void ConcatPartials(std::vector<std::vector<std::vector<int>>>& partials,
                    std::vector<std::vector<int>>* out) {
  const size_t num_shards = out->size();
  for (size_t s = 0; s < num_shards; ++s) {
    size_t total = 0;
    for (const auto& chunk : partials) total += chunk[s].size();
    auto& dst = (*out)[s];
    dst.reserve(total);
    for (const auto& chunk : partials) {
      dst.insert(dst.end(), chunk[s].begin(), chunk[s].end());
    }
  }
}

}  // namespace

BatchBuilder::BatchBuilder(const Grid& grid, const TravelCostModel& cost_model,
                           const DemandForecast* forecast,
                           double window_seconds, double reneging_beta,
                           CandidateMode candidate_mode,
                           const BatchExecution* execution)
    : grid_(grid),
      cost_model_(cost_model),
      forecast_(forecast),
      window_seconds_(window_seconds),
      reneging_beta_(reneging_beta),
      candidate_mode_(candidate_mode),
      execution_(execution) {}

std::unique_ptr<BatchContext> BatchBuilder::Build(
    double now, const OrderBook& orders, const FleetState& fleet,
    const std::vector<double>* demand_multipliers) const {
  auto ctx = std::make_unique<BatchContext>(now, window_seconds_,
                                            reneging_beta_, grid_, cost_model_,
                                            candidate_mode_);
  const bool sharded = execution_ != nullptr && execution_->Parallel();
  if (execution_ != nullptr) ctx->SetExecution(execution_);

  BatchContext::ShardIndex index;
  BatchContext::ShardIndex* index_out = nullptr;
  if (sharded) {
    assert(execution_->partitioner->num_regions() == grid_.num_regions());
    index.partitioner = execution_->partitioner;
    const size_t num_shards =
        static_cast<size_t>(execution_->partitioner->num_shards());
    index.riders.assign(num_shards, {});
    index.drivers.assign(num_shards, {});
    index_out = &index;
  }

  MaterialiseRiders(ctx.get(), orders, index_out);
  MaterialiseDrivers(ctx.get(), fleet, index_out);
  BuildSnapshots(ctx.get(), now, orders, fleet, demand_multipliers);
  if (index_out != nullptr) ctx->SetShardIndex(std::move(index));
  return ctx;
}

void BatchBuilder::MaterialiseRiders(BatchContext* ctx,
                                     const OrderBook& orders,
                                     BatchContext::ShardIndex* index) const {
  const std::deque<PendingRider>& waiting = orders.waiting();
  const int w = static_cast<int>(waiting.size());
  std::vector<WaitingRider> riders(static_cast<size_t>(w));

  const bool parallel = index != nullptr && w >= kParallelGrain;
  if (!parallel) {
    for (int i = 0; i < w; ++i) {
      riders[static_cast<size_t>(i)] = Materialise(waiting[static_cast<size_t>(i)]);
      if (index != nullptr) {
        int s = index->partitioner->shard_of(
            waiting[static_cast<size_t>(i)].pickup_region);
        index->riders[static_cast<size_t>(s)].push_back(i);
      }
    }
    ctx->SetRiders(std::move(riders));
    return;
  }

  // One parallel pass: each chunk fills its disjoint rider slots and
  // collects (chunk, shard) index partials — no shared writes.
  const RegionPartitioner& parts = *index->partitioner;
  const int chunks = std::min(execution_->pool->num_threads(), w);
  std::vector<std::vector<std::vector<int>>> partials(
      static_cast<size_t>(chunks),
      std::vector<std::vector<int>>(
          static_cast<size_t>(parts.num_shards())));
  execution_->pool->ParallelFor(chunks, [&](int c) {
    auto [begin, end] = ChunkRange(w, chunks, c);
    auto& local = partials[static_cast<size_t>(c)];
    for (int i = begin; i < end; ++i) {
      const PendingRider& pr = waiting[static_cast<size_t>(i)];
      riders[static_cast<size_t>(i)] = Materialise(pr);
      local[static_cast<size_t>(parts.shard_of(pr.pickup_region))].push_back(
          i);
    }
  });
  ConcatPartials(partials, &index->riders);
  ctx->SetRiders(std::move(riders));
}

void BatchBuilder::MaterialiseDrivers(BatchContext* ctx,
                                      const FleetState& fleet,
                                      BatchContext::ShardIndex* index) const {
  const std::vector<DriverState>& all = fleet.drivers();
  const int n = static_cast<int>(all.size());
  std::vector<AvailableDriver> drivers;

  auto materialise = [](int j, const DriverState& d) {
    AvailableDriver ad;
    ad.driver_id = static_cast<DriverId>(j);
    ad.location = d.location;
    ad.region = d.region;
    ad.available_since = d.available_since;
    return ad;
  };

  const bool parallel = index != nullptr && n >= kParallelGrain;
  if (!parallel) {
    drivers.reserve(static_cast<size_t>(fleet.available_count()));
    for (int j = 0; j < n; ++j) {
      const DriverState& d = all[static_cast<size_t>(j)];
      if (!d.Dispatchable()) continue;
      if (index != nullptr) {
        index->drivers[static_cast<size_t>(index->partitioner->shard_of(
                           d.region))]
            .push_back(static_cast<int>(drivers.size()));
      }
      drivers.push_back(materialise(j, d));
    }
    ctx->SetDrivers(std::move(drivers));
    return;
  }

  // Two parallel passes over disjoint chunks: count the available drivers
  // per chunk, prefix-sum into per-chunk slot offsets, then fill the slots
  // and collect (chunk, shard) index partials.
  const RegionPartitioner& parts = *index->partitioner;
  const int chunks = std::min(execution_->pool->num_threads(), n);
  std::vector<int> counts(static_cast<size_t>(chunks), 0);
  execution_->pool->ParallelFor(chunks, [&](int c) {
    auto [begin, end] = ChunkRange(n, chunks, c);
    int available = 0;
    for (int j = begin; j < end; ++j) {
      if (all[static_cast<size_t>(j)].Dispatchable()) ++available;
    }
    counts[static_cast<size_t>(c)] = available;
  });
  std::vector<int> offsets(static_cast<size_t>(chunks) + 1, 0);
  for (int c = 0; c < chunks; ++c) {
    offsets[static_cast<size_t>(c) + 1] =
        offsets[static_cast<size_t>(c)] + counts[static_cast<size_t>(c)];
  }
  drivers.resize(static_cast<size_t>(offsets[static_cast<size_t>(chunks)]));
  std::vector<std::vector<std::vector<int>>> partials(
      static_cast<size_t>(chunks),
      std::vector<std::vector<int>>(
          static_cast<size_t>(parts.num_shards())));
  execution_->pool->ParallelFor(chunks, [&](int c) {
    auto [begin, end] = ChunkRange(n, chunks, c);
    int slot = offsets[static_cast<size_t>(c)];
    auto& local = partials[static_cast<size_t>(c)];
    for (int j = begin; j < end; ++j) {
      const DriverState& d = all[static_cast<size_t>(j)];
      if (!d.Dispatchable()) continue;
      drivers[static_cast<size_t>(slot)] = materialise(j, d);
      local[static_cast<size_t>(parts.shard_of(d.region))].push_back(slot);
      ++slot;
    }
  });
  ConcatPartials(partials, &index->drivers);
  ctx->SetDrivers(std::move(drivers));
}

void BatchBuilder::BuildSnapshots(
    BatchContext* ctx, double now, const OrderBook& orders,
    const FleetState& fleet,
    const std::vector<double>* demand_multipliers) const {
  const int num_regions = grid_.num_regions();
  std::vector<RegionSnapshot> snaps(static_cast<size_t>(num_regions));
  const std::vector<int64_t>& demand = orders.demand_by_region();
  const std::vector<int64_t>& supply = fleet.available_by_region();
  const std::vector<int32_t>& rejoining = fleet.rejoining_in_window();
  for (int k = 0; k < num_regions; ++k) {
    RegionSnapshot& s = snaps[static_cast<size_t>(k)];
    s.waiting_riders = demand[static_cast<size_t>(k)];
    s.available_drivers = supply[static_cast<size_t>(k)];
    if (forecast_ != nullptr) {
      s.predicted_riders = forecast_->WindowCount(now, window_seconds_, k);
      if (demand_multipliers != nullptr) {
        s.predicted_riders *= (*demand_multipliers)[static_cast<size_t>(k)];
      }
    }
    s.predicted_drivers =
        static_cast<double>(rejoining[static_cast<size_t>(k)]);
  }
  ctx->SetSnapshots(std::move(snaps));
}

}  // namespace mrvd
