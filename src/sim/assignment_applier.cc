#include "sim/assignment_applier.h"

#include "util/logging.h"

namespace mrvd {

AssignmentApplier::AssignmentApplier(std::string dispatcher_name,
                                     bool zero_pickup_travel)
    : dispatcher_name_(std::move(dispatcher_name)),
      zero_pickup_travel_(zero_pickup_travel) {}

void AssignmentApplier::Apply(double now, const BatchContext& ctx,
                              const std::vector<Assignment>& assignments,
                              FleetState* fleet, OrderBook* orders,
                              SimObserver* observer) const {
  std::vector<char> rider_taken(ctx.riders().size(), false);
  std::vector<char> driver_taken(ctx.drivers().size(), false);
  for (const Assignment& a : assignments) {
    if (a.rider_index < 0 ||
        a.rider_index >= static_cast<int>(ctx.riders().size()) ||
        a.driver_index < 0 ||
        a.driver_index >= static_cast<int>(ctx.drivers().size())) {
      MRVD_LOG(Warn) << dispatcher_name_ << ": assignment out of range";
      continue;
    }
    if (rider_taken[static_cast<size_t>(a.rider_index)] ||
        driver_taken[static_cast<size_t>(a.driver_index)]) {
      MRVD_LOG(Warn) << dispatcher_name_ << ": duplicate assignment";
      continue;
    }
    const WaitingRider& r = ctx.riders()[static_cast<size_t>(a.rider_index)];
    const AvailableDriver& ad =
        ctx.drivers()[static_cast<size_t>(a.driver_index)];
    double pickup_tt = zero_pickup_travel_ ? 0.0 : ctx.PickupSeconds(ad, r);
    if (!zero_pickup_travel_ && now + pickup_tt > r.pickup_deadline) {
      // Invalid pair (violates Def. 3); dispatchers must not emit these.
      MRVD_LOG(Warn) << dispatcher_name_ << ": invalid pair emitted";
      continue;
    }
    rider_taken[static_cast<size_t>(a.rider_index)] = true;
    driver_taken[static_cast<size_t>(a.driver_index)] = true;

    const int j = static_cast<int>(ad.driver_id);
    const DriverState& d = fleet->driver(j);

    AssignmentEvent e;
    e.rider_index = a.rider_index;
    e.driver_index = a.driver_index;
    e.order_id = r.order_id;
    e.driver_id = d.id;
    e.driver_region = d.region;  // region the driver idled in
    e.pickup_seconds = pickup_tt;
    e.wait_seconds = now - r.request_time;
    e.real_idle_seconds = now - d.available_since;
    e.idle_estimate = d.pending_estimate;
    e.revenue = r.revenue;
    e.busy_until = now + pickup_tt + r.trip_seconds;

    fleet->ClearIdleEstimate(j);
    fleet->MarkBusy(j, e.busy_until, r.dropoff, r.dropoff_region);
    orders->MarkServed(a.rider_index);
    if (observer != nullptr) observer->OnAssignmentApplied(now, e);
  }
  orders->CompactServed();
}

}  // namespace mrvd
