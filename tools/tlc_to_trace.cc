// TLC-CSV → binary order-trace converter (see workload/order_stream.h for
// the format). Run once per dataset; every simulator entry point can then
// stream the day with O(batch) memory instead of re-parsing (and holding)
// the whole CSV:
//
//   ./build/tools/tlc_to_trace trips_2013-05.csv may28.trace --day 27
//   ./build/examples/nyc_day_simulation --stream may28.trace
//   ./build/examples/campaign run /tmp/c --workloads "trace:path=may28.trace"
//
// The CSV is parsed line-buffered; peak converter memory is O(kept orders)
// for the format's sorted-by-request-time guarantee, never O(file text).
// The trace is written temp-then-rename, so a killed convert leaves no
// half-written file behind.
#include <climits>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/strings.h"
#include "workload/order_stream.h"

using namespace mrvd;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trips.csv> <out.trace> [options]\n"
      "\n"
      "options:\n"
      "  --drivers N     driver origins sampled from kept pickups "
      "(default 3000)\n"
      "  --day D         keep only day D of the file, 0-indexed from the\n"
      "                  first timestamp (default -1 = keep all)\n"
      "  --max-orders N  hard cap on converted orders (default 0 = all)\n"
      "  --seed S        deadline-noise / driver-origin seed\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string csv_path = argv[1];
  const std::string trace_path = argv[2];
  int drivers = 3000;
  TlcParseOptions options;
  for (int i = 3; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto numeric = [&](const char* flag, int64_t lo, int64_t hi) -> int64_t {
      StatusOr<int64_t> v = ParseInt64(value(flag));
      if (!v.ok() || *v < lo || *v > hi) {
        std::fprintf(stderr, "bad value for %s\n", flag);
        std::exit(2);
      }
      return *v;
    };
    if (std::strcmp(argv[i], "--drivers") == 0) {
      drivers = static_cast<int>(numeric("--drivers", 0, INT_MAX));
    } else if (std::strcmp(argv[i], "--day") == 0) {
      options.day_filter = static_cast<int>(numeric("--day", -1, INT_MAX));
    } else if (std::strcmp(argv[i], "--max-orders") == 0) {
      options.max_orders = numeric("--max-orders", 0, INT64_MAX);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed =
          static_cast<uint64_t>(numeric("--seed", INT64_MIN, INT64_MAX));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  TlcParseStats stats;
  Status st =
      ConvertTlcCsvToTrace(csv_path, trace_path, drivers, options, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "convert failed: %s\n", st.ToString().c_str());
    return 1;
  }
  StatusOr<OrderTraceInfo> info = ReadOrderTraceInfo(trace_path);
  if (!info.ok()) {
    std::fprintf(stderr, "written trace fails validation: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%s: %lld rows read, %lld bad, %lld out of box, %lld kept\n"
      "%s: %lld orders + %lld drivers in %lld bytes, t=[%.0f, %.0f]s, "
      "horizon %.0fs\n",
      csv_path.c_str(), (long long)stats.rows_total, (long long)stats.rows_bad,
      (long long)stats.rows_out_of_box, (long long)stats.rows_kept,
      trace_path.c_str(), (long long)info->order_count,
      (long long)info->driver_count, (long long)info->file_bytes,
      info->first_request_time, info->last_request_time,
      info->horizon_seconds);
  return 0;
}
