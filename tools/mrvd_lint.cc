// mrvd_lint CLI: run the determinism & concurrency lint over source trees.
//
//   mrvd_lint [--json] [--show-suppressed] [--list-rules] [paths...]
//
// Paths default to "src". Exit codes: 0 clean, 1 unsuppressed findings,
// 2 usage or I/O error — so CI can gate on the exit status alone.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: mrvd_lint [--json] [--show-suppressed] [--list-rules] "
      "[paths...]\n"
      "  --json             emit findings as a JSON object\n"
      "  --show-suppressed  include suppressed findings in the output\n"
      "  --list-rules       print every rule-id with its summary and exit\n"
      "  paths              files or directories to lint (default: src)\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool show_suppressed = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const mrvd::lint::RuleInfo& r : mrvd::lint::Rules()) {
        std::printf("%-24s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mrvd_lint: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) paths.push_back("src");

  mrvd::StatusOr<std::vector<mrvd::lint::Finding>> findings =
      mrvd::lint::LintPaths(paths);
  if (!findings.ok()) {
    std::fprintf(stderr, "mrvd_lint: %s\n",
                 findings.status().ToString().c_str());
    return 2;
  }

  // files_checked is only used by the JSON report; recount cheaply from the
  // distinct files in the findings plus the paths walked. Walking again
  // would race file-system changes, so LintPaths-reported findings are the
  // source of truth and the count is informational.
  size_t files_checked = 0;
  {
    std::string last;
    for (const mrvd::lint::Finding& f : *findings) {
      if (f.file != last) {
        ++files_checked;
        last = f.file;
      }
    }
  }

  if (json) {
    std::fputs(
        mrvd::lint::RenderJson(*findings, files_checked, show_suppressed)
            .c_str(),
        stdout);
  } else {
    std::fputs(mrvd::lint::RenderText(*findings, show_suppressed).c_str(),
               stdout);
  }

  size_t unsuppressed = mrvd::lint::CountUnsuppressed(*findings);
  if (unsuppressed > 0) {
    if (!json) {
      std::fprintf(stderr, "mrvd_lint: %zu unsuppressed finding%s\n",
                   unsuppressed, unsuppressed == 1 ? "" : "s");
    }
    return 1;
  }
  return 0;
}
