// trace_check: structural validator for the Chrome trace-event JSON that
// TelemetrySession::WriteChromeTrace exports. The CI telemetry smoke job
// runs an instrumented quickstart and pipes the trace through this tool,
// which re-parses it with util/json_reader and enforces the invariants
// Perfetto needs but would silently tolerate breaking:
//
//   * the document is {"traceEvents": [...]} with only ph:"X" complete
//     events and ph:"M" thread_name metadata;
//   * every X event carries a non-empty name, ts >= 0, dur >= 0, pid 1,
//     and a tid that has a thread_name metadata record;
//   * metadata tids are exactly 1..N (the session assigns them in
//     registration order starting at 1);
//   * on each trace thread, spans nest: sorted parents-first, a span is
//     either disjoint from the open stack or properly contained in the
//     top — partial overlap on one thread means a broken RAII pairing.
//
// Usage: trace_check <trace.json> [required-span-name ...]
// Any extra arguments are span names that must each occur at least once.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json_reader.h"
#include "util/status.h"

namespace mrvd {
namespace {

struct Span {
  std::string name;
  double ts = 0.0;   ///< micros from trace origin
  double dur = 0.0;  ///< micros
  double end() const { return ts + dur; }
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  return 1;
}

int Run(const std::string& path, const std::vector<std::string>& required) {
  StatusOr<JsonValue> doc = ReadJsonFile(path);
  if (!doc.ok()) return Fail(doc.status().ToString());
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("document has no traceEvents array");
  }

  std::set<int64_t> metadata_tids;
  std::map<int64_t, std::vector<Span>> by_tid;
  std::map<std::string, int64_t> name_counts;
  for (size_t i = 0; i < events->array().size(); ++i) {
    const JsonValue& e = events->array()[i];
    const std::string at = "event #" + std::to_string(i);
    StatusOr<std::string> ph = e.GetString("ph");
    StatusOr<std::string> name = e.GetString("name");
    StatusOr<int64_t> tid = e.GetInt64("tid");
    StatusOr<int64_t> pid = e.GetInt64("pid");
    if (!ph.ok() || !name.ok() || !tid.ok() || !pid.ok()) {
      return Fail(at + " lacks ph/name/tid/pid");
    }
    if (*pid != 1) return Fail(at + " has pid != 1");
    if (*tid < 1) return Fail(at + " has tid < 1");
    if (*ph == "M") {
      if (*name != "thread_name") {
        return Fail(at + " is metadata but not thread_name");
      }
      const JsonValue* args = e.Find("args");
      if (args == nullptr || !args->GetString("name").ok()) {
        return Fail(at + " thread_name metadata lacks args.name");
      }
      if (!metadata_tids.insert(*tid).second) {
        return Fail(at + " duplicates thread_name for tid " +
                    std::to_string(*tid));
      }
      continue;
    }
    if (*ph != "X") return Fail(at + " has ph '" + *ph + "' (want X or M)");
    StatusOr<double> ts = e.GetDouble("ts");
    StatusOr<double> dur = e.GetDouble("dur");
    if (!ts.ok() || !dur.ok()) return Fail(at + " lacks numeric ts/dur");
    if (name->empty()) return Fail(at + " has an empty span name");
    if (*ts < 0.0 || *dur < 0.0) return Fail(at + " has negative ts/dur");
    by_tid[*tid].push_back(Span{*name, *ts, *dur});
    ++name_counts[*name];
  }

  if (metadata_tids.empty()) return Fail("no thread_name metadata");
  // Registration order starts at 1 with no gaps.
  if (*metadata_tids.begin() != 1 ||
      *metadata_tids.rbegin() != static_cast<int64_t>(metadata_tids.size())) {
    return Fail("metadata tids are not a dense 1..N range");
  }
  for (const auto& [tid, spans] : by_tid) {
    if (metadata_tids.count(tid) == 0) {
      return Fail("tid " + std::to_string(tid) + " has spans but no " +
                  "thread_name metadata");
    }
    // The writer sorts (ts, -dur) per tid — parents before children. Redo
    // the sort so the check does not depend on the writer's ordering.
    std::vector<Span> sorted = spans;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Span& a, const Span& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       return a.dur > b.dur;
                     });
    // ts/dur were rounded to micros independently, so containment gets a
    // rounding allowance well below one clock tick.
    constexpr double kSlackUs = 0.01;
    std::vector<Span> stack;
    for (const Span& span : sorted) {
      while (!stack.empty() && stack.back().end() <= span.ts + kSlackUs) {
        stack.pop_back();
      }
      if (!stack.empty() && span.end() > stack.back().end() + kSlackUs) {
        return Fail("span '" + span.name + "' partially overlaps '" +
                    stack.back().name + "' on tid " + std::to_string(tid));
      }
      stack.push_back(span);
    }
  }

  int64_t total = 0;
  for (const auto& [name, count] : name_counts) total += count;
  if (total == 0) return Fail("trace has no spans");
  for (const std::string& name : required) {
    if (name_counts[name] == 0) {
      return Fail("required span '" + name + "' never occurs");
    }
  }

  std::printf("trace_check: %lld spans on %zu threads nest correctly\n",
              static_cast<long long>(total), metadata_tids.size());
  for (const auto& [name, count] : name_counts) {
    std::printf("  %-20s %lld\n", name.c_str(),
                static_cast<long long>(count));
  }
  return 0;
}

}  // namespace
}  // namespace mrvd

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_check <trace.json> [required-span-name ...]\n");
    return 2;
  }
  std::vector<std::string> required(argv + 2, argv + argc);
  return mrvd::Run(argv[1], required);
}
