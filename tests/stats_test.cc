#include <gtest/gtest.h>

#include <cmath>

#include "stats/chi_square.h"
#include "stats/distributions.h"
#include "stats/metrics.h"
#include "util/rng.h"

namespace mrvd {
namespace {

// ----------------------------------------------------------------- metrics

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ErrorStatsTest, MaeAndRmse) {
  ErrorStats e;
  e.Add(10.0, 12.0);  // err -2
  e.Add(14.0, 12.0);  // err +2
  EXPECT_DOUBLE_EQ(e.Mae(), 2.0);
  EXPECT_DOUBLE_EQ(e.RealRmse(), 2.0);
  EXPECT_DOUBLE_EQ(e.MeanActual(), 12.0);
  EXPECT_NEAR(e.RelativeRmsePct(), 100.0 * 2.0 / 12.0, 1e-9);
}

TEST(ErrorStatsTest, PerfectEstimates) {
  ErrorStats e;
  e.Add(5.0, 5.0);
  EXPECT_DOUBLE_EQ(e.Mae(), 0.0);
  EXPECT_DOUBLE_EQ(e.RealRmse(), 0.0);
  EXPECT_DOUBLE_EQ(e.RelativeRmsePct(), 0.0);
}

TEST(RmseTest, VectorForm) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 4.0}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Rmse({}, {}), 0.0);
}

// ----------------------------------------------------- special functions

TEST(DistributionsTest, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(std::exp(LogGamma(5.0)), 24.0, 1e-9);
  EXPECT_NEAR(std::exp(LogGamma(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(LogGamma(0.5)), std::sqrt(M_PI), 1e-9);
}

TEST(DistributionsTest, RegularizedGammaPBounds) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
}

TEST(DistributionsTest, PoissonPmfSumsToOne) {
  double total = 0.0;
  for (int64_t k = 0; k < 100; ++k) total += PoissonPmf(8.0, k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(DistributionsTest, PoissonCdfMatchesPmfSum) {
  double mean = 6.5;
  double acc = 0.0;
  for (int64_t k = 0; k <= 10; ++k) acc += PoissonPmf(mean, k);
  EXPECT_NEAR(PoissonCdf(mean, 10), acc, 1e-9);
}

TEST(DistributionsTest, PoissonZeroMean) {
  EXPECT_DOUBLE_EQ(PoissonPmf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonPmf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(PoissonCdf(0.0, 0), 1.0);
}

TEST(DistributionsTest, ChiSquareCriticalValuesMatchPaperTable) {
  // The critical values quoted in Tables 7/8 of the paper.
  EXPECT_NEAR(ChiSquareCriticalValue(6, 0.05), 12.592, 0.005);
  EXPECT_NEAR(ChiSquareCriticalValue(5, 0.05), 11.070, 0.005);
  EXPECT_NEAR(ChiSquareCriticalValue(4, 0.05), 9.488, 0.005);
}

TEST(DistributionsTest, ChiSquareCdfMonotone) {
  double prev = -1.0;
  for (double x = 0.5; x < 30.0; x += 0.5) {
    double c = ChiSquareCdf(x, 6);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(DistributionsTest, FitPoissonMeanIsSampleMean) {
  EXPECT_DOUBLE_EQ(FitPoissonMean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(FitPoissonMean({}), 0.0);
}

// -------------------------------------------------------- chi-square test

std::vector<int64_t> PoissonSamples(double mean, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> s;
  s.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) s.push_back(rng.Poisson(mean));
  return s;
}

TEST(ChiSquareTest, AcceptsGenuinePoisson) {
  // 210 samples like the paper's 21 working days x 10 minutes.
  int accepted = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto samples = PoissonSamples(70.0, 210, seed);
    auto result = ChiSquarePoissonTest(samples);
    ASSERT_TRUE(result.ok()) << result.status();
    accepted += result->reject ? 0 : 1;
  }
  // At alpha=0.05 we expect ~9.5/10 acceptances; allow one extra failure.
  EXPECT_GE(accepted, 8);
}

TEST(ChiSquareTest, RejectsUniformCounts) {
  // Uniform on [0, 140] has the same mean as Poisson(70) but far larger
  // variance; the test must reject decisively.
  Rng rng(42);
  std::vector<int64_t> samples;
  for (int i = 0; i < 210; ++i) samples.push_back(rng.UniformInt(0, 140));
  auto result = ChiSquarePoissonTest(samples);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->reject);
  EXPECT_GT(result->statistic, result->critical_value * 2);
}

TEST(ChiSquareTest, RejectsBimodalCounts) {
  std::vector<int64_t> samples;
  for (int i = 0; i < 105; ++i) samples.push_back(20);
  for (int i = 0; i < 105; ++i) samples.push_back(120);
  auto result = ChiSquarePoissonTest(samples);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->reject);
}

TEST(ChiSquareTest, RequiresEnoughSamples) {
  auto result = ChiSquarePoissonTest({1, 2, 3});
  EXPECT_FALSE(result.ok());
}

TEST(ChiSquareTest, RejectsNegativeCounts) {
  std::vector<int64_t> samples(30, 5);
  samples[0] = -1;
  EXPECT_FALSE(ChiSquarePoissonTest(samples).ok());
}

TEST(ChiSquareTest, BucketsCoverAllSamples) {
  auto samples = PoissonSamples(50.0, 210, 3);
  auto result = ChiSquarePoissonTest(samples);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (const auto& b : result->buckets) total += b.observed;
  EXPECT_EQ(total, 210);
  // Expected counts should also roughly total n.
  double etotal = 0.0;
  for (const auto& b : result->buckets) etotal += b.expected;
  EXPECT_NEAR(etotal, 210.0, 1.0);
  // Merged buckets satisfy the validity rule.
  for (const auto& b : result->buckets) EXPECT_GE(b.expected, 4.99);
}

TEST(ChiSquareTest, DofIsBucketsMinusOne) {
  auto samples = PoissonSamples(60.0, 210, 7);
  auto result = ChiSquarePoissonTest(samples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dof, result->num_intervals - 1);
  EXPECT_FALSE(result->ToString().empty());
}

}  // namespace
}  // namespace mrvd
