#include <gtest/gtest.h>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "dispatch/irg_core.h"
#include "geo/travel.h"
#include "sim/batch.h"

namespace mrvd {
namespace {

// Fixture with a hand-built 4x4 batch context.
class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest()
      : grid_(kNycBoundingBox, 4, 4),
        cost_(10.0, 1.0),
        ctx_(/*now=*/1000.0, /*window=*/1200.0, /*beta=*/0.02, grid_, cost_) {}

  WaitingRider MakeRider(OrderId id, LatLon pickup, LatLon dropoff,
                         double deadline_slack = 200.0) {
    WaitingRider r;
    r.order_id = id;
    r.pickup = pickup;
    r.dropoff = dropoff;
    r.request_time = 990.0;
    r.pickup_deadline = 1000.0 + deadline_slack;
    r.trip_seconds = cost_.TravelSeconds(pickup, dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid_.RegionOf(pickup);
    r.dropoff_region = grid_.RegionOf(dropoff);
    return r;
  }

  AvailableDriver MakeDriver(DriverId id, LatLon loc) {
    AvailableDriver d;
    d.driver_id = id;
    d.location = loc;
    d.region = grid_.RegionOf(loc);
    d.available_since = 900.0;
    return d;
  }

  void FinalizeSnapshots(
      const std::vector<std::pair<RegionId, double>>& predicted_riders = {}) {
    std::vector<RegionSnapshot> snaps(
        static_cast<size_t>(grid_.num_regions()));
    for (const auto& r : ctx_.riders()) {
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    }
    for (const auto& d : ctx_.drivers()) {
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    }
    for (auto [region, count] : predicted_riders) {
      snaps[static_cast<size_t>(region)].predicted_riders = count;
    }
    ctx_.SetSnapshots(std::move(snaps));
  }

  static bool AssignmentsValid(const BatchContext& ctx,
                               const std::vector<Assignment>& as) {
    std::vector<char> r_used(ctx.riders().size(), false);
    std::vector<char> d_used(ctx.drivers().size(), false);
    for (const auto& a : as) {
      if (a.rider_index < 0 || a.driver_index < 0) return false;
      if (r_used[static_cast<size_t>(a.rider_index)]) return false;
      if (d_used[static_cast<size_t>(a.driver_index)]) return false;
      r_used[static_cast<size_t>(a.rider_index)] = true;
      d_used[static_cast<size_t>(a.driver_index)] = true;
      if (!ctx.IsValidPair(
              ctx.drivers()[static_cast<size_t>(a.driver_index)],
              ctx.riders()[static_cast<size_t>(a.rider_index)]))
        return false;
    }
    return true;
  }

  Grid grid_;
  StraightLineCostModel cost_;
  BatchContext ctx_;
};

// ------------------------------------------------------------- candidates

TEST_F(DispatchTest, CandidatesRespectDeadline) {
  LatLon near_p{40.70, -74.00};
  LatLon far_p{40.90, -73.79};
  ctx_.AddRider(MakeRider(0, near_p, far_p, /*deadline_slack=*/100.0));
  ctx_.AddDriver(MakeDriver(0, near_p));  // ~0 s away
  ctx_.AddDriver(MakeDriver(1, far_p));   // ~40 km away at 10 m/s
  FinalizeSnapshots();

  auto pairs = GenerateValidPairs(ctx_);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].driver_index, 0);
  EXPECT_LT(pairs[0].pickup_seconds, 100.0);
}

TEST_F(DispatchTest, CandidatesFindCrossRegionDrivers) {
  // Driver in the adjacent cell but within the deadline reach. Cell rows of
  // the 4x4 grid break at 40.665; straddle that boundary.
  LatLon rider_p{40.664, -74.00};
  LatLon driver_p{40.667, -74.00};  // ~330 m north, next row up
  ctx_.AddRider(MakeRider(0, rider_p, LatLon{40.75, -73.95}, 400.0));
  ctx_.AddDriver(MakeDriver(0, driver_p));
  FinalizeSnapshots();
  ASSERT_NE(grid_.RegionOf(rider_p), grid_.RegionOf(driver_p));

  auto pairs = GenerateValidPairs(ctx_);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST_F(DispatchTest, PerRiderGroupingMatchesFlatList) {
  for (int i = 0; i < 4; ++i) {
    ctx_.AddRider(MakeRider(i, LatLon{40.70 + 0.01 * i, -74.00},
                            LatLon{40.80, -73.90}, 500.0));
  }
  for (int j = 0; j < 3; ++j) {
    ctx_.AddDriver(MakeDriver(j, LatLon{40.70 + 0.012 * j, -74.00}));
  }
  FinalizeSnapshots();
  auto flat = GenerateValidPairs(ctx_);
  auto grouped = GenerateValidPairsPerRider(ctx_);
  size_t total = 0;
  for (const auto& g : grouped) total += g.size();
  EXPECT_EQ(flat.size(), total);
}

// ---------------------------------------------------------------- scoring

TEST_F(DispatchTest, IdleRatioDecreasesWithTripLength) {
  LatLon origin{40.70, -74.00};
  WaitingRider short_trip = MakeRider(0, origin, LatLon{40.705, -73.995});
  WaitingRider long_trip = MakeRider(1, origin, LatLon{40.706, -73.994});
  // Same destination region; force the same ET by aligning dropoff regions.
  ASSERT_EQ(short_trip.dropoff_region, long_trip.dropoff_region);
  long_trip.trip_seconds = short_trip.trip_seconds * 10;
  ctx_.AddRider(short_trip);
  ctx_.AddRider(long_trip);
  ctx_.AddDriver(MakeDriver(0, origin));
  FinalizeSnapshots();

  double ir_short =
      ScorePair(ctx_, ctx_.riders()[0], GreedyObjective::kIdleRatio, 0);
  double ir_long =
      ScorePair(ctx_, ctx_.riders()[1], GreedyObjective::kIdleRatio, 0);
  EXPECT_LT(ir_long, ir_short);
}

TEST_F(DispatchTest, IdleRatioFavorsHotDestinations) {
  LatLon origin{40.70, -74.00};
  LatLon hot_dest{40.88, -73.80};   // region we mark as high-demand
  LatLon cold_dest{40.88, -74.00};  // symmetric distance, no demand
  WaitingRider to_hot = MakeRider(0, origin, hot_dest);
  WaitingRider to_cold = MakeRider(1, origin, cold_dest);
  ctx_.AddRider(to_hot);
  ctx_.AddRider(to_cold);
  ctx_.AddDriver(MakeDriver(0, origin));
  FinalizeSnapshots({{to_hot.dropoff_region, 200.0}});

  double ir_hot =
      ScorePair(ctx_, ctx_.riders()[0], GreedyObjective::kIdleRatio, 0);
  double ir_cold =
      ScorePair(ctx_, ctx_.riders()[1], GreedyObjective::kIdleRatio, 0);
  EXPECT_LT(ir_hot, ir_cold);
}

TEST_F(DispatchTest, ExtraDriversRaiseExpectedIdleWhenCongested) {
  // In the congested regime (few predicted riders), each extra rejoining
  // driver lengthens the queue a new driver joins behind, so ET rises.
  // (In the heavily rider-surplus regime the paper's reneging coupling
  // π(n) = e^{βn}/μ can make ET locally non-monotone in μ; see
  // queueing_test's monotonicity cases for the standard regimes.)
  LatLon origin{40.70, -74.00};
  ctx_.AddRider(MakeRider(0, origin, LatLon{40.88, -73.80}));
  ctx_.AddDriver(MakeDriver(0, origin));
  FinalizeSnapshots({{ctx_.riders()[0].dropoff_region, 2.0}});
  RegionId dest = ctx_.riders()[0].dropoff_region;
  double et2 = ctx_.ExpectedIdleSeconds(dest, 2);
  double et10 = ctx_.ExpectedIdleSeconds(dest, 10);
  EXPECT_GE(et10, et2);
}

// ------------------------------------------------------------ dispatchers

TEST_F(DispatchTest, IrgPrefersHotLongTrips) {
  LatLon origin{40.70, -74.00};
  LatLon hot_dest{40.88, -73.80};
  LatLon cold_dest{40.71, -74.01};  // short hop to a cold region
  ctx_.AddRider(MakeRider(0, origin, cold_dest));
  ctx_.AddRider(MakeRider(1, origin, hot_dest));
  ctx_.AddDriver(MakeDriver(0, origin));
  FinalizeSnapshots({{grid_.RegionOf(hot_dest), 300.0}});

  auto irg = MakeIrgDispatcher();
  std::vector<Assignment> out;
  irg->Dispatch(ctx_, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rider_index, 1);  // the hot, long trip wins
  EXPECT_TRUE(AssignmentsValid(ctx_, out));
}

TEST_F(DispatchTest, AllDispatchersProduceValidAssignments) {
  // A denser scenario: 6 riders, 4 drivers spread over the city.
  std::vector<LatLon> pickups = {
      {40.70, -74.00}, {40.71, -73.99}, {40.80, -73.90},
      {40.81, -73.89}, {40.60, -74.02}, {40.90, -73.78}};
  for (int i = 0; i < 6; ++i) {
    ctx_.AddRider(MakeRider(i, pickups[static_cast<size_t>(i)],
                            LatLon{40.75, -73.92}, 600.0));
  }
  std::vector<LatLon> locs = {
      {40.705, -74.0}, {40.805, -73.895}, {40.61, -74.01}, {40.89, -73.79}};
  for (int j = 0; j < 4; ++j) {
    ctx_.AddDriver(MakeDriver(j, locs[static_cast<size_t>(j)]));
  }
  FinalizeSnapshots({{ctx_.riders()[0].dropoff_region, 40.0}});

  auto rand = MakeRandomDispatcher(7);
  auto near = MakeNearestDispatcher();
  auto ltg = MakeLongTripGreedyDispatcher();
  auto irg = MakeIrgDispatcher();
  auto ls = MakeLocalSearchDispatcher();
  auto shrt = MakeShortDispatcher();
  auto polar = MakePolarDispatcher();
  for (Dispatcher* d : {rand.get(), near.get(), ltg.get(), irg.get(),
                        ls.get(), shrt.get(), polar.get()}) {
    std::vector<Assignment> out;
    d->Dispatch(ctx_, &out);
    EXPECT_TRUE(AssignmentsValid(ctx_, out)) << d->name();
    // Every driver has at least one feasible rider here; greedy approaches
    // should match all 4 drivers.
    if (d->name() != "RAND") {
      EXPECT_EQ(out.size(), 4u) << d->name();
    } else {
      EXPECT_GE(out.size(), 3u) << d->name();
    }
  }
}

TEST_F(DispatchTest, NearestPicksClosestDriver) {
  LatLon rider_p{40.70, -74.00};
  ctx_.AddRider(MakeRider(0, rider_p, LatLon{40.75, -73.95}, 500.0));
  ctx_.AddDriver(MakeDriver(0, LatLon{40.72, -74.00}));  // farther
  ctx_.AddDriver(MakeDriver(1, LatLon{40.701, -74.00}));  // closest
  FinalizeSnapshots();
  auto near = MakeNearestDispatcher();
  std::vector<Assignment> out;
  near->Dispatch(ctx_, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].driver_index, 1);
}

TEST_F(DispatchTest, LtgPicksHighestRevenue) {
  LatLon origin{40.70, -74.00};
  ctx_.AddRider(MakeRider(0, origin, LatLon{40.705, -74.00}));   // short
  ctx_.AddRider(MakeRider(1, origin, LatLon{40.90, -73.78}));    // long
  ctx_.AddDriver(MakeDriver(0, origin));
  FinalizeSnapshots();
  auto ltg = MakeLongTripGreedyDispatcher();
  std::vector<Assignment> out;
  ltg->Dispatch(ctx_, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rider_index, 1);
}

TEST_F(DispatchTest, UpperAssignsTopRevenueRiders) {
  LatLon origin{40.70, -74.00};
  ctx_.AddRider(MakeRider(0, origin, LatLon{40.705, -74.00}));
  ctx_.AddRider(MakeRider(1, origin, LatLon{40.90, -73.78}));
  ctx_.AddRider(MakeRider(2, origin, LatLon{40.80, -73.90}));
  ctx_.AddDriver(MakeDriver(0, LatLon{40.60, -74.02}));
  ctx_.AddDriver(MakeDriver(1, LatLon{40.61, -74.02}));
  FinalizeSnapshots();
  auto upper = MakeUpperBoundDispatcher();
  std::vector<Assignment> out;
  upper->Dispatch(ctx_, &out);
  ASSERT_EQ(out.size(), 2u);  // min(3 riders, 2 drivers)
  // The two most expensive riders (1 then 2) are selected.
  EXPECT_EQ(out[0].rider_index, 1);
  EXPECT_EQ(out[1].rider_index, 2);
}

TEST_F(DispatchTest, LocalSearchNeverWorseThanIrgObjective) {
  // Compare the summed idle ratios of LS vs IRG on a contended scenario.
  std::vector<LatLon> pickups = {
      {40.70, -74.00}, {40.703, -74.002}, {40.706, -73.998}};
  std::vector<LatLon> dests = {
      {40.88, -73.80}, {40.62, -74.01}, {40.75, -73.92}};
  for (int i = 0; i < 3; ++i) {
    ctx_.AddRider(MakeRider(i, pickups[static_cast<size_t>(i)],
                            dests[static_cast<size_t>(i)], 400.0));
  }
  ctx_.AddDriver(MakeDriver(0, LatLon{40.701, -74.0}));
  ctx_.AddDriver(MakeDriver(1, LatLon{40.704, -74.0}));
  FinalizeSnapshots({{grid_.RegionOf(dests[0]), 100.0}});

  auto score_sum = [&](const std::vector<Assignment>& as) {
    double s = 0;
    for (const auto& a : as) {
      s += ScorePair(ctx_, ctx_.riders()[static_cast<size_t>(a.rider_index)],
                     GreedyObjective::kIdleRatio, 0);
    }
    return s;
  };

  auto irg = MakeIrgDispatcher();
  auto ls = MakeLocalSearchDispatcher();
  std::vector<Assignment> irg_out, ls_out;
  irg->Dispatch(ctx_, &irg_out);
  ls->Dispatch(ctx_, &ls_out);
  EXPECT_TRUE(AssignmentsValid(ctx_, ls_out));
  EXPECT_EQ(ls_out.size(), irg_out.size());
  EXPECT_LE(score_sum(ls_out), score_sum(irg_out) + 1e-9);
}

TEST_F(DispatchTest, EmptyBatchYieldsNoAssignments) {
  FinalizeSnapshots();
  std::vector<std::unique_ptr<Dispatcher>> dispatchers;
  dispatchers.push_back(MakeIrgDispatcher());
  dispatchers.push_back(MakeLocalSearchDispatcher());
  dispatchers.push_back(MakeShortDispatcher());
  dispatchers.push_back(MakePolarDispatcher());
  dispatchers.push_back(MakeNearestDispatcher());
  dispatchers.push_back(MakeUpperBoundDispatcher());
  for (auto& d : dispatchers) {
    std::vector<Assignment> out;
    d->Dispatch(ctx_, &out);
    EXPECT_TRUE(out.empty()) << d->name();
  }
}

}  // namespace
}  // namespace mrvd
