// End-to-end integration: a scaled-down day over the full pipeline
// (generator -> predictors -> forecast -> simulator -> all dispatchers),
// asserting the qualitative relationships the paper's evaluation reports.
#include <gtest/gtest.h>

#include <map>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "sim/engine.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.grid_rows = 8;
    cfg.grid_cols = 8;
    cfg.orders_per_day = 6000.0;
    cfg.base_pickup_wait = 180.0;
    generator_ = new NycLikeGenerator(cfg);
    workload_ = new Workload(generator_->GenerateDay(/*day_index=*/14,
                                                     /*num_drivers=*/70));
    cost_ = new StraightLineCostModel(7.0, 1.3);

    // Oracle forecast over the realized counts of the test day.
    realized_ = new DemandHistory(generator_->RealizedCounts(*workload_, 48));
    oracle_ = MakeOraclePredictor().release();
    auto fc = DemandForecast::Build(*oracle_, *realized_, 0);
    ASSERT_TRUE(fc.ok());
    forecast_ = new DemandForecast(std::move(fc).value());
  }
  static void TearDownTestSuite() {
    delete forecast_;
    delete oracle_;
    delete realized_;
    delete cost_;
    delete workload_;
    delete generator_;
  }

  static SimConfig BaseConfig() {
    SimConfig cfg;
    cfg.batch_interval = 10.0;
    cfg.window_seconds = 1200.0;
    return cfg;
  }

  static SimResult RunDispatcher(Dispatcher& d, const SimConfig& cfg,
                                 bool with_forecast = true) {
    Simulator sim(cfg, *workload_, generator_->grid(), *cost_,
                  with_forecast ? forecast_ : nullptr);
    return sim.Run(d);
  }

  static NycLikeGenerator* generator_;
  static Workload* workload_;
  static StraightLineCostModel* cost_;
  static DemandHistory* realized_;
  static DemandPredictor* oracle_;
  static DemandForecast* forecast_;
};

NycLikeGenerator* IntegrationTest::generator_ = nullptr;
Workload* IntegrationTest::workload_ = nullptr;
StraightLineCostModel* IntegrationTest::cost_ = nullptr;
DemandHistory* IntegrationTest::realized_ = nullptr;
DemandPredictor* IntegrationTest::oracle_ = nullptr;
DemandForecast* IntegrationTest::forecast_ = nullptr;

TEST_F(IntegrationTest, AllApproachesConserveOrders) {
  auto rand = MakeRandomDispatcher(3);
  auto near = MakeNearestDispatcher();
  auto irg = MakeIrgDispatcher();
  for (Dispatcher* d : {rand.get(), near.get(), irg.get()}) {
    SimResult r = RunDispatcher(*d, BaseConfig());
    EXPECT_EQ(r.served_orders + r.reneged_orders, r.total_orders)
        << d->name();
    EXPECT_GT(r.served_orders, 0) << d->name();
    EXPECT_GT(r.total_revenue, 0.0) << d->name();
  }
}

TEST_F(IntegrationTest, UpperBoundDominatesEveryApproach) {
  SimConfig upper_cfg = BaseConfig();
  upper_cfg.zero_pickup_travel = true;
  auto upper = MakeUpperBoundDispatcher();
  double upper_rev = RunDispatcher(*upper, upper_cfg).total_revenue;

  auto ls = MakeLocalSearchDispatcher();
  auto ltg = MakeLongTripGreedyDispatcher();
  for (Dispatcher* d : {static_cast<Dispatcher*>(ls.get()),
                        static_cast<Dispatcher*>(ltg.get())}) {
    double rev = RunDispatcher(*d, BaseConfig()).total_revenue;
    EXPECT_LE(rev, upper_rev * 1.0001) << d->name();
  }
}

TEST_F(IntegrationTest, QueueingApproachesBeatRandom) {
  auto rand = MakeRandomDispatcher(11);
  auto irg = MakeIrgDispatcher();
  auto ls = MakeLocalSearchDispatcher();
  double rev_rand = RunDispatcher(*rand, BaseConfig()).total_revenue;
  double rev_irg = RunDispatcher(*irg, BaseConfig()).total_revenue;
  double rev_ls = RunDispatcher(*ls, BaseConfig()).total_revenue;
  EXPECT_GT(rev_irg, rev_rand);
  EXPECT_GT(rev_ls, rev_rand);
}

TEST_F(IntegrationTest, ShortServesCompetitively) {
  // SHORT's served-order advantage is established at realistic scale by
  // bench_fig13_served_orders; at this toy scale we only require it to be
  // within noise of the strongest served-count baseline.
  auto shrt = MakeShortDispatcher();
  auto rand = MakeRandomDispatcher(5);
  int64_t served_short = RunDispatcher(*shrt, BaseConfig()).served_orders;
  int64_t served_rand = RunDispatcher(*rand, BaseConfig()).served_orders;
  EXPECT_GE(static_cast<double>(served_short),
            static_cast<double>(served_rand) * 0.93);
}

TEST_F(IntegrationTest, LongerWaitingTimeRaisesRevenue) {
  // Figure 10 trend: larger τ -> more riders served.
  GeneratorConfig cfg;
  cfg.grid_rows = 8;
  cfg.grid_cols = 8;
  cfg.orders_per_day = 6000.0;
  cfg.base_pickup_wait = 60.0;
  NycLikeGenerator impatient_gen(cfg);
  Workload impatient = impatient_gen.GenerateDay(14, 70);

  auto near = MakeNearestDispatcher();
  Simulator sim_short(BaseConfig(), impatient, impatient_gen.grid(), *cost_,
                      nullptr);
  double rev_short_wait = sim_short.Run(*near).total_revenue;

  double rev_long_wait = RunDispatcher(*near, BaseConfig(), false).total_revenue;
  EXPECT_GT(rev_long_wait, rev_short_wait);
}

TEST_F(IntegrationTest, MoreDriversMoreRevenue) {
  // Figure 7 trend.
  Workload more_drivers = generator_->GenerateDay(14, 140);
  auto near = MakeNearestDispatcher();
  Simulator sim_more(BaseConfig(), more_drivers, generator_->grid(), *cost_,
                     nullptr);
  double rev_more = sim_more.Run(*near).total_revenue;
  double rev_base = RunDispatcher(*near, BaseConfig(), false).total_revenue;
  EXPECT_GT(rev_more, rev_base * 1.05);
}

TEST_F(IntegrationTest, IdleTimeEstimatesTrackReality) {
  // Table 3's claim at small scale: the queueing estimate of driver idle
  // time is within a reasonable relative error of the realized idle time.
  auto irg = MakeIrgDispatcher();
  SimResult r = RunDispatcher(*irg, BaseConfig());
  ASSERT_GT(r.idle_error.count(), 100);
  // At this toy scale (70 drivers, 6k orders) estimates are noisy; the
  // paper-scale accuracy claim is checked by bench_table3_idle_time.
  EXPECT_LT(r.idle_error.RelativeRmsePct(), 200.0);
  // Region-level predictions correlate: regions with higher mean real idle
  // should tend to have higher predicted idle. Check the global means are
  // the same order of magnitude.
  double mean_real = 0, mean_pred = 0;
  int64_t n = 0;
  for (const auto& reg : r.region_idle) {
    mean_real += reg.real_sum;
    mean_pred += reg.predicted_sum;
    n += reg.count;
  }
  ASSERT_GT(n, 0);
  mean_real /= static_cast<double>(n);
  mean_pred /= static_cast<double>(n);
  EXPECT_GT(mean_pred, mean_real * 0.1);
  EXPECT_LT(mean_pred, mean_real * 10.0);
}

TEST_F(IntegrationTest, BatchRunningTimesAreSane) {
  auto ls = MakeLocalSearchDispatcher();
  SimResult r = RunDispatcher(*ls, BaseConfig());
  EXPECT_GT(r.num_batches, 1000);
  EXPECT_LT(r.batch_seconds.mean(), 0.5);  // well under the 2 s the paper cites
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  auto irg1 = MakeIrgDispatcher();
  auto irg2 = MakeIrgDispatcher();
  SimResult a = RunDispatcher(*irg1, BaseConfig());
  SimResult b = RunDispatcher(*irg2, BaseConfig());
  EXPECT_DOUBLE_EQ(a.total_revenue, b.total_revenue);
  EXPECT_EQ(a.served_orders, b.served_orders);
}

}  // namespace
}  // namespace mrvd
