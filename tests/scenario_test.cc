// Scenario event subsystem semantics through the staged engine: driver
// shifts (signed-off drivers never receive assignments, sign-ons re-enter
// incrementally), explicit rider cancellations (counted separately from
// deadline reneges), and surge windows (predicted demand scaled for the
// affected regions while active) — under the full dispatcher roster.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/dispatcher_registry.h"
#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "registry_test_helpers.h"
#include "scenario/generator.h"
#include "scenario/script.h"
#include "sim/engine.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

using test::FullRoster;
using test::MakeSeeded;

SimConfig ScenarioConfig() {
  SimConfig cfg;
  cfg.horizon_seconds = 4 * 3600.0;
  cfg.batch_interval = 30.0;
  return cfg;
}

// ------------------------------------------------------------ event stream

TEST(EventStreamTest, DrainsInTimeOrderWithStableTies) {
  ScenarioScript script;
  script.Cancel(300.0, 7)
      .SignOff(100.0, 1)
      .SignOn(300.0, 2)  // same time as the cancel: insertion order wins
      .Surge({200.0, 400.0, 1.5, {}});
  EXPECT_EQ(script.size(), 5u);  // surge window = begin + end events

  EventStream stream(script);
  std::vector<std::pair<double, ScenarioEventType>> drained;
  for (double now : {0.0, 250.0, 500.0}) {
    while (const ScenarioEvent* e = stream.PeekDue(now)) {
      drained.push_back({e->time, e->type});
      stream.Pop();
    }
  }
  EXPECT_TRUE(stream.Exhausted());
  ASSERT_EQ(drained.size(), 5u);
  EXPECT_EQ(drained[0].first, 100.0);
  EXPECT_EQ(drained[1].second, ScenarioEventType::kSurgeBegin);
  EXPECT_EQ(drained[2].second, ScenarioEventType::kRiderCancel);
  EXPECT_EQ(drained[3].second, ScenarioEventType::kDriverSignOn);
  EXPECT_EQ(drained[4].second, ScenarioEventType::kSurgeEnd);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LE(drained[i - 1].first, drained[i].first);
  }
}

TEST(EventStreamTest, EmptyStreamsAreExhaustedFromTheStart) {
  // Default-constructed (no script) and empty-script streams behave
  // identically: nothing is ever due, Exhausted() from the first call.
  EventStream no_script;
  EXPECT_TRUE(no_script.Exhausted());
  EXPECT_EQ(no_script.PeekDue(1e12), nullptr);

  ScenarioScript empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EventStream stream(empty);
  EXPECT_TRUE(stream.Exhausted());
  EXPECT_EQ(stream.PeekDue(0.0), nullptr);
  EXPECT_EQ(stream.PeekDue(1e12), nullptr);
}

TEST(EventStreamTest, SingleEventStream) {
  ScenarioScript script;
  script.SignOff(600.0, 42);
  EventStream stream(script);

  EXPECT_FALSE(stream.Exhausted());
  EXPECT_EQ(stream.PeekDue(599.999), nullptr);  // not due yet
  const ScenarioEvent* due = stream.PeekDue(600.0);  // due exactly at t
  ASSERT_NE(due, nullptr);
  EXPECT_EQ(due->type, ScenarioEventType::kDriverSignOff);
  EXPECT_EQ(due->driver_id, 42);
  // Peek does not consume: the same event stays due until Pop().
  EXPECT_EQ(stream.PeekDue(700.0), due);
  stream.Pop();
  EXPECT_TRUE(stream.Exhausted());
  EXPECT_EQ(stream.PeekDue(700.0), nullptr);
}

TEST(EventStreamTest, LargeSameTimestampBlockKeepsInsertionOrder) {
  // std::sort would be allowed to shuffle a same-timestamp block;
  // EventStream promises stability (insertion order breaks ties), which
  // the engine relies on for deterministic same-batch event application.
  // 256 elements is far past any introsort small-buffer special case.
  ScenarioScript script;
  script.SignOn(100.0, -1);  // earlier neighbour
  for (DriverId id = 0; id < 256; ++id) {
    if (id % 3 == 0) {
      script.SignOff(500.0, id);
    } else {
      script.SignOn(500.0, id);
    }
  }
  script.Cancel(900.0, 7);  // later neighbour

  EventStream stream(script);
  const ScenarioEvent* first = stream.PeekDue(1000.0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->time, 100.0);
  stream.Pop();
  for (DriverId id = 0; id < 256; ++id) {
    const ScenarioEvent* e = stream.PeekDue(1000.0);
    ASSERT_NE(e, nullptr) << id;
    EXPECT_EQ(e->time, 500.0) << id;
    EXPECT_EQ(e->driver_id, id) << id;
    EXPECT_EQ(e->type, id % 3 == 0 ? ScenarioEventType::kDriverSignOff
                                   : ScenarioEventType::kDriverSignOn)
        << id;
    stream.Pop();
  }
  const ScenarioEvent* last = stream.PeekDue(1000.0);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->type, ScenarioEventType::kRiderCancel);
  stream.Pop();
  EXPECT_TRUE(stream.Exhausted());
}

TEST(ScenarioScriptTest, KeepsInsertionOrderAndSurgeIndexing) {
  // The script itself is order-preserving (events() is insertion order;
  // only EventStream time-sorts), and surge_index addresses surges().
  ScenarioScript script;
  script.Cancel(900.0, 3).SignOn(100.0, 1);
  script.Surge({50.0, 60.0, 2.0, {4, 5}});
  const auto& events = script.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, ScenarioEventType::kRiderCancel);
  EXPECT_EQ(events[1].type, ScenarioEventType::kDriverSignOn);
  EXPECT_EQ(events[2].type, ScenarioEventType::kSurgeBegin);
  EXPECT_EQ(events[3].type, ScenarioEventType::kSurgeEnd);
  ASSERT_EQ(script.surges().size(), 1u);
  EXPECT_EQ(events[2].surge_index, 0);
  EXPECT_EQ(events[3].surge_index, 0);
  EXPECT_EQ(script.surges()[0].regions, (std::vector<RegionId>{4, 5}));
}

TEST(EventStreamTest, DegenerateSurgeWindowsAreIgnored) {
  ScenarioScript script;
  script.Surge({500.0, 500.0, 2.0, {}});   // empty interval
  script.Surge({500.0, 400.0, 2.0, {}});   // inverted
  script.Surge({0.0, 100.0, -1.0, {}});    // non-positive multiplier
  EXPECT_TRUE(script.empty());
  EXPECT_TRUE(script.surges().empty());
}

// ------------------------------------------------------------ driver shifts

class AssignmentRecorder : public SimObserver {
 public:
  void OnAssignmentApplied(double now, const AssignmentEvent& e) override {
    assignments.push_back({now, e.driver_id});
    served_ids.insert(e.order_id);
  }
  void OnDriverShiftChange(double now, DriverId driver_id,
                           bool signed_on) override {
    shift_changes.push_back({now, driver_id, signed_on});
  }
  void OnRiderCancelled(double /*now*/, const Order& order) override {
    cancelled_ids.insert(order.id);
  }

  struct ShiftChange {
    double now;
    DriverId driver;
    bool signed_on;
  };
  std::vector<std::pair<double, DriverId>> assignments;
  std::vector<ShiftChange> shift_changes;
  std::set<OrderId> served_ids;
  std::set<OrderId> cancelled_ids;
};

class ScenarioEngineTest : public ::testing::Test {
 protected:
  ScenarioEngineTest() : cost_(7.0, 1.3) {
    GeneratorConfig gcfg;
    gcfg.orders_per_day = 900.0;
    gcfg.seed = 20190417;
    gen_ = std::make_unique<NycLikeGenerator>(gcfg);
    workload_ = gen_->GenerateDay(/*day_index=*/1, /*num_drivers=*/40);
    // The scripts address drivers/orders by workload id; the generator
    // hands out ids equal to the array index (relied on below).
    for (size_t j = 0; j < workload_.drivers.size(); ++j) {
      EXPECT_EQ(workload_.drivers[j].id, static_cast<DriverId>(j));
    }
  }

  StraightLineCostModel cost_;
  std::unique_ptr<NycLikeGenerator> gen_;
  Workload workload_;
};

TEST_F(ScenarioEngineTest, SignedOffDriversNeverReceiveAssignments) {
  const double off_at = 3600.0, on_at = 7200.0;
  const int num_off = 10;
  ScenarioScript script;
  for (DriverId id = 0; id < num_off; ++id) {
    script.SignOff(off_at, id).SignOn(on_at, id);
  }

  for (const std::string& name : FullRoster()) {
    SimConfig cfg = ScenarioConfig();
    if (DispatcherRegistry::Global().RequiresZeroPickupTravel(name)) {
      cfg.zero_pickup_travel = true;
    }
    for (int threads : {1, 4}) {
      cfg.num_threads = threads;
      auto dispatcher = MakeSeeded(name, /*seed=*/5);
      ASSERT_NE(dispatcher, nullptr);
      Simulator sim(cfg, workload_, gen_->grid(), cost_, nullptr);
      AssignmentRecorder rec;
      SimResult r = sim.Run(*dispatcher, script, &rec);
      const std::string label =
          name + " @" + std::to_string(threads);

      ASSERT_GT(r.served_orders, 0) << label;
      EXPECT_EQ(r.driver_sign_offs, num_off) << label;
      EXPECT_EQ(r.driver_sign_ons, num_off) << label;
      EXPECT_EQ(r.cancelled_orders, 0) << label;

      // The invariant: while a driver is off shift, no new assignment may
      // reference it. (AssignmentEvent::driver_id and the script share the
      // workload DriverSpec::id space.)
      bool assigned_during_off = false, assigned_after_on = false;
      for (const auto& [now, driver] : rec.assignments) {
        if (driver < num_off && now >= off_at && now < on_at) {
          assigned_during_off = true;
        }
        if (driver < num_off && now >= on_at) assigned_after_on = true;
      }
      EXPECT_FALSE(assigned_during_off) << label;
      // The second shift actually comes back to work.
      EXPECT_TRUE(assigned_after_on) << label;
    }
  }
}

// ------------------------------------------------------------ cancellations

TEST_F(ScenarioEngineTest, CancellationsCountedSeparatelyFromReneges) {
  // Starve the market (few drivers) so cancels land on waiting riders.
  Workload starved = workload_;
  starved.drivers.resize(8);
  ScenarioScript script;
  int scripted_cancels = 0;
  for (size_t i = 0; i < starved.orders.size(); i += 3) {
    const Order& o = starved.orders[i];
    const double patience = o.pickup_deadline - o.request_time;
    script.Cancel(o.request_time + 0.25 * patience, o.id);
    ++scripted_cancels;
  }
  ASSERT_GT(scripted_cancels, 0);

  SimConfig cfg = ScenarioConfig();
  auto dispatcher = MakeNearestDispatcher();
  Simulator sim(cfg, starved, gen_->grid(), cost_, nullptr);
  AssignmentRecorder rec;
  SimResult r = sim.Run(*dispatcher, script, &rec);

  EXPECT_GT(r.cancelled_orders, 0);
  EXPECT_LE(r.cancelled_orders, scripted_cancels);
  EXPECT_EQ(r.cancelled_orders,
            static_cast<int64_t>(rec.cancelled_ids.size()));
  // Cancels are not reneges, and the three outcomes partition the day.
  EXPECT_EQ(r.served_orders + r.reneged_orders + r.cancelled_orders,
            r.total_orders);
  // A cancelled rider was never served.
  std::vector<OrderId> both;
  std::set_intersection(rec.cancelled_ids.begin(), rec.cancelled_ids.end(),
                        rec.served_ids.begin(), rec.served_ids.end(),
                        std::back_inserter(both));
  EXPECT_TRUE(both.empty());

  // The unscripted run reneges more and cancels nothing.
  auto baseline_dispatcher = MakeNearestDispatcher();
  Simulator baseline(cfg, starved, gen_->grid(), cost_, nullptr);
  SimResult b = baseline.Run(*baseline_dispatcher);
  EXPECT_EQ(b.cancelled_orders, 0);
  EXPECT_EQ(b.served_orders + b.reneged_orders, b.total_orders);
}

// ------------------------------------------------------------ surge windows

class SurgeChecker : public SimObserver {
 public:
  SurgeChecker(const DemandForecast* forecast, double window_seconds)
      : forecast_(forecast), window_seconds_(window_seconds) {}

  void OnBatchBuilt(double now, double /*build_seconds*/,
                    const BatchContext& ctx) override {
    for (int k = 0; k < static_cast<int>(ctx.snapshots().size()); ++k) {
      double expected = forecast_->WindowCount(now, window_seconds_, k);
      double m = 1.0;
      if (now >= 7200.0 && now < 10800.0) m *= 2.5;       // city-wide
      if (now >= 1800.0 && now < 5400.0 && k < 3) m *= 1.5;  // regional
      expected *= m;
      EXPECT_DOUBLE_EQ(
          ctx.snapshots()[static_cast<size_t>(k)].predicted_riders, expected)
          << "region " << k << " at t=" << now;
      if (m != 1.0 && expected > 0.0) saw_scaled_demand = true;
    }
  }
  void OnSurgeChange(double now, const SurgeWindow& window,
                     bool active) override {
    transitions.push_back({now, window.multiplier, active});
  }

  struct Transition {
    double now;
    double multiplier;
    bool active;
  };
  std::vector<Transition> transitions;
  bool saw_scaled_demand = false;

 private:
  const DemandForecast* forecast_;
  double window_seconds_;
};

TEST_F(ScenarioEngineTest, SurgeWindowsScalePredictedDemandWhileActive) {
  // An oracle forecast makes predicted_riders nonzero, so the surge
  // multiplier is observable in every batch snapshot.
  DemandHistory realized = gen_->RealizedCounts(workload_, 48);
  auto oracle = MakeOraclePredictor();
  auto forecast = DemandForecast::Build(*oracle, realized, /*eval_day=*/0);
  ASSERT_TRUE(forecast.ok());

  ScenarioScript script;
  script.Surge(RushHourSurge(7200.0, 10800.0, 2.5));
  SurgeWindow regional;
  regional.start_seconds = 1800.0;
  regional.end_seconds = 5400.0;
  regional.multiplier = 1.5;
  regional.regions = {0, 1, 2};
  script.Surge(regional);

  SimConfig cfg = ScenarioConfig();
  auto dispatcher = MakeIrgDispatcher();
  Simulator sim(cfg, workload_, gen_->grid(), cost_, &forecast.value());
  SurgeChecker checker(&forecast.value(), cfg.window_seconds);
  SimResult r = sim.Run(*dispatcher, script, &checker);

  EXPECT_EQ(r.surge_changes, 4);  // two windows, begin + end each
  ASSERT_EQ(checker.transitions.size(), 4u);
  EXPECT_EQ(checker.transitions[0].now, 1800.0);
  EXPECT_TRUE(checker.transitions[0].active);
  EXPECT_EQ(checker.transitions[1].now, 5400.0);
  EXPECT_FALSE(checker.transitions[1].active);
  EXPECT_EQ(checker.transitions[2].now, 7200.0);
  EXPECT_EQ(checker.transitions[2].multiplier, 2.5);
  EXPECT_EQ(checker.transitions[3].now, 10800.0);
  EXPECT_TRUE(checker.saw_scaled_demand);
}

// ------------------------------------------------------- scripted-day runs

TEST_F(ScenarioEngineTest, TwoShiftSurgeCancellationDayEndToEnd) {
  ScenarioDayConfig day_cfg;
  day_cfg.two_shift_fleet = true;
  day_cfg.shift_change_seconds = 2 * 3600.0;  // inside the 4h horizon
  day_cfg.shift_overlap_seconds = 600.0;
  day_cfg.cancel_probability = 0.15;
  day_cfg.surges.push_back(RushHourSurge(3600.0, 7200.0, 1.8));
  ScenarioScript script = BuildScenarioDay(workload_, day_cfg);

  // Script structure: every cancel lies strictly inside its order's
  // patience window.
  int cancels_in_script = 0;
  for (const ScenarioEvent& e : script.events()) {
    if (e.type != ScenarioEventType::kRiderCancel) continue;
    ++cancels_in_script;
    const Order& o = workload_.orders[static_cast<size_t>(e.order_id)];
    EXPECT_GT(e.time, o.request_time);
    EXPECT_LT(e.time, o.pickup_deadline);
  }
  ASSERT_GT(cancels_in_script, 0);

  const int n = static_cast<int>(workload_.drivers.size());
  for (const char* name : {"IRG", "SHORT"}) {
    SimConfig cfg = ScenarioConfig();
    auto dispatcher = MakeSeeded(name, /*seed=*/5);
    Simulator sim(cfg, workload_, gen_->grid(), cost_, nullptr);
    AssignmentRecorder rec;
    SimResult r = sim.Run(*dispatcher, script, &rec);

    // Whole fleet signs off once (evening shift at t=0, morning shift
    // after the overlap); the evening shift signs back on.
    EXPECT_EQ(r.driver_sign_offs, n) << name;
    EXPECT_EQ(r.driver_sign_ons, n / 2) << name;
    EXPECT_EQ(r.surge_changes, 2) << name;
    EXPECT_GT(r.served_orders, 0) << name;
    EXPECT_GT(r.cancelled_orders, 0) << name;
    EXPECT_EQ(r.served_orders + r.reneged_orders + r.cancelled_orders,
              r.total_orders)
        << name;

    // Before the shift change only the morning half works; the evening
    // half gets its first assignments only after signing on.
    for (const auto& [now, driver] : rec.assignments) {
      if (now < day_cfg.shift_change_seconds) {
        EXPECT_LT(driver, n / 2) << name << " at t=" << now;
      }
    }
  }
}

}  // namespace
}  // namespace mrvd
