#include <gtest/gtest.h>

#include <cmath>

#include "queueing/birth_death.h"
#include "queueing/rates.h"

namespace mrvd {
namespace {

// --------------------------------------------------------- validation

TEST(BirthDeathTest, RejectsBadParameters) {
  EXPECT_FALSE(BirthDeathChain::Solve({0.0, 1.0, 0.0, 5}).ok());
  EXPECT_FALSE(BirthDeathChain::Solve({1.0, 0.0, 0.0, 5}).ok());
  EXPECT_FALSE(BirthDeathChain::Solve({1.0, 1.0, -0.1, 5}).ok());
  EXPECT_FALSE(BirthDeathChain::Solve({1.0, 1.0, 0.0, -1}).ok());
  EXPECT_TRUE(BirthDeathChain::Solve({1.0, 1.0, 0.0, 0}).ok());
}

TEST(RenegingFunctionTest, MatchesDefinition) {
  RenegingFunction pi(0.1, 2.0);
  EXPECT_NEAR(pi(1), std::exp(0.1) / 2.0, 1e-12);
  EXPECT_NEAR(pi(10), std::exp(1.0) / 2.0, 1e-12);
  // beta = 0: constant 1/mu.
  RenegingFunction flat(0.0, 4.0);
  EXPECT_DOUBLE_EQ(flat(1), 0.25);
  EXPECT_DOUBLE_EQ(flat(100), 0.25);
}

// ------------------------------------------------- distribution shape

double SumStateProbabilities(const BirthDeathChain& chain, int64_t lo,
                             int64_t hi) {
  double s = 0.0;
  for (int64_t n = lo; n <= hi; ++n) s += chain.StateProbability(n);
  return s;
}

TEST(BirthDeathTest, ProbabilitiesSumToOneMoreRiders) {
  auto chain = BirthDeathChain::Solve({2.0, 1.0, 0.05, 50});
  ASSERT_TRUE(chain.ok());
  // λ > μ: negative side extends far; sum a generous range.
  double total = SumStateProbabilities(*chain, -2000,
                                       chain->positive_tail_length());
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(BirthDeathTest, ProbabilitiesSumToOneMoreDrivers) {
  auto chain = BirthDeathChain::Solve({1.0, 1.6, 0.05, 40});
  ASSERT_TRUE(chain.ok());
  double total =
      SumStateProbabilities(*chain, -40, chain->positive_tail_length());
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(BirthDeathTest, ProbabilitiesSumToOneBalanced) {
  auto chain = BirthDeathChain::Solve({1.0, 1.0, 0.05, 30});
  ASSERT_TRUE(chain.ok());
  double total =
      SumStateProbabilities(*chain, -30, chain->positive_tail_length());
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(BirthDeathTest, FlowBalanceHoldsAcrossEveryCut) {
  // Eq. 5: mu_n p_n == lambda p_{n-1}.
  QueueParams params{1.3, 0.9, 0.08, 25};
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());
  RenegingFunction pi(params.beta, params.mu);
  for (int64_t n = -20; n <= 15; ++n) {
    if (n == -25) continue;
    double mu_n = n <= 0 ? params.mu : params.mu + pi(n);
    double lhs = mu_n * chain->StateProbability(n);
    double rhs = params.lambda * chain->StateProbability(n - 1);
    EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + lhs)) << "cut at n=" << n;
  }
}

TEST(BirthDeathTest, NegativeStatesGeometricWhenLambdaLarger) {
  // Eq. 6 for n < 0: p_n = p0 (mu/lambda)^{-n}.
  auto chain = BirthDeathChain::Solve({2.0, 1.0, 0.1, 10});
  ASSERT_TRUE(chain.ok());
  double p0 = chain->p0();
  for (int64_t j = 1; j <= 8; ++j) {
    EXPECT_NEAR(chain->StateProbability(-j), p0 * std::pow(0.5, j), 1e-12);
  }
}

TEST(BirthDeathTest, StatesBeyondCapHaveZeroProbability) {
  auto chain = BirthDeathChain::Solve({1.0, 2.0, 0.1, 7});
  ASSERT_TRUE(chain.ok());
  EXPECT_GT(chain->StateProbability(-7), 0.0);
  EXPECT_DOUBLE_EQ(chain->StateProbability(-8), 0.0);
  EXPECT_DOUBLE_EQ(chain->StateProbability(-100), 0.0);
}

// ----------------------------------------------- closed forms (Eqs. 9-16)

TEST(BirthDeathTest, P0MatchesEquation9AnalyticBetaZero) {
  // With beta = 0, pi(n) = 1/mu and the positive side is geometric with
  // ratio q = lambda / (mu + 1/mu); Eq. 9 has the closed form
  // p0 = 1 / (lambda/(lambda-mu) + q/(1-q)).
  double lambda = 2.0, mu = 1.5;
  double q = lambda / (mu + 1.0 / mu);
  ASSERT_LT(q, 1.0);
  double expected_p0 = 1.0 / (lambda / (lambda - mu) + q / (1.0 - q));
  auto chain = BirthDeathChain::Solve({lambda, mu, 0.0, 10});
  ASSERT_TRUE(chain.ok());
  EXPECT_NEAR(chain->p0(), expected_p0, 1e-9);
}

TEST(BirthDeathTest, IdleTimeMatchesEquation10) {
  // Eq. 10: ET = lambda p0 / (lambda - mu)^2 for lambda > mu.
  QueueParams params{1.8, 1.1, 0.07, 30};
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());
  double expected = params.lambda * chain->p0() /
                    ((params.lambda - params.mu) * (params.lambda - params.mu));
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), expected, 1e-9 * expected);
}

TEST(BirthDeathTest, IdleTimeMatchesEquation13) {
  // Eq. 13 for lambda < mu with moderate K (closed form computed directly).
  double lambda = 1.0, mu = 1.5;
  int64_t K = 12;
  double theta = mu / lambda;
  QueueParams params{lambda, mu, 0.06, K};
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());
  double p0 = chain->p0();
  double kk = static_cast<double>(K);
  double expected =
      p0 / lambda *
      ((kk + 1.0) * std::pow(theta, kk + 2.0) -
       (kk + 2.0) * std::pow(theta, kk + 1.0) + 1.0) /
      ((theta - 1.0) * (theta - 1.0));
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), expected, 1e-9 * expected);
}

TEST(BirthDeathTest, IdleTimeMatchesEquation16) {
  // Eq. 16: ET = p0 (K+1)(K+2) / (2 lambda) for lambda == mu.
  double lambda = 0.8;
  int64_t K = 9;
  auto chain = BirthDeathChain::Solve({lambda, lambda, 0.04, K});
  ASSERT_TRUE(chain.ok());
  double expected = chain->p0() * (K + 1.0) * (K + 2.0) / (2.0 * lambda);
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), expected, 1e-9 * expected);
}

TEST(BirthDeathTest, IdleTimeEqualsDirectExpectationSum) {
  // ET must equal  sum_{n<=0} (|n|+1)/lambda * p_n  in every regime.
  for (QueueParams params : {QueueParams{2.0, 1.0, 0.05, 20},
                             QueueParams{1.0, 1.7, 0.05, 20},
                             QueueParams{1.2, 1.2, 0.05, 20}}) {
    auto chain = BirthDeathChain::Solve(params);
    ASSERT_TRUE(chain.ok());
    double direct = 0.0;
    for (int64_t n = 0; n >= -3000; --n) {
      double p = chain->StateProbability(n);
      direct += (static_cast<double>(-n) + 1.0) / params.lambda * p;
      if (p == 0.0 && n < -static_cast<int64_t>(params.max_drivers)) break;
    }
    EXPECT_NEAR(chain->ExpectedIdleSeconds(), direct,
                1e-6 * (1.0 + direct))
        << "lambda=" << params.lambda << " mu=" << params.mu;
  }
}

// ----------------------------------------------------------- monotonicity

TEST(BirthDeathTest, IdleTimeIncreasesWithDriverRate) {
  // More rejoining drivers -> longer expected idle (core of Lemma 5.1).
  double prev = 0.0;
  for (double mu : {0.5, 0.8, 1.1, 1.4, 1.7}) {
    auto chain = BirthDeathChain::Solve({1.0, mu, 0.05, 25});
    ASSERT_TRUE(chain.ok());
    EXPECT_GT(chain->ExpectedIdleSeconds(), prev) << "mu=" << mu;
    prev = chain->ExpectedIdleSeconds();
  }
}

TEST(BirthDeathTest, IdleTimeDecreasesWithRiderRate) {
  double prev = 1e100;
  for (double lambda : {0.5, 0.8, 1.1, 1.4, 1.7}) {
    auto chain = BirthDeathChain::Solve({lambda, 1.0, 0.05, 25});
    ASSERT_TRUE(chain.ok());
    EXPECT_LT(chain->ExpectedIdleSeconds(), prev) << "lambda=" << lambda;
    prev = chain->ExpectedIdleSeconds();
  }
}

TEST(BirthDeathTest, StrongerRenegingRaisesP0) {
  // Larger beta sheds positive states faster, pushing mass toward 0.
  auto weak = BirthDeathChain::Solve({2.0, 1.0, 0.01, 20});
  auto strong = BirthDeathChain::Solve({2.0, 1.0, 0.5, 20});
  ASSERT_TRUE(weak.ok() && strong.ok());
  EXPECT_GT(strong->ExpectedIdleSeconds(), 0.0);
  EXPECT_GT(strong->p0(), weak->p0());
  EXPECT_LT(strong->ProbabilityRidersWaiting(),
            weak->ProbabilityRidersWaiting());
}

// ---------------------------------------------------------- numerics

TEST(BirthDeathTest, LargeCapDoesNotOverflow) {
  auto chain = BirthDeathChain::Solve({1.0, 2.0, 0.05, 10000});
  ASSERT_TRUE(chain.ok());
  double et = chain->ExpectedIdleSeconds();
  EXPECT_TRUE(std::isfinite(et));
  // Deep congestion: idle close to (K+1 .. ish)/lambda but must not blow up.
  EXPECT_GT(et, 100.0);
  EXPECT_LT(et, 20002.0);
  // p0 may underflow but the deep states carry the mass.
  EXPECT_GT(chain->StateProbability(-10000), 0.4);
}

TEST(BirthDeathTest, NearCriticalRegimeIsStable) {
  // theta barely above 1 must not hit the (theta-1)^2 singularity.
  auto chain = BirthDeathChain::Solve({1.0, 1.0 + 1e-9, 0.05, 50});
  ASSERT_TRUE(chain.ok());
  auto balanced = BirthDeathChain::Solve({1.0, 1.0, 0.05, 50});
  ASSERT_TRUE(balanced.ok());
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), balanced->ExpectedIdleSeconds(),
              1e-4 * balanced->ExpectedIdleSeconds());
}

TEST(EstimateIdleTimeTest, ClampsDegenerateRates) {
  // Zero rates hit the floor instead of failing.
  double et = EstimateIdleTimeSeconds(0.0, 0.0, 0, 0.0, 3600.0);
  EXPECT_TRUE(std::isfinite(et));
  EXPECT_LE(et, 3600.0);
  EXPECT_GE(et, 0.0);
}

TEST(EstimateIdleTimeTest, CapsAtMaxIdle) {
  // Tiny rider rate -> astronomic idle, clamped to the cap.
  double et = EstimateIdleTimeSeconds(1e-6, 1.0, 100, 0.02, 1800.0);
  EXPECT_DOUBLE_EQ(et, 1800.0);
}

TEST(EstimateIdleTimeTest, BusyRegionNearZeroIdle) {
  // Lots of riders, few drivers: a rejoining driver is re-tasked instantly.
  double et = EstimateIdleTimeSeconds(5.0, 0.2, 10, 0.02);
  EXPECT_LT(et, 2.0);
}

// ------------------------------------------------------ rate estimation

TEST(RegionRatesTest, RiderSurplusFoldsIntoLambda) {
  // Eq. 18 lower branch: |R_k| > |D_k|.
  RegionSnapshot snap;
  snap.waiting_riders = 30;
  snap.available_drivers = 10;
  snap.predicted_riders = 60.0;
  snap.predicted_drivers = 40.0;
  RegionRates r = EstimateRegionRates(snap, 1200.0);
  EXPECT_NEAR(r.lambda, (60.0 + 30.0 - 10.0) / 1200.0, 1e-12);
  EXPECT_NEAR(r.mu, 40.0 / 1200.0, 1e-12);
}

TEST(RegionRatesTest, DriverSurplusFoldsIntoMu) {
  // Eq. 19 upper branch: |R_k| <= |D_k|.
  RegionSnapshot snap;
  snap.waiting_riders = 5;
  snap.available_drivers = 25;
  snap.predicted_riders = 50.0;
  snap.predicted_drivers = 20.0;
  RegionRates r = EstimateRegionRates(snap, 600.0);
  EXPECT_NEAR(r.lambda, 50.0 / 600.0, 1e-12);
  EXPECT_NEAR(r.mu, (20.0 + 25.0 - 5.0) / 600.0, 1e-12);
}

TEST(RegionRatesTest, NeverNegative) {
  RegionSnapshot snap;  // all zeros
  RegionRates r = EstimateRegionRates(snap, 1200.0);
  EXPECT_GE(r.lambda, 0.0);
  EXPECT_GE(r.mu, 0.0);
}

}  // namespace
}  // namespace mrvd
