#include <gtest/gtest.h>

#include <filesystem>

#include "util/csv.h"
#include "workload/demand_history.h"
#include "workload/generator.h"
#include "workload/tlc_parser.h"

namespace mrvd {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig cfg;
  cfg.grid_rows = 8;
  cfg.grid_cols = 8;
  cfg.orders_per_day = 10000.0;
  return cfg;
}

// ---------------------------------------------------------------- generator

TEST(GeneratorTest, DeterministicForSameDayIndex) {
  NycLikeGenerator gen(SmallConfig());
  Workload a = gen.GenerateDay(3, 50);
  Workload b = gen.GenerateDay(3, 50);
  ASSERT_EQ(a.orders.size(), b.orders.size());
  for (size_t i = 0; i < a.orders.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.orders[i].request_time, b.orders[i].request_time);
    EXPECT_EQ(a.orders[i].pickup, b.orders[i].pickup);
  }
}

TEST(GeneratorTest, DifferentDaysDiffer) {
  NycLikeGenerator gen(SmallConfig());
  Workload a = gen.GenerateDay(0, 10);
  Workload b = gen.GenerateDay(1, 10);
  EXPECT_NE(a.orders.size(), b.orders.size());
}

TEST(GeneratorTest, VolumeNearConfigured) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(2, 10);  // weekday
  auto n = static_cast<double>(w.orders.size());
  EXPECT_NEAR(n, 10000.0, 400.0);  // Poisson noise is ~sqrt(10000)=100
}

TEST(GeneratorTest, WeekendVolumeIsLower) {
  NycLikeGenerator gen(SmallConfig());
  double weekday = static_cast<double>(gen.GenerateDay(2, 0).orders.size());
  double weekend = static_cast<double>(gen.GenerateDay(5, 0).orders.size());
  EXPECT_LT(weekend, weekday * 0.95);
}

TEST(GeneratorTest, OrdersSortedAndIdsSequential) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(0, 0);
  for (size_t i = 1; i < w.orders.size(); ++i) {
    EXPECT_LE(w.orders[i - 1].request_time, w.orders[i].request_time);
    EXPECT_EQ(w.orders[i].id, static_cast<OrderId>(i));
  }
}

TEST(GeneratorTest, DeadlinesRespectConfiguredWindow) {
  GeneratorConfig cfg = SmallConfig();
  cfg.base_pickup_wait = 120.0;
  NycLikeGenerator gen(cfg);
  Workload w = gen.GenerateDay(0, 0);
  for (const Order& o : w.orders) {
    double slack = o.pickup_deadline - o.request_time;
    EXPECT_GE(slack, 120.0 + 1.0 - 1e-9);
    EXPECT_LE(slack, 120.0 + 10.0 + 1e-9);
  }
}

TEST(GeneratorTest, AllPointsInsideBox) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(0, 100);
  for (const Order& o : w.orders) {
    EXPECT_TRUE(gen.config().box.Contains(o.pickup));
    EXPECT_TRUE(gen.config().box.Contains(o.dropoff));
  }
  for (const DriverSpec& d : w.drivers) {
    EXPECT_TRUE(gen.config().box.Contains(d.origin));
  }
}

TEST(GeneratorTest, DriverCountMatches) {
  NycLikeGenerator gen(SmallConfig());
  EXPECT_EQ(gen.GenerateDay(0, 123).drivers.size(), 123u);
}

TEST(GeneratorTest, ExpectedCountsSumToDailyVolume) {
  NycLikeGenerator gen(SmallConfig());
  double total = 0;
  for (int slot = 0; slot < 48; ++slot) {
    for (RegionId r = 0; r < gen.grid().num_regions(); ++r) {
      total += gen.ExpectedSlotCount(1, slot, r);
    }
  }
  EXPECT_NEAR(total, 10000.0, 1.0);
}

TEST(GeneratorTest, MorningPeakExceedsOvernight) {
  NycLikeGenerator gen(SmallConfig());
  double peak = 0, overnight = 0;
  for (RegionId r = 0; r < gen.grid().num_regions(); ++r) {
    peak += gen.ExpectedSlotCount(1, 17, r);       // 08:30
    overnight += gen.ExpectedSlotCount(1, 7, r);   // 03:30
  }
  EXPECT_GT(peak, overnight * 2.0);
}

TEST(GeneratorTest, DestinationDistributionNormalized) {
  NycLikeGenerator gen(SmallConfig());
  auto dist = gen.DestinationDistribution(0, 17, 20);
  double sum = 0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GeneratorTest, PerMinuteRateConsistentWithSlotCount) {
  NycLikeGenerator gen(SmallConfig());
  EXPECT_NEAR(gen.ExpectedPerMinuteRate(0, 17 * 30 + 5, 9) * 30.0,
              gen.ExpectedSlotCount(0, 17, 9), 1e-9);
}

// ------------------------------------------------------------ demand history

TEST(DemandHistoryTest, AccumulateDayBucketsCorrectly) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(0, 0);
  DemandHistory hist(1, 48, gen.grid().num_regions());
  ASSERT_TRUE(hist.AccumulateDay(0, w, gen.grid()).ok());
  double total = 0;
  for (int s = 0; s < 48; ++s) {
    for (int r = 0; r < hist.num_regions(); ++r) total += hist.at(0, s, r);
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(w.orders.size()));
}

TEST(DemandHistoryTest, RejectsOutOfRangeDay) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(0, 0);
  DemandHistory hist(1, 48, gen.grid().num_regions());
  EXPECT_FALSE(hist.AccumulateDay(5, w, gen.grid()).ok());
}

TEST(DemandHistoryTest, GeneratedHistoryMatchesIntensity) {
  NycLikeGenerator gen(SmallConfig());
  DemandHistory hist = gen.GenerateHistory(10, 48);
  // Aggregate counts over all weekdays/slots should track the intensity.
  double observed = 0, expected = 0;
  for (int d = 0; d < 10; ++d) {
    for (int s = 0; s < 48; ++s) {
      for (int r = 0; r < hist.num_regions(); ++r) {
        observed += hist.at(d, s, r);
        expected += gen.ExpectedSlotCount(d, s, r);
      }
    }
  }
  EXPECT_NEAR(observed / expected, 1.0, 0.02);
}

TEST(DemandHistoryTest, RealizedCountsMatchWorkload) {
  NycLikeGenerator gen(SmallConfig());
  Workload w = gen.GenerateDay(1, 0);
  DemandHistory rc = gen.RealizedCounts(w, 48);
  double total = 0;
  for (int s = 0; s < 48; ++s) {
    for (int r = 0; r < rc.num_regions(); ++r) total += rc.at(0, s, r);
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(w.orders.size()));
}

// --------------------------------------------------------------- TLC parser

TEST(TlcParserTest, ParseDateTime) {
  auto t = ParseDateTimeSeconds("2013-05-28 00:00:00");
  ASSERT_TRUE(t.ok());
  auto t2 = ParseDateTimeSeconds("2013-05-28 01:30:15");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2 - *t, 3600 + 30 * 60 + 15);
  EXPECT_FALSE(ParseDateTimeSeconds("garbage").ok());
  EXPECT_FALSE(ParseDateTimeSeconds("2013-13-01 00:00:00").ok());
}

TEST(TlcParserTest, ParsesYellowTaxiSchema) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_tlc_test.csv";
  {
    CsvWriter w(path.string());
    w.WriteRow({"medallion", "pickup_datetime", "dropoff_datetime",
                "passenger_count", "pickup_longitude", "pickup_latitude",
                "dropoff_longitude", "dropoff_latitude"});
    w.WriteRow({"m1", "2013-05-28 08:00:00", "2013-05-28 08:20:00", "1",
                "-73.98", "40.75", "-73.95", "40.78"});
    w.WriteRow({"m2", "2013-05-28 09:15:30", "2013-05-28 09:40:00", "2",
                "-73.90", "40.70", "-73.85", "40.68"});
    // Bad GPS: dropped.
    w.WriteRow({"m3", "2013-05-28 10:00:00", "2013-05-28 10:10:00", "1",
                "0.0", "0.0", "-73.85", "40.68"});
    // Unparseable datetime: dropped.
    w.WriteRow({"m4", "not-a-date", "2013-05-28 10:10:00", "1", "-73.98",
                "40.75", "-73.95", "40.78"});
  }
  TlcParseStats stats;
  auto wl = ParseTlcCsv(path.string(), 5, {}, &stats);
  ASSERT_TRUE(wl.ok()) << wl.status();
  EXPECT_EQ(wl->orders.size(), 2u);
  EXPECT_EQ(stats.rows_out_of_box, 1);
  EXPECT_EQ(stats.rows_bad, 1);
  EXPECT_EQ(wl->drivers.size(), 5u);
  // First order at 08:00 = 28800 s from midnight.
  EXPECT_DOUBLE_EQ(wl->orders[0].request_time, 28800.0);
  EXPECT_GT(wl->orders[0].pickup_deadline, wl->orders[0].request_time);
  std::filesystem::remove(path);
}

TEST(TlcParserTest, MissingColumnsIsError) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_tlc_bad.csv";
  {
    CsvWriter w(path.string());
    w.WriteRow({"a", "b"});
    w.WriteRow({"1", "2"});
  }
  EXPECT_FALSE(ParseTlcCsv(path.string(), 1).ok());
  std::filesystem::remove(path);
}

TEST(TlcParserTest, MissingFileIsError) {
  EXPECT_FALSE(ParseTlcCsv("/no/such/file.csv", 1).ok());
}

}  // namespace
}  // namespace mrvd
