// Load-aware adaptive sharding: the weighted RowBands overload's edge
// cases, the ShardLoadTracker's EWMA/forecast blending and imbalance
// metric, the engine's repartition hysteresis, and — the property the
// whole feature rides on — bit-identity of adaptive runs to serial under
// a skewed-demand scenario, across the dispatcher roster and thread
// counts. Repartitioning is purely a parallel-throughput decision; no
// aggregate may move.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "queueing/rates.h"
#include "registry_test_helpers.h"
#include "scenario/generator.h"
#include "sim/engine.h"
#include "sim/shard_load_tracker.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ------------------------------------------------- weighted RowBands

TEST(WeightedRowBandsTest, AllWeightInOneRowIsolatesIt) {
  Grid grid = MakeNycGrid16x16();
  // Every gram of weight in row 0: the weighted split must give the hot
  // row its own (first) band instead of the uniform 4-row bands.
  std::vector<double> weights(static_cast<size_t>(grid.num_regions()), 0.0);
  for (int c = 0; c < grid.cols(); ++c) {
    weights[static_cast<size_t>(grid.RegionAt(0, c))] = 5.0;
  }
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 4, weights);
  ASSERT_EQ(parts.num_shards(), 4);
  EXPECT_TRUE(parts.ShardsConnected(grid));
  EXPECT_EQ(parts.shard_regions()[0].size(),
            static_cast<size_t>(grid.cols()))
      << "hot row should be a band of its own";
  EXPECT_NE(parts.shard_of(grid.RegionAt(0, 0)),
            parts.shard_of(grid.RegionAt(1, 0)));
  // (No imbalance comparison here: with ALL weight in one row, max/mean
  // equals the shard count for every possible banding.)
}

TEST(WeightedRowBandsTest, SkewedWeightsImproveImbalance) {
  Grid grid = MakeNycGrid16x16();
  // Rush-hour shape: rows 0..2 ten times hotter than the rest. The
  // weighted split must beat the uniform 4-row bands on its own metric.
  std::vector<double> weights(static_cast<size_t>(grid.num_regions()), 1.0);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      weights[static_cast<size_t>(grid.RegionAt(r, c))] = 10.0;
    }
  }
  RegionPartitioner weighted = RegionPartitioner::RowBands(grid, 4, weights);
  RegionPartitioner uniform = RegionPartitioner::RowBands(grid, 4);
  EXPECT_TRUE(weighted.ShardsConnected(grid));
  EXPECT_LT(ShardLoadTracker::Imbalance(weighted, weights),
            ShardLoadTracker::Imbalance(uniform, weights));
}

TEST(WeightedRowBandsTest, ZeroWeightsFallBackToRowCounts) {
  Grid grid = MakeNycGrid16x16();
  std::vector<double> zeros(static_cast<size_t>(grid.num_regions()), 0.0);
  RegionPartitioner weighted = RegionPartitioner::RowBands(grid, 4, zeros);
  RegionPartitioner uniform = RegionPartitioner::RowBands(grid, 4);
  EXPECT_TRUE(weighted.SamePartition(uniform));
}

TEST(WeightedRowBandsTest, SizeMismatchFallsBackToRowCounts) {
  Grid grid = MakeNycGrid16x16();
  std::vector<double> wrong_size(7, 100.0);  // != num_regions
  RegionPartitioner weighted =
      RegionPartitioner::RowBands(grid, 4, wrong_size);
  RegionPartitioner uniform = RegionPartitioner::RowBands(grid, 4);
  EXPECT_TRUE(weighted.SamePartition(uniform));
}

TEST(WeightedRowBandsTest, SamePartitionDetectsMovedRegions) {
  Grid grid = MakeNycGrid16x16();
  RegionPartitioner a = RegionPartitioner::RowBands(grid, 4);
  RegionPartitioner b = RegionPartitioner::RowBands(grid, 4);
  EXPECT_TRUE(a.SamePartition(b));
  std::vector<double> weights(static_cast<size_t>(grid.num_regions()), 0.0);
  for (int c = 0; c < grid.cols(); ++c) {
    weights[static_cast<size_t>(grid.RegionAt(0, c))] = 1.0;
  }
  RegionPartitioner skewed = RegionPartitioner::RowBands(grid, 4, weights);
  EXPECT_FALSE(a.SamePartition(skewed));
}

// ------------------------------------------------- ShardLoadTracker

std::vector<RegionSnapshot> Snapshots(const std::vector<int64_t>& riders,
                                      double predicted = 0.0) {
  std::vector<RegionSnapshot> snaps(riders.size());
  for (size_t k = 0; k < riders.size(); ++k) {
    snaps[k].waiting_riders = riders[k];
    snaps[k].predicted_riders = predicted;
  }
  return snaps;
}

TEST(ShardLoadTrackerTest, FirstObservationSeedsEwmaDirectly) {
  ShardLoadTracker tracker(4, /*ewma_alpha=*/0.5, /*forecast_blend=*/0.0);
  EXPECT_FALSE(tracker.has_signal());
  tracker.Observe(Snapshots({8, 0, 0, 0}));
  ASSERT_TRUE(tracker.has_signal());
  // No decay toward the zero prior on the first batch.
  EXPECT_DOUBLE_EQ(tracker.weights()[0], 8.0);
  EXPECT_DOUBLE_EQ(tracker.weights()[1], 0.0);
}

TEST(ShardLoadTrackerTest, EwmaBlendsSubsequentBatches) {
  ShardLoadTracker tracker(2, /*ewma_alpha=*/0.5, /*forecast_blend=*/0.0);
  tracker.Observe(Snapshots({8, 0}));
  tracker.Observe(Snapshots({0, 4}));
  EXPECT_DOUBLE_EQ(tracker.weights()[0], 4.0);  // 0.5*0 + 0.5*8
  EXPECT_DOUBLE_EQ(tracker.weights()[1], 2.0);  // 0.5*4 + 0.5*0
}

TEST(ShardLoadTrackerTest, ForecastBlendsOnTopOfObserved) {
  ShardLoadTracker tracker(2, /*ewma_alpha=*/0.5, /*forecast_blend=*/2.0);
  tracker.Observe(Snapshots({8, 0}, /*predicted=*/3.0));
  EXPECT_DOUBLE_EQ(tracker.weights()[0], 8.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(tracker.weights()[1], 0.0 + 2.0 * 3.0);
}

TEST(ShardLoadTrackerTest, AllZeroObservationGivesNoSignal) {
  ShardLoadTracker tracker(3, 0.5, 1.0);
  tracker.Observe(Snapshots({0, 0, 0}));
  EXPECT_FALSE(tracker.has_signal());
}

TEST(ShardLoadTrackerTest, MismatchedSnapshotCountIsIgnored) {
  ShardLoadTracker tracker(4, 0.5, 0.0);
  tracker.Observe(Snapshots({9, 9}));  // wrong region count
  EXPECT_FALSE(tracker.has_signal());
  EXPECT_DOUBLE_EQ(tracker.weights()[0], 0.0);
}

TEST(ShardLoadTrackerTest, ImbalanceOfUniformLoadIsOne) {
  Grid grid = MakeNycGrid16x16();
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 4);
  std::vector<double> uniform(static_cast<size_t>(grid.num_regions()), 2.0);
  EXPECT_DOUBLE_EQ(ShardLoadTracker::Imbalance(parts, uniform), 1.0);
}

TEST(ShardLoadTrackerTest, ImbalanceOfOneHotShardIsShardCount) {
  Grid grid = MakeNycGrid16x16();
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 4);
  // All load inside shard 0's rows: max/mean = num_shards.
  std::vector<double> weights(static_cast<size_t>(grid.num_regions()), 0.0);
  for (RegionId r : parts.shard_regions()[0]) {
    weights[static_cast<size_t>(r)] = 3.0;
  }
  EXPECT_DOUBLE_EQ(ShardLoadTracker::Imbalance(parts, weights), 4.0);
}

TEST(ShardLoadTrackerTest, ImbalanceDegenerateInputsReadBalanced) {
  Grid grid = MakeNycGrid16x16();
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 4);
  std::vector<double> zeros(static_cast<size_t>(grid.num_regions()), 0.0);
  EXPECT_DOUBLE_EQ(ShardLoadTracker::Imbalance(parts, zeros), 1.0);
  std::vector<double> wrong_size(5, 1.0);
  EXPECT_DOUBLE_EQ(ShardLoadTracker::Imbalance(parts, wrong_size), 1.0);
}

// --------------------------------------------- engine-level behaviour

/// A rush-hour day whose surge window funnels ~70% of arrivals into grid
/// rows 0..2 — the workload shape uniform row bands handle worst.
struct SkewedDay {
  SkewedDay() {
    GeneratorConfig gcfg;
    gcfg.orders_per_day = 3000.0;  // scaled by the short horizon below
    gcfg.seed = 20190417;
    NycLikeGenerator gen(gcfg);
    Workload day = gen.GenerateDay(/*day_index=*/1, /*num_drivers=*/40);
    grid = gen.grid();
    workload = SkewWorkloadRows(day, grid, surge_start, surge_end,
                                /*share=*/0.7, /*row_lo=*/0, /*row_hi=*/2,
                                /*seed=*/gcfg.seed ^ 0x5EEDULL);
    ScenarioDayConfig scfg;
    scfg.surges.push_back(RowBandSurge(grid, 0, 2, surge_start, surge_end,
                                       /*multiplier=*/2.0));
    script = BuildScenarioDay(workload, scfg);
  }

  static constexpr double surge_start = 1800.0;
  static constexpr double surge_end = 7200.0;
  Grid grid{kNycBoundingBox, 16, 16};
  Workload workload;
  ScenarioScript script;
};

SimConfig BaseConfig() {
  SimConfig cfg;
  cfg.horizon_seconds = 2.5 * 3600.0;
  cfg.batch_interval = 30.0;
  return cfg;
}

TEST(AdaptiveShardingEngineTest, SerialAndDisabledRunsNeverRepartition) {
  SkewedDay day;
  StraightLineCostModel cost(7.0, 1.3);

  SimConfig serial = BaseConfig();
  serial.num_threads = 1;
  serial.adaptive_sharding = true;  // tracker only exists on parallel runs
  auto d1 = test::MakeSeeded("IRG");
  SimResult a = Simulator(serial, day.workload, day.grid, cost, nullptr)
                    .Run(*d1, day.script);
  EXPECT_EQ(a.repartitions, 0);

  SimConfig off = BaseConfig();
  off.num_threads = 4;
  off.adaptive_sharding = false;
  auto d2 = test::MakeSeeded("IRG");
  SimResult b = Simulator(off, day.workload, day.grid, cost, nullptr)
                    .Run(*d2, day.script);
  EXPECT_EQ(b.repartitions, 0);
}

TEST(AdaptiveShardingEngineTest, HighThresholdSuppressesRepartitions) {
  // Hysteresis gate: with the trigger far above any realizable imbalance,
  // the adaptive path must leave the uniform bands untouched all day.
  SkewedDay day;
  StraightLineCostModel cost(7.0, 1.3);
  SimConfig cfg = BaseConfig();
  cfg.num_threads = 4;
  cfg.adaptive_sharding = true;
  cfg.rebalance_threshold = 1e9;
  auto d = test::MakeSeeded("IRG");
  SimResult r = Simulator(cfg, day.workload, day.grid, cost, nullptr)
                    .Run(*d, day.script);
  EXPECT_EQ(r.repartitions, 0);
}

TEST(AdaptiveShardingEngineTest, SkewTriggersBoundedRebalancing) {
  SkewedDay day;
  StraightLineCostModel cost(7.0, 1.3);
  SimConfig cfg = BaseConfig();
  cfg.num_threads = 4;
  cfg.adaptive_sharding = true;
  auto d = test::MakeSeeded("IRG");
  SimResult r = Simulator(cfg, day.workload, day.grid, cost, nullptr)
                    .Run(*d, day.script);
  // The rush hour must trip the threshold at least once...
  EXPECT_GT(r.repartitions, 0);
  // ...but the SamePartition churn guard keeps the map from being rebuilt
  // every single batch under a steady (if skewed) demand profile.
  EXPECT_LT(r.repartitions, r.num_batches);
}

// ------------------------------------------------ bit-identity sweep

bool SameOutcome(const SimResult& a, const SimResult& b) {
  return a.served_orders == b.served_orders &&
         a.reneged_orders == b.reneged_orders &&
         a.cancelled_orders == b.cancelled_orders &&
         a.total_orders == b.total_orders &&
         a.num_batches == b.num_batches &&
         a.total_revenue == b.total_revenue &&  // bit-exact
         a.served_wait_seconds.count() == b.served_wait_seconds.count() &&
         a.served_wait_seconds.mean() == b.served_wait_seconds.mean();
}

TEST(AdaptiveShardingEngineTest, SkewedRunsBitIdenticalToSerialAcrossRoster) {
  // The contract everything above depends on: for every registered
  // dispatcher, the skewed day's outcome is invariant across threads
  // {1, 4} x adaptive {off, on}. Repartitioning may only move work
  // between shards, never change a single assignment.
  SkewedDay day;
  StraightLineCostModel cost(7.0, 1.3);

  std::vector<std::string> roster = test::RosterWithoutZeroPickup();
  roster.push_back("UPPER");  // zero-pickup trait applied explicitly below

  int64_t adaptive_repartitions = 0;
  for (const std::string& name : roster) {
    SimConfig serial = BaseConfig();
    serial.num_threads = 1;
    if (name == "UPPER") serial.zero_pickup_travel = true;
    auto baseline_dispatcher = test::MakeSeeded(name);
    ASSERT_NE(baseline_dispatcher, nullptr) << name;
    SimResult baseline =
        Simulator(serial, day.workload, day.grid, cost, nullptr)
            .Run(*baseline_dispatcher, day.script);

    for (int threads : {1, 4}) {
      for (bool adaptive : {false, true}) {
        if (threads == 1 && !adaptive) continue;  // the baseline itself
        SimConfig cfg = serial;
        cfg.num_threads = threads;
        cfg.adaptive_sharding = adaptive;
        auto d = test::MakeSeeded(name);
        SimResult got = Simulator(cfg, day.workload, day.grid, cost, nullptr)
                            .Run(*d, day.script);
        EXPECT_TRUE(SameOutcome(baseline, got))
            << name << " diverged at " << threads << " threads, adaptive="
            << adaptive << " (serial served " << baseline.served_orders
            << ", got " << got.served_orders << ")";
        if (threads > 1 && adaptive) {
          adaptive_repartitions += got.repartitions;
        }
      }
    }
  }
  // The sweep must actually have exercised the repartition path — a
  // configuration where it never fires would make the identity vacuous.
  EXPECT_GT(adaptive_repartitions, 0);
}

}  // namespace
}  // namespace mrvd
