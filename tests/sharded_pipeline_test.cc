// Equivalence and partitioning tests for the region-sharded dispatch
// pipeline: with a BatchExecution attached, every dispatcher must produce
// the exact Assignment sequence of the serial path, because sharding only
// relocates pure work (candidate generation and idle-time solves).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/dispatcher_registry.h"
#include "dispatch/dispatchers.h"
#include "dispatch/pipeline.h"
#include "registry_test_helpers.h"
#include "geo/region_partitioner.h"
#include "geo/travel.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ---------------------------------------------------- RegionPartitioner

TEST(RegionPartitionerTest, RowBandsCoverEveryRegionOnce) {
  Grid grid = MakeNycGrid16x16();
  for (int k : {1, 2, 5, 8, 16, 40}) {
    RegionPartitioner parts = RegionPartitioner::RowBands(grid, k);
    EXPECT_LE(parts.num_shards(), grid.rows());
    EXPECT_GE(parts.num_shards(), 1);
    EXPECT_EQ(parts.num_regions(), grid.num_regions());
    std::vector<int> seen(static_cast<size_t>(grid.num_regions()), 0);
    for (int s = 0; s < parts.num_shards(); ++s) {
      EXPECT_FALSE(parts.shard_regions()[static_cast<size_t>(s)].empty())
          << "shard " << s << " of " << k;
      for (RegionId r : parts.shard_regions()[static_cast<size_t>(s)]) {
        EXPECT_EQ(parts.shard_of(r), s);
        ++seen[static_cast<size_t>(r)];
      }
    }
    for (int r = 0; r < grid.num_regions(); ++r) {
      EXPECT_EQ(seen[static_cast<size_t>(r)], 1) << "region " << r;
    }
  }
}

TEST(RegionPartitionerTest, ShardsAreConnected) {
  Grid grid = MakeNycGrid16x16();
  for (int k : {1, 3, 7, 16}) {
    RegionPartitioner parts = RegionPartitioner::RowBands(grid, k);
    EXPECT_TRUE(parts.ShardsConnected(grid)) << k << " shards";
  }
}

TEST(RegionPartitionerTest, WeightedSplitBalancesLoad) {
  Grid grid(kNycBoundingBox, 8, 8);
  // All weight in the top half: the bands must concentrate there.
  std::vector<double> weights(static_cast<size_t>(grid.num_regions()), 0.0);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) {
      weights[static_cast<size_t>(grid.RegionAt(r, c))] = 10.0;
    }
  }
  RegionPartitioner parts = RegionPartitioner::RowBands(grid, 4, weights);
  ASSERT_EQ(parts.num_shards(), 4);
  EXPECT_TRUE(parts.ShardsConnected(grid));
  // The weighted rows (0..3) should not all land in one shard.
  EXPECT_NE(parts.shard_of(grid.RegionAt(0, 0)),
            parts.shard_of(grid.RegionAt(3, 0)));
}

// ------------------------------------------------------ batch equivalence

/// Builds a randomized batch over the 16x16 NYC grid. Returns the context
/// fully snapshotted; the same seed always produces the same batch.
class ShardedPipelineTest : public ::testing::Test {
 protected:
  ShardedPipelineTest() : grid_(MakeNycGrid16x16()), cost_(7.0, 1.3) {}

  std::unique_ptr<BatchContext> MakeBatch(uint64_t seed, int num_riders,
                                          int num_drivers,
                                          CandidateMode mode) {
    auto ctx = std::make_unique<BatchContext>(
        /*now=*/3600.0, /*window=*/1200.0, /*beta=*/0.02, grid_, cost_, mode);
    Rng rng(seed);
    auto random_point = [&] {
      return LatLon{rng.Uniform(kNycBoundingBox.lat_min,
                                kNycBoundingBox.lat_max),
                    rng.Uniform(kNycBoundingBox.lon_min,
                                kNycBoundingBox.lon_max)};
    };
    for (int i = 0; i < num_riders; ++i) {
      WaitingRider r;
      r.order_id = i;
      r.pickup = random_point();
      r.dropoff = random_point();
      r.request_time = 3600.0 - rng.Uniform(0.0, 120.0);
      r.pickup_deadline = 3600.0 + rng.Uniform(60.0, 600.0);
      r.trip_seconds = cost_.TravelSeconds(r.pickup, r.dropoff);
      r.revenue = r.trip_seconds;
      r.pickup_region = grid_.RegionOf(r.pickup);
      r.dropoff_region = grid_.RegionOf(r.dropoff);
      ctx->AddRider(r);
    }
    for (int j = 0; j < num_drivers; ++j) {
      AvailableDriver d;
      d.driver_id = j;
      d.location = random_point();
      d.region = grid_.RegionOf(d.location);
      d.available_since = 3600.0 - rng.Uniform(0.0, 300.0);
      ctx->AddDriver(d);
    }
    std::vector<RegionSnapshot> snaps(
        static_cast<size_t>(grid_.num_regions()));
    for (const auto& r : ctx->riders()) {
      ++snaps[static_cast<size_t>(r.pickup_region)].waiting_riders;
    }
    for (const auto& d : ctx->drivers()) {
      ++snaps[static_cast<size_t>(d.region)].available_drivers;
    }
    for (auto& s : snaps) {
      s.predicted_riders = rng.Uniform(0.0, 30.0);
      s.predicted_drivers = rng.Uniform(0.0, 10.0);
    }
    ctx->SetSnapshots(std::move(snaps));
    return ctx;
  }

  Grid grid_;
  StraightLineCostModel cost_;
};

std::vector<Assignment> DispatchOnce(Dispatcher& d, const BatchContext& ctx) {
  std::vector<Assignment> out;
  d.Dispatch(ctx, &out);
  return out;
}

bool SameAssignments(const std::vector<Assignment>& a,
                     const std::vector<Assignment>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].rider_index != b[i].rider_index ||
        a[i].driver_index != b[i].driver_index) {
      return false;
    }
  }
  return true;
}

TEST_F(ShardedPipelineTest, CandidatePairsIdenticalUnderSharding) {
  for (CandidateMode mode :
       {CandidateMode::kRingExpand, CandidateMode::kRegionLocal}) {
    auto serial_ctx = MakeBatch(99, 150, 100, mode);
    auto sharded_ctx = MakeBatch(99, 150, 100, mode);
    ThreadPool pool(4);
    RegionPartitioner parts = RegionPartitioner::RowBands(grid_, 8);
    BatchExecution exec{&pool, &parts};
    sharded_ctx->SetExecution(&exec);

    auto serial_pairs = GenerateValidPairs(*serial_ctx);
    auto sharded_pairs = GenerateValidPairs(*sharded_ctx);
    ASSERT_EQ(serial_pairs.size(), sharded_pairs.size());
    for (size_t i = 0; i < serial_pairs.size(); ++i) {
      EXPECT_EQ(serial_pairs[i].rider_index, sharded_pairs[i].rider_index);
      EXPECT_EQ(serial_pairs[i].driver_index, sharded_pairs[i].driver_index);
      EXPECT_EQ(serial_pairs[i].pickup_seconds,
                sharded_pairs[i].pickup_seconds);
    }
  }
}

using test::MakeSeeded;  // registry-built, canonical test seed by default

TEST_F(ShardedPipelineTest, AllDispatchersBitIdenticalAcrossThreadCounts) {
  // Every registered dispatcher that is meaningful on a raw batch (UPPER's
  // zero-pickup trait only applies through the engine) — straight from the
  // registry, so a newly registered approach joins the check automatically.
  const std::vector<std::string> names = test::RosterWithoutZeroPickup();
  for (uint64_t seed : {7u, 20190417u}) {
    for (CandidateMode mode :
         {CandidateMode::kRingExpand, CandidateMode::kRegionLocal}) {
      auto serial_ctx = MakeBatch(seed, 120, 90, mode);
      auto serial_results = std::vector<std::vector<Assignment>>();
      for (const auto& name : names) {
        auto d = MakeSeeded(name);
        ASSERT_NE(d, nullptr) << name;
        serial_results.push_back(DispatchOnce(*d, *serial_ctx));
      }
      for (int threads : {2, 4}) {
        ThreadPool pool(threads);
        // Shard count routed through SimConfig, so the test exercises the
        // partition the engine itself would derive for this thread count.
        RegionPartitioner parts = RegionPartitioner::RowBands(
            grid_, SimConfig().ResolveShards(threads));
        BatchExecution exec{&pool, &parts};
        auto sharded_ctx = MakeBatch(seed, 120, 90, mode);
        sharded_ctx->SetExecution(&exec);
        for (size_t n = 0; n < names.size(); ++n) {
          auto d = MakeSeeded(names[n]);
          auto got = DispatchOnce(*d, *sharded_ctx);
          EXPECT_TRUE(SameAssignments(serial_results[n], got))
              << names[n] << " diverged at " << threads << " threads, seed "
              << seed << " (serial " << serial_results[n].size()
              << " pairs, sharded " << got.size() << ")";
        }
      }
    }
  }
}

TEST_F(ShardedPipelineTest, SpeculativePhaseWarmsInternalPairs) {
  auto ctx = MakeBatch(11, 200, 150, CandidateMode::kRingExpand);
  ThreadPool pool(4);
  RegionPartitioner parts = RegionPartitioner::RowBands(grid_, 8);
  BatchExecution exec{&pool, &parts};
  ctx->SetExecution(&exec);
  PreparedBatch prepared =
      PrepareShardedBatch(*ctx, GreedyObjective::kIdleRatio);
  EXPECT_FALSE(prepared.pairs.empty());
  // Row-band sharding of NYC keeps a meaningful share of pairs internal.
  EXPECT_GT(prepared.internal_pairs, 0u);
  EXPECT_LE(prepared.internal_pairs, prepared.pairs.size());
}

// ---------------------------------------------------- engine equivalence

TEST(ShardedEngineTest, FullDayRunMatchesSerialExactly) {
  // A small synthetic day through the real engine: num_threads must not
  // change a single aggregate (assignments are identical batch by batch).
  GeneratorConfig gcfg;
  gcfg.orders_per_day = 600.0;
  gcfg.seed = 20190417;
  NycLikeGenerator gen(gcfg);
  Workload workload = gen.GenerateDay(/*day_index=*/1, /*num_drivers=*/40);
  StraightLineCostModel cost(7.0, 1.3);

  SimConfig base;
  base.horizon_seconds = 6 * 3600.0;
  base.batch_interval = 30.0;

  SimConfig serial_cfg = base;
  serial_cfg.num_threads = 1;
  SimConfig sharded_cfg = base;
  sharded_cfg.num_threads = 3;

  Simulator serial_sim(serial_cfg, workload, gen.grid(), cost, nullptr);
  Simulator sharded_sim(sharded_cfg, workload, gen.grid(), cost, nullptr);

  for (const char* name : {"IRG", "LS", "SHORT"}) {
    auto d1 = MakeSeeded(name);
    auto d2 = MakeSeeded(name);
    SimResult a = serial_sim.Run(*d1);
    SimResult b = sharded_sim.Run(*d2);
    EXPECT_EQ(a.served_orders, b.served_orders) << name;
    EXPECT_EQ(a.reneged_orders, b.reneged_orders) << name;
    EXPECT_EQ(a.total_revenue, b.total_revenue) << name;  // bit-exact
    EXPECT_EQ(a.num_batches, b.num_batches) << name;
  }
}

}  // namespace
}  // namespace mrvd
