// Property tests: the closed-form steady-state solution of birth_death.h is
// validated against an independent discrete-event (CTMC) simulation of the
// same double-sided queue, across the three regimes (λ>μ, λ<μ, λ=μ) and a
// sweep of reneging strengths.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/birth_death.h"
#include "queueing/queue_sim.h"
#include "util/rng.h"

namespace mrvd {
namespace {

struct RegimeCase {
  const char* label;
  QueueParams params;
};

void PrintTo(const RegimeCase& c, std::ostream* os) { *os << c.label; }

class QueueRegimeTest : public ::testing::TestWithParam<RegimeCase> {};

TEST_P(QueueRegimeTest, EmpiricalStateDistributionMatchesClosedForm) {
  const QueueParams& params = GetParam().params;
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());

  Rng rng(1234);
  QueueSimResult sim = SimulateDoubleSidedQueue(
      params, /*horizon_seconds=*/400000.0 / params.lambda, rng,
      /*warmup_seconds=*/40000.0 / params.lambda);

  // Compare p_n for every state with non-trivial analytic mass.
  for (int64_t n = -params.max_drivers; n <= 25; ++n) {
    double analytic = chain->StateProbability(n);
    if (analytic < 5e-4) continue;
    double empirical = sim.EmpiricalStateProb(n);
    EXPECT_NEAR(empirical, analytic, 0.015 + 0.1 * analytic)
        << "state n=" << n;
  }
}

TEST_P(QueueRegimeTest, EmpiricalDriverIdleMatchesConditionalExpectation) {
  const QueueParams& params = GetParam().params;
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());

  // The CTMC lets a driver join only when fewer than K congest, so its mean
  // idle is the idle expectation conditioned on the observed state being
  // > -K. (Eq. 13 itself integrates over all states down to -K; the two
  // agree exactly when p_{-K} is negligible, e.g. in the λ>μ regime.)
  double numer = 0.0, denom = 0.0;
  for (int64_t n = 25; n > -params.max_drivers; --n) {
    double p = chain->StateProbability(n);
    denom += p;
    if (n <= 0) {
      numer += (static_cast<double>(-n) + 1.0) / params.lambda * p;
    }
  }
  // Continue the negative tail for the λ>μ regime (unbounded analytically).
  if (params.lambda > params.mu) {
    for (int64_t n = -params.max_drivers; n >= -4000; --n) {
      double p = chain->StateProbability(n);
      if (p <= 0.0) break;
      denom += p;
      numer += (static_cast<double>(-n) + 1.0) / params.lambda * p;
    }
  }
  double conditional_expected = numer / denom;

  Rng rng(99);
  QueueSimResult sim = SimulateDoubleSidedQueue(
      params, /*horizon_seconds=*/600000.0 / params.lambda, rng,
      /*warmup_seconds=*/60000.0 / params.lambda);

  ASSERT_GT(sim.drivers_matched, 1000);
  EXPECT_NEAR(sim.mean_driver_idle, conditional_expected,
              0.12 * conditional_expected + 0.05)
      << GetParam().label;
}

TEST_P(QueueRegimeTest, RenegingOnlyInPositiveStates) {
  const QueueParams& params = GetParam().params;
  Rng rng(7);
  QueueSimResult sim = SimulateDoubleSidedQueue(
      params, /*horizon_seconds=*/100000.0 / params.lambda, rng);
  // Flow sanity: every arrived rider is served, reneged, or still queued.
  EXPECT_LE(sim.riders_served + sim.riders_reneged, sim.riders_arrived + 50);
  if (params.lambda > params.mu) {
    // Overloaded region must shed riders by reneging.
    EXPECT_GT(sim.riders_reneged, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, QueueRegimeTest,
    ::testing::Values(
        RegimeCase{"MoreRiders_2x", {2.0, 1.0, 0.05, 30}},
        RegimeCase{"MoreRiders_mild", {1.2, 1.0, 0.05, 30}},
        RegimeCase{"MoreDrivers_mild", {1.0, 1.25, 0.05, 40}},
        RegimeCase{"Balanced", {1.0, 1.0, 0.05, 30}},
        RegimeCase{"StrongReneging", {2.0, 1.0, 0.4, 20}},
        RegimeCase{"WeakReneging", {1.5, 1.0, 0.005, 20}},
        RegimeCase{"HighVolume", {6.0, 4.0, 0.05, 25}}),
    [](const ::testing::TestParamInfo<RegimeCase>& info) {
      return info.param.label;
    });

// --- ET-series truncation ablation: the infinite positive-tail sums of
// Eqs. 9/12/15 must be insensitive to the truncation threshold.
TEST(SeriesTruncationTest, TailContributionIsNegligible) {
  for (double beta : {0.01, 0.05, 0.2}) {
    auto chain = BirthDeathChain::Solve({2.0, 1.0, beta, 20});
    ASSERT_TRUE(chain.ok());
    // Sum the analytic tail beyond what the solver kept: must be tiny.
    int64_t tail_start = chain->positive_tail_length();
    // If the solver kept the whole support, StateProbability is 0 beyond.
    double beyond = chain->StateProbability(tail_start + 1);
    EXPECT_LT(beyond, 1e-10) << "beta=" << beta;
  }
}

}  // namespace
}  // namespace mrvd
