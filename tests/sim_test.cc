#include <gtest/gtest.h>

#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "sim/engine.h"
#include "workload/types.h"

namespace mrvd {
namespace {

// Handcrafted scenarios over the NYC grid; straight-line cost at 10 m/s
// without detour so travel times are easy to reason about.
class SimTest : public ::testing::Test {
 protected:
  SimTest() : grid_(kNycBoundingBox, 4, 4), cost_(10.0, 1.0) {}

  Order MakeOrder(OrderId id, double t, LatLon pickup, LatLon dropoff,
                  double deadline_slack) {
    Order o;
    o.id = id;
    o.request_time = t;
    o.pickup = pickup;
    o.dropoff = dropoff;
    o.pickup_deadline = t + deadline_slack;
    return o;
  }

  Grid grid_;
  StraightLineCostModel cost_;
};

TEST_F(SimTest, SingleRiderIsServedAndRevenueMatchesTripCost) {
  Workload w;
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  w.orders.push_back(MakeOrder(0, 5.0, a, b, 300.0));
  w.drivers.push_back({0, a, 0.0});
  w.horizon_seconds = 3600.0;

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 3600.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);

  EXPECT_EQ(r.served_orders, 1);
  EXPECT_EQ(r.reneged_orders, 0);
  EXPECT_NEAR(r.total_revenue, cost_.TravelSeconds(a, b), 1e-9);
  EXPECT_EQ(r.total_orders, 1);
}

TEST_F(SimTest, AlphaScalesRevenue) {
  Workload w;
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  w.orders.push_back(MakeOrder(0, 0.0, a, b, 300.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 600.0;
  cfg.alpha = 2.5;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_NEAR(r.total_revenue, 2.5 * cost_.TravelSeconds(a, b), 1e-9);
}

TEST_F(SimTest, UnreachableRiderReneges) {
  Workload w;
  LatLon far_sw{40.59, -74.02}, far_ne{40.91, -73.78};
  // ~40 km apart; at 10 m/s that's ~4000 s, far over a 60 s deadline.
  w.orders.push_back(MakeOrder(0, 0.0, far_ne, far_sw, 60.0));
  w.drivers.push_back({0, far_sw, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 600.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders, 0);
  EXPECT_EQ(r.reneged_orders, 1);
  EXPECT_DOUBLE_EQ(r.total_revenue, 0.0);
}

TEST_F(SimTest, DriverRejoinsAtDestinationAndServesNextRider) {
  LatLon a{40.70, -74.00}, b{40.75, -73.95}, c{40.76, -73.94};
  Workload w;
  w.orders.push_back(MakeOrder(0, 0.0, a, b, 300.0));
  // Second rider appears near b well after the first trip completes.
  double trip1 = cost_.TravelSeconds(a, b);
  w.orders.push_back(MakeOrder(1, trip1 + 100.0, b, c, 300.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 7200.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders, 2);
  EXPECT_NEAR(r.total_revenue,
              cost_.TravelSeconds(a, b) + cost_.TravelSeconds(b, c), 1e-9);
}

TEST_F(SimTest, BusyDriverCannotServeSecondRider) {
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  Workload w;
  w.orders.push_back(MakeOrder(0, 0.0, a, b, 300.0));
  // Second rider posts immediately after with a short deadline; the only
  // driver is busy for the whole window.
  w.orders.push_back(MakeOrder(1, 2.0, a, b, 100.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 3600.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders, 1);
  EXPECT_EQ(r.reneged_orders, 1);
}

TEST_F(SimTest, BatchQuantizationDelaysAssignment) {
  // Rider posts at t=0.2; with Δ=30 the first dispatch happens at t=30.
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  Workload w;
  w.orders.push_back(MakeOrder(0, 0.2, a, b, 300.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 30.0;
  cfg.horizon_seconds = 3600.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  ASSERT_EQ(r.served_orders, 1);
  EXPECT_NEAR(r.served_wait_seconds.mean(), 30.0 - 0.2, 1e-9);
}

TEST_F(SimTest, LargerDeltaCannotServeTightDeadlines) {
  // Deadline slack 20 s, batches every 30 s: rider expires before dispatch.
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  Workload w;
  w.orders.push_back(MakeOrder(0, 1.0, a, b, 20.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 30.0;
  cfg.horizon_seconds = 600.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders, 0);
  EXPECT_EQ(r.reneged_orders, 1);
}

TEST_F(SimTest, ZeroPickupModeServesDistantPairs) {
  LatLon far_sw{40.59, -74.02}, far_ne{40.91, -73.78};
  Workload w;
  w.orders.push_back(MakeOrder(0, 0.0, far_ne, far_sw, 30.0));
  w.drivers.push_back({0, far_sw, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 600.0;
  cfg.zero_pickup_travel = true;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto upper = MakeUpperBoundDispatcher();
  SimResult r = sim.Run(*upper);
  EXPECT_EQ(r.served_orders, 1);
  EXPECT_NEAR(r.total_revenue, cost_.TravelSeconds(far_ne, far_sw), 1e-9);
}

TEST_F(SimTest, IdleSamplesRecordedOnAssignment) {
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  Workload w;
  w.orders.push_back(MakeOrder(0, 50.0, a, b, 300.0));
  w.drivers.push_back({0, a, 0.0});

  SimConfig cfg;
  cfg.batch_interval = 1.0;
  cfg.horizon_seconds = 3600.0;
  cfg.record_idle_samples = true;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  ASSERT_EQ(r.idle_error.count(), 1);
  // The driver joined at t=0 and was assigned at t=51 (first batch after
  // the rider posted at 50).
  EXPECT_NEAR(r.driver_idle_seconds.mean(), 51.0, 1.0);
  // Per-region aggregation went to the driver's join region.
  RegionId reg = grid_.RegionOf(a);
  EXPECT_EQ(r.region_idle[static_cast<size_t>(reg)].count, 1);
}

TEST_F(SimTest, UnservedRidersAtHorizonCountAsReneged) {
  LatLon a{40.70, -74.00}, b{40.75, -73.95};
  Workload w;
  w.orders.push_back(MakeOrder(0, 100.0, a, b, 1e9));  // never expires
  // No drivers at all.
  SimConfig cfg;
  cfg.batch_interval = 10.0;
  cfg.horizon_seconds = 800.0;
  Simulator sim(cfg, w, grid_, cost_, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders, 0);
  EXPECT_EQ(r.reneged_orders, 1);
}

}  // namespace
}  // namespace mrvd
