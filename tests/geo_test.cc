#include <gtest/gtest.h>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/travel.h"

namespace mrvd {
namespace {

// ------------------------------------------------------------- distances

TEST(DistanceTest, HaversineKnownValue) {
  // Times Square to JFK is roughly 21 km great-circle.
  LatLon times_square{40.7580, -73.9855};
  LatLon jfk{40.6413, -73.7781};
  double d = HaversineMeters(times_square, jfk);
  EXPECT_NEAR(d, 21500.0, 800.0);
}

TEST(DistanceTest, ZeroForIdenticalPoints) {
  LatLon p{40.7, -74.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
  EXPECT_DOUBLE_EQ(EquirectangularMeters(p, p), 0.0);
}

TEST(DistanceTest, EquirectangularCloseToHaversineAtCityScale) {
  LatLon a{40.60, -74.00};
  LatLon b{40.90, -73.80};
  double h = HaversineMeters(a, b);
  double e = EquirectangularMeters(a, b);
  EXPECT_NEAR(e / h, 1.0, 0.002);
}

TEST(DistanceTest, Symmetry) {
  LatLon a{40.61, -73.99}, b{40.85, -73.81};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
  EXPECT_DOUBLE_EQ(EquirectangularMeters(a, b), EquirectangularMeters(b, a));
}

// ---------------------------------------------------------- bounding box

TEST(BoundingBoxTest, ContainsAndClamp) {
  EXPECT_TRUE(kNycBoundingBox.Contains({40.7, -73.9}));
  EXPECT_FALSE(kNycBoundingBox.Contains({41.5, -73.9}));
  LatLon clamped = kNycBoundingBox.Clamp({41.5, -75.0});
  EXPECT_TRUE(kNycBoundingBox.Contains(clamped));
  EXPECT_DOUBLE_EQ(clamped.lat, 40.92);
  EXPECT_DOUBLE_EQ(clamped.lon, -74.03);
}

// ------------------------------------------------------------------ grid

TEST(GridTest, NycGridHas256Regions) {
  Grid g = MakeNycGrid16x16();
  EXPECT_EQ(g.num_regions(), 256);
  EXPECT_EQ(g.rows(), 16);
  EXPECT_EQ(g.cols(), 16);
}

TEST(GridTest, RegionOfCornerPoints) {
  Grid g(kNycBoundingBox, 16, 16);
  EXPECT_EQ(g.RegionOf({40.58, -74.03}), 0);           // SW corner
  EXPECT_EQ(g.RegionOf({40.9199, -73.7701}), 255);     // NE corner
}

TEST(GridTest, OutOfBoxPointsClampToBorderCells) {
  Grid g(kNycBoundingBox, 16, 16);
  EXPECT_EQ(g.RegionOf({39.0, -75.0}), 0);
  EXPECT_EQ(g.RegionOf({42.0, -73.0}), 255);
}

TEST(GridTest, CenterRoundTrips) {
  Grid g(kNycBoundingBox, 16, 16);
  for (RegionId r = 0; r < g.num_regions(); ++r) {
    EXPECT_EQ(g.RegionOf(g.CenterOf(r)), r);
  }
}

TEST(GridTest, RowColRoundTrip) {
  Grid g(kNycBoundingBox, 16, 16);
  for (RegionId r = 0; r < g.num_regions(); ++r) {
    EXPECT_EQ(g.RegionAt(g.RowOf(r), g.ColOf(r)), r);
  }
}

TEST(GridTest, NeighborsInterior) {
  Grid g(kNycBoundingBox, 16, 16);
  RegionId center = g.RegionAt(8, 8);
  EXPECT_EQ(g.Neighbors(center).size(), 8u);
}

TEST(GridTest, NeighborsCornerHasThree) {
  Grid g(kNycBoundingBox, 16, 16);
  EXPECT_EQ(g.Neighbors(0).size(), 3u);
}

TEST(GridTest, RingZeroIsSelf) {
  Grid g(kNycBoundingBox, 16, 16);
  auto ring0 = g.Ring(37, 0);
  ASSERT_EQ(ring0.size(), 1u);
  EXPECT_EQ(ring0[0], 37);
}

TEST(GridTest, RingsPartitionTheGrid) {
  Grid g(kNycBoundingBox, 8, 8);
  RegionId from = g.RegionAt(3, 4);
  std::vector<char> seen(static_cast<size_t>(g.num_regions()), false);
  int total = 0;
  for (int ring = 0; ring < 8; ++ring) {
    for (RegionId r : g.Ring(from, ring)) {
      EXPECT_FALSE(seen[static_cast<size_t>(r)]) << "duplicate region " << r;
      EXPECT_EQ(g.RingDistance(from, r), ring);
      seen[static_cast<size_t>(r)] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_regions());
}

TEST(GridTest, CellBoxContainsCenter) {
  Grid g(kNycBoundingBox, 16, 16);
  for (RegionId r : {0, 17, 255, 128}) {
    EXPECT_TRUE(g.CellBox(r).Contains(g.CenterOf(r)));
  }
}

// ---------------------------------------------------------- travel models

TEST(TravelTest, StraightLineScalesWithDetour) {
  StraightLineCostModel fast(10.0, 1.0);
  StraightLineCostModel detoured(10.0, 1.5);
  LatLon a{40.7, -74.0}, b{40.75, -73.95};
  EXPECT_NEAR(detoured.TravelSeconds(a, b) / fast.TravelSeconds(a, b), 1.5,
              1e-9);
}

TEST(TravelTest, TravelMetersConsistentWithSeconds) {
  StraightLineCostModel m(7.0, 1.3);
  LatLon a{40.7, -74.0}, b{40.75, -73.95};
  EXPECT_NEAR(m.TravelMeters(a, b), m.TravelSeconds(a, b) * m.SpeedMps(),
              1e-6);
}

TEST(TravelTest, ManhattanAtLeastStraightLine) {
  ManhattanCostModel manhattan(7.0);
  StraightLineCostModel straight(7.0, 1.0);
  LatLon a{40.70, -74.00}, b{40.80, -73.85};
  EXPECT_GE(manhattan.TravelSeconds(a, b),
            straight.TravelSeconds(a, b) * 0.999);
  // And at most sqrt(2) times it.
  EXPECT_LE(manhattan.TravelSeconds(a, b),
            straight.TravelSeconds(a, b) * 1.4143);
}

TEST(TravelTest, ZeroDistanceZeroTime) {
  StraightLineCostModel m(7.0, 1.3);
  LatLon p{40.7, -74.0};
  EXPECT_DOUBLE_EQ(m.TravelSeconds(p, p), 0.0);
}

}  // namespace
}  // namespace mrvd
