// mrvd_lint engine tests: every rule fires on its fixture at the expected
// line, suppressions silence (and mis-suppressions are themselves findings),
// the --json shape round-trips through util/json_reader, the layer DAG
// rejects one violation per edge class — and the real src/ tree is clean,
// so the determinism invariants are enforced by ctest, not just by CI.
#include "lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/json_reader.h"

namespace mrvd {
namespace lint {
namespace {

const std::string kFixtureRoot = MRVD_TEST_DATA_DIR "/lint/src";
const std::string kRepoSrc = MRVD_TEST_DATA_DIR "/../../src";

std::vector<Finding> LintFixture(const std::string& rel) {
  StatusOr<std::vector<Finding>> findings =
      LintPaths({kFixtureRoot + "/" + rel});
  EXPECT_TRUE(findings.ok()) << findings.status();
  return findings.ok() ? *std::move(findings) : std::vector<Finding>{};
}

/// Findings matching `rule`, in order.
std::vector<Finding> OfRule(const std::vector<Finding>& all,
                            const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintRules, UnorderedIterationFiresInResultAffectingLayer) {
  std::vector<Finding> all = LintFixture("sim/unordered_iter.cc");
  std::vector<Finding> hits = OfRule(all, "unordered-iteration");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 14);  // range-for over counts_
  EXPECT_FALSE(hits[0].suppressed);
  EXPECT_NE(hits[0].message.find("counts_"), std::string::npos);
  EXPECT_EQ(hits[1].line, 21);  // seen_.begin() iterator walk
  EXPECT_FALSE(hits[1].suppressed);
  EXPECT_NE(hits[1].message.find("seen_"), std::string::npos);
  EXPECT_EQ(hits[2].line, 36);  // allow(unordered-iteration) above it
  EXPECT_TRUE(hits[2].suppressed);
  EXPECT_EQ(hits[2].suppress_reason, "commutative sum, order-free");
  // The vector<unordered_map> range-for (outer container is ordered) and
  // .end() calls must not fire: exactly the three findings above.
  EXPECT_EQ(all.size(), 3u);
}

TEST(LintRules, UnorderedIterationSilentOutsideResultAffectingLayers) {
  // Identical iteration shape, but under src/stats/ — not sim, dispatch or
  // campaign, so traversal order cannot reach a SimResult.
  EXPECT_TRUE(LintFixture("stats/unordered_ok.cc").empty());
}

TEST(LintRules, BannedRandom) {
  std::vector<Finding> all = LintFixture("util/random_bad.cc");
  std::vector<Finding> hits = OfRule(all, "banned-random");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 6);  // srand
  EXPECT_EQ(hits[1].line, 7);  // rand
  EXPECT_EQ(hits[2].line, 8);  // random_device
  EXPECT_EQ(all.size(), 3u);   // "expand" must not trip the rand matcher
}

TEST(LintRules, BannedWallclock) {
  std::vector<Finding> all = LintFixture("util/wallclock_bad.cc");
  std::vector<Finding> hits = OfRule(all, "banned-wallclock");
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].line, 7);   // steady_clock::now
  EXPECT_EQ(hits[1].line, 8);   // system_clock::now
  EXPECT_EQ(hits[2].line, 9);   // time(nullptr)
  EXPECT_EQ(hits[3].line, 10);  // clock()
  EXPECT_EQ(hits[4].line, 12);  // gettimeofday
  EXPECT_EQ(all.size(), 5u);    // "downtime" must not trip the time matcher
}

TEST(LintRules, WallclockWhitelistsStopwatchHeader) {
  // The same clock reads are legal in util/stopwatch.h — the one sanctioned
  // timing primitive. Lint the real header to pin the whitelist.
  StatusOr<std::vector<Finding>> findings =
      LintPaths({kRepoSrc + "/util/stopwatch.h"});
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_TRUE(OfRule(*findings, "banned-wallclock").empty());
}

TEST(LintRules, PointerKeyAndHeaderNamespace) {
  std::vector<Finding> all = LintFixture("dispatch/pointer_key.h");
  std::vector<Finding> keys = OfRule(all, "pointer-key");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].line, 13);  // map<const Driver*, int>
  EXPECT_NE(keys[0].message.find("const Driver*"), std::string::npos);
  EXPECT_EQ(keys[1].line, 14);  // set<Driver*>
  std::vector<Finding> ns = OfRule(all, "using-namespace-header");
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].line, 9);
  // map<string,...> / set<int> are value-keyed: nothing else fires.
  EXPECT_EQ(all.size(), 3u);
}

TEST(LintRules, HardwareConcurrency) {
  std::vector<Finding> all = LintFixture("sim/hw_concurrency.cc");
  std::vector<Finding> hits = OfRule(all, "hardware-concurrency");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 6);
  EXPECT_FALSE(hits[0].suppressed);
  EXPECT_EQ(hits[1].line, 11);
  EXPECT_TRUE(hits[1].suppressed);
  EXPECT_EQ(CountUnsuppressed(all), 1u);
}

TEST(LintRules, NakedNew) {
  std::vector<Finding> all = LintFixture("util/naked_new.cc");
  std::vector<Finding> hits = OfRule(all, "naked-new");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 9);
  EXPECT_FALSE(hits[0].suppressed);
  EXPECT_EQ(hits[1].line, 14);
  EXPECT_TRUE(hits[1].suppressed);
  // 'new' inside comments and string literals must not fire.
  EXPECT_EQ(all.size(), 2u);
}

// ------------------------------------------------------ layer DAG edges

TEST(LintLayering, AdjacentUpwardIncludeRejected) {
  std::vector<Finding> hits =
      OfRule(LintFixture("sim/include_up.cc"), "include-layering");
  ASSERT_EQ(hits.size(), 1u);  // geo/ (down) and same-dir includes pass
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("dispatch/pipeline.h"), std::string::npos);
}

TEST(LintLayering, LongUpwardJumpRejected) {
  std::vector<Finding> hits =
      OfRule(LintFixture("util/include_jump.cc"), "include-layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("campaign"), std::string::npos);
}

TEST(LintLayering, EqualRankCrossIncludeRejected) {
  // geo and util are both rank 0 and mutually independent; the own-layer
  // include spelled with its prefix (geo/haversine.h) must still pass.
  std::vector<Finding> hits =
      OfRule(LintFixture("geo/include_peer.cc"), "include-layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("util/logging.h"), std::string::npos);
}

// ---------------------------------------------------- suppression hygiene

TEST(LintSuppressions, MetaRulesKeepSuppressionsHonest) {
  std::vector<Finding> all = LintFixture("util/suppress_meta.cc");

  std::vector<Finding> unknown = OfRule(all, "unknown-rule");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].line, 7);
  EXPECT_NE(unknown[0].message.find("no-such-rule"), std::string::npos);

  // A suppression naming an unknown rule suppresses nothing: the naked-new
  // under it still counts.
  std::vector<Finding> news = OfRule(all, "naked-new");
  ASSERT_EQ(news.size(), 2u);
  EXPECT_EQ(news[0].line, 9);
  EXPECT_FALSE(news[0].suppressed);

  // A reason-less suppression still applies, but is itself a finding.
  std::vector<Finding> reasonless = OfRule(all, "suppression-needs-reason");
  ASSERT_EQ(reasonless.size(), 1u);
  EXPECT_EQ(reasonless[0].line, 13);
  EXPECT_EQ(news[1].line, 14);
  EXPECT_TRUE(news[1].suppressed);

  // A suppression that matches nothing must be deleted.
  std::vector<Finding> unused = OfRule(all, "unused-suppression");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].line, 18);
}

// ------------------------------------------------------------ clean files

TEST(LintClean, CleanFixtureIsSilent) {
  EXPECT_TRUE(LintFixture("workload/clean.cc").empty());
}

TEST(LintClean, RepoSourceTreeHasNoUnsuppressedFindings) {
  // The headline gate: the real src/ tree must lint clean, so breaking a
  // determinism invariant fails ctest locally — not just the CI job.
  StatusOr<std::vector<Finding>> findings = LintPaths({kRepoSrc});
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_EQ(CountUnsuppressed(*findings), 0u)
      << RenderText(*findings, /*show_suppressed=*/false);
  // Every suppression in the real tree carries its reason.
  for (const Finding& f : *findings) {
    EXPECT_FALSE(f.suppress_reason.empty())
        << f.file << ":" << f.line << " suppressed without a reason";
  }
}

// ------------------------------------------------------------ output shape

TEST(LintOutput, TextFormatIsFileLineRuleMessage) {
  std::vector<Finding> all = LintFixture("util/include_jump.cc");
  std::string text = RenderText(all, /*show_suppressed=*/false);
  EXPECT_NE(text.find("util/include_jump.cc:3: include-layering: "),
            std::string::npos);
}

TEST(LintOutput, JsonShapeParsesBack) {
  std::vector<Finding> all = LintFixture("sim/hw_concurrency.cc");
  StatusOr<JsonValue> doc =
      ParseJson(RenderJson(all, /*files_checked=*/1, /*show_suppressed=*/true));
  ASSERT_TRUE(doc.ok()) << doc.status();

  ASSERT_TRUE(doc->is_object());
  const JsonValue* findings = doc->Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->array().size(), 2u);

  const JsonValue& first = findings->array()[0];
  EXPECT_EQ(first.GetString("rule").value_or(""), "hardware-concurrency");
  EXPECT_EQ(first.GetInt64("line").value_or(0), 6);
  const JsonValue* suppressed = first.Find("suppressed");
  ASSERT_NE(suppressed, nullptr);
  EXPECT_FALSE(suppressed->bool_value());

  const JsonValue& second = findings->array()[1];
  ASSERT_NE(second.Find("suppressed"), nullptr);
  EXPECT_TRUE(second.Find("suppressed")->bool_value());
  EXPECT_EQ(second.GetString("reason").value_or(""),
            "fixture for the allow path");

  EXPECT_EQ(doc->GetInt64("files_checked").value_or(-1), 1);
  EXPECT_EQ(doc->GetInt64("unsuppressed").value_or(-1), 1);

  // Suppressed findings drop out of the default report entirely.
  StatusOr<JsonValue> quiet =
      ParseJson(RenderJson(all, 1, /*show_suppressed=*/false));
  ASSERT_TRUE(quiet.ok()) << quiet.status();
  EXPECT_EQ(quiet->Find("findings")->array().size(), 1u);
}

TEST(LintOutput, RuleTableCoversEveryEmittedRule) {
  // Every rule-id the fixtures can produce must be registered (the docs
  // table and --list-rules are generated from Rules()).
  StatusOr<std::vector<Finding>> findings = LintPaths({kFixtureRoot});
  ASSERT_TRUE(findings.ok()) << findings.status();
  for (const Finding& f : *findings) {
    EXPECT_TRUE(IsKnownRule(f.rule)) << f.rule;
  }
  // And the fixture tree exercises the full rule set, meta rules included.
  for (const RuleInfo& r : Rules()) {
    bool seen = std::any_of(
        findings->begin(), findings->end(),
        [&](const Finding& f) { return f.rule == r.id; });
    EXPECT_TRUE(seen) << "no fixture exercises rule '" << r.id << "'";
  }
}

TEST(LintOutput, MissingPathIsAnError) {
  StatusOr<std::vector<Finding>> findings =
      LintPaths({kFixtureRoot + "/no/such/path.cc"});
  EXPECT_FALSE(findings.ok());
  EXPECT_EQ(findings.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lint
}  // namespace mrvd
