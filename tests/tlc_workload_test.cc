// The `tlc` workload-catalog entry against the checked-in trip fixture
// (tests/data/tlc_trips_sample.csv): CSV parse semantics — row filtering,
// day indexing, order sorting — and an end-to-end catalog Build + Run so
// the TLC path is exercised in CI without the full dataset.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "campaign/workload_catalog.h"
#include "sim/metrics.h"
#include "workload/tlc_parser.h"

namespace mrvd {
namespace {

std::string FixturePath() {
  return std::string(MRVD_TEST_DATA_DIR) + "/tlc_trips_sample.csv";
}

// The fixture holds 34 data rows: 30 in-box trips on 2013-05-28, 2 on
// 2013-05-29, one unparseable pickup datetime and one (0, 0) GPS fix.
TEST(TlcFixtureTest, ParsesRowsAndReportsStats) {
  TlcParseStats stats;
  StatusOr<Workload> w = ParseTlcCsv(FixturePath(), /*num_drivers=*/8,
                                     TlcParseOptions{}, &stats);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(stats.rows_total, 34);
  EXPECT_EQ(stats.rows_bad, 1);
  EXPECT_EQ(stats.rows_out_of_box, 1);
  EXPECT_EQ(stats.rows_kept, 32);
  ASSERT_EQ(w->orders.size(), 32u);
  ASSERT_EQ(w->drivers.size(), 8u);

  for (size_t i = 0; i < w->orders.size(); ++i) {
    const Order& o = w->orders[i];
    EXPECT_EQ(o.id, static_cast<OrderId>(i));
    if (i > 0) {
      EXPECT_GE(o.request_time, w->orders[i - 1].request_time)
          << "orders must be sorted by request time";
    }
    // τ_i = t_i + U[1, 10] + 120 (§6.2 deadline model).
    EXPECT_GT(o.pickup_deadline, o.request_time + 120.0);
    EXPECT_LT(o.pickup_deadline, o.request_time + 131.0);
    EXPECT_TRUE(kNycBoundingBox.Contains(o.pickup));
    EXPECT_TRUE(kNycBoundingBox.Contains(o.dropoff));
  }
  // Request times are relative to the first kept day's midnight; the
  // earliest fixture trip is at 07:59:58 and the latest next-day trip
  // lands past 24 h.
  EXPECT_DOUBLE_EQ(w->orders.front().request_time,
                   7 * 3600.0 + 59 * 60.0 + 58.0);
  EXPECT_GT(w->orders.back().request_time, 86400.0);
}

TEST(TlcFixtureTest, DayFilterKeepsOneDayRebasedToItsMidnight) {
  TlcParseOptions options;
  options.day_filter = 0;
  StatusOr<Workload> day0 = ParseTlcCsv(FixturePath(), 4, options);
  ASSERT_TRUE(day0.ok()) << day0.status();
  EXPECT_EQ(day0->orders.size(), 30u);

  options.day_filter = 1;
  StatusOr<Workload> day1 = ParseTlcCsv(FixturePath(), 4, options);
  ASSERT_TRUE(day1.ok()) << day1.status();
  ASSERT_EQ(day1->orders.size(), 2u);
  // 2013-05-29 06:10:02, rebased to that day's own midnight.
  EXPECT_DOUBLE_EQ(day1->orders.front().request_time,
                   6 * 3600.0 + 10 * 60.0 + 2.0);
}

TEST(TlcFixtureTest, MaxOrdersCapsTheParse) {
  TlcParseOptions options;
  options.max_orders = 5;
  StatusOr<Workload> w = ParseTlcCsv(FixturePath(), 4, options);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->orders.size(), 5u);
}

TEST(TlcCatalogTest, BuildsAndRunsTheFixture) {
  StatusOr<Simulation> sim = WorkloadCatalog::Global().Build(
      "tlc:path=" + FixturePath() + ",drivers=12,batch_interval=30");
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ(sim->workload().orders.size(), 32u);
  EXPECT_EQ(sim->workload().drivers.size(), 12u);

  StatusOr<SimResult> result = sim->Run("LS:max_sweeps=8");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->served_orders, 0);
  EXPECT_EQ(result->served_orders + result->reneged_orders,
            result->total_orders);

  // The conflict-decomposed parallel sweep must reproduce the sequential
  // sweep on a CSV-derived workload too, aggregates included.
  StatusOr<SimResult> serial = sim->Run("LS:max_sweeps=8,parallel=0");
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(result->served_orders, serial->served_orders);
  EXPECT_EQ(result->reneged_orders, serial->reneged_orders);
  EXPECT_EQ(result->total_revenue, serial->total_revenue);
  EXPECT_EQ(result->served_wait_seconds.sum(),
            serial->served_wait_seconds.sum());
  EXPECT_EQ(result->dispatch_sweeps, serial->dispatch_sweeps);
  EXPECT_EQ(result->dispatch_swaps_applied, serial->dispatch_swaps_applied);
  // The serial sweep never speculates, so it never recomputes.
  EXPECT_EQ(serial->dispatch_proposals_recomputed, 0);
}

TEST(TlcCatalogTest, MissingPathFailsWithActionableError) {
  ::unsetenv("MRVD_TLC_CSV");
  StatusOr<Simulation> sim = WorkloadCatalog::Global().Build("tlc");
  ASSERT_FALSE(sim.ok());
  EXPECT_NE(sim.status().message().find("MRVD_TLC_CSV"), std::string::npos);
}

}  // namespace
}  // namespace mrvd
