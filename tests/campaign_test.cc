// Campaign subsystem (src/campaign/): catalog spec canonicalisation, grid
// expansion determinism and stable content keys, the resumable artifact
// store (resume skips completed cells; fresh vs resumed manifests are
// byte-identical), and bit-identity of campaign results against a
// per-simulation ExperimentRunner::RunAll over the same cells at runner
// threads {1, 4}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "campaign/campaign.h"
#include "util/json_reader.h"

namespace mrvd {
namespace {

namespace fs = std::filesystem;

/// A small, fast grid shared by the runner tests: one generated workload,
/// two dispatchers, two seeds -> 4 cells, ~10ms each.
constexpr char kTestWorkload[] =
    "nyc:orders=1500,drivers=30,horizon_hours=2,grid_rows=6,grid_cols=6";

CampaignSpec SmallSpec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.workloads = {kTestWorkload};
  spec.dispatchers = {"NEAR", "RAND:seed=3"};
  spec.seeds = {1, 2};
  return spec;
}

/// Unique fresh directory under the system temp dir, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("mrvd_campaign_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string ReadFile(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  return content;
}

// ------------------------------------------------------------- catalogs

TEST(WorkloadCatalogTest, RosterAndCanonicalisation) {
  WorkloadCatalog& catalog = WorkloadCatalog::Global();
  EXPECT_TRUE(catalog.Known("nyc"));
  EXPECT_TRUE(catalog.Known("tlc"));

  // The canonical form is the FULL resolved parameter list (defaults
  // filled, sorted, numerics re-formatted): a pure function of what the
  // factory builds, so whitespace, key order, numeric spelling — and
  // defaults spelled out explicitly — all collapse to one string.
  StatusOr<std::string> canonical =
      catalog.Canonicalize("nyc: orders = 4000 , drivers=060");
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  EXPECT_NE(canonical->find("drivers=60,"), std::string::npos) << *canonical;
  EXPECT_NE(canonical->find("orders=4000"), std::string::npos) << *canonical;
  StatusOr<std::string> reordered =
      catalog.Canonicalize("nyc:orders=4000,drivers=60");
  ASSERT_TRUE(reordered.ok()) << reordered.status();
  EXPECT_EQ(*reordered, *canonical);

  // Double-typed parameters normalise numeric spelling too.
  StatusOr<std::string> spelled =
      catalog.Canonicalize("nyc:batch_interval=3.0e1");
  ASSERT_TRUE(spelled.ok()) << spelled.status();
  EXPECT_NE(spelled->find("batch_interval=30,"), std::string::npos)
      << *spelled;

  // A bare name equals its defaults spelled out.
  StatusOr<std::string> bare = catalog.Canonicalize("nyc");
  StatusOr<std::string> with_default = catalog.Canonicalize("nyc:day=1");
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(with_default.ok());
  EXPECT_EQ(*bare, *with_default);

  // The canonical form round-trips through the catalog itself.
  StatusOr<std::string> again = catalog.Canonicalize(*canonical);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *canonical);
}

TEST(WorkloadCatalogTest, UnknownNamesAndParamsFail) {
  WorkloadCatalog& catalog = WorkloadCatalog::Global();
  StatusOr<std::string> unknown = catalog.Canonicalize("mars");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("nyc"), std::string::npos);

  StatusOr<std::string> bad_param = catalog.Canonicalize("nyc:bogus=1");
  ASSERT_FALSE(bad_param.ok());
  EXPECT_NE(bad_param.status().message().find("drivers"), std::string::npos);

  StatusOr<std::string> bad_value = catalog.Canonicalize("nyc:orders=lots");
  ASSERT_FALSE(bad_value.ok());

  StatusOr<std::string> duplicate =
      catalog.Canonicalize("nyc:orders=1,orders=2");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate"), std::string::npos);
}

TEST(WorkloadCatalogTest, BuildsARunnableSimulation) {
  StatusOr<Simulation> sim = WorkloadCatalog::Global().Build(kTestWorkload);
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ(sim->grid().num_regions(), 36);
  EXPECT_EQ(sim->workload().drivers.size(), 30u);
  EXPECT_NE(sim->forecast(), nullptr);  // oracle default
  StatusOr<Simulation> no_oracle =
      WorkloadCatalog::Global().Build("nyc:orders=200,oracle=0");
  ASSERT_TRUE(no_oracle.ok()) << no_oracle.status();
  EXPECT_EQ(no_oracle->forecast(), nullptr);
}

TEST(ScenarioCatalogTest, RosterAndFactories) {
  ScenarioCatalog& catalog = ScenarioCatalog::Global();
  for (const char* name :
       {"none", "two-shift", "cancel-hazard", "rush-hour"}) {
    EXPECT_TRUE(catalog.Known(name)) << name;
  }

  StatusOr<Simulation> sim =
      WorkloadCatalog::Global().Build("nyc:orders=500,drivers=10");
  ASSERT_TRUE(sim.ok());
  StatusOr<ScenarioScript> none = catalog.Build("none", sim->workload());
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  StatusOr<ScenarioScript> shifts =
      catalog.Build("two-shift:shift_hour=10", sim->workload());
  ASSERT_TRUE(shifts.ok());
  EXPECT_FALSE(shifts->empty());
  StatusOr<ScenarioScript> surge = catalog.Build("rush-hour", sim->workload());
  ASSERT_TRUE(surge.ok());
  ASSERT_EQ(surge->surges().size(), 1u);
  EXPECT_EQ(surge->surges()[0].multiplier, 1.5);
}

// ------------------------------------------------------------ config delta

TEST(ConfigDeltaTest, AppliesAndCanonicalises) {
  SimConfig cfg;
  Status st = ApplyConfigDelta(
      "horizon_seconds=7200, batch_interval=10,num_threads=4", &cfg);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(cfg.horizon_seconds, 7200.0);
  EXPECT_EQ(cfg.batch_interval, 10.0);
  EXPECT_EQ(cfg.num_threads, 4);

  StatusOr<std::string> canonical = CanonicalizeConfigDelta(
      " num_threads = 04 , batch_interval=10.0 ");
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  EXPECT_EQ(*canonical, "batch_interval=10,num_threads=4");
  StatusOr<std::string> empty = CanonicalizeConfigDelta("  ");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "");

  StatusOr<std::string> unknown = CanonicalizeConfigDelta("warp_speed=9");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("batch_interval"),
            std::string::npos);
  EXPECT_FALSE(ApplyConfigDelta("warp_speed=9", &cfg).ok());
  EXPECT_FALSE(ApplyConfigDelta("num_threads=many", &cfg).ok());
}

// ---------------------------------------------------------- grid expansion

TEST(GridExpansionTest, DeterministicWorkloadMajorOrder) {
  CampaignSpec spec;
  spec.workloads = {"nyc:orders=500", "nyc:orders=600"};
  spec.scenarios = {"none", "rush-hour"};
  spec.dispatchers = {"NEAR", "RAND"};
  spec.seeds = {1, 2};
  spec.config_deltas = {"", "batch_interval=10"};

  StatusOr<std::vector<CampaignCell>> cells = ExpandGrid(spec);
  ASSERT_TRUE(cells.ok()) << cells.status();
  ASSERT_EQ(cells->size(), 32u);

  // Workload-major, seed innermost; every key unique and self-consistent.
  EXPECT_EQ((*cells)[0].workload_index, 0);
  EXPECT_EQ((*cells)[15].workload_index, 0);
  EXPECT_EQ((*cells)[16].workload_index, 1);
  EXPECT_EQ((*cells)[0].seed, 1u);
  EXPECT_EQ((*cells)[1].seed, 2u);
  std::vector<std::string> keys;
  for (const CampaignCell& cell : *cells) {
    keys.push_back(cell.key);
    EXPECT_EQ(cell.key.size(), 16u);
    EXPECT_EQ(cell.key,
              CampaignCellKey(cell.workload, cell.scenario, cell.dispatcher,
                              cell.config_delta, cell.seed));
  }
  std::vector<std::string> unique = keys;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(unique.size(), keys.size());

  // Expansion is a pure function of the spec.
  StatusOr<std::vector<CampaignCell>> again = ExpandGrid(spec);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ((*again)[i].key, keys[i]) << i;
  }
}

TEST(GridExpansionTest, KeysAreSpellingInvariant) {
  CampaignSpec a;
  a.workloads = {"nyc:orders=4000,drivers=60"};
  a.dispatchers = {"LS:max_sweeps=8"};
  a.seeds = {7};
  a.config_deltas = {"batch_interval=10,num_threads=2"};

  CampaignSpec b;
  b.workloads = {"nyc: drivers = 60 , orders=4000, day=1"};  // default day
  b.scenarios = {"none"};  // the implicit default, spelled out
  b.dispatchers = {" LS : max_sweeps = 08 "};  // respelled numeric
  b.seeds = {7};
  b.config_deltas = {" num_threads=2 , batch_interval=10.0 "};

  StatusOr<std::vector<CampaignCell>> cells_a = ExpandGrid(a);
  StatusOr<std::vector<CampaignCell>> cells_b = ExpandGrid(b);
  ASSERT_TRUE(cells_a.ok()) << cells_a.status();
  ASSERT_TRUE(cells_b.ok()) << cells_b.status();
  ASSERT_EQ(cells_a->size(), 1u);
  ASSERT_EQ(cells_b->size(), 1u);
  EXPECT_EQ((*cells_a)[0].key, (*cells_b)[0].key);
}

TEST(GridExpansionTest, DispatcherDefaultsExpandIntoTheKey) {
  // "RAND" and "RAND:seed=1" (the declared default) are the same run and
  // must share one artifact key — and therefore collide as duplicate axis
  // entries within one grid.
  CampaignSpec bare = SmallSpec();
  bare.dispatchers = {"RAND"};
  CampaignSpec explicit_default = SmallSpec();
  explicit_default.dispatchers = {"RAND:seed=1"};
  StatusOr<std::vector<CampaignCell>> a = ExpandGrid(bare);
  StatusOr<std::vector<CampaignCell>> b = ExpandGrid(explicit_default);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ((*a)[0].key, (*b)[0].key);
  EXPECT_EQ((*a)[0].dispatcher, "RAND:seed=1");

  CampaignSpec collision = SmallSpec();
  collision.dispatchers = {"RAND", "RAND:seed=1"};
  StatusOr<std::vector<CampaignCell>> dup = ExpandGrid(collision);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

TEST(GridExpansionTest, KeyAlgorithmIsPinned) {
  // Guards the FNV-1a content key against accidental change: any new hash
  // orphans every artifact directory in existence. If this fails, you
  // changed the key function — don't update the constant unless that is
  // an explicit, documented migration.
  EXPECT_EQ(CampaignCellKey("nyc", "none", "NEAR", "", 1),
            CampaignCellKey("nyc", "none", "NEAR", "", 1));
  EXPECT_EQ(CampaignCellKey("nyc", "none", "NEAR", "", 1),
            "250d8dc1f4e40c89");
}

TEST(GridExpansionTest, RejectsBadAndDuplicateAxes) {
  CampaignSpec spec = SmallSpec();
  spec.workloads.clear();
  EXPECT_FALSE(ExpandGrid(spec).ok());

  spec = SmallSpec();
  spec.dispatchers.clear();
  EXPECT_FALSE(ExpandGrid(spec).ok());

  spec = SmallSpec();
  spec.workloads.push_back("mars");
  StatusOr<std::vector<CampaignCell>> unknown = ExpandGrid(spec);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  spec = SmallSpec();
  spec.dispatchers = {"NEAR", " NEAR "};  // identical after canonicalisation
  StatusOr<std::vector<CampaignCell>> duplicate = ExpandGrid(spec);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate"),
            std::string::npos);

  spec = SmallSpec();
  spec.seeds = {1, 1};
  EXPECT_FALSE(ExpandGrid(spec).ok());

  spec = SmallSpec();
  spec.dispatchers = {"TYPO"};
  StatusOr<std::vector<CampaignCell>> typo = ExpandGrid(spec);
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("known dispatchers"),
            std::string::npos);
}

// ---------------------------------------------------------- campaign runner

void ExpectSameAggregates(const SimResult& want, const SimResult& got,
                          const std::string& label) {
  EXPECT_EQ(want.served_orders, got.served_orders) << label;
  EXPECT_EQ(want.reneged_orders, got.reneged_orders) << label;
  EXPECT_EQ(want.cancelled_orders, got.cancelled_orders) << label;
  EXPECT_EQ(want.total_orders, got.total_orders) << label;
  EXPECT_EQ(want.num_batches, got.num_batches) << label;
  EXPECT_EQ(want.total_revenue, got.total_revenue) << label;
  EXPECT_EQ(want.served_wait_seconds.count(), got.served_wait_seconds.count())
      << label;
  EXPECT_EQ(want.served_wait_seconds.mean(), got.served_wait_seconds.mean())
      << label;
  EXPECT_EQ(want.served_wait_seconds.variance(),
            got.served_wait_seconds.variance())
      << label;
  EXPECT_EQ(want.driver_idle_seconds.mean(), got.driver_idle_seconds.mean())
      << label;
}

TEST(CampaignRunnerTest, ResumeSkipsCompletedAndManifestsAreByteIdentical) {
  TempDir dir("resume");
  CampaignRunner runner(SmallSpec(), dir.str());

  StatusOr<CampaignReport> fresh = runner.Run();
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_EQ(fresh->cells.size(), 4u);
  EXPECT_EQ(fresh->executed, 4);
  EXPECT_EQ(fresh->loaded, 0);
  EXPECT_EQ(fresh->failed, 0);
  const std::string fresh_manifest = ReadFile(dir.path() / "manifest.json");
  EXPECT_EQ(fresh_manifest, fresh->manifest_json);
  EXPECT_FALSE(fresh_manifest.empty());

  // Simulate a mid-flight kill: drop one artifact, corrupt another
  // (truncation) and falsify a third (key mismatch). Only those three may
  // re-execute.
  const std::string k0 = fresh->cells[0].cell.key;
  const std::string k1 = fresh->cells[1].cell.key;
  const std::string k2 = fresh->cells[2].cell.key;
  ASSERT_TRUE(fs::remove(dir.path() / ("run-" + k0 + ".json")));
  { std::ofstream(dir.path() / ("run-" + k1 + ".json")) << "{\"key\": \"tr"; }
  { std::ofstream(dir.path() / ("run-" + k2 + ".json")) << "{}"; }
  fs::remove(dir.path() / "manifest.json");

  StatusOr<CampaignReport> resumed = runner.Resume();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->executed, 3);
  EXPECT_EQ(resumed->loaded, 1);
  EXPECT_EQ(resumed->failed, 0);
  EXPECT_EQ(resumed->manifest_json, fresh_manifest);
  EXPECT_EQ(ReadFile(dir.path() / "manifest.json"), fresh_manifest);

  // A second resume loads everything and still reproduces the manifest.
  StatusOr<CampaignReport> again = runner.Resume();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->executed, 0);
  EXPECT_EQ(again->loaded, 4);
  EXPECT_EQ(again->manifest_json, fresh_manifest);

  // Summarize is a pure read of the same store.
  StatusOr<CampaignReport> summary = runner.Summarize();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->loaded, 4);
  EXPECT_EQ(summary->manifest_json, fresh_manifest);
}

TEST(CampaignRunnerTest, BitIdenticalToExperimentRunnerAtThreads1And4) {
  // The same cells, hand-built as an ExperimentRunner sweep over the
  // catalog-built Simulation (grid order: dispatcher-major, seed
  // innermost for the single workload/scenario/delta).
  CampaignSpec spec = SmallSpec();
  StatusOr<Simulation> sim = WorkloadCatalog::Global().Build(kTestWorkload);
  ASSERT_TRUE(sim.ok()) << sim.status();
  std::vector<RunSpec> specs;
  for (const std::string& dispatcher : spec.dispatchers) {
    for (uint64_t seed : spec.seeds) {
      RunSpec run_spec(dispatcher);
      run_spec.replication_seed = seed;
      specs.push_back(std::move(run_spec));
    }
  }
  ExperimentRunner reference(*sim, /*num_threads=*/1);
  StatusOr<std::vector<RunResult>> want = reference.RunAll(specs);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_EQ(want->size(), 4u);

  for (int threads : {1, 4}) {
    TempDir dir("bitident_t" + std::to_string(threads));
    CampaignRunner runner(spec, dir.str());
    CampaignOptions options;
    options.num_threads = threads;
    StatusOr<CampaignReport> report = runner.Run(options);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->cells.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      const CellOutcome& outcome = report->cells[i];
      ASSERT_EQ(outcome.source, CellOutcome::Source::kExecuted);
      ASSERT_TRUE(outcome.live.has_value());
      EXPECT_GT(outcome.live->result.served_orders, 0);
      ExpectSameAggregates(
          (*want)[i].result, outcome.live->result,
          outcome.cell.dispatcher + " seed " +
              std::to_string(outcome.cell.seed) + " @" +
              std::to_string(threads) + " campaign threads");
    }
  }
}

TEST(CampaignRunnerTest, ScenarioAndDeltaCellsRunScripted) {
  CampaignSpec spec;
  spec.name = "scripted";
  spec.workloads = {kTestWorkload};
  spec.scenarios = {"none", "cancel-hazard:probability=0.4"};
  spec.dispatchers = {"NEAR"};
  spec.config_deltas = {"", "horizon_seconds=3600"};

  TempDir dir("scripted");
  CampaignRunner runner(spec, dir.str());
  StatusOr<CampaignReport> report = runner.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cells.size(), 4u);
  EXPECT_EQ(report->failed, 0);

  // Grid order: (none, ""), (none, delta), (cancel, ""), (cancel, delta).
  const RunArtifact& unscripted = report->cells[0].artifact;
  const RunArtifact& half = report->cells[1].artifact;
  const RunArtifact& cancelled = report->cells[2].artifact;
  EXPECT_EQ(unscripted.cancelled, 0);
  EXPECT_GT(cancelled.cancelled, 0);
  EXPECT_LT(half.num_batches, unscripted.num_batches);

  // Failed cells surface without failing the campaign: a delta that
  // canonicalises fine but fails SimConfig::Validate at run time.
  spec.config_deltas = {"window_seconds=-5"};
  TempDir bad_dir("bad_delta");
  CampaignRunner bad(spec, bad_dir.str());
  StatusOr<CampaignReport> bad_report = bad.Run();
  ASSERT_TRUE(bad_report.ok()) << bad_report.status();
  EXPECT_EQ(bad_report->failed, 2);
  EXPECT_NE(bad_report->cells[0].error.find("window_seconds"),
            std::string::npos);
}

TEST(CampaignRunnerTest, HourlyBreakdownAndTelemetryArtifacts) {
  TempDir dir("telemetry");
  CampaignRunner runner(SmallSpec(), dir.str());
  CampaignOptions options;
  options.telemetry = true;
  StatusOr<CampaignReport> report = runner.Run(options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->failed, 0);

  for (const CellOutcome& outcome : report->cells) {
    const RunArtifact& a = outcome.artifact;
    // Two-hour horizon -> two hourly rows whose counts reconcile with the
    // headline aggregates. The hourly renege tally excludes the bulk
    // never-dispatched remainder reported at the horizon.
    ASSERT_EQ(a.hourly.size(), 2u) << outcome.cell.key;
    int64_t served = 0;
    int64_t reneged = 0;
    double revenue = 0.0;
    for (const HourlyRow& row : a.hourly) {
      served += row.served;
      reneged += row.reneged;
      revenue += row.revenue;
    }
    EXPECT_EQ(served, a.served) << outcome.cell.key;
    EXPECT_LE(reneged, a.reneged) << outcome.cell.key;
    EXPECT_NEAR(revenue, a.revenue, 1e-6 * (1.0 + std::abs(a.revenue)));
    EXPECT_GE(a.dispatch_ms_p95, a.dispatch_ms_p50);

    // The per-cell telemetry document exists, parses, and its
    // deterministic counters agree with the artifact.
    StatusOr<JsonValue> tele = ReadJsonFile(
        runner.store().TelemetryPath(outcome.cell.key));
    ASSERT_TRUE(tele.ok()) << tele.status();
    const JsonValue* counters = tele->Find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue* batches = counters->Find("engine.batches");
    ASSERT_NE(batches, nullptr);
    EXPECT_EQ(*batches->GetInt64("value"), a.num_batches);
  }

  // Resume loads the artifacts back — hourly rows round-trip through the
  // store bit-exact, and the manifest is reproduced byte for byte.
  StatusOr<CampaignReport> resumed = runner.Resume();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->loaded, 4);
  EXPECT_EQ(resumed->manifest_json, report->manifest_json);
  for (size_t i = 0; i < report->cells.size(); ++i) {
    const std::vector<HourlyRow>& want = report->cells[i].artifact.hourly;
    const std::vector<HourlyRow>& got = resumed->cells[i].artifact.hourly;
    ASSERT_EQ(want.size(), got.size());
    for (size_t h = 0; h < want.size(); ++h) {
      EXPECT_EQ(want[h].served, got[h].served);
      EXPECT_EQ(want[h].reneged, got[h].reneged);
      EXPECT_EQ(want[h].cancelled, got[h].cancelled);
      EXPECT_EQ(want[h].revenue, got[h].revenue);
      EXPECT_EQ(want[h].wait_seconds_sum, got[h].wait_seconds_sum);
    }
  }
}

// ----------------------------------------------------------- artifact store

TEST(ArtifactStoreTest, IoFailuresCarryErrnoContext) {
  TempDir dir("errno");
  ASSERT_TRUE(ArtifactStore(dir.str()).Init().ok());
  // A store rooted *under a regular file* cannot create its directory.
  { std::ofstream(dir.path() / "blocker") << "x"; }
  ArtifactStore blocked((dir.path() / "blocker" / "sub").string());
  Status init = blocked.Init();
  ASSERT_FALSE(init.ok());
  EXPECT_EQ(init.code(), StatusCode::kIoError);

  CampaignCell cell;
  cell.key = "0123456789abcdef";
  Status save = blocked.SaveRun(cell, RunArtifact{});
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kIoError);
  // The errno context names the failing path and the strerror text.
  EXPECT_NE(save.message().find("run-0123456789abcdef.json"),
            std::string::npos);
  EXPECT_NE(save.message().find("errno"), std::string::npos);

  StatusOr<RunArtifact> load = ArtifactStore(dir.str()).LoadRun(cell);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kIoError);
  EXPECT_NE(load.status().message().find("errno"), std::string::npos);
}

TEST(ArtifactStoreTest, SpecRoundTripsThroughCampaignJson) {
  TempDir dir("spec");
  ArtifactStore store(dir.str());
  ASSERT_TRUE(store.Init().ok());

  CampaignSpec spec;
  spec.name = "round trip \"quoted\"";
  spec.workloads = {"nyc:orders=4000", "tlc:path=/data/trips.csv"};
  spec.scenarios = {"none", "rush-hour:multiplier=1.8"};
  spec.dispatchers = {"LS:max_sweeps=8"};
  spec.seeds = {1, 2, 0xFFFFFFFFFFFFFFFFull};  // beyond 2^53
  spec.config_deltas = {"batch_interval=10"};
  ASSERT_TRUE(store.SaveSpec(spec).ok());

  StatusOr<CampaignSpec> loaded = store.LoadSpec();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, spec.name);
  EXPECT_EQ(loaded->workloads, spec.workloads);
  EXPECT_EQ(loaded->scenarios, spec.scenarios);
  EXPECT_EQ(loaded->dispatchers, spec.dispatchers);
  EXPECT_EQ(loaded->seeds, spec.seeds);
  EXPECT_EQ(loaded->config_deltas, spec.config_deltas);
}

}  // namespace
}  // namespace mrvd
