#include <gtest/gtest.h>

#include <memory>

#include "roadnet/graph.h"
#include "roadnet/shortest_path.h"
#include "util/rng.h"

namespace mrvd {
namespace {

RoadNetwork TinyTriangle() {
  // 0 --1s--> 1 --1s--> 2, plus direct 0 --5s--> 2.
  std::vector<LatLon> nodes = {{40.70, -74.00}, {40.70, -73.99},
                               {40.70, -73.98}};
  std::vector<EdgeInput> edges = {
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}};
  auto net = RoadNetwork::Build(std::move(nodes), edges);
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(RoadNetworkTest, BuildValidatesEndpoints) {
  std::vector<LatLon> nodes = {{40.7, -74.0}};
  auto bad = RoadNetwork::Build(nodes, {{0, 5, 1.0}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RoadNetworkTest, BuildRejectsNegativeCost) {
  std::vector<LatLon> nodes = {{40.7, -74.0}, {40.71, -74.0}};
  auto bad = RoadNetwork::Build(nodes, {{0, 1, -1.0}});
  EXPECT_FALSE(bad.ok());
}

TEST(RoadNetworkTest, CsrAdjacency) {
  RoadNetwork net = TinyTriangle();
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.num_edges(), 3);
  EXPECT_EQ(net.out_end(0) - net.out_begin(0), 2);
  EXPECT_EQ(net.out_end(1) - net.out_begin(1), 1);
  EXPECT_EQ(net.out_end(2) - net.out_begin(2), 0);
}

TEST(ShortestPathTest, PicksCheaperTwoHopPath) {
  RoadNetwork net = TinyTriangle();
  ShortestPathEngine engine(net);
  PathResult r = engine.PointToPoint(0, 2, /*want_path=*/true);
  ASSERT_TRUE(r.reachable);
  EXPECT_DOUBLE_EQ(r.cost_seconds, 2.0);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[0], 0);
  EXPECT_EQ(r.path[1], 1);
  EXPECT_EQ(r.path[2], 2);
}

TEST(ShortestPathTest, UnreachableNode) {
  std::vector<LatLon> nodes = {{40.7, -74.0}, {40.71, -74.0}};
  auto net = RoadNetwork::Build(nodes, {});
  ASSERT_TRUE(net.ok());
  ShortestPathEngine engine(*net);
  EXPECT_FALSE(engine.PointToPoint(0, 1).reachable);
}

TEST(ShortestPathTest, SingleSourceDistances) {
  RoadNetwork net = TinyTriangle();
  ShortestPathEngine engine(net);
  auto d = engine.SingleSource(0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
}

TEST(ShortestPathTest, AStarMatchesDijkstraOnGrid) {
  RoadNetwork net = MakeGridNetwork(kNycBoundingBox, 12, 12, 7.0, 0.3, 11);
  ShortestPathEngine engine(net);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    auto s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    auto t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    PathResult dj = engine.PointToPoint(s, t);
    PathResult as = engine.AStar(s, t);
    ASSERT_EQ(dj.reachable, as.reachable);
    if (dj.reachable) {
      EXPECT_NEAR(dj.cost_seconds, as.cost_seconds,
                  1e-6 * (1.0 + dj.cost_seconds));
    }
  }
}

TEST(ShortestPathTest, AStarExpandsFewerNodes) {
  RoadNetwork net = MakeGridNetwork(kNycBoundingBox, 24, 24, 7.0, 0.1, 21);
  ShortestPathEngine engine(net);
  // Opposite corners.
  NodeId s = 0;
  NodeId t = net.num_nodes() - 1;
  engine.PointToPoint(s, t);
  int64_t dijkstra_settled = engine.last_settled_count();
  engine.AStar(s, t);
  int64_t astar_settled = engine.last_settled_count();
  EXPECT_LT(astar_settled, dijkstra_settled);
}

TEST(ShortestPathTest, PathEdgesAreContiguous) {
  RoadNetwork net = MakeGridNetwork(kNycBoundingBox, 8, 8, 7.0, 0.2, 5);
  ShortestPathEngine engine(net);
  PathResult r = engine.AStar(0, net.num_nodes() - 1, /*want_path=*/true);
  ASSERT_TRUE(r.reachable);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), 0);
  EXPECT_EQ(r.path.back(), net.num_nodes() - 1);
  // Each consecutive pair must be a real edge.
  for (size_t i = 0; i + 1 < r.path.size(); ++i) {
    bool found = false;
    for (int64_t e = net.out_begin(r.path[i]); e < net.out_end(r.path[i]);
         ++e) {
      if (net.target(e) == r.path[i + 1]) found = true;
    }
    EXPECT_TRUE(found) << "missing edge at step " << i;
  }
}

TEST(SnapIndexTest, MatchesLinearScan) {
  RoadNetwork net = MakeGridNetwork(kNycBoundingBox, 10, 10, 7.0, 0.2, 9);
  SnapIndex snap(net, kNycBoundingBox, 16, 16);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    LatLon p{rng.Uniform(40.58, 40.92), rng.Uniform(-74.03, -73.77)};
    NodeId a = snap.Snap(p);
    NodeId b = net.NearestNodeLinear(p);
    // Ties can differ; compare distances instead of ids.
    EXPECT_NEAR(EquirectangularMeters(p, net.position(a)),
                EquirectangularMeters(p, net.position(b)), 1e-6);
  }
}

TEST(RoadNetworkCostModelTest, CostsArePositiveAndRoughlyMetric) {
  auto net = std::make_shared<RoadNetwork>(
      MakeGridNetwork(kNycBoundingBox, 16, 16, 7.0, 0.0, 1));
  RoadNetworkCostModel model(net, kNycBoundingBox, 7.0);
  LatLon a{40.65, -74.00}, b{40.85, -73.82};
  double t = model.TravelSeconds(a, b);
  EXPECT_GT(t, 0.0);
  // The network is an L1 grid at 7 m/s: cost is at least straight-line time
  // and at most ~2.2x of it (L1 detour + access legs).
  double straight = EquirectangularMeters(a, b) / 7.0;
  EXPECT_GE(t, straight * 0.95);
  EXPECT_LE(t, straight * 2.2);
}

TEST(GridNetworkTest, NodeAndEdgeCounts) {
  RoadNetwork net = MakeGridNetwork(kNycBoundingBox, 5, 7, 7.0, 0.1, 2);
  EXPECT_EQ(net.num_nodes(), 35);
  // Bidirectional streets: 2 * (rows*(cols-1) + cols*(rows-1)).
  EXPECT_EQ(net.num_edges(), 2 * (5 * 6 + 7 * 4));
}

}  // namespace
}  // namespace mrvd
