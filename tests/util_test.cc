#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace mrvd {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, StatusOrValuePath) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusTest, StatusOrErrorPath) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    MRVD_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIndependence) {
  Rng base(99);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonSmallMeanMatchesMoments) {
  Rng rng(8);
  const double mean = 4.2;
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<double>(rng.Poisson(mean));
    sum += v;
    sq += v * v;
  }
  double m = sum / n;
  double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(var, mean, 0.15);  // Poisson: variance == mean
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(9);
  const double mean = 250.0;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double m = sum / n;
  EXPECT_NEAR(m, 3.0, 0.03);
  EXPECT_NEAR(sq / n - m * m, 4.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  ZipfTable table(100, 1.2);
  int64_t low = 0, n = 20000;
  for (int64_t i = 0; i < n; ++i) low += table.Sample(rng) < 10;
  // With s=1.2 the first 10 ranks carry well over half the mass.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(n), 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------- strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \r\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, ParseSimpleLine) {
  auto f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTest, ParseQuotedFields) {
  auto f = ParseCsvLine(R"(x,"hello, world","a ""q"" b")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "hello, world");
  EXPECT_EQ(f[2], "a \"q\" b");
}

TEST(CsvTest, RoundTripThroughFile) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_csv_test.csv";
  {
    CsvWriter writer(path.string());
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"h1", "h2"});
    writer.WriteRow({"v,1", "v\"2\""});
    writer.WriteRow({"3", "4"});
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  auto st = ReadCsvFile(
      path.string(), /*has_header=*/true,
      [&](const std::vector<std::string>& h) { header = h; },
      [&](const std::vector<std::string>& r) {
        rows.push_back(r);
        return true;
      });
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(header.size(), 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "v,1");
  EXPECT_EQ(rows[0][1], "v\"2\"");
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto st = ReadCsvFile("/nonexistent/definitely_missing.csv", false, nullptr,
                        [](const auto&) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(CsvTest, EarlyStopViaRowCallback) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_csv_stop.csv";
  {
    CsvWriter writer(path.string());
    for (int i = 0; i < 10; ++i) writer.WriteRow({std::to_string(i)});
  }
  int count = 0;
  auto st = ReadCsvFile(path.string(), false, nullptr,
                        [&](const auto&) { return ++count < 3; });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 3);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketsAndSummary) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 10);
  for (int b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.5);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(2.0);
  h.Add(0.5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 3);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(i % 100 + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a(0, 10, 10), b(0, 10, 10);
  a.Add(1.5);
  b.Add(8.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.bucket_count(1), 1);
  EXPECT_EQ(a.bucket_count(8), 1);
  EXPECT_DOUBLE_EQ(a.max(), 8.5);
}

}  // namespace
}  // namespace mrvd
