#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <sstream>

#include "util/csv.h"
#include "util/histogram.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace mrvd {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, StatusOrValuePath) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusTest, StatusOrErrorPath) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    MRVD_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIndependence) {
  Rng base(99);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonSmallMeanMatchesMoments) {
  Rng rng(8);
  const double mean = 4.2;
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<double>(rng.Poisson(mean));
    sum += v;
    sq += v * v;
  }
  double m = sum / n;
  double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(var, mean, 0.15);  // Poisson: variance == mean
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(9);
  const double mean = 250.0;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double m = sum / n;
  EXPECT_NEAR(m, 3.0, 0.03);
  EXPECT_NEAR(sq / n - m * m, 4.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  ZipfTable table(100, 1.2);
  int64_t low = 0, n = 20000;
  for (int64_t i = 0; i < n; ++i) low += table.Sample(rng) < 10;
  // With s=1.2 the first 10 ranks carry well over half the mass.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(n), 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------- strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \r\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, ParseSimpleLine) {
  auto f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvTest, ParseQuotedFields) {
  auto f = ParseCsvLine(R"(x,"hello, world","a ""q"" b")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "hello, world");
  EXPECT_EQ(f[2], "a \"q\" b");
}

TEST(CsvTest, RoundTripThroughFile) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_csv_test.csv";
  {
    CsvWriter writer(path.string());
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"h1", "h2"});
    writer.WriteRow({"v,1", "v\"2\""});
    writer.WriteRow({"3", "4"});
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  auto st = ReadCsvFile(
      path.string(), /*has_header=*/true,
      [&](const std::vector<std::string>& h) { header = h; },
      [&](const std::vector<std::string>& r) {
        rows.push_back(r);
        return true;
      });
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(header.size(), 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "v,1");
  EXPECT_EQ(rows[0][1], "v\"2\"");
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto st = ReadCsvFile("/nonexistent/definitely_missing.csv", false, nullptr,
                        [](const auto&) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(CsvTest, EarlyStopViaRowCallback) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_csv_stop.csv";
  {
    CsvWriter writer(path.string());
    for (int i = 0; i < 10; ++i) writer.WriteRow({std::to_string(i)});
  }
  int count = 0;
  auto st = ReadCsvFile(path.string(), false, nullptr,
                        [&](const auto&) { return ++count < 3; });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 3);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketsAndSummary) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 10);
  for (int b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.5);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(2.0);
  h.Add(0.5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 3);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(i % 100 + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a(0, 10, 10), b(0, 10, 10);
  a.Add(1.5);
  b.Add(8.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.bucket_count(1), 1);
  EXPECT_EQ(a.bucket_count(8), 1);
  EXPECT_DOUBLE_EQ(a.max(), 8.5);
}

// ------------------------------------------- JsonWriter <-> JsonReader

std::string WriteJson(const std::function<void(JsonWriter&)>& fn) {
  std::ostringstream os;
  JsonWriter w(os);
  fn(w);
  return os.str();
}

TEST(JsonRoundTripTest, StringEscaping) {
  // Quotes, backslashes, named control escapes, and every raw control byte
  // (emitted as \u00XX) must parse back to the original bytes.
  std::string nasty = "quote\" backslash\\ newline\n tab\t cr\r slash/";
  for (char c = 1; c < 0x20; ++c) nasty.push_back(c);
  nasty += "\xC3\xA9";  // UTF-8 passthrough (é)

  std::string doc = WriteJson([&](JsonWriter& w) {
    w.BeginObject();
    w.Key(nasty).String(nasty);
    w.EndObject();
  });
  StatusOr<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\ndoc: " << doc;
  ASSERT_EQ(parsed->members().size(), 1u);
  EXPECT_EQ(parsed->members()[0].first, nasty);
  EXPECT_EQ(parsed->members()[0].second.string_value(), nasty);
}

TEST(JsonRoundTripTest, ReaderUnescapesAllStandardEscapes) {
  StatusOr<JsonValue> v =
      ParseJson(R"("a\"b\\c\/d\be\ff\ng\rh\tiAé")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->string_value(), "a\"b\\c/d\be\ff\ng\rh\tiA\xC3\xA9");
}

TEST(JsonRoundTripTest, NonFiniteDoublesBecomeNull) {
  // JSON has no inf/nan spelling; the writer must not emit the to_chars
  // "inf"/"nan" tokens (no parser accepts them) — it writes null instead.
  std::string doc = WriteJson([](JsonWriter& w) {
    w.BeginArray();
    w.Number(std::numeric_limits<double>::infinity());
    w.Number(-std::numeric_limits<double>::infinity());
    w.Number(std::numeric_limits<double>::quiet_NaN());
    w.Number(1.5);
    w.EndArray();
  });
  EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos) << doc;
  StatusOr<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\ndoc: " << doc;
  ASSERT_EQ(parsed->array().size(), 4u);
  EXPECT_TRUE(parsed->array()[0].is_null());
  EXPECT_TRUE(parsed->array()[1].is_null());
  EXPECT_TRUE(parsed->array()[2].is_null());
  EXPECT_EQ(parsed->array()[3].number(), 1.5);
}

TEST(JsonRoundTripTest, DoublesRoundTripBitExact) {
  // Shortest round-trip formatting + from_chars parsing: the artifact
  // store's byte-identical resumed manifests hang on this.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -2.5e-10,
                           1e300,
                           5e-324,  // min subnormal
                           123456789.123456789,
                           -0.0};
  for (double want : values) {
    std::string doc = WriteJson([&](JsonWriter& w) { w.Number(want); });
    StatusOr<JsonValue> parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    double got = parsed->number();
    EXPECT_EQ(std::memcmp(&want, &got, sizeof want), 0) << doc;
  }
}

TEST(JsonRoundTripTest, IntegersKeepFullFidelity) {
  std::string doc = WriteJson([](JsonWriter& w) {
    w.BeginArray();
    w.Number(std::numeric_limits<int64_t>::min());
    w.Number(std::numeric_limits<int64_t>::max());
    w.Number(std::numeric_limits<uint64_t>::max());
    w.Number(int64_t{9007199254740993});  // 2^53 + 1: breaks via double
    w.EndArray();
  });
  StatusOr<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& a = parsed->array();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(*a[0].Int64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(*a[1].Int64(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(*a[2].Uint64(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(*a[3].Int64(), 9007199254740993);
  EXPECT_FALSE(a[2].Int64().ok());  // uint64 max does not fit int64
}

TEST(JsonRoundTripTest, NestedStructureAndTypedAccessors) {
  std::string doc = WriteJson([](JsonWriter& w) {
    w.BeginObject();
    w.Key("name").String("demo");
    w.Key("count").Number(3);
    w.Key("rate").Number(0.25);
    w.Key("ok").Bool(true);
    w.Key("nothing").Null();
    w.Key("empty_obj").BeginObject();
    w.EndObject();
    w.Key("rows").BeginArray();
    w.BeginArray();
    w.EndArray();
    w.BeginObject();
    w.Key("x").Number(1);
    w.EndObject();
    w.EndArray();
    w.EndObject();
  });
  StatusOr<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\ndoc: " << doc;
  EXPECT_EQ(*parsed->GetString("name"), "demo");
  EXPECT_EQ(*parsed->GetInt64("count"), 3);
  EXPECT_EQ(*parsed->GetDouble("rate"), 0.25);
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  EXPECT_TRUE(parsed->Find("empty_obj")->members().empty());
  const auto& rows = parsed->Find("rows")->array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].array().empty());
  EXPECT_EQ(*rows[1].GetInt64("x"), 1);

  EXPECT_FALSE(parsed->GetString("count").ok());   // type mismatch
  EXPECT_FALSE(parsed->GetInt64("missing").ok());  // absent key
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",
           "{",
           "[1, 2",
           "{\"a\" 1}",
           "{\"a\": 1,}x",
           "[1] trailing",
           "\"unterminated",
           "\"bad \\q escape\"",
           "\"truncated \\u00",
           "nul",
           "12..5",
           "\"raw \t tab\"",
       }) {
    StatusOr<JsonValue> v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    if (!v.ok()) {
      EXPECT_NE(v.status().message().find("JSON parse error"),
                std::string::npos);
    }
  }
}

TEST(JsonReaderTest, MissingFileCarriesErrnoContext) {
  StatusOr<JsonValue> v = ReadJsonFile("/nonexistent/definitely_missing.json");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
  EXPECT_NE(v.status().message().find("errno"), std::string::npos);
}

TEST(StatusTest, IoErrorFromErrnoCarriesStrerrorText) {
  errno = ENOENT;
  Status st = IoErrorFromErrno("open 'x'");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("open 'x'"), std::string::npos);
  EXPECT_NE(st.message().find("No such file"), std::string::npos);
  EXPECT_NE(st.message().find("errno 2"), std::string::npos);
  errno = 0;
  EXPECT_EQ(IoErrorFromErrno("ctx").message(), "ctx");
}

}  // namespace
}  // namespace mrvd
