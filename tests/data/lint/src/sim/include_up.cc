// Fixture: adjacent upward include — sim (rank 3) reaching into dispatch
// (rank 4). Never compiled; the included paths need not exist.
#include "dispatch/pipeline.h"  // line 3: include-layering
#include "geo/point.h"          // downward (rank 0): no finding
#include "sim_local_header.h"   // same-directory include: no finding
