// Fixture: unordered-iteration must fire in the result-affecting sim layer,
// and the suppression syntax must silence it. Never compiled.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Engine {
  std::unordered_map<int, double> counts_;
  std::unordered_set<long> seen_;
  std::vector<std::unordered_map<int, double>> caches_;

  double Sum() const {
    double total = 0.0;
    for (const auto& kv : counts_) {  // line 14: finding
      total += kv.second;
    }
    return total;
  }

  long First() const {
    auto it = seen_.begin();  // line 21: finding
    return it == seen_.end() ? 0 : *it;
  }

  int Shards() const {
    int n = 0;
    for (const auto& cache : caches_) {  // outer vector: ordered, no finding
      n += static_cast<int>(cache.size());
    }
    return n;
  }

  double SumAllowed() const {
    double total = 0.0;
    // mrvd-lint: allow(unordered-iteration) — commutative sum, order-free
    for (const auto& kv : counts_) {
      total += kv.second;
    }
    return total;
  }
};
