// Fixture: hardware_concurrency outside the sanctioned wrapper, plus its
// suppressed form. Never compiled.
#include <thread>

int Bad() {
  return static_cast<int>(std::thread::hardware_concurrency());  // line 6
}

int Allowed() {
  // mrvd-lint: allow(hardware-concurrency) — fixture for the allow path
  return static_cast<int>(std::thread::hardware_concurrency());
}
