// Fixture: equal-rank cross-include — geo and util are both rank 0 and
// mutually independent; neither may include the other. Never compiled.
#include "util/logging.h"  // line 3: include-layering
#include "geo/haversine.h"  // own layer spelled with its prefix: no finding
