// Fixture: naked new, inline-suppressed new, and the word "new" in
// comments/strings (which must not fire). Never compiled.
#include <memory>
#include <string>

struct Widget {};

Widget* Make() {
  return new Widget();  // line 9: naked-new
}

std::unique_ptr<Widget> MakeOwned() {
  // mrvd-lint: allow(naked-new) — exercising the same-line ownership idiom
  return std::unique_ptr<Widget>(new Widget());
}

// A brand new comment mentioning new should never fire.
std::string Label() { return "new"; }
