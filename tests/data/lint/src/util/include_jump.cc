// Fixture: long upward jump — util (rank 0, the foundation) including
// campaign (rank 6, the top). Never compiled.
#include "campaign/campaign_runner.h"  // line 3: include-layering
