// Fixture: every banned wall-clock read. Never compiled.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long Now() {
  auto t1 = std::chrono::steady_clock::now();   // line 7: banned-wallclock
  auto t2 = std::chrono::system_clock::now();   // line 8: banned-wallclock
  long t3 = time(nullptr);                      // line 9: banned-wallclock
  long t4 = clock();                            // line 10: banned-wallclock
  struct timeval tv;
  gettimeofday(&tv, nullptr);                   // line 12: banned-wallclock
  long downtime = t3;  // "downtime" must not trip the time() matcher
  return t1.time_since_epoch().count() + t2.time_since_epoch().count() +
         downtime + t4 + tv.tv_sec;
}
