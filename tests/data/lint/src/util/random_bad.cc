// Fixture: every banned randomness source. Never compiled.
#include <cstdlib>
#include <random>

int Draw() {
  std::srand(42);                 // line 6: banned-random (srand)
  int a = std::rand();            // line 7: banned-random (rand)
  std::random_device dev;         // line 8: banned-random (random_device)
  int expand = a + static_cast<int>(dev());
  return expand;                  // "expand" must not trip the rand matcher
}
