// Fixture: the three meta rules keeping suppressions honest. Never compiled.
#include <memory>

struct Gadget {};

Gadget* A() {
  // mrvd-lint: allow(no-such-rule) — line 7: unknown-rule (and the naked-new
  // below stays unsuppressed)
  return new Gadget();  // line 9: naked-new still fires
}

Gadget* B() {
  // mrvd-lint: allow(naked-new)
  return new Gadget();  // suppressed, but line 13: suppression-needs-reason
}

int C() {
  // mrvd-lint: allow(naked-new) — line 18: unused-suppression (nothing here)
  return 7;
}
