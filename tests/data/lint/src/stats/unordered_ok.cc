// Fixture: the identical iteration is fine in stats — not a result-affecting
// layer (stats consumers sort before aggregating). Never compiled.
#include <unordered_map>

double Sum(const std::unordered_map<int, double>& counts) {
  double total = 0.0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}
