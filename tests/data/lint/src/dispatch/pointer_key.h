// Fixture: pointer-keyed ordered containers and a header namespace leak.
// Never compiled.
#pragma once

#include <map>
#include <set>
#include <string>

using namespace std;  // line 9: using-namespace-header

struct Driver;

map<const Driver*, int> assignments;          // line 13: pointer-key
set<Driver*> idle;                            // line 14: pointer-key
map<string, int> by_name;                     // value key: no finding
set<int> ids;                                 // value key: no finding
