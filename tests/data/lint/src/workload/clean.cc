// Fixture: a clean file — downward includes, ordered containers, smart
// pointers, no clocks, no randomness. Must produce zero findings.
#include "geo/point.h"
#include "util/status.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

struct Order {};

struct Batch {
  std::unordered_map<long, Order> by_id;  // lookups only; never iterated
  std::map<std::string, int> counts;

  std::unique_ptr<Order> Take(long id) {
    auto it = by_id.find(id);
    if (it == by_id.end()) return nullptr;
    auto out = std::make_unique<Order>(it->second);
    by_id.erase(it);
    return out;
  }
};
