// Extended coverage: edge cases, failure injection and cross-module
// consistency checks that go beyond each module's basic suite.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "dispatch/candidates.h"
#include "dispatch/dispatchers.h"
#include "geo/travel.h"
#include "prediction/forecast.h"
#include "prediction/predictor.h"
#include "queueing/birth_death.h"
#include "sim/engine.h"
#include "stats/chi_square.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/tlc_parser.h"

namespace mrvd {
namespace {

// ------------------------------------------------ queueing deep tails

TEST(QueueingExtended, PositiveTailDecaysMonotonically) {
  auto chain = BirthDeathChain::Solve({2.0, 1.5, 0.1, 10});
  ASSERT_TRUE(chain.ok());
  double prev = chain->StateProbability(1);
  for (int64_t n = 2; n <= 30; ++n) {
    double p = chain->StateProbability(n);
    // With beta > 0 the service rate grows with n, so the tail decays once
    // lambda < mu + pi(n); by n=2 that already holds here.
    EXPECT_LE(p, prev * 1.0000001) << "n=" << n;
    prev = p;
  }
}

TEST(QueueingExtended, ZeroCapMeansImmediateBalk) {
  // K=0: no driver can congest; all mass is on n >= 0.
  auto chain = BirthDeathChain::Solve({1.0, 2.0, 0.05, 0});
  ASSERT_TRUE(chain.ok());
  EXPECT_DOUBLE_EQ(chain->StateProbability(-1), 0.0);
  double total = chain->p0();
  for (int64_t n = 1; n <= chain->positive_tail_length(); ++n) {
    total += chain->StateProbability(n);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // An arriving driver only ever sees n >= 0, so ET = p0/lambda exactly.
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), chain->p0() / 1.0, 1e-12);
}

TEST(QueueingExtended, ExtremeRatesStayFinite) {
  for (auto [l, m] : {std::pair{1e-6, 10.0}, {10.0, 1e-6}, {1e-6, 1e-6}}) {
    auto chain = BirthDeathChain::Solve({l, m, 0.02, 100});
    ASSERT_TRUE(chain.ok()) << l << " " << m;
    EXPECT_TRUE(std::isfinite(chain->ExpectedIdleSeconds()));
    EXPECT_GE(chain->ExpectedIdleSeconds(), 0.0);
  }
}

// ------------------------------------------------ candidate modes

class CandidateModeTest : public ::testing::Test {
 protected:
  CandidateModeTest()
      : grid_(kNycBoundingBox, 4, 4), cost_(10.0, 1.0) {}

  BatchContext MakeContext(CandidateMode mode) {
    BatchContext ctx(1000.0, 1200.0, 0.02, grid_, cost_, mode);
    WaitingRider r;
    r.order_id = 0;
    r.pickup = {40.664, -74.00};
    r.dropoff = {40.75, -73.95};
    r.request_time = 990;
    r.pickup_deadline = 1400.0;
    r.trip_seconds = cost_.TravelSeconds(r.pickup, r.dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid_.RegionOf(r.pickup);
    r.dropoff_region = grid_.RegionOf(r.dropoff);
    ctx.AddRider(r);
    // One driver in the same region, one across the row boundary.
    for (LatLon loc : {LatLon{40.660, -74.00}, LatLon{40.667, -74.00}}) {
      AvailableDriver d;
      d.driver_id = ctx.drivers().size();
      d.location = loc;
      d.region = grid_.RegionOf(loc);
      d.available_since = 0;
      ctx.AddDriver(d);
    }
    std::vector<RegionSnapshot> snaps(
        static_cast<size_t>(grid_.num_regions()));
    ctx.SetSnapshots(std::move(snaps));
    return ctx;
  }

  Grid grid_;
  StraightLineCostModel cost_;
};

TEST_F(CandidateModeTest, RegionLocalExcludesCrossRegionDrivers) {
  BatchContext local = MakeContext(CandidateMode::kRegionLocal);
  BatchContext ring = MakeContext(CandidateMode::kRingExpand);
  EXPECT_EQ(GenerateValidPairs(local).size(), 1u);
  EXPECT_EQ(GenerateValidPairs(ring).size(), 2u);
}

TEST_F(CandidateModeTest, RegionLocalSimulationStillServes) {
  GeneratorConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.orders_per_day = 3000;
  NycLikeGenerator gen(cfg);
  Workload day = gen.GenerateDay(0, 60);
  SimConfig sim_cfg;
  sim_cfg.batch_interval = 10.0;
  sim_cfg.candidate_mode = CandidateMode::kRegionLocal;
  StraightLineCostModel cost(11.0, 1.3);
  Simulator sim(sim_cfg, day, gen.grid(), cost, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_GT(r.served_orders, 0);
  EXPECT_EQ(r.served_orders + r.reneged_orders, r.total_orders);
}

// ------------------------------------------------ TLC parser options

TEST(TlcParserExtended, DayFilterAndMaxOrders) {
  auto path = std::filesystem::temp_directory_path() / "mrvd_tlc_ext.csv";
  {
    CsvWriter w(path.string());
    w.WriteRow({"pickup_datetime", "pickup_longitude", "pickup_latitude",
                "dropoff_longitude", "dropoff_latitude"});
    // Day 0: two trips; day 1: one trip.
    w.WriteRow({"2013-05-28 08:00:00", "-73.98", "40.75", "-73.95", "40.78"});
    w.WriteRow({"2013-05-28 09:00:00", "-73.97", "40.74", "-73.94", "40.77"});
    w.WriteRow({"2013-05-29 08:00:00", "-73.96", "40.73", "-73.93", "40.76"});
  }
  TlcParseOptions opt;
  opt.day_filter = 1;
  auto wl = ParseTlcCsv(path.string(), 0, opt);
  ASSERT_TRUE(wl.ok());
  ASSERT_EQ(wl->orders.size(), 1u);
  // Request time relative to *that day's* midnight: 8:00 = 28800.
  EXPECT_DOUBLE_EQ(wl->orders[0].request_time, 28800.0);

  TlcParseOptions cap;
  cap.max_orders = 1;
  auto capped = ParseTlcCsv(path.string(), 0, cap);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->orders.size(), 1u);
  std::filesystem::remove(path);
}

// ------------------------------------------------ chi-square options

TEST(ChiSquareExtended, FixedBucketWidthRespected) {
  Rng rng(5);
  std::vector<int64_t> samples;
  for (int i = 0; i < 300; ++i) samples.push_back(rng.Poisson(40.0));
  ChiSquareOptions opt;
  opt.bucket_width = 5;
  auto result = ChiSquarePoissonTest(samples, opt);
  ASSERT_TRUE(result.ok());
  // Interior (non-tail) buckets should be exactly 5 wide or merged
  // multiples of 5.
  for (const auto& b : result->buckets) {
    if (b.hi == INT64_MAX || b.lo == 0) continue;
    EXPECT_EQ((b.hi - b.lo) % 5, 0);
  }
}

TEST(ChiSquareExtended, StricterAlphaRaisesCriticalValue) {
  Rng rng(6);
  std::vector<int64_t> samples;
  for (int i = 0; i < 210; ++i) samples.push_back(rng.Poisson(60.0));
  ChiSquareOptions loose, strict;
  loose.alpha = 0.05;
  strict.alpha = 0.01;
  auto r1 = ChiSquarePoissonTest(samples, loose);
  auto r2 = ChiSquarePoissonTest(samples, strict);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r2->critical_value, r1->critical_value);
}

// ------------------------------------------------ generator OD coherence

TEST(GeneratorExtended, SampledDestinationsMatchDistribution) {
  GeneratorConfig cfg;
  cfg.grid_rows = 6;
  cfg.grid_cols = 6;
  cfg.orders_per_day = 40000;
  NycLikeGenerator gen(cfg);
  Workload day = gen.GenerateDay(0, 0);

  // Empirical destination distribution of morning trips from the busiest
  // origin region vs. the analytic DestinationDistribution. Aggregate a
  // band of morning slots (the mix changes slowly) for sample size.
  const int slot = 17;  // 08:30, analytic reference
  const int slot_lo = 15, slot_hi = 19;
  std::vector<int64_t> origin_counts(36, 0);
  for (const Order& o : day.orders) {
    int s = static_cast<int>(o.request_time / 1800.0);
    if (s >= slot_lo && s <= slot_hi)
      ++origin_counts[gen.grid().RegionOf(o.pickup)];
  }
  RegionId from = static_cast<RegionId>(
      std::max_element(origin_counts.begin(), origin_counts.end()) -
      origin_counts.begin());

  std::vector<int64_t> dest_counts(36, 0);
  int64_t total = 0;
  for (const Order& o : day.orders) {
    int s = static_cast<int>(o.request_time / 1800.0);
    if (s >= slot_lo && s <= slot_hi &&
        gen.grid().RegionOf(o.pickup) == from) {
      ++dest_counts[gen.grid().RegionOf(o.dropoff)];
      ++total;
    }
  }
  ASSERT_GT(total, 150);
  auto analytic = gen.DestinationDistribution(0, slot, from);
  for (RegionId r = 0; r < 36; ++r) {
    double empirical =
        static_cast<double>(dest_counts[static_cast<size_t>(r)]) /
        static_cast<double>(total);
    EXPECT_NEAR(empirical, analytic[static_cast<size_t>(r)],
                0.05 + analytic[static_cast<size_t>(r)] * 0.5)
        << "region " << r;
  }
}

// ------------------------------------------------ engine + forecast wiring

TEST(EngineExtended, ForecastRaisesLambdaInHotRegions) {
  // With a forecast, the snapshot-driven ET in a hot region must be lower
  // than without (more predicted riders -> less idle). We observe this
  // indirectly: IRG with forecast routes more drivers into hot regions.
  GeneratorConfig cfg;
  cfg.grid_rows = 8;
  cfg.grid_cols = 8;
  cfg.orders_per_day = 8000;
  NycLikeGenerator gen(cfg);
  Workload day = gen.GenerateDay(1, 100);
  DemandHistory realized = gen.RealizedCounts(day, 48);
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, realized, 0);
  ASSERT_TRUE(fc.ok());

  StraightLineCostModel cost(11.0, 1.3);
  SimConfig sim_cfg;
  sim_cfg.batch_interval = 10.0;
  auto irg1 = MakeIrgDispatcher();
  auto irg2 = MakeIrgDispatcher();
  Simulator with(sim_cfg, day, gen.grid(), cost, &fc.value());
  Simulator without(sim_cfg, day, gen.grid(), cost, nullptr);
  SimResult r_with = with.Run(*irg1);
  SimResult r_without = without.Run(*irg2);
  // Both must serve; the forecast must not hurt by a large margin.
  EXPECT_GT(r_with.served_orders, 0);
  EXPECT_GT(r_with.total_revenue, r_without.total_revenue * 0.9);
}

TEST(EngineExtended, HorizonTruncationCountsLateOrdersAsUnserved) {
  GeneratorConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.orders_per_day = 2000;
  NycLikeGenerator gen(cfg);
  Workload day = gen.GenerateDay(0, 20);
  SimConfig sim_cfg;
  sim_cfg.batch_interval = 10.0;
  sim_cfg.horizon_seconds = 6 * 3600.0;  // stop at 6 AM
  StraightLineCostModel cost(11.0, 1.3);
  Simulator sim(sim_cfg, day, gen.grid(), cost, nullptr);
  auto near = MakeNearestDispatcher();
  SimResult r = sim.Run(*near);
  EXPECT_EQ(r.served_orders + r.reneged_orders, r.total_orders);
  // Orders after 6 AM cannot have been served.
  int64_t before_horizon = 0;
  for (const Order& o : day.orders) {
    if (o.request_time <= 6 * 3600.0) ++before_horizon;
  }
  EXPECT_LE(r.served_orders, before_horizon);
}

// ------------------------------------------------ forecast edges

TEST(ForecastExtended, ZeroWindowIsZero) {
  GeneratorConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.orders_per_day = 1000;
  NycLikeGenerator gen(cfg);
  DemandHistory h = gen.GenerateHistory(1, 48);
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, h, 0);
  ASSERT_TRUE(fc.ok());
  EXPECT_DOUBLE_EQ(fc->WindowCount(1000.0, 0.0, 3), 0.0);
}

TEST(ForecastExtended, FullDayWindowSumsAllSlots) {
  GeneratorConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.orders_per_day = 1000;
  NycLikeGenerator gen(cfg);
  DemandHistory h = gen.GenerateHistory(1, 48);
  auto oracle = MakeOraclePredictor();
  auto fc = DemandForecast::Build(*oracle, h, 0);
  ASSERT_TRUE(fc.ok());
  double whole = fc->WindowCount(0.0, kSecondsPerDay, 5);
  double slots = 0;
  for (int s = 0; s < 48; ++s) slots += fc->SlotCount(s, 5);
  EXPECT_NEAR(whole, slots, 1e-6);
}

// ------------------------------------------------ dispatcher robustness

TEST(DispatcherExtended, ManyRidersOneDriver) {
  Grid grid(kNycBoundingBox, 4, 4);
  StraightLineCostModel cost(10.0, 1.0);
  BatchContext ctx(0.0, 1200.0, 0.02, grid, cost);
  for (int i = 0; i < 50; ++i) {
    WaitingRider r;
    r.order_id = i;
    r.pickup = {40.70 + 0.0001 * i, -74.00};
    r.dropoff = {40.75, -73.95};
    r.pickup_deadline = 500.0;
    r.trip_seconds = cost.TravelSeconds(r.pickup, r.dropoff);
    r.revenue = r.trip_seconds;
    r.pickup_region = grid.RegionOf(r.pickup);
    r.dropoff_region = grid.RegionOf(r.dropoff);
    ctx.AddRider(r);
  }
  AvailableDriver d;
  d.driver_id = 0;
  d.location = {40.701, -74.0};
  d.region = grid.RegionOf(d.location);
  ctx.AddDriver(d);
  std::vector<RegionSnapshot> snaps(static_cast<size_t>(grid.num_regions()));
  ctx.SetSnapshots(std::move(snaps));

  std::vector<std::unique_ptr<Dispatcher>> ds;
  ds.push_back(MakeIrgDispatcher());
  ds.push_back(MakeLocalSearchDispatcher());
  ds.push_back(MakeShortDispatcher());
  ds.push_back(MakePolarDispatcher());
  ds.push_back(MakeRandomDispatcher(3));
  for (auto& disp : ds) {
    std::vector<Assignment> out;
    disp->Dispatch(ctx, &out);
    EXPECT_EQ(out.size(), 1u) << disp->name();
  }
}

TEST(DispatcherExtended, LocalSearchSweepCapRespected) {
  // A 1-sweep LS must still return a complete valid assignment.
  GeneratorConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.orders_per_day = 3000;
  NycLikeGenerator gen(cfg);
  Workload day = gen.GenerateDay(0, 40);
  SimConfig sim_cfg;
  sim_cfg.batch_interval = 15.0;
  StraightLineCostModel cost(11.0, 1.3);
  auto ls1 = MakeLocalSearchDispatcher(/*max_sweeps=*/1);
  Simulator sim(sim_cfg, day, gen.grid(), cost, nullptr);
  SimResult r = sim.Run(*ls1);
  EXPECT_GT(r.served_orders, 0);
}

}  // namespace
}  // namespace mrvd
