// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  * the birth-death chain's invariants over a (λ, μ, β, K) grid,
//  * end-to-end dispatcher invariants over every approach.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "api/dispatcher_registry.h"
#include "geo/travel.h"
#include "queueing/birth_death.h"
#include "registry_test_helpers.h"
#include "sim/engine.h"
#include "workload/generator.h"

namespace mrvd {
namespace {

// ---------------------------------------------------------------------
// Chain invariants over the full parameter grid.

using ChainParams = std::tuple<double, double, double, int64_t>;

class ChainSweepTest : public ::testing::TestWithParam<ChainParams> {
 protected:
  QueueParams Params() const {
    auto [lambda, mu, beta, cap] = GetParam();
    return {lambda, mu, beta, cap};
  }
};

TEST_P(ChainSweepTest, ProbabilitiesNormalize) {
  auto chain = BirthDeathChain::Solve(Params());
  ASSERT_TRUE(chain.ok());
  // Negative support: exactly K states when λ <= μ (mass grows toward -K),
  // unbounded geometric decay when λ > μ (sum until terms vanish, Eq. 7).
  const QueueParams params = Params();
  double total = 0.0;
  for (int64_t n = chain->positive_tail_length(); n >= -100000; --n) {
    double p = chain->StateProbability(n);
    total += p;
    if (params.lambda <= params.mu && n <= -params.max_drivers) break;
    if (params.lambda > params.mu && n < 0 && p < 1e-15) break;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_P(ChainSweepTest, FlowBalanceEverywhere) {
  QueueParams params = Params();
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());
  RenegingFunction pi(params.beta, params.mu);
  for (int64_t n = -std::min<int64_t>(params.max_drivers - 1, 20); n <= 10;
       ++n) {
    double mu_n = n <= 0 ? params.mu : params.mu + pi(n);
    double lhs = mu_n * chain->StateProbability(n);
    double rhs = params.lambda * chain->StateProbability(n - 1);
    EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + lhs)) << "n=" << n;
  }
}

TEST_P(ChainSweepTest, IdleTimeEqualsDirectSum) {
  QueueParams params = Params();
  auto chain = BirthDeathChain::Solve(params);
  ASSERT_TRUE(chain.ok());
  double direct = 0.0;
  for (int64_t n = 0; n >= -100000; --n) {
    double p = chain->StateProbability(n);
    direct += (static_cast<double>(-n) + 1.0) / params.lambda * p;
    // λ <= μ: support ends at -K (mass grows toward it). λ > μ: unbounded
    // geometric tail (Eq. 7) — stop once the terms vanish.
    if (params.lambda <= params.mu && n <= -params.max_drivers) break;
    if (params.lambda > params.mu && n < 0 && p < 1e-18) break;
  }
  EXPECT_NEAR(chain->ExpectedIdleSeconds(), direct, 1e-6 * (1.0 + direct));
}

TEST_P(ChainSweepTest, IdleTimeFiniteAndNonNegative) {
  auto chain = BirthDeathChain::Solve(Params());
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(std::isfinite(chain->ExpectedIdleSeconds()));
  EXPECT_GE(chain->ExpectedIdleSeconds(), 0.0);
  EXPECT_GE(chain->p0(), 0.0);
  EXPECT_LE(chain->p0(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChainSweepTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),     // lambda
                       ::testing::Values(0.5, 1.0, 2.0),     // mu
                       ::testing::Values(0.01, 0.1),         // beta
                       ::testing::Values<int64_t>(5, 50)),   // K
    [](const ::testing::TestParamInfo<ChainParams>& info) {
      // Note: no structured bindings here — the commas inside `[a, b]`
      // would split the INSTANTIATE_TEST_SUITE_P macro arguments.
      double l = std::get<0>(info.param);
      double m = std::get<1>(info.param);
      double b = std::get<2>(info.param);
      int64_t k = std::get<3>(info.param);
      return "l" + std::to_string(static_cast<int>(l * 10)) + "_m" +
             std::to_string(static_cast<int>(m * 10)) + "_b" +
             std::to_string(static_cast<int>(b * 100)) + "_k" +
             std::to_string(k);
    });

// ---------------------------------------------------------------------
// Dispatcher invariants over every approach, end to end.

class DispatcherSweepTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.grid_rows = 8;
    cfg.grid_cols = 8;
    cfg.orders_per_day = 5000;
    generator_ = new NycLikeGenerator(cfg);
    workload_ = new Workload(generator_->GenerateDay(4, 60));
    cost_ = new StraightLineCostModel(11.0, 1.3);
  }
  static void TearDownTestSuite() {
    delete cost_;
    delete workload_;
    delete generator_;
  }

  static std::unique_ptr<Dispatcher> Make(const std::string& name) {
    return test::MakeSeeded(name, /*seed=*/9);
  }

  static SimResult Run(const std::string& name) {
    SimConfig cfg;
    cfg.batch_interval = 10.0;
    auto d = Make(name);
    Simulator sim(cfg, *workload_, generator_->grid(), *cost_, nullptr);
    return sim.Run(*d);
  }

  static NycLikeGenerator* generator_;
  static Workload* workload_;
  static StraightLineCostModel* cost_;
};

NycLikeGenerator* DispatcherSweepTest::generator_ = nullptr;
Workload* DispatcherSweepTest::workload_ = nullptr;
StraightLineCostModel* DispatcherSweepTest::cost_ = nullptr;

TEST_P(DispatcherSweepTest, ConservesOrders) {
  SimResult r = Run(GetParam());
  EXPECT_EQ(r.served_orders + r.reneged_orders, r.total_orders);
  EXPECT_GE(r.served_orders, 0);
}

TEST_P(DispatcherSweepTest, RevenueConsistentWithService) {
  SimResult r = Run(GetParam());
  EXPECT_GT(r.served_orders, 0) << "nothing served at all";
  EXPECT_GT(r.total_revenue, 0.0);
  // Revenue per served order must be a plausible trip time (10 s .. 2 h).
  double per_order = r.total_revenue / static_cast<double>(r.served_orders);
  EXPECT_GT(per_order, 10.0);
  EXPECT_LT(per_order, 7200.0);
}

TEST_P(DispatcherSweepTest, DeterministicRerun) {
  SimResult a = Run(GetParam());
  SimResult b = Run(GetParam());
  EXPECT_EQ(a.served_orders, b.served_orders);
  EXPECT_DOUBLE_EQ(a.total_revenue, b.total_revenue);
}

TEST_P(DispatcherSweepTest, BatchTimeBounded) {
  SimResult r = Run(GetParam());
  EXPECT_LT(r.batch_seconds.max(), 2.0);  // the paper's feasibility bar
}

// Every registered dispatcher that runs under the standard config (the
// registry's trait filters UPPER) — a newly registered approach joins the
// sweep automatically.
INSTANTIATE_TEST_SUITE_P(AllApproaches, DispatcherSweepTest,
                         ::testing::ValuesIn(test::RosterWithoutZeroPickup()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mrvd
