// Shared DispatcherRegistry helpers for the roster-sweeping test suites
// (equivalence, scenario, sharded-pipeline, param-sweep, api): one place
// for "build a seeded dispatcher from the registry" and the roster
// filters, so seeding or trait changes never have to be applied per file.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/dispatcher_registry.h"

namespace mrvd::test {

/// Registry-built dispatcher, overriding the "seed" parameter where the
/// dispatcher declares one (default: the equivalence suites' canonical
/// seed). Fails the surrounding test (and returns null) on a registry
/// error. The full uint64 seed domain survives the int64 spec parameter
/// via two's-complement formatting, as in MakeDispatcherByName.
inline std::unique_ptr<Dispatcher> MakeSeeded(const std::string& name,
                                              uint64_t seed = 5) {
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  std::vector<std::pair<std::string, std::string>> overrides;
  if (registry.HasParam(name, "seed")) {
    overrides.emplace_back("seed",
                           std::to_string(static_cast<int64_t>(seed)));
  }
  StatusOr<std::unique_ptr<Dispatcher>> d = registry.Create(name, overrides);
  EXPECT_TRUE(d.ok()) << d.status();
  return d.ok() ? std::move(d).value() : nullptr;
}

/// The full registered roster, sorted — sweeps iterate this instead of a
/// hand-written name list.
inline std::vector<std::string> FullRoster() {
  return DispatcherRegistry::Global().Names();
}

/// Registered dispatchers meaningful under a standard config — the
/// zero-pickup-travel trait filters UPPER (and any future special-mode
/// dispatcher) out automatically.
inline std::vector<std::string> RosterWithoutZeroPickup() {
  std::vector<std::string> names;
  const DispatcherRegistry& registry = DispatcherRegistry::Global();
  for (const std::string& name : registry.Names()) {
    if (!registry.RequiresZeroPickupTravel(name)) names.push_back(name);
  }
  return names;
}

}  // namespace mrvd::test
